"""Unit tests for tgds and tgd-set utilities."""

import pytest

from repro.core.atoms import atom
from repro.core.parser import parse_tgd, parse_tgds
from repro.core.terms import Variable
from repro.core.tgd import (
    TGD,
    TGDError,
    max_body_size,
    normalize_single_head,
    predicate_graph,
    rename_set_apart,
    sch,
    total_size,
)

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")


class TestTGDStructure:
    def test_frontier_and_existentials(self):
        t = parse_tgd("R(x, y), P(y, z) -> T(x, y, w)")
        assert t.frontier() == {x, y}
        assert t.existential_variables() == {w}
        assert t.body_variables() == {x, y, z}

    def test_empty_head_rejected(self):
        with pytest.raises(TGDError):
            TGD((atom("R", x),), ())

    def test_fact_tgd(self):
        t = parse_tgd("-> P(x)")
        assert t.is_fact_tgd()
        assert t.existential_variables() == {x}

    def test_full_and_lossless(self):
        assert parse_tgd("R(x, y) -> P(x)").is_full()
        assert not parse_tgd("R(x, y) -> P(x)").is_lossless()
        assert parse_tgd("R(x, y) -> P(x, y, w)").is_lossless()

    def test_guard_candidates(self):
        t = parse_tgd("R(x, y, z), P(x) -> S(x)")
        assert t.guard_candidates() == (atom("R", x, y, z),)

    def test_rename_apart(self):
        t = parse_tgd("R(x, y) -> P(y)")
        renamed = t.rename_apart({x})
        assert x not in renamed.variables()
        assert renamed.head[0].predicate == "P"

    def test_with_indexed_variables(self):
        t = parse_tgd("R(x, y) -> P(y)")
        t1 = t.with_indexed_variables(1)
        t2 = t.with_indexed_variables(2)
        assert not (t1.variables() & t2.variables())

    def test_size(self):
        t = parse_tgd("R(x, y) -> P(y)")
        assert t.size() == (1 + 2) + (1 + 1)


class TestSetUtilities:
    def test_sch(self):
        sigma = parse_tgds("R(x, y) -> P(y)\nP(x) -> S(x, w)")
        schema = sch(sigma)
        assert schema.arity("R") == 2 and schema.arity("S") == 2

    def test_total_size_and_max_body(self):
        sigma = parse_tgds("R(x, y) -> P(y)\nP(x), S(x, y) -> T(x)")
        assert total_size(sigma) == sum(t.size() for t in sigma)
        assert max_body_size(sigma) == 2

    def test_predicate_graph(self):
        sigma = parse_tgds("R(x, y) -> P(y)\nP(x) -> S(x)")
        g = predicate_graph(sigma)
        assert g["R"] == {"P"}
        assert g["P"] == {"S"}
        assert g["S"] == set()

    def test_rename_set_apart(self):
        sigma = parse_tgds("R(x, y) -> P(y)\nP(x) -> S(x)")
        renamed = rename_set_apart(sigma)
        assert not (renamed[0].variables() & renamed[1].variables())


class TestNormalization:
    def test_single_head_untouched(self):
        sigma = parse_tgds("R(x, y) -> P(y)")
        assert normalize_single_head(sigma) == sigma

    def test_multi_head_split(self):
        sigma = parse_tgds("R(x, y) -> P(y), S(y, w)")
        normalized = normalize_single_head(sigma)
        assert all(len(t.head) == 1 for t in normalized)
        assert len(normalized) == 3  # splitter + two continuations

    def test_split_preserves_certain_answers(self):
        from repro.chase import chase
        from repro.core.instance import Instance
        from repro.core.atoms import fact
        from repro.core.queries import boolean_cq

        sigma = parse_tgds("R(x, y) -> P(y), S(y, w)")
        normalized = normalize_single_head(sigma)
        db = Instance.of([fact("R", "a", "b")])
        original = chase(db, sigma).instance
        split = chase(db, normalized).instance
        q = boolean_cq([atom("P", x), atom("S", x, y)])
        assert q.evaluate(original) == q.evaluate(split)

    def test_split_is_guarded_when_input_is(self):
        from repro.fragments import is_guarded

        sigma = parse_tgds("R(x, y) -> P(y), S(y, w)")
        assert is_guarded(normalize_single_head(sigma))
