"""Unit tests for instances and databases."""

import pytest

from repro.core.atoms import atom, fact
from repro.core.instance import Instance, freeze_atoms
from repro.core.terms import Constant, Null, Variable

x, y = Variable("x"), Variable("y")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestInstanceBasics:
    def test_of_and_domain(self):
        inst = Instance.of([fact("R", "a", "b"), fact("P", "b")])
        assert inst.domain() == {a, b}
        assert len(inst) == 2

    def test_rejects_variables(self):
        with pytest.raises(ValueError):
            Instance.of([atom("R", x, a)])

    def test_accepts_nulls(self):
        inst = Instance.of([atom("R", Null(0), a)])
        assert inst.nulls() == {Null(0)}
        assert not inst.is_database()

    def test_is_database(self):
        assert Instance.of([fact("R", "a")]).is_database()

    def test_empty(self):
        assert len(Instance.empty()) == 0
        assert Instance.empty().is_database()

    def test_union_and_subset(self):
        i1 = Instance.of([fact("R", "a")])
        i2 = Instance.of([fact("P", "b")])
        u = i1 | i2
        assert i1 <= u and i2 <= u
        assert len(u) == 2

    def test_schema_inference(self):
        inst = Instance.of([fact("R", "a", "b"), fact("P", "a")])
        assert inst.schema().arity("R") == 2

    def test_restrict_to_predicates(self):
        inst = Instance.of([fact("R", "a", "b"), fact("P", "a")])
        assert inst.restrict_to_predicates(["P"]).predicates() == {"P"}

    def test_induced_by(self):
        inst = Instance.of([fact("R", "a", "b"), fact("P", "a"), fact("P", "c")])
        induced = inst.induced_by([a, b])
        assert fact("R", "a", "b") in induced
        assert fact("P", "a") in induced
        assert fact("P", "c") not in induced

    def test_rename(self):
        inst = Instance.of([fact("R", "a", "b")])
        renamed = inst.rename({a: c})
        assert fact("R", "c", "b") in renamed

    def test_freeze_nulls(self):
        inst = Instance.of([atom("R", Null(3), a)])
        frozen = inst.freeze_nulls()
        assert frozen.is_database()
        assert frozen.domain() == {Constant("c_n3"), a}

    def test_deterministic_iteration(self):
        inst = Instance.of([fact("R", "b"), fact("R", "a"), fact("P", "z")])
        assert [str(at) for at in inst] == ["P(z)", "R(a)", "R(b)"]


class TestComponents:
    def test_single_component(self):
        inst = Instance.of([fact("R", "a", "b"), fact("R", "b", "c")])
        assert inst.is_connected()
        assert len(inst.components()) == 1

    def test_two_components(self):
        inst = Instance.of([fact("R", "a", "b"), fact("P", "c")])
        comps = inst.components()
        assert len(comps) == 2
        assert not inst.is_connected()
        total = Instance.empty()
        for comp in comps:
            total = total | comp
        assert total == inst

    def test_components_reject_zero_ary(self):
        inst = Instance.of([atom("Goal")])
        with pytest.raises(ValueError):
            inst.components()

    def test_component_atoms_are_induced(self):
        inst = Instance.of(
            [fact("R", "a", "b"), fact("P", "b"), fact("R", "c", "d")]
        )
        comps = {frozenset(map(str, comp)) for comp in inst.components()}
        assert frozenset({"R(a, b)", "P(b)"}) in comps
        assert frozenset({"R(c, d)"}) in comps

    def test_empty_instance_is_connected(self):
        assert Instance.empty().is_connected()


class TestFreezeAtoms:
    def test_freeze_variables(self):
        db, mapping = freeze_atoms([atom("R", x, y), atom("P", x)])
        assert db.is_database()
        assert mapping[x] == Constant("c_x")
        assert fact("R", "c_x", "c_y") in db

    def test_freeze_preserves_constants(self):
        db, mapping = freeze_atoms([atom("R", x, a)])
        assert fact("R", "c_x", "a") in db
        assert a not in mapping
