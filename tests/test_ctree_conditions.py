"""Per-condition tests for the Γ_{S,l} consistency checker (Lemma 41).

Each test violates exactly one of the five conditions and asserts that
both the direct checker and the consistency automaton flag it.
"""

import pytest

from repro.automata import consistency_automaton
from repro.core.parser import parse_database
from repro.core.terms import Constant
from repro.trees import (
    LabeledTree,
    consistency_violations,
    encode_ctree,
    is_consistent,
)
from repro.trees.ctree import Alphabet, TreeLabel


@pytest.fixture
def encoded():
    db = parse_database("R(a, b). R(b, c). R(b, d). P(d)")
    core = db.induced_by({Constant("a"), Constant("b")})
    return encode_ctree(db, core)


def _violates(tree, alphabet, condition: str) -> bool:
    violations = consistency_violations(tree, alphabet)
    return any(v.startswith(condition) for v in violations)


class TestConditions:
    def test_baseline_consistent(self, encoded):
        tree, alphabet = encoded
        assert is_consistent(tree, alphabet)
        assert consistency_automaton(alphabet).accepts(tree)

    def test_condition1_name_budget(self, encoded):
        tree, alphabet = encoded
        # Flood a non-root node with every name: exceeds ar(S) = 2.
        all_names = frozenset(alphabet.all_names)

        def flood(node, label):
            if node == (1,):
                return TreeLabel(
                    all_names,
                    frozenset(alphabet.core_names),
                    label.atoms,
                )
            return label

        tampered = tree.relabel(flood)
        assert _violates(tampered, alphabet, "(1)")
        assert not consistency_automaton(alphabet).accepts(tampered)

    def test_condition1_root_uses_core_names_only(self, encoded):
        tree, alphabet = encoded
        transient = alphabet.transient_names[0]

        def pollute_root(node, label):
            if node == ():
                return TreeLabel(
                    label.names | {transient}, label.core_names, label.atoms
                )
            return label

        tampered = tree.relabel(pollute_root)
        assert _violates(tampered, alphabet, "(1)")
        assert not consistency_automaton(alphabet).accepts(tampered)

    def test_condition2_atom_over_absent_name(self, encoded):
        tree, alphabet = encoded
        ghost = alphabet.transient_names[-1]

        def ghost_atom(node, label):
            if node != () and label.names:
                name = sorted(label.names)[0]
                return TreeLabel(
                    label.names,
                    label.core_names,
                    label.atoms | {("R", (name, ghost))},
                )
            return label

        tampered = tree.relabel(ghost_atom)
        assert _violates(tampered, alphabet, "(2)")
        assert not consistency_automaton(alphabet).accepts(tampered)

    def test_condition3_core_flag_mismatch(self, encoded):
        tree, alphabet = encoded

        def strip_flags(node, label):
            return TreeLabel(label.names, frozenset(), label.atoms)

        tampered = tree.relabel(strip_flags)
        assert _violates(tampered, alphabet, "(3)")
        assert not consistency_automaton(alphabet).accepts(tampered)

    def test_condition4_core_name_gap_on_root_path(self, encoded):
        tree, alphabet = encoded
        # Inject a deep node carrying a core name whose parent lacks it.
        core_name = alphabet.core_names[0]
        deep = max(tree.nodes(), key=len)
        labels = dict(tree.labels)
        old = labels[deep]
        parent_label = labels[deep[:-1]]
        if core_name in parent_label.names:
            pytest.skip("pick a different gap node")
        labels[deep] = TreeLabel(
            old.names | {core_name},
            old.core_names | {core_name},
            old.atoms,
        )
        tampered = LabeledTree(labels)
        assert _violates(tampered, alphabet, "(4)")
        assert not consistency_automaton(alphabet).accepts(tampered)

    def test_condition5_unguarded_node(self, encoded):
        tree, alphabet = encoded

        def drop_atoms(node, label):
            if node == ():
                return label
            return TreeLabel(label.names, label.core_names, frozenset())

        tampered = tree.relabel(drop_atoms)
        assert _violates(tampered, alphabet, "(5)")
        assert not consistency_automaton(alphabet).accepts(tampered)

    def test_automaton_agrees_on_random_tamperings(self, encoded):
        tree, alphabet = encoded
        auto = consistency_automaton(alphabet)
        # Flip one label component at a time; checker and automaton agree.
        for node in tree.nodes():
            labels = dict(tree.labels)
            old = labels[node]
            if not old.atoms:
                continue
            labels[node] = TreeLabel(old.names, old.core_names, frozenset())
            tampered = LabeledTree(labels)
            assert auto.accepts(tampered) == is_consistent(tampered, alphabet)
