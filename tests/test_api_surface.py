"""Coverage sweep for smaller public-API surfaces.

Each test exercises behaviour not covered elsewhere: result-object
conveniences, chase levels, the tree-enumeration counter, forest fallbacks,
and string renderings (which the CLI and examples rely on).
"""

import pytest

from repro import OMQ, Schema, parse_cq, parse_database, parse_tgds
from repro.automata import TWAPA, Top, count_accepted_trees, diamond, disj
from repro.chase import GuardedChaseForest, chase
from repro.core.atoms import atom, fact
from repro.core.instance import Instance
from repro.core.terms import Constant, Variable
from repro.evaluation import EvaluationResult, evaluate_omq
from repro.trees import LabeledTree


class TestEvaluationResult:
    def test_contains_and_is_empty(self):
        q = OMQ(Schema.of(A=1), (), parse_cq("q(x) :- A(x)"))
        result = evaluate_omq(q, parse_database("A(a)"))
        assert (Constant("a"),) in result
        assert (Constant("b"),) not in result
        assert not result.is_empty()
        empty = evaluate_omq(q, Instance.empty())
        assert empty.is_empty()


class TestChaseLevels:
    def test_level_of_atom(self):
        sigma = parse_tgds("P(x) -> R(x, w)\nR(x, y) -> S(y, w)")
        result = chase(parse_database("P(a)"), sigma)
        base = fact("P", "a")
        assert result.level_of_atom(base) == 0
        derived = [a for a in result.instance if a.predicate == "S"]
        assert result.level_of_atom(derived[0]) == 2

    def test_log_records_rule_indices(self):
        sigma = parse_tgds("P(x) -> Q(x)")
        result = chase(parse_database("P(a)"), sigma)
        assert [s.tgd_index for s in result.log] == [0]
        assert result.log[0].added == (fact("Q", "a"),)


class TestForestFallback:
    def test_unguarded_rule_uses_first_body_atom(self):
        # The forest is documented to fall back to the first body atom for
        # non-guarded rules (provenance DAG, not paper-exact).
        sigma = parse_tgds("A(x), B(y) -> C(x, y)")
        db = parse_database("A(a). B(b)")
        forest = GuardedChaseForest.build(db, sigma)
        derived = fact("C", "a", "b")
        assert forest.depth_of(derived) == 1


class TestTreeEnumeration:
    def test_count_accepted_trees(self):
        def delta(state, label):
            if label == "hit":
                return Top()
            return disj([diamond("*", "seek")])

        auto = TWAPA(frozenset({"seek"}), delta, "seek", {})
        # Depth ≤ 1, branching ≤ 1, labels {hit, miss}: trees are a single
        # node (2 labelings) or a 2-chain (4 labelings).  Accepted: root hit
        # (3 of them: hit, hit-hit, hit-miss... root=hit accepts regardless
        # of child: 1 + 2 = 3) plus miss-hit (1) = 4.
        n = count_accepted_trees(
            auto, ["hit", "miss"], max_depth=1, max_branching=1
        )
        assert n == 4


class TestStringRenderings:
    def test_tgd_str_shows_existentials(self):
        rule = parse_tgds("P(x) -> R(x, w)")[0]
        text = str(rule)
        assert "∃" in text and "R(" in text

    def test_fact_tgd_str(self):
        rule = parse_tgds("-> Bit(0)")[0]
        assert str(rule).startswith("⊤")

    def test_omq_str(self):
        q = OMQ(Schema.of(A=1), parse_tgds("A(x) -> B(x)"), parse_cq("q(x) :- B(x)"))
        text = str(q)
        assert "A/1" in text and "B(" in text

    def test_instance_str_sorted(self):
        inst = parse_database("B(b). A(a)")
        assert str(inst) == "{A(a), B(b)}"

    def test_containment_result_str(self):
        from repro import contains

        q1 = OMQ(Schema.of(A=1), (), parse_cq("q(x) :- A(x)"))
        q2 = OMQ(Schema.of(A=1), (), parse_cq("q(x) :- A(x), Z(x)"))
        text = str(contains(q2, q1))
        assert "contained" in text

    def test_ucq_str_empty(self):
        from repro.core.queries import UCQ

        assert str(UCQ(())) == "⊥"


class TestSchemaDunder:
    def test_iteration_and_len(self):
        s = Schema.of(B=1, A=2)
        assert list(s) == ["A", "B"]
        assert len(s) == 2

    def test_or_operator(self):
        s = Schema.of(A=1) | Schema.of(B=2)
        assert len(s) == 2


class TestInstanceAlgebraEdges:
    def test_le_operator(self):
        small = parse_database("A(a)")
        big = parse_database("A(a). B(b)")
        assert small <= big
        assert not (big <= small)

    def test_contains_operator(self):
        db = parse_database("A(a)")
        assert fact("A", "a") in db
        assert fact("A", "b") not in db

    def test_restrict_empty(self):
        db = parse_database("A(a). B(b)")
        assert len(db.restrict_to_predicates([])) == 0
