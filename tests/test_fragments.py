"""Unit tests for the fragment classifiers, including Figure 1."""

import pytest

from repro.core.omq import TGDClass
from repro.core.parser import parse_tgds
from repro.core.terms import Variable
from repro.fragments import (
    best_class,
    classify,
    find_predicate_cycle,
    guard_of,
    is_full,
    is_guarded,
    is_linear,
    is_lossless,
    is_non_recursive,
    is_sticky,
    is_weakly_acyclic,
    marked_variables,
    predicate_depth,
    predicate_levels,
    sticky_violations,
    stratification,
    uses_only_low_arity,
)


class TestGuardedLinear:
    def test_linear_is_guarded(self):
        sigma = parse_tgds("P(x) -> R(x, w)")
        assert is_linear(sigma)
        assert is_guarded(sigma)

    def test_guard_detection(self):
        sigma = parse_tgds("R(x, y, z), P(x) -> S(x)")
        assert is_guarded(sigma)
        assert guard_of(sigma[0]).predicate == "R"

    def test_unguarded(self):
        sigma = parse_tgds("R(x, y), P(y, z) -> S(x, z)")
        assert not is_guarded(sigma)
        assert guard_of(sigma[0]) is None

    def test_fact_tgd_vacuously_guarded(self):
        sigma = parse_tgds("-> P(x)")
        assert is_guarded(sigma) and is_linear(sigma)

    def test_inclusion_dependencies_are_linear(self):
        sigma = parse_tgds("Emp(x, y) -> Dept(y, w)")
        assert is_linear(sigma)

    def test_low_arity_check(self):
        assert uses_only_low_arity(parse_tgds("R(x, y) -> P(y)"))
        assert not uses_only_low_arity(parse_tgds("T(x, y, z) -> P(y)"))


class TestNonRecursive:
    def test_acyclic(self):
        sigma = parse_tgds("A(x) -> B(x)\nB(x) -> C(x)")
        assert is_non_recursive(sigma)
        assert find_predicate_cycle(sigma) is None

    def test_direct_recursion(self):
        sigma = parse_tgds("E(x, y), E(y, z) -> E(x, z)")
        assert not is_non_recursive(sigma)
        cycle = find_predicate_cycle(sigma)
        assert cycle[0] == cycle[-1] == "E"

    def test_indirect_recursion(self):
        sigma = parse_tgds("A(x) -> B(x)\nB(x) -> A(x)")
        assert not is_non_recursive(sigma)

    def test_predicate_levels(self):
        sigma = parse_tgds("A(x) -> B(x)\nB(x) -> C(x)")
        mu = predicate_levels(sigma)
        assert mu["A"] < mu["B"] < mu["C"]

    def test_levels_undefined_for_recursive(self):
        sigma = parse_tgds("A(x) -> A(x)")
        with pytest.raises(ValueError):
            predicate_levels(sigma)

    def test_stratification(self):
        sigma = parse_tgds("A(x) -> B(x)\nB(x) -> C(x)\nA(x) -> D(x)")
        strata = stratification(sigma)
        flattened = [t for s in strata for t in s]
        assert sorted(map(str, flattened)) == sorted(map(str, sigma))
        # Every tgd's body predicates sit strictly below its head predicates.
        mu = predicate_levels(sigma)
        for t in sigma:
            for b in t.body_predicates():
                for h in t.head_predicates():
                    assert mu[b] < mu[h]

    def test_predicate_depth(self):
        sigma = parse_tgds("A(x) -> B(x)\nB(x) -> C(x)\nC(x) -> D(x)")
        assert predicate_depth(sigma) == 3

    def test_multi_head_merging(self):
        sigma = parse_tgds("A(x) -> P(x), Q(x)")
        mu = predicate_levels(sigma)
        assert mu["P"] == mu["Q"]


class TestSticky:
    def test_figure1_left_is_sticky(self, figure1_sticky):
        assert is_sticky(figure1_sticky)

    def test_figure1_right_is_not_sticky(self, figure1_non_sticky):
        assert not is_sticky(figure1_non_sticky)

    def test_figure1_marking(self, figure1_non_sticky):
        # In the right-hand set, S(y, w) drops x and z from the first tgd,
        # and the marking propagates into the second tgd making its join
        # variable y marked — the violation.
        violations = sticky_violations(figure1_non_sticky)
        assert len(violations) == 1
        index, var = violations[0]
        assert index == 1
        assert var.name.startswith("y")

    def test_base_marking(self):
        # x missing from the head is marked.
        sigma = parse_tgds("R(x, y) -> P(y)")
        marks = marked_variables(sigma)
        assert any(v.name.startswith("x") for _, v in marks)
        assert not any(v.name.startswith("y") for _, v in marks)

    def test_marked_join_variable_breaks_stickiness(self):
        sigma = parse_tgds("R(x, y), P(y, z) -> S(x, z)")
        assert not is_sticky(sigma)

    def test_unmarked_join_variable_is_fine(self):
        sigma = parse_tgds("R(x, y), P(y, z) -> S(x, y, z)")
        assert is_sticky(sigma)

    def test_lossless_tgds_are_sticky(self):
        sigma = parse_tgds("R(x, y) -> S(x, y, w)\nS(x, y, z) -> T(x, y, z)")
        assert is_lossless(sigma)
        assert is_sticky(sigma)

    def test_propagation_through_variables(self):
        sigma = parse_tgds(
            """
            R(x, y) -> P(y)
            S(x) -> R(x, 0)
            """
        )
        marks = marked_variables(sigma)
        # The second tgd's x is marked by propagating through R[0] (where
        # the first tgd's x, marked by the base step, occurs).
        assert any(v.name.startswith("x") and i == 1 for i, v in marks)

    def test_constant_blocks_propagation(self):
        # β holding a constant at the checked position blocks the marking:
        # lossless-style padding with constants must not mark (the reading
        # Proposition 35 requires).
        sigma = parse_tgds(
            """
            A(x, z), B(x) -> R(x)
            R(0) -> Q(x, w)
            """
        )
        marks = marked_variables(sigma)
        assert not any(v.name.startswith("x") and i == 0 for i, v in marks)
        assert is_sticky(sigma)

    def test_empty_set_is_sticky(self):
        assert is_sticky([])


class TestWeakAcyclicity:
    def test_full_sets_are_weakly_acyclic(self):
        sigma = parse_tgds("E(x, y), E(y, z) -> E(x, z)")
        assert is_weakly_acyclic(sigma)

    def test_null_recycling_detected(self):
        sigma = parse_tgds("R(x, y) -> R(y, w)")
        assert not is_weakly_acyclic(sigma)

    def test_terminating_existential_chain(self):
        sigma = parse_tgds("A(x) -> B(x, w)\nB(x, y) -> C(y)")
        assert is_weakly_acyclic(sigma)


class TestClassify:
    def test_empty_set(self):
        classes = classify([])
        assert TGDClass.EMPTY in classes
        assert best_class([]) is TGDClass.EMPTY

    def test_linear_preferred(self):
        sigma = parse_tgds("P(x) -> R(x, w)\nR(x, y) -> P(y)")
        assert best_class(sigma) is TGDClass.LINEAR

    def test_classification_is_multi_label(self):
        sigma = parse_tgds("A(x) -> B(x)")
        classes = classify(sigma)
        assert {
            TGDClass.LINEAR,
            TGDClass.GUARDED,
            TGDClass.NON_RECURSIVE,
            TGDClass.STICKY,
            TGDClass.FULL,
            TGDClass.FULL_NON_RECURSIVE,
        } <= classes

    def test_guarded_only(self):
        # Guarded, recursive, non-sticky, not linear.
        sigma = parse_tgds("R(x, y), P(y) -> R(y, x)\nR(x, y), S(x, y) -> P(x)")
        assert best_class(sigma) is TGDClass.GUARDED

    def test_full_recursive_datalog(self):
        sigma = parse_tgds("E(x, y), E(y, z) -> E(x, z)")
        assert is_full(sigma)
        assert best_class(sigma) is TGDClass.FULL
