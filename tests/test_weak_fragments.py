"""Tests for the weak fragment classifiers (Section 3.1's Prop 8 boundary).

The paper rules the weak relaxations out of the containment study because
they extend full tgds (Proposition 8: Datalog containment is undecidable);
the classifiers still matter for evaluation-strategy selection and for
delimiting where the library's exact procedures stop.
"""

from repro.core.parser import parse_tgds
from repro.fragments import (
    affected_positions,
    infinite_rank_positions,
    is_guarded,
    is_sticky,
    is_weakly_acyclic,
    is_weakly_guarded,
    is_weakly_sticky,
)


class TestAffectedPositions:
    def test_existential_positions_are_affected(self):
        sigma = parse_tgds("P(x) -> R(x, w)")
        assert ("R", 1) in affected_positions(sigma)
        assert ("R", 0) not in affected_positions(sigma)

    def test_propagation_through_frontier(self):
        sigma = parse_tgds("P(x) -> R(x, w)\nR(x, y) -> S(y)")
        affected = affected_positions(sigma)
        assert ("S", 0) in affected

    def test_mixed_occurrence_blocks_propagation(self):
        # y also occurs at the unaffected P-position, so S[0] stays clean.
        sigma = parse_tgds("P(x) -> R(x, w)\nR(x, y), P(y) -> S(y)")
        affected = affected_positions(sigma)
        assert ("S", 0) not in affected

    def test_full_sets_have_no_affected_positions(self):
        sigma = parse_tgds("E(x, y), E(y, z) -> E(x, z)")
        assert affected_positions(sigma) == set()


class TestWeaklyGuarded:
    def test_guarded_implies_weakly_guarded(self):
        sigma = parse_tgds("R(x, y), P(x) -> Q(y)")
        assert is_guarded(sigma)
        assert is_weakly_guarded(sigma)

    def test_full_unguarded_is_weakly_guarded(self):
        # No nulls ever arise, so nothing needs guarding.
        sigma = parse_tgds("A(x), B(y) -> C(x, y)")
        assert not is_guarded(sigma)
        assert is_weakly_guarded(sigma)

    def test_single_harmful_variable_is_guarded_by_its_atom(self):
        sigma = parse_tgds("P(x) -> R(x, w)\nR(x, y), A(z) -> S(y, z)")
        assert not is_guarded(sigma)
        assert is_weakly_guarded(sigma)

    def test_two_unguardable_harmful_variables(self):
        sigma = parse_tgds(
            """
            P(x) -> R(x, w)
            Q(x) -> T(x, w)
            R(x, y), T(z, u) -> S(y, u)
            """
        )
        assert not is_weakly_guarded(sigma)


class TestWeaklySticky:
    def test_sticky_implies_weakly_sticky(self, figure1_sticky):
        assert is_weakly_sticky(figure1_sticky)

    def test_full_sets_are_weakly_sticky(self):
        sigma = parse_tgds("E(x, y), E(y, z) -> E(x, z)")
        assert not is_sticky(sigma)
        assert is_weakly_sticky(sigma)
        assert infinite_rank_positions(sigma) == set()

    def test_weakly_acyclic_sets_are_weakly_sticky(self):
        sigma = parse_tgds(
            """
            A(x) -> B(x, w)
            B(x, y), B(y, z) -> C(x, z)
            C(x, y) -> D(y)
            """
        )
        assert is_weakly_acyclic(sigma)
        assert is_weakly_sticky(sigma)

    def test_marked_join_at_infinite_rank_violates(self):
        # A null-recycling loop feeds the join variable: every occurrence
        # of the marked join variable sits at an infinite-rank position.
        sigma = parse_tgds(
            """
            R(x, y) -> R(y, w)
            R(x, y), R(y, z) -> P(x)
            """
        )
        assert not is_weakly_acyclic(sigma)
        assert not is_sticky(sigma)
        assert not is_weakly_sticky(sigma)

    def test_infinite_rank_positions_detected(self):
        sigma = parse_tgds("R(x, y) -> R(y, w)")
        infinite = infinite_rank_positions(sigma)
        assert ("R", 0) in infinite and ("R", 1) in infinite
