"""Unit tests for most general unifiers."""

from repro.core.atoms import atom
from repro.core.terms import Constant, Variable
from repro.rewriting.unification import apply_substitution, mgu, unifies

x, y, z, u, v = (Variable(n) for n in "xyzuv")
a, b = Constant("a"), Constant("b")


class TestMGU:
    def test_simple_unification(self):
        sub = mgu([atom("R", x, y), atom("R", u, v)])
        assert sub is not None
        assert atom("R", x, y).substitute(sub) == atom("R", u, v).substitute(sub)

    def test_predicate_mismatch(self):
        assert mgu([atom("R", x), atom("P", x)]) is None

    def test_arity_mismatch(self):
        assert mgu([atom("R", x), atom("R", x, y)]) is None

    def test_constant_clash(self):
        assert mgu([atom("R", a), atom("R", b)]) is None

    def test_variable_to_constant(self):
        sub = mgu([atom("R", x), atom("R", a)])
        assert sub[x] == a

    def test_transitive_merging(self):
        sub = mgu([atom("R", x, x), atom("R", y, a)])
        assert sub[x] == a and sub[y] == a

    def test_transitive_clash(self):
        assert mgu([atom("R", x, x), atom("R", a, b)]) is None

    def test_empty_set(self):
        assert mgu([]) == {}

    def test_single_atom(self):
        # A single atom unifies with itself; the MGU is the identity (the
        # returned map may list identity entries explicitly).
        sub = mgu([atom("R", x, y)])
        assert atom("R", x, y).substitute(sub) == atom("R", x, y)

    def test_three_atoms(self):
        sub = mgu([atom("R", x, y), atom("R", y, z), atom("R", z, a)])
        assert all(sub[v_] == a for v_ in (x, y, z))

    def test_rank_controls_representative(self):
        sub = mgu(
            [atom("R", x), atom("R", u)],
            rank=lambda t: (0,) if t == u else (1,),
        )
        assert sub[x] == u

    def test_unifies_predicate(self):
        assert unifies([atom("R", x, y), atom("R", y, x)])
        assert not unifies([atom("R", a, b), atom("R", b, a), atom("R", x, x)])

    def test_apply_substitution(self):
        out = apply_substitution([atom("R", x, y)], {x: a})
        assert out == (atom("R", a, y),)
