"""Determinism tests: identical inputs must give bit-identical outputs.

Reproducibility is a design requirement (DESIGN.md): the chase, XRewrite,
and the containment procedures are deterministic — no randomness, FIFO
orders, sorted tie-breaks.
"""

from repro import OMQ, Schema, contains, parse_cq, parse_database, parse_tgds
from repro.chase import chase
from repro.rewriting.xrewrite import xrewrite_cq


SIGMA_TEXT = """
P(x) -> R(x, w)
R(x, y) -> P(y)
T(x) -> P(x)
"""


class TestChaseDeterminism:
    def test_identical_instances(self):
        sigma = parse_tgds(SIGMA_TEXT)
        db = parse_database("T(a). T(b). P(c)")
        r1 = chase(db, sigma, max_depth=3)
        r2 = chase(db, sigma, max_depth=3)
        assert r1.instance == r2.instance
        assert r1.steps == r2.steps
        assert [s.tgd_index for s in r1.log] == [s.tgd_index for s in r2.log]

    def test_null_ids_are_stable(self):
        sigma = parse_tgds("P(x) -> R(x, w)")
        db = parse_database("P(a). P(b)")
        n1 = sorted(n.ident for n in chase(db, sigma).instance.nulls())
        n2 = sorted(n.ident for n in chase(db, sigma).instance.nulls())
        assert n1 == n2


class TestRewritingDeterminism:
    def test_identical_rewritings(self):
        sigma = parse_tgds(SIGMA_TEXT)
        schema = Schema.of(P=1, T=1)
        query = parse_cq("q(x) :- R(x, y), P(y)")
        r1 = xrewrite_cq(schema, sigma, query)
        r2 = xrewrite_cq(schema, sigma, query)
        assert [str(d) for d in r1.rewriting.disjuncts] == [
            str(d) for d in r2.rewriting.disjuncts
        ]
        assert r1.stats.rewriting_steps == r2.stats.rewriting_steps


class TestContainmentDeterminism:
    def test_identical_witnesses(self):
        schema = Schema.of(P=1, T=1)
        sigma = parse_tgds(SIGMA_TEXT)
        q1 = OMQ(schema, sigma, parse_cq("q(x) :- P(x)"))
        q2 = OMQ(schema, sigma, parse_cq("q(x) :- T(x)"))
        r1 = contains(q1, q2)
        r2 = contains(q1, q2)
        assert r1.verdict == r2.verdict
        assert str(r1.witness.database) == str(r2.witness.database)
        assert r1.witness.answer == r2.witness.answer
