"""Unit tests for CQs and UCQs."""

import pytest

from repro.core.atoms import atom, fact
from repro.core.instance import Instance
from repro.core.queries import CQ, UCQ, QueryError, boolean_cq
from repro.core.terms import Constant, Variable

x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def _db(*facts_):
    return Instance.of(facts_)


class TestCQStructure:
    def test_safety(self):
        with pytest.raises(QueryError):
            CQ((x,), (atom("R", y, z),))

    def test_head_constant_allowed(self):
        q = CQ((a,), (atom("R", a, y),))
        assert q.arity == 1

    def test_free_and_existential_variables(self):
        q = CQ((x,), (atom("R", x, y), atom("P", y)))
        assert q.free_variables() == (x,)
        assert q.existential_variables() == {y}

    def test_boolean(self):
        q = boolean_cq([atom("R", x, y)])
        assert q.is_boolean()

    def test_shared_variables(self):
        q = CQ((x,), (atom("R", x, y), atom("P", y), atom("S", z, z)))
        # x free, y in two atoms, z twice within one atom.
        assert q.shared_variables() == {x, y, z}

    def test_variables_in_multiple_atoms(self):
        q = CQ((), (atom("R", x, y), atom("P", y), atom("S", z, z)))
        assert q.variables_in_multiple_atoms() == {y}

    def test_size(self):
        q = CQ((), (atom("R", x, y), atom("P", y)))
        assert q.size() == 2


class TestCQEvaluation:
    def test_basic_evaluation(self):
        q = CQ((x,), (atom("R", x, y), atom("P", y)))
        db = _db(fact("R", "a", "b"), fact("P", "b"), fact("R", "c", "d"))
        assert q.evaluate(db) == {(a,)}

    def test_boolean_evaluation(self):
        q = boolean_cq([atom("R", x, x)])
        assert q.evaluate(_db(fact("R", "a", "a"))) == {()}
        assert q.evaluate(_db(fact("R", "a", "b"))) == set()

    def test_holds_in(self):
        q = CQ((x,), (atom("R", x, y),))
        db = _db(fact("R", "a", "b"))
        assert q.holds_in(db, (a,))
        assert not q.holds_in(db, (b,))

    def test_holds_in_arity_check(self):
        q = CQ((x,), (atom("R", x, y),))
        with pytest.raises(QueryError):
            q.holds_in(_db(), (a, b))

    def test_repeated_head_variable(self):
        q = CQ((x, x), (atom("R", x, y),))
        assert q.evaluate(_db(fact("R", "a", "b"))) == {(a, a)}

    def test_constants_only_filter(self):
        from repro.core.terms import Null

        q = CQ((x,), (atom("R", x),))
        inst = Instance.of([atom("R", Null(0)), fact("R", "a")])
        assert q.evaluate(inst) == {(a,)}
        assert q.evaluate(inst, constants_only=False) == {(a,), (Null(0),)}

    def test_monotone_under_extension(self):
        q = CQ((x,), (atom("R", x, y),))
        small = _db(fact("R", "a", "b"))
        big = small | _db(fact("R", "c", "d"))
        assert q.evaluate(small) <= q.evaluate(big)

    def test_empty_body_boolean_tautology(self):
        q = CQ((), ())
        assert q.evaluate(Instance.empty()) == {()}


class TestCanonicalDatabase:
    def test_freezing(self):
        q = CQ((x,), (atom("R", x, y),))
        db, canonical = q.canonical_database()
        assert canonical == (Constant("c_x"),)
        assert fact("R", "c_x", "c_y") in db

    def test_canonical_tuple_is_answer(self):
        q = CQ((x,), (atom("R", x, y), atom("P", y)))
        db, canonical = q.canonical_database()
        assert q.holds_in(db, canonical)


class TestComponents:
    def test_connected_query_single_component(self):
        q = CQ((x,), (atom("R", x, y), atom("P", y)))
        assert len(q.components()) == 1

    def test_disconnected_query(self):
        q = CQ((), (atom("R", x, y), atom("P", z)))
        comps = q.components()
        assert len(comps) == 2
        sizes = sorted(c.size() for c in comps)
        assert sizes == [1, 1]

    def test_component_heads_restricted(self):
        q = CQ((x, z), (atom("R", x, y), atom("P", z)))
        comps = {c.head for c in q.components()}
        assert (x,) in comps and (z,) in comps

    def test_zero_ary_rejected(self):
        q = CQ((), (atom("Goal"),))
        with pytest.raises(QueryError):
            q.components()


class TestIsomorphism:
    def test_renaming_is_isomorphic(self):
        q1 = CQ((x,), (atom("R", x, y),))
        q2 = CQ((z,), (atom("R", z, w),))
        assert q1.is_isomorphic_to(q2)

    def test_different_shape_not_isomorphic(self):
        q1 = CQ((), (atom("R", x, y), atom("R", y, z)))
        q2 = CQ((), (atom("R", x, y), atom("R", x, z)))
        assert not q1.is_isomorphic_to(q2)

    def test_equivalent_but_not_isomorphic(self):
        q1 = CQ((), (atom("R", x, y),))
        q2 = CQ((), (atom("R", x, y), atom("R", x, z)))
        assert not q1.is_isomorphic_to(q2)

    def test_head_order_matters(self):
        q1 = CQ((x, y), (atom("R", x, y),))
        q2 = CQ((y, x), (atom("R", x, y),))
        assert not q1.is_isomorphic_to(q2)

    def test_constants_must_align(self):
        q1 = CQ((), (atom("R", x, a),))
        q2 = CQ((), (atom("R", x, b),))
        assert not q1.is_isomorphic_to(q2)


class TestUCQ:
    def test_mixed_arity_rejected(self):
        with pytest.raises(QueryError):
            UCQ((CQ((x,), (atom("R", x),)), boolean_cq([atom("P", y)])))

    def test_evaluation_is_union(self):
        q = UCQ.of(
            CQ((x,), (atom("R", x),)),
            CQ((x,), (atom("P", x),)),
        )
        db = _db(fact("R", "a"), fact("P", "b"))
        assert q.evaluate(db) == {(a,), (b,)}

    def test_empty_ucq(self):
        q = UCQ(())
        assert q.is_empty()
        assert q.evaluate(_db(fact("R", "a"))) == set()

    def test_max_disjunct_size(self):
        q = UCQ.of(
            boolean_cq([atom("R", x, y)]),
            boolean_cq([atom("R", x, y), atom("P", y)]),
        )
        assert q.max_disjunct_size() == 2

    def test_deduplicate(self):
        q = UCQ.of(
            CQ((x,), (atom("R", x, y),)),
            CQ((z,), (atom("R", z, w),)),
        )
        assert len(q.deduplicate()) == 1

    def test_minimize_drops_subsumed(self):
        q = UCQ.of(
            CQ((x,), (atom("R", x, y),)),
            CQ((x,), (atom("R", x, y), atom("P", y))),
        )
        minimized = q.minimize()
        assert len(minimized) == 1
        assert minimized.disjuncts[0].size() == 1
