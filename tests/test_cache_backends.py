"""Backend-conformance suite for the pluggable result-cache backends.

One behavioural contract, three implementations: every test here runs
against ``memory`` (no byte backend at all), ``sqlite`` (single WAL
file), and ``sharded`` (fanned-out directory of atomic files).  Whatever
a backend cannot support it must *degrade* from, never crash: corruption
costs a miss, contention costs a transient error, and the memory layer
keeps serving throughout.

sqlite-only regressions (WAL pragma, lock-degrade semantics, stale meta
stamps) stay in ``test_engine_cache.py``; this module is the part of the
contract all backends share.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.containment.result import ContainmentResult, Verdict, contained
from repro.engine import cache as cache_module
from repro.engine.cache import ResultCache, available_backends

BACKEND_NAMES = ("memory", "sqlite", "sharded")
PERSISTENT_BACKENDS = ("sqlite", "sharded")


def make_cache(backend, tmp_path, **kwargs):
    return ResultCache(str(tmp_path), backend=backend, **kwargs)


@pytest.fixture(params=BACKEND_NAMES)
def any_backend(request):
    return request.param


@pytest.fixture(params=PERSISTENT_BACKENDS)
def disk_backend(request):
    return request.param


class TestConformance:
    def test_registry_exposes_all_three(self):
        assert set(BACKEND_NAMES) <= set(available_backends())

    def test_roundtrip_hit_and_miss(self, any_backend, tmp_path):
        cache = make_cache(any_backend, tmp_path)
        assert cache.get("k") == (False, None)
        cache.put("k", {"answer": 42})
        assert cache.get("k") == (True, {"answer": 42})
        assert cache.stats()["backend"] == any_backend
        cache.close()

    def test_lru_eviction_in_memory_layer(self, any_backend, tmp_path):
        cache = make_cache(any_backend, tmp_path, memory_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", 3)
        stats = cache.stats()
        assert stats["memory_entries"] == 2
        # Evicted keys remain reachable iff the backend persists bytes.
        found, value = cache.get("b")
        if cache.persistent:
            assert (found, value) == (True, 2)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)
        cache.close()

    def test_persistence_across_reopen(self, any_backend, tmp_path):
        c1 = make_cache(any_backend, tmp_path)
        persistent = c1.persistent
        assert persistent == (any_backend in PERSISTENT_BACKENDS)
        c1.put("k", contained("test-method", "detail"))
        c1.close()
        c2 = make_cache(any_backend, tmp_path)
        found, value = c2.get("k")
        if persistent:
            assert found
            assert isinstance(value, ContainmentResult)
            assert value.verdict is Verdict.CONTAINED
        else:
            assert not found
        c2.close()

    def test_clear_empties_both_layers(self, any_backend, tmp_path):
        cache = make_cache(any_backend, tmp_path)
        cache.put("k", "v")
        cache.clear()
        assert cache.get("k") == (False, None)
        assert cache.stats()["disk_entries"] in (0, None)
        cache.close()

    def test_clear_memory_keeps_disk(self, disk_backend, tmp_path):
        cache = make_cache(disk_backend, tmp_path)
        cache.put("k", "v")
        cache.clear_memory()
        assert cache.get("k") == (True, "v")
        assert cache.stats()["disk_hits"] == 1
        cache.close()

    def test_unpicklable_value_stays_in_memory(self, any_backend, tmp_path):
        cache = make_cache(any_backend, tmp_path)
        value = lambda: None  # noqa: E731 - deliberately unpicklable
        cache.put("k", value)
        assert cache.get("k") == (True, value)
        cache.clear_memory()
        assert cache.get("k") == (False, None)
        cache.close()

    def test_corrupt_payload_degrades_to_miss(self, disk_backend, tmp_path):
        """Bytes that fail to unpickle cost exactly one miss — the bad
        entry is dropped, everything else keeps working."""
        cache = make_cache(disk_backend, tmp_path)
        cache.put("good", "v")
        cache.put("bad", "w")
        cache._backend.store("bad", b"\x00not a pickle\xff")
        cache.clear_memory()
        assert cache.get("bad") == (False, None)
        assert cache.get("good") == (True, "v")
        # The poisoned row was deleted, not left to fail forever.
        cache.put("bad", "fresh")
        cache.clear_memory()
        assert cache.get("bad") == (True, "fresh")
        cache.close()

    def test_version_bump_invalidates_silently(
        self, disk_backend, tmp_path, monkeypatch
    ):
        """A schema-version bump must hide (or discard) old entries — it
        must never serve stale bytes across structural changes."""
        c1 = make_cache(disk_backend, tmp_path)
        c1.put("k", "old-format")
        c1.close()
        monkeypatch.setattr(cache_module, "SCHEMA_VERSION", "999-test")
        c2 = make_cache(disk_backend, tmp_path)
        assert c2.get("k") == (False, None)
        c2.put("k", "new-format")
        c2.clear_memory()
        assert c2.get("k") == (True, "new-format")
        c2.close()

    def test_store_count_matches_entries(self, disk_backend, tmp_path):
        cache = make_cache(disk_backend, tmp_path)
        for i in range(7):
            cache.put(f"k{i}", i)
        assert cache.stats()["disk_entries"] == 7
        cache.close()


class TestTwoProcessContention:
    def test_two_processes_share_one_cache_dir(self, disk_backend, tmp_path):
        """Two concurrent writers hammer one cache_dir.  Neither process
        may 'recover' (i.e. delete) shared state, and every row must
        survive — WAL+busy_timeout for sqlite, atomic replace for the
        sharded directory."""
        script = (
            "import json, sys\n"
            "from repro.engine.cache import ResultCache\n"
            "tag, cache_dir, backend = sys.argv[1:4]\n"
            "cache = ResultCache(cache_dir, backend=backend)\n"
            "for i in range(40):\n"
            "    cache.put(f'{tag}:{i}', {'tag': tag, 'i': i})\n"
            "    cache.get(f'{tag}:{i}')\n"
            "stats = cache.stats()\n"
            "cache.close()\n"
            "print(json.dumps({'recoveries': stats['recoveries'],\n"
            "                  'persistent': stats['persistent']}))\n"
        )
        repo_root = Path(__file__).resolve().parent.parent
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, tag, str(tmp_path), disk_backend],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                cwd=repo_root,
                env={"PYTHONPATH": str(repo_root / "src")},
            )
            for tag in ("a", "b")
        ]
        reports = []
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            reports.append(json.loads(out))
        assert [r["recoveries"] for r in reports] == [0, 0]
        assert all(r["persistent"] for r in reports)

        survivor = ResultCache(str(tmp_path), backend=disk_backend)
        assert survivor.stats()["disk_entries"] == 80
        assert survivor.get("a:0") == (True, {"tag": "a", "i": 0})
        assert survivor.get("b:39") == (True, {"tag": "b", "i": 39})
        assert survivor.recoveries == 0
        survivor.close()
