"""Unit tests for the homomorphism search engine."""

from repro.core.atoms import atom, fact
from repro.core.homomorphism import (
    find_homomorphism,
    has_homomorphism,
    homomorphisms,
    instance_homomorphism,
    is_hom_equivalent,
)
from repro.core.instance import Instance
from repro.core.terms import Constant, Null, Variable

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


class TestBasicSearch:
    def test_single_atom_match(self):
        target = Instance.of([fact("R", "a", "b")])
        h = find_homomorphism([atom("R", x, y)], target)
        assert h == {x: a, y: b}

    def test_constants_must_match(self):
        target = Instance.of([fact("R", "a", "b")])
        assert has_homomorphism([atom("R", a, y)], target)
        assert not has_homomorphism([atom("R", b, y)], target)

    def test_join_variable(self):
        target = Instance.of([fact("R", "a", "b"), fact("R", "b", "c")])
        h = find_homomorphism([atom("R", x, y), atom("R", y, z)], target)
        assert h == {x: a, y: b, z: c}

    def test_join_failure(self):
        target = Instance.of([fact("R", "a", "b"), fact("R", "c", "d")])
        assert not has_homomorphism([atom("R", x, y), atom("R", y, z)], target)

    def test_variable_repetition_within_atom(self):
        target = Instance.of([fact("R", "a", "b")])
        assert not has_homomorphism([atom("R", x, x)], target)
        loop = Instance.of([fact("R", "a", "a")])
        assert has_homomorphism([atom("R", x, x)], loop)

    def test_all_homomorphisms_enumerated(self):
        target = Instance.of([fact("R", "a", "a"), fact("R", "a", "b")])
        homs = list(homomorphisms([atom("R", x, y)], target))
        assert len(homs) == 2

    def test_fixed_binding(self):
        target = Instance.of([fact("R", "a", "b"), fact("R", "c", "d")])
        h = find_homomorphism([atom("R", x, y)], target, fixed={x: c})
        assert h == {x: c, y: Constant("d")}

    def test_fixed_binding_unsatisfiable(self):
        target = Instance.of([fact("R", "a", "b")])
        assert find_homomorphism([atom("R", x, y)], target, {x: b}) is None

    def test_empty_source_yields_identity(self):
        target = Instance.of([fact("R", "a", "b")])
        assert list(homomorphisms([], target)) == [{}]

    def test_zero_ary_atoms(self):
        target = Instance.of([atom("Goal")])
        assert has_homomorphism([atom("Goal")], target)
        assert not has_homomorphism([atom("Other")], target)

    def test_nulls_in_source_are_mapped(self):
        target = Instance.of([fact("R", "a", "b")])
        h = find_homomorphism([atom("R", Null(0), Null(1))], target)
        assert h == {Null(0): a, Null(1): b}

    def test_nulls_in_target_are_values(self):
        target = Instance.of([atom("R", a, Null(5))])
        h = find_homomorphism([atom("R", x, y)], target)
        assert h[y] == Null(5)


class TestInstanceHomomorphisms:
    def test_instance_hom(self):
        src = Instance.of([atom("R", Null(0), Null(1))])
        dst = Instance.of([fact("R", "a", "b")])
        assert instance_homomorphism(src, dst) is not None
        assert instance_homomorphism(dst, src) is None  # constants are rigid

    def test_hom_equivalence(self):
        i1 = Instance.of([atom("R", a, Null(0))])
        i2 = Instance.of([atom("R", a, Null(9)), atom("R", a, Null(10))])
        assert is_hom_equivalent(i1, i2)

    def test_not_equivalent(self):
        i1 = Instance.of([fact("R", "a", "b")])
        i2 = Instance.of([fact("R", "a", "b"), fact("P", "a")])
        assert not is_hom_equivalent(i1, i2)


class TestDeterminism:
    def test_enumeration_order_is_stable(self):
        target = Instance.of(
            [fact("R", "a", "b"), fact("R", "b", "c"), fact("R", "c", "a")]
        )
        runs = [
            [tuple(sorted((str(k), str(v)) for k, v in h.items()))
             for h in homomorphisms([atom("R", x, y)], target)]
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]
