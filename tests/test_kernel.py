"""Tests for the indexed homomorphism kernel (``repro.kernel``).

Covers the three kernel pillars — :class:`WorkingInstance` indexing,
:class:`HomSearch` correctness, and delta-driven trigger discovery — plus
the contracts the rest of the codebase now relies on: strict and
canonical delta/naive chase parity over the generator families, the
``Instance`` index memos, kernel counter visibility, and the CLI chase
budget flags.
"""

import itertools
import json
import pickle
import random

import pytest

import repro
from repro.chase.engine import chase
from repro.core.atoms import Atom, atom, fact
from repro.core.instance import Instance
from repro.core.terms import Constant, Null, NullFactory, Variable
from repro.engine.canon import canonical_instance, hash_instance
from repro.evaluation import evaluate_omq
from repro.generators.databases import random_database
from repro.generators.ontologies import (
    guarded_acyclic,
    guarded_reachability,
    linear_chain,
    linear_witness_family,
    non_recursive_doubling,
    sticky_arity_family,
    sticky_recursive_family,
)
from repro.kernel import (
    INTERN,
    KERNEL_METRICS,
    WorkingInstance,
    delta_triggers,
    find_homomorphism,
    homomorphisms,
    kernel_snapshot,
    trusted_instance,
)

x, y, z = Variable("x"), Variable("y"), Variable("z")
a, b, c = Constant("a"), Constant("b"), Constant("c")


# ---------------------------------------------------------------------------
# Brute-force cross-check
# ---------------------------------------------------------------------------


def brute_force_homomorphisms(source, target, fixed=None):
    """Every homomorphism, found by trying all total variable mappings."""
    source = list(source)
    variables = []
    for at in source:
        for t in at.args:
            if isinstance(t, Variable) and t not in variables:
                variables.append(t)
    fixed = dict(fixed or {})
    free = [v for v in variables if v not in fixed]
    universe = sorted(
        {t for at in target.atoms for t in at.args}, key=str
    )
    found = []
    for image in itertools.product(universe, repeat=len(free)):
        h = dict(fixed)
        h.update(zip(free, image))
        if all(at.substitute(h) in target.atoms for at in source):
            found.append(h)
    return found


def random_target(rng, n_predicates=3, n_terms=4, n_atoms=8):
    terms = [Constant(f"c{i}") for i in range(n_terms)]
    atoms = set()
    while len(atoms) < n_atoms:
        p = rng.randrange(n_predicates)
        arity = (p % 2) + 1
        atoms.add(
            Atom(f"P{p}", tuple(rng.choice(terms) for _ in range(arity)))
        )
    return Instance.of(atoms)


def random_body(rng, target, n_atoms=3, n_vars=3):
    pool = [Variable(f"v{i}") for i in range(n_vars)]
    template = [rng.choice(sorted(target.atoms, key=str)) for _ in range(n_atoms)]
    body = []
    for at in template:
        args = tuple(
            rng.choice(pool) if rng.random() < 0.8 else t for t in at.args
        )
        body.append(Atom(at.predicate, args))
    return body


class TestBruteForceCrossCheck:
    def test_randomized_against_brute_force(self):
        rng = random.Random(20180611)
        for trial in range(40):
            target = random_target(rng)
            body = random_body(rng, target)
            got = {
                frozenset(h.items()) for h in homomorphisms(body, target)
            }
            want = {
                frozenset(h.items())
                for h in brute_force_homomorphisms(body, target)
            }
            assert got == want, f"trial {trial}: {body}"

    def test_randomized_with_fixed_bindings(self):
        rng = random.Random(7)
        for trial in range(20):
            target = random_target(rng)
            body = random_body(rng, target)
            variables = sorted(
                {t for at in body for t in at.args if isinstance(t, Variable)},
                key=str,
            )
            if not variables:
                continue
            pin = variables[0]
            image = rng.choice(
                sorted({t for at in target.atoms for t in at.args}, key=str)
            )
            fixed = {pin: image}
            got = {
                frozenset(h.items())
                for h in homomorphisms(body, target, fixed)
            }
            want = {
                frozenset(h.items())
                for h in brute_force_homomorphisms(body, target, fixed)
            }
            assert got == want, f"trial {trial}"

    def test_find_agrees_with_enumeration(self):
        rng = random.Random(99)
        for _ in range(20):
            target = random_target(rng)
            body = random_body(rng, target)
            h = find_homomorphism(body, target)
            any_brute = bool(brute_force_homomorphisms(body, target))
            assert (h is not None) == any_brute
            if h is not None:
                assert all(at.substitute(h) in target.atoms for at in body)


# ---------------------------------------------------------------------------
# Delta vs naive chase parity
# ---------------------------------------------------------------------------

FAMILIES = [
    ("linear_chain", linear_chain(4)),
    ("linear_witness", linear_witness_family(3)),
    ("non_recursive", non_recursive_doubling(3)),
    ("sticky_arity", sticky_arity_family(3)),
    ("sticky_recursive", sticky_recursive_family(2)),
    ("guarded_reach", guarded_reachability()),
    ("guarded_acyclic", guarded_acyclic(3)),
]


@pytest.mark.parametrize("name,omq", FAMILIES, ids=[n for n, _ in FAMILIES])
@pytest.mark.parametrize("policy", ["restricted", "oblivious"])
class TestChaseParity:
    def test_delta_matches_naive_exactly(self, name, omq, policy):
        db = random_database(omq.data_schema, n_constants=4, n_atoms=10, seed=11)
        kwargs = dict(policy=policy, max_depth=2, max_steps=50_000)
        delta = chase(db, omq.sigma, strategy="delta", **kwargs)
        naive = chase(db, omq.sigma, strategy="naive", **kwargs)
        assert delta.instance == naive.instance
        assert delta.steps == naive.steps
        assert delta.log == naive.log
        assert delta.levels == naive.levels
        assert delta.terminated == naive.terminated

    def test_delta_matches_naive_canonically(self, name, omq, policy):
        db = random_database(omq.data_schema, n_constants=3, n_atoms=8, seed=5)
        kwargs = dict(policy=policy, max_depth=2, max_steps=50_000)
        delta = chase(
            db, omq.sigma, strategy="delta",
            null_factory=NullFactory(1000), **kwargs,
        )
        naive = chase(db, omq.sigma, strategy="naive", **kwargs)
        assert delta.instance != naive.instance or not delta.instance.nulls()
        assert (
            hash_instance(delta.instance) == hash_instance(naive.instance)
        )


class TestCanonicalInstance:
    def test_invariant_under_null_renaming(self):
        from repro.core.parser import parse_tgds

        sigma = parse_tgds("P(x) -> R(x, w)\nR(x, y) -> R(y, z)")
        db = Instance.of([fact("P", "a"), fact("P", "b")])
        out = chase(db, sigma, max_depth=2).instance
        nulls = sorted(out.nulls(), key=lambda n: n.ident)
        assert nulls, "expected the chase to invent nulls"
        renaming = {n: Null(5000 - n.ident) for n in nulls}
        renamed = Instance.of(at.substitute(renaming) for at in out.atoms)
        assert renamed != out
        assert canonical_instance(renamed).text == canonical_instance(out).text
        assert hash_instance(renamed) == hash_instance(out)

    def test_distinguishes_different_structures(self):
        one = Instance.of([Atom("R", (Constant("a"), Null(0)))])
        two = Instance.of([Atom("R", (Null(0), Constant("a")))])
        assert hash_instance(one) != hash_instance(two)


# ---------------------------------------------------------------------------
# WorkingInstance and delta trigger discovery
# ---------------------------------------------------------------------------


class TestWorkingInstance:
    def test_snapshot_round_trip(self):
        frozen = Instance.of([fact("R", "a", "b"), fact("P", "a")])
        work = WorkingInstance.from_instance(frozen)
        assert work.snapshot() == frozen
        assert len(work) == 2

    def test_add_deduplicates(self):
        work = WorkingInstance([fact("R", "a", "b")])
        assert not work.add(fact("R", "a", "b"))
        assert work.add(fact("R", "b", "c"))
        assert len(work) == 2

    def test_snapshot_memoized_until_mutation(self):
        work = WorkingInstance([fact("R", "a", "b")])
        first = work.snapshot()
        assert work.snapshot() is first
        work.add(fact("P", "a"))
        assert work.snapshot() != first

    def test_watermark_and_atoms_since(self):
        work = WorkingInstance([fact("R", "a", "b")])
        mark = work.watermark()
        assert mark == 1
        work.add(fact("R", "b", "c"))
        work.add(fact("P", "c"))
        assert work.atoms_since(mark) == [fact("R", "b", "c"), fact("P", "c")]

    def test_pred_candidates_window(self):
        work = WorkingInstance([fact("R", "a", "b")])
        work.add(fact("R", "b", "c"))
        work.add(fact("P", "a"))

        def ids(*names):
            return INTERN.term_ids(tuple(Constant(n) for n in names))

        pid = INTERN.pred_id("R")
        all_r, lo, hi = work.pred_candidates(pid)
        assert list(all_r[lo:hi]) == [ids("a", "b"), ids("b", "c")]
        new_r, lo, hi = work.pred_candidates(pid, lo=1)
        assert list(new_r[lo:hi]) == [ids("b", "c")]

    def test_pos_candidates(self):
        work = WorkingInstance(
            [fact("R", "a", "b"), fact("R", "a", "c"), fact("R", "b", "c")]
        )

        def ids(*names):
            return INTERN.term_ids(tuple(Constant(n) for n in names))

        pid = INTERN.pred_id("R")
        a_id = INTERN.term_id(Constant("a"))
        facts, lo, hi = work.pos_candidates(pid, 0, a_id)
        assert list(facts[lo:hi]) == [ids("a", "b"), ids("a", "c")]
        assert work.pos_candidates(INTERN.pred_id("S"), 0, a_id) is None

    def test_cardinality_stats_track_live_counts(self):
        work = WorkingInstance(
            [fact("R", "a", "b"), fact("R", "a", "c"), fact("P", "a")]
        )
        stats = work.cardinality_stats()
        assert stats["R"] == {"count": 2, "distinct": [1, 2]}
        assert stats["P"] == {"count": 1, "distinct": [1]}
        pid = INTERN.pred_id("R")
        assert work.pred_count(pid) == 2
        assert work.distinct_count(pid, 0) == 1
        assert work.distinct_count(pid, 1) == 2

    def test_interned_state_rebuilds_after_table_clear(self):
        work = WorkingInstance([fact("R", "a", "b"), fact("R", "b", "c")])
        body = (atom("R", x, y),)
        before = sorted(str(h) for h in homomorphisms(body, work))
        INTERN.clear()
        after = sorted(str(h) for h in homomorphisms(body, work))
        assert after == before
        assert work.pred_count(INTERN.pred_id("R")) == 2

    def test_trusted_instance_equals_validated(self):
        atoms = frozenset([fact("R", "a", "b")])
        assert trusted_instance(atoms) == Instance(atoms)

    def test_delta_triggers_sees_only_new_combinations(self):
        work = WorkingInstance([fact("E", "a", "b")])
        body = (atom("E", x, y), atom("E", y, z))
        mark = work.watermark()
        work.add(fact("E", "b", "c"))
        new = list(delta_triggers(body, work, mark, work.watermark()))
        # Only the join through the new atom, not the pre-existing pairs.
        assert new == [{x: a, y: b, z: c}]

    def test_delta_triggers_full_enumeration_when_unmarked(self):
        work = WorkingInstance([fact("E", "a", "b"), fact("E", "b", "c")])
        body = (atom("E", x, y),)
        got = list(delta_triggers(body, work, 0, work.watermark()))
        assert len(got) == 2


# ---------------------------------------------------------------------------
# Instance index memos
# ---------------------------------------------------------------------------


class TestInstanceMemos:
    def test_by_predicate_memoized(self):
        inst = Instance.of([fact("R", "a", "b"), fact("P", "a")])
        first = inst.by_predicate()
        assert inst.by_predicate() is first

    def test_by_position_contents(self):
        inst = Instance.of(
            [fact("R", "a", "b"), fact("R", "a", "c"), fact("R", "b", "c")]
        )
        index = inst.by_position()
        assert index[("R", 0, a)] == (fact("R", "a", "b"), fact("R", "a", "c"))
        assert index[("R", 1, c)] == (fact("R", "a", "c"), fact("R", "b", "c"))
        assert inst.by_position() is index

    def test_pickle_drops_memos(self):
        inst = Instance.of([fact("R", "a", "b")])
        inst.by_predicate()
        inst.by_position()
        clone = pickle.loads(pickle.dumps(inst))
        assert clone == inst
        assert "_by_predicate_memo" not in clone.__dict__
        assert "_by_position_memo" not in clone.__dict__


# ---------------------------------------------------------------------------
# Instrumentation
# ---------------------------------------------------------------------------


class TestKernelCounters:
    def test_chase_and_search_counters_populate(self):
        repro.clear_caches()
        omq = linear_chain(3)
        db = random_database(omq.data_schema, n_constants=3, n_atoms=6, seed=1)
        result = chase(db, omq.sigma, max_depth=2)
        omq.as_ucq().evaluate(result.instance)
        snap = kernel_snapshot()
        assert snap["kernel.hom.searches"] > 0
        assert snap["kernel.chase.rounds"] > 0
        assert "kernel.chase.delta_triggers" in snap

    def test_counters_reset_with_clear_caches(self):
        chase(
            Instance.of([fact("P", "a")]),
            linear_chain(2).sigma,
            max_depth=1,
        )
        assert kernel_snapshot()
        repro.clear_caches()
        assert kernel_snapshot() == {}

    def test_engine_stats_expose_kernel_registry(self):
        from repro.engine import BatchEngine

        repro.clear_caches()
        omq = linear_chain(3)
        with BatchEngine() as engine:
            engine.contains(omq, omq)
            stats = engine.stats()
        assert "kernel" in stats
        assert any(k.startswith("kernel.hom.") for k in stats["kernel"])


# ---------------------------------------------------------------------------
# Budget degradation and the CLI flags
# ---------------------------------------------------------------------------

DIVERGING_OMQ = """
schema: P/1
rules:
    P(x) -> R(x, w)
    R(x, y) -> R(y, z)
query: q(x) :- R(x, y)
"""


class TestBudgets:
    def test_chase_budget_degrades_to_partial_evaluation(self):
        from repro.core.parser import parse_database, parse_omq

        omq = parse_omq(DIVERGING_OMQ)
        db = parse_database("P(a).")
        result = evaluate_omq(omq, db, method="chase", chase_max_steps=3)
        assert not result.exact
        assert result.method == "chase-partial"
        assert (Constant("a"),) in result.answers

    def test_cli_contains_accepts_budget_flags(self, tmp_path, capsys):
        from repro.cli import main

        q = tmp_path / "q.omq"
        q.write_text(DIVERGING_OMQ, encoding="utf-8")
        code = main(
            [
                "contains", str(q), str(q),
                "--max-steps", "5", "--max-depth", "1", "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 2)
        assert payload["verdict"] in ("contained", "unknown")

    def test_cli_flags_thread_into_batch_jobs(self, tmp_path):
        from repro.cli import _parse_batch_file

        q = tmp_path / "q.omq"
        q.write_text(DIVERGING_OMQ, encoding="utf-8")
        manifest = tmp_path / "batch.txt"
        manifest.write_text("contains q.omq q.omq\n", encoding="utf-8")
        jobs, labels = _parse_batch_file(str(manifest), 123, 4)
        assert jobs[0].chase_max_steps == 123
        assert jobs[0].chase_max_depth == 4
        assert "d=4" in jobs[0].cache_key()

    def test_cli_rewrite_accepts_budget_flags(self, tmp_path, capsys):
        from repro.cli import main

        q = tmp_path / "q.omq"
        q.write_text(DIVERGING_OMQ, encoding="utf-8")
        code = main(["rewrite", str(q), "--max-steps", "5", "--json"])
        capsys.readouterr()
        assert code == 0


class TestChaseFuzzParity:
    """Randomized delta/naive parity over the random fragment generators.

    ``TestChaseParity`` pins the curated families; here the tgd sets are
    drawn from :func:`repro.generators.random_omq` across every fragment,
    and the step budget is swept through its edge values — including
    budgets that bind, where both strategies must degrade identically
    (same partial instance, same honest non-termination report, and the
    same UNKNOWN at the evaluation layer).
    """

    @pytest.mark.parametrize("seed", range(15))
    def test_random_sets_agree(self, seed):
        from repro.generators import FRAGMENTS, random_omq

        rng = random.Random(seed)
        omq = random_omq(rng.choice(FRAGMENTS), rng)
        db = random_database(
            omq.data_schema, n_constants=3, n_atoms=5, seed=seed
        )
        kwargs = dict(max_steps=300, partial=True)
        delta = chase(db, omq.sigma, strategy="delta", **kwargs)
        naive = chase(db, omq.sigma, strategy="naive", **kwargs)
        assert delta.instance == naive.instance
        assert delta.steps == naive.steps
        assert delta.terminated == naive.terminated

    @pytest.mark.parametrize("budget", [0, 1, 2, 3, 7, 50])
    def test_budget_edges_agree(self, budget):
        """On a diverging rule set every budget binds: partial runs match
        atom-for-atom and strict runs raise with matching partials."""
        from repro.core.parser import parse_database, parse_tgds

        sigma = parse_tgds("P(x) -> R(x, w)\nR(x, y) -> R(y, z)")
        db = parse_database("P(a).")
        partials = {}
        for strategy in ("delta", "naive"):
            result = chase(
                db, sigma, strategy=strategy, max_steps=budget, partial=True
            )
            assert not result.terminated
            assert result.steps <= budget
            partials[strategy] = result
        assert partials["delta"].instance == partials["naive"].instance
        assert partials["delta"].steps == partials["naive"].steps
        from repro.chase.engine import ChaseBudgetExceeded

        for strategy in ("delta", "naive"):
            with pytest.raises(ChaseBudgetExceeded) as exc:
                chase(db, sigma, strategy=strategy, max_steps=budget)
            assert (
                exc.value.partial.instance
                == partials[strategy].instance
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_budget_exceeded_is_strategy_independent(self, seed):
        """Whether a random set exhausts a tiny budget never depends on
        the strategy, and the partial frontiers coincide."""
        from repro.chase.engine import ChaseBudgetExceeded
        from repro.generators import FRAGMENTS, random_omq

        rng = random.Random(1000 + seed)
        omq = random_omq(rng.choice(FRAGMENTS), rng)
        db = random_database(
            omq.data_schema, n_constants=2, n_atoms=4, seed=seed
        )
        for budget in (0, 1, 3):
            outcomes = {}
            for strategy in ("delta", "naive"):
                try:
                    result = chase(
                        db, omq.sigma, strategy=strategy, max_steps=budget
                    )
                    outcomes[strategy] = ("done", result.instance)
                except ChaseBudgetExceeded as exc:
                    outcomes[strategy] = (
                        "exceeded", exc.partial.instance
                    )
            assert outcomes["delta"] == outcomes["naive"]

    def test_unknown_degradation_matches_across_strategies(self, monkeypatch):
        """The evaluation layer reports the same inexact 'chase-partial'
        answer set whichever chase strategy runs underneath."""
        import functools

        import repro.evaluation as evaluation
        from repro.core.parser import parse_database, parse_omq

        omq = parse_omq(DIVERGING_OMQ)
        db = parse_database("P(a).")
        delta_result = evaluate_omq(
            omq, db, method="chase", chase_max_steps=3
        )
        repro.clear_caches()
        monkeypatch.setattr(
            evaluation,
            "chase",
            functools.partial(chase, strategy="naive"),
        )
        naive_result = evaluate_omq(
            omq, db, method="chase", chase_max_steps=3
        )
        for result in (delta_result, naive_result):
            assert not result.exact
            assert result.method == "chase-partial"
        assert delta_result.answers == naive_result.answers
