"""Tests for the containment dispatcher's special procedures."""

import pytest

from repro import OMQ, Schema, Verdict, contains, parse_cq, parse_tgds
from repro.containment.dispatch import cq_subsumption
from repro.containment.propositional import (
    contains_propositional,
    is_propositional,
)
from repro.containment.result import (
    ContainmentResult,
    Witness,
    contained,
    not_contained,
    unknown,
)
from repro.core.instance import Instance
from repro.core.atoms import atom


def omq(schema, rules, query):
    return OMQ(Schema(schema), parse_tgds(rules), parse_cq(query))


class TestResultTypes:
    def test_contained_result(self):
        r = contained("m", "detail")
        assert r.is_contained and r.decided and bool(r)

    def test_not_contained_result(self):
        db = Instance.of([atom("A")])
        r = not_contained("m", db, ())
        assert not r.is_contained and r.decided
        assert isinstance(r.witness, Witness)
        assert "witness" in str(r)

    def test_unknown_result_raises_on_bool(self):
        r = unknown("m", "out of budget")
        assert not r.decided
        with pytest.raises(ValueError):
            bool(r)
        with pytest.raises(ValueError):
            r.is_contained


class TestCQSubsumption:
    def test_same_sigma_query_weakening(self):
        s = {"E": 2, "S": 1}
        rules = "E(x, y), S(x) -> S(y)"
        q1 = omq(s, rules, "q() :- S(x), E(x, y)")
        q2 = omq(s, rules, "q() :- S(x)")
        shortcut = cq_subsumption(q1, q2)
        assert shortcut is not None and shortcut.is_contained

    def test_sigma_superset_direction(self):
        s = {"A": 1}
        q1 = omq(s, "", "q(x) :- A(x)")
        q2 = omq(s, "A(x) -> B(x)", "q(x) :- A(x)")
        # Σ1 = ∅ ⊆ Σ2 and q1 ⊆ q2 as plain CQs: shortcut applies.
        assert cq_subsumption(q1, q2) is not None

    def test_sigma_not_subset_no_shortcut(self):
        s = {"A": 1}
        q1 = omq(s, "A(x) -> B(x)", "q(x) :- A(x)")
        q2 = omq(s, "A(x) -> C(x)", "q(x) :- A(x)")
        assert cq_subsumption(q1, q2) is None

    def test_query_not_contained_no_shortcut(self):
        s = {"A": 1, "B": 1}
        q1 = omq(s, "", "q(x) :- A(x)")
        q2 = omq(s, "", "q(x) :- B(x)")
        assert cq_subsumption(q1, q2) is None

    def test_shortcut_is_sound(self):
        # Where the shortcut answers, the exact procedure must agree.
        s = {"E": 2, "P": 1}
        rules = "E(x, y) -> P(y)"
        q1 = omq(s, rules, "q(x) :- P(x), E(y, x)")
        q2 = omq(s, rules, "q(x) :- P(x)")
        shortcut = cq_subsumption(q1, q2)
        assert shortcut is not None
        from repro.containment.small_witness import contains_via_small_witness

        exact = contains_via_small_witness(q1, q2)
        assert exact.is_contained


class TestPropositional:
    def test_detection(self):
        assert is_propositional(omq({"P": 0, "Q": 0}, "", "q() :- P()"))
        assert not is_propositional(omq({"A": 1}, "", "q() :- A(x)"))
        assert not is_propositional(
            OMQ(Schema({}), (), parse_cq("q() :- X()"))
        )

    def test_simple_propositional_containment(self):
        s = {"P": 0, "Q": 0}
        q1 = omq(s, "P(), Q() -> Both()", "q() :- Both()")
        q2 = omq(s, "P() -> Goal()", "q() :- Goal()")
        assert contains_propositional(q1, q2).is_contained
        result = contains_propositional(q2, q1)
        assert result.verdict is Verdict.NOT_CONTAINED
        # Witness: P alone fires Q2 but not Q1.
        assert len(result.witness.database) == 1

    def test_cap_respected(self):
        s = {f"P{i}": 0 for i in range(20)}
        q = omq(s, "", "q() :- P0()")
        result = contains_propositional(q, q)
        assert result.verdict is Verdict.UNKNOWN

    def test_dispatcher_uses_propositional(self):
        s = {"P": 0, "Q": 0}
        q1 = omq(s, "P(), Q() -> Both()", "q() :- Both()")
        q2 = omq(s, "P() -> Goal()", "q() :- Goal()")
        result = contains(q1, q2)
        assert result.is_contained
        assert "propositional" in result.method


class TestBudgetOverrides:
    def test_custom_budget_is_honoured(self):
        # A tiny budget forces UNKNOWN on a guarded-recursive LHS whose
        # partial rewriting cannot refute either.
        s = {"E": 2, "S": 1}
        rules = "E(x, y), S(x) -> S(y)"
        q1 = omq(s, rules, "q(x) :- S(x)")
        q2 = OMQ(
            q1.data_schema, parse_tgds("E(x, y) -> S(y)"), parse_cq("q(x) :- S(x)")
        )
        result = contains(
            q1,
            q2,
            rewriting_budget=20,
            search_max_atoms=2,
            search_max_databases=50,
        )
        # Either a genuine witness is found in the small space or UNKNOWN;
        # never a false CONTAINED.
        assert result.verdict in (Verdict.NOT_CONTAINED, Verdict.UNKNOWN)
