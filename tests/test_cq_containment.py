"""Unit tests for plain (U)CQ containment (Chandra–Merlin)."""

from repro.containment.cq import (
    cq_contained_in,
    cq_contained_in_ucq,
    cq_core,
    cq_equivalent,
    ucq_contained_in,
)
from repro.core.parser import parse_cq, parse_ucq


class TestCQContainment:
    def test_more_atoms_is_more_specific(self):
        q1 = parse_cq("q(x) :- R(x, y), P(y)")
        q2 = parse_cq("q(x) :- R(x, y)")
        assert cq_contained_in(q1, q2)
        assert not cq_contained_in(q2, q1)

    def test_self_containment(self):
        q = parse_cq("q(x) :- R(x, y), R(y, z)")
        assert cq_contained_in(q, q)

    def test_path_containment(self):
        # A 3-path is contained in a 2-path (folding), not vice versa.
        p3 = parse_cq("q() :- R(x, y), R(y, z), R(z, w)")
        p2 = parse_cq("q() :- R(x, y), R(y, z)")
        assert cq_contained_in(p3, p2)
        assert not cq_contained_in(p2, p3)

    def test_cycle_not_contained_in_longer_cycle(self):
        c2 = parse_cq("q() :- R(x, y), R(y, x)")
        c3 = parse_cq("q() :- R(x, y), R(y, z), R(z, x)")
        assert not cq_contained_in(c2, c3)
        # And a 3-cycle does not fold into a 2-cycle either.
        assert not cq_contained_in(c3, c2)

    def test_free_variables_are_rigid(self):
        q1 = parse_cq("q(x) :- R(x, x)")
        q2 = parse_cq("q(x) :- R(x, y)")
        assert cq_contained_in(q1, q2)
        assert not cq_contained_in(q2, q1)

    def test_constants(self):
        q1 = parse_cq("q() :- R(0, 1)")
        q2 = parse_cq("q() :- R(x, y)")
        assert cq_contained_in(q1, q2)
        assert not cq_contained_in(q2, q1)

    def test_transitivity_sample(self):
        q1 = parse_cq("q() :- R(x, y), P(y), S(y)")
        q2 = parse_cq("q() :- R(x, y), P(y)")
        q3 = parse_cq("q() :- R(x, y)")
        assert cq_contained_in(q1, q2)
        assert cq_contained_in(q2, q3)
        assert cq_contained_in(q1, q3)


class TestUCQContainment:
    def test_cq_in_ucq(self):
        q = parse_cq("q(x) :- P(x), T(x)")
        u = parse_ucq("q(x) :- P(x) | q(x) :- S(x)")
        assert cq_contained_in_ucq(q, u)

    def test_ucq_in_ucq(self):
        u1 = parse_ucq("q(x) :- P(x), T(x) | q(x) :- S(x), T(x)")
        u2 = parse_ucq("q(x) :- P(x) | q(x) :- S(x)")
        assert ucq_contained_in(u1, u2)
        assert not ucq_contained_in(u2, u1)

    def test_union_needs_per_disjunct_containment(self):
        # Classic: P∨S ⊆ P fails even though one disjunct matches.
        u1 = parse_ucq("q(x) :- P(x) | q(x) :- S(x)")
        q2 = parse_cq("q(x) :- P(x)")
        assert not ucq_contained_in(u1, q2)

    def test_equivalence(self):
        q1 = parse_cq("q() :- R(x, y), R(x, z)")
        q2 = parse_cq("q() :- R(x, y)")
        assert cq_equivalent(q1, q2)


class TestCore:
    def test_redundant_atom_removed(self):
        q = parse_cq("q() :- R(x, y), R(x, z)")
        core = cq_core(q)
        assert core.size() == 1
        assert cq_equivalent(core, q)

    def test_core_of_minimal_query_is_itself(self):
        q = parse_cq("q() :- R(x, y), P(y)")
        assert cq_core(q).size() == 2

    def test_core_keeps_head_safe(self):
        q = parse_cq("q(x, z) :- R(x, y), R(x, z)")
        core = cq_core(q)
        assert set(core.free_variables()) == {v for v in q.free_variables()}
        assert cq_equivalent(core, q)

    def test_core_folds_long_path(self):
        q = parse_cq("q() :- R(x, y), R(y, z), R(u, v)")
        core = cq_core(q)
        assert core.size() == 2
