"""The crash-isolated worker pool: ordering, isolation, timeouts, and the
persistent submit/ticket layer the scheduler builds on.

Parallel tests use short sleeps; each asserts behaviour (which task
failed, result order), not wall-clock performance — timing claims live in
``benchmarks/bench_engine_batch.py``.

Parallel-path tests are parametrized over the available multiprocessing
start methods so the ``spawn`` path (the macOS/Windows default) is
exercised on Linux CI too, not just ``fork``.
"""

import multiprocessing as mp
import os
import time

import pytest

from repro.engine.jobs import CrashJob, SleepJob
from repro.engine.pool import CANCELLED, POOL_CLOSED, TaskOutcome, WorkerPool

START_METHODS = [
    m for m in ("fork", "spawn") if m in mp.get_all_start_methods()
]


@pytest.fixture(params=START_METHODS)
def start_method(request):
    return request.param


class _RaisingJob:
    """A job whose run() raises (picklable because module-level)."""

    def run(self):
        raise ValueError("intentional failure")


class _EchoJob:
    def __init__(self, payload):
        self.payload = payload

    def run(self):
        return self.payload


class _SystemExitJob:
    """A job that calls the moral equivalent of ``sys.exit``."""

    def run(self):
        raise SystemExit(3)


class _PidJob:
    """Report the hosting process id (observes worker reuse)."""

    def run(self):
        time.sleep(0.05)
        return os.getpid()


class TestSerialFallback:
    def test_results_in_order(self):
        pool = WorkerPool(workers=1)
        out = pool.run([_EchoJob(i) for i in range(5)])
        assert [o.value for o in out] == list(range(5))
        assert all(o.ok for o in out)

    def test_exception_isolated(self):
        pool = WorkerPool(workers=1)
        out = pool.run([_EchoJob(0), _RaisingJob(), _EchoJob(2)])
        assert out[0].ok and out[2].ok
        assert not out[1].ok
        assert "intentional failure" in out[1].failure

    def test_deterministic(self):
        pool = WorkerPool(workers=1)
        tasks = [_EchoJob(i) for i in range(4)]
        assert [o.value for o in pool.run(tasks)] == [
            o.value for o in pool.run(tasks)
        ]

    def test_empty_batch(self):
        assert WorkerPool(workers=1).run([]) == []
        assert WorkerPool(workers=4).run([]) == []

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_system_exit_fails_task_not_batch(self):
        # Regression: the serial path used to catch only Exception while
        # workers catch BaseException, so a SystemExit-raising job killed
        # a serial batch but merely failed its task in a parallel one.
        out = WorkerPool(workers=1).run(
            [_EchoJob(0), _SystemExitJob(), _EchoJob(2)]
        )
        assert [o.ok for o in out] == [True, False, True]
        assert "SystemExit" in out[1].failure

    def test_system_exit_failure_matches_parallel_path(self):
        serial = WorkerPool(workers=1).run([_SystemExitJob()])
        with WorkerPool(workers=2) as pool:
            parallel = pool.run([_SystemExitJob(), _EchoJob(1)])
        assert serial[0].failure == parallel[0].failure == "SystemExit: 3"


class TestParallelPool:
    def test_results_in_input_order(self):
        with WorkerPool(workers=3) as pool:
            # Longer sleeps first, so completion order inverts input order.
            out = pool.run(
                [SleepJob(0.3 - 0.05 * i, payload=i) for i in range(6)]
            )
        assert [o.value for o in out] == list(range(6))

    def test_worker_crash_fails_only_its_task(self, start_method):
        with WorkerPool(workers=2, start_method=start_method) as pool:
            tasks = [_EchoJob(0), CrashJob(), _EchoJob(2), _EchoJob(3)]
            out = pool.run(tasks)
        assert [o.ok for o in out] == [True, False, True, True]
        assert "crashed" in out[1].failure
        assert "exit code 13" in out[1].failure
        assert [o.value for o in out if o.ok] == [0, 2, 3]

    def test_timeout_fails_only_the_slow_task(self, start_method):
        with WorkerPool(
            workers=2, task_timeout=1.0, start_method=start_method
        ) as pool:
            tasks = [
                SleepJob(0.05, "a"),
                SleepJob(30.0, "slow"),
                SleepJob(0.05, "c"),
            ]
            out = pool.run(tasks)
        assert out[0].ok and out[2].ok
        assert not out[1].ok
        assert "timed out" in out[1].failure

    def test_exception_reported_with_type(self):
        with WorkerPool(workers=2) as pool:
            out = pool.run([_RaisingJob(), _EchoJob(1)])
        assert not out[0].ok
        assert "ValueError" in out[0].failure
        assert out[1].ok

    def test_multiple_crashes_do_not_sink_the_batch(self):
        with WorkerPool(workers=2) as pool:
            tasks = [
                CrashJob(), _EchoJob(1), CrashJob(), _EchoJob(3), CrashJob()
            ]
            out = pool.run(tasks)
        assert [o.ok for o in out] == [False, True, False, True, False]
        assert [o.value for o in out if o.ok] == [1, 3]

    def test_single_task_no_timeout_runs_inline(self):
        # Without a timeout there is nothing the pool could enforce that
        # the inline path cannot, so a one-task batch skips the spawn.
        out = WorkerPool(workers=4).run([_EchoJob("only")])
        assert out[0].value == "only"

    def test_single_task_timeout_is_enforced(self):
        # Regression: single-task batches used to fall through to the
        # serial path even with workers > 1, silently dropping the
        # task_timeout — a hung 2EXPTIME check then hung the caller.
        with WorkerPool(workers=2, task_timeout=0.5) as pool:
            start = time.monotonic()
            out = pool.run([SleepJob(30.0, "never")])
            elapsed = time.monotonic() - start
        assert not out[0].ok
        assert "timed out" in out[0].failure
        assert elapsed < 10.0

    def test_single_task_crash_isolated_when_timeout_set(self):
        # Companion regression: with a timeout configured, a batch of one
        # also keeps crash isolation (the serial path would have taken
        # the whole process down with the job).
        with WorkerPool(workers=2, task_timeout=30.0) as pool:
            out = pool.run([CrashJob()])
        assert not out[0].ok
        assert "crashed" in out[0].failure

    def test_durations_recorded(self):
        with WorkerPool(workers=2) as pool:
            out = pool.run([SleepJob(0.1, 1), SleepJob(0.1, 2)])
        assert all(o.duration >= 0.09 for o in out)


class TestPersistentSubmission:
    def test_submit_returns_immediately(self):
        with WorkerPool(workers=2) as pool:
            start = time.monotonic()
            ticket = pool.submit(SleepJob(0.5, "late"))
            assert time.monotonic() - start < 0.3
            assert not ticket.done()
            assert ticket.wait(10).value == "late"
            assert ticket.done()

    def test_workers_survive_between_submissions(self, start_method):
        with WorkerPool(workers=2, start_method=start_method) as pool:
            first = {pool.submit(_PidJob()).wait(30).value for _ in range(2)}
            time.sleep(0.1)
            second = {pool.submit(_PidJob()).wait(30).value for _ in range(2)}
        assert first & second, "warm workers should be reused, not respawned"

    def test_serial_submit_is_asynchronous(self):
        # workers=1 still gives async submission: tasks run on the pool's
        # serial coordinator thread, in this process, in FIFO order.
        with WorkerPool(workers=1) as pool:
            tickets = [pool.submit(SleepJob(0.05, i)) for i in range(3)]
            assert [t.wait(10).value for t in tickets] == [0, 1, 2]

    def test_cancel_pending_task(self):
        with WorkerPool(workers=1) as pool:
            blocker = pool.submit(SleepJob(0.4, "blocker"))
            doomed = pool.submit(SleepJob(30.0, "doomed"))
            assert pool.cancel(doomed)
            assert doomed.done()
            assert doomed.outcome.failure == CANCELLED
            assert blocker.wait(10).value == "blocker"

    def test_cancel_completed_task_fails(self):
        with WorkerPool(workers=1) as pool:
            ticket = pool.submit(_EchoJob("x"))
            ticket.wait(10)
            assert not pool.cancel(ticket)

    def test_done_callback_fires(self):
        fired = []
        with WorkerPool(workers=1) as pool:
            ticket = pool.submit(_EchoJob("x"))
            ticket.wait(10)
            ticket.add_done_callback(lambda t: fired.append(t.outcome.value))
            assert fired == ["x"]  # already-done tickets fire immediately
            t2 = pool.submit(SleepJob(0.1, "y"))
            t2.add_done_callback(lambda t: fired.append(t.outcome.value))
            t2.wait(10)
        assert fired == ["x", "y"]

    def test_close_fails_unfinished_tickets(self):
        pool = WorkerPool(workers=2)
        tickets = [pool.submit(SleepJob(30.0, i)) for i in range(3)]
        pool.close()
        assert all(t.done() for t in tickets)
        assert all(t.outcome.failure in (POOL_CLOSED, CANCELLED) for t in tickets)

    def test_submit_after_close_raises(self):
        pool = WorkerPool(workers=1)
        pool.submit(_EchoJob(1)).wait(10)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit(_EchoJob(2))

    def test_run_after_run_reuses_pool_object(self):
        # run() retires idle workers afterwards; the pool object itself
        # stays usable for the next batch.
        pool = WorkerPool(workers=2)
        assert [o.value for o in pool.run([_EchoJob(1), _EchoJob(2)])] == [1, 2]
        assert [o.value for o in pool.run([_EchoJob(3), _EchoJob(4)])] == [3, 4]
        pool.close()


class TestTaskOutcome:
    def test_ok_flag(self):
        assert TaskOutcome(value=1).ok
        assert not TaskOutcome(failure="boom").ok
