"""The crash-isolated worker pool: ordering, isolation, timeouts.

Parallel tests use short sleeps; each asserts behaviour (which task
failed, result order), not wall-clock performance — timing claims live in
``benchmarks/bench_engine_batch.py``.
"""

import pytest

from repro.engine.jobs import CrashJob, SleepJob
from repro.engine.pool import TaskOutcome, WorkerPool


class _RaisingJob:
    """A job whose run() raises (picklable because module-level)."""

    def run(self):
        raise ValueError("intentional failure")


class _EchoJob:
    def __init__(self, payload):
        self.payload = payload

    def run(self):
        return self.payload


class TestSerialFallback:
    def test_results_in_order(self):
        pool = WorkerPool(workers=1)
        out = pool.run([_EchoJob(i) for i in range(5)])
        assert [o.value for o in out] == list(range(5))
        assert all(o.ok for o in out)

    def test_exception_isolated(self):
        pool = WorkerPool(workers=1)
        out = pool.run([_EchoJob(0), _RaisingJob(), _EchoJob(2)])
        assert out[0].ok and out[2].ok
        assert not out[1].ok
        assert "intentional failure" in out[1].failure

    def test_deterministic(self):
        pool = WorkerPool(workers=1)
        tasks = [_EchoJob(i) for i in range(4)]
        assert [o.value for o in pool.run(tasks)] == [
            o.value for o in pool.run(tasks)
        ]

    def test_empty_batch(self):
        assert WorkerPool(workers=1).run([]) == []
        assert WorkerPool(workers=4).run([]) == []

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)


class TestParallelPool:
    def test_results_in_input_order(self):
        pool = WorkerPool(workers=3)
        # Longer sleeps first, so completion order inverts input order.
        out = pool.run(
            [SleepJob(0.3 - 0.05 * i, payload=i) for i in range(6)]
        )
        assert [o.value for o in out] == list(range(6))

    def test_worker_crash_fails_only_its_task(self):
        pool = WorkerPool(workers=2)
        tasks = [_EchoJob(0), CrashJob(), _EchoJob(2), _EchoJob(3)]
        out = pool.run(tasks)
        assert [o.ok for o in out] == [True, False, True, True]
        assert "crashed" in out[1].failure
        assert "exit code 13" in out[1].failure
        assert [o.value for o in out if o.ok] == [0, 2, 3]

    def test_timeout_fails_only_the_slow_task(self):
        pool = WorkerPool(workers=2, task_timeout=0.5)
        tasks = [SleepJob(0.05, "a"), SleepJob(10.0, "slow"), SleepJob(0.05, "c")]
        out = pool.run(tasks)
        assert out[0].ok and out[2].ok
        assert not out[1].ok
        assert "timed out" in out[1].failure

    def test_exception_reported_with_type(self):
        pool = WorkerPool(workers=2)
        out = pool.run([_RaisingJob(), _EchoJob(1)])
        assert not out[0].ok
        assert "ValueError" in out[0].failure
        assert out[1].ok

    def test_multiple_crashes_do_not_sink_the_batch(self):
        pool = WorkerPool(workers=2)
        tasks = [CrashJob(), _EchoJob(1), CrashJob(), _EchoJob(3), CrashJob()]
        out = pool.run(tasks)
        assert [o.ok for o in out] == [False, True, False, True, False]
        assert [o.value for o in out if o.ok] == [1, 3]

    def test_single_task_runs_inline(self):
        # A one-task batch takes the serial path even with workers > 1.
        out = WorkerPool(workers=4).run([_EchoJob("only")])
        assert out[0].value == "only"

    def test_durations_recorded(self):
        out = WorkerPool(workers=2).run([SleepJob(0.1, 1), SleepJob(0.1, 2)])
        assert all(o.duration >= 0.09 for o in out)


class TestTaskOutcome:
    def test_ok_flag(self):
        assert TaskOutcome(value=1).ok
        assert not TaskOutcome(failure="boom").ok
