"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

import repro
from repro import OMQ, Schema, parse_cq, parse_database, parse_tgds


@pytest.fixture(autouse=True)
def _isolate_caches():
    """Empty every registered memo table after each test.

    The library's module-level caches (``repro.evaluation``) and the
    engine's in-memory layers are process-wide; without this, one test's
    cached rewriting can mask another test's bug (or keep a stale result
    alive across parametrized cases).
    """
    yield
    repro.clear_caches()


@pytest.fixture
def example1():
    """Example 1 of the paper: linear tgds over S = {P, T}."""
    sigma = parse_tgds(
        """
        P(x) -> R(x, y)
        R(x, y) -> P(y)
        T(x) -> P(x)
        """
    )
    schema = Schema.of(P=1, T=1)
    query = parse_cq("q(x) :- R(x, y), P(y)")
    return OMQ(schema, sigma, query, name="Q_ex1")


@pytest.fixture
def figure1_sticky():
    """The sticky tgd set of Figure 1.

    The join variable y of the second tgd propagates through T into S, so
    the chase always keeps ("sticks") the join value — this set satisfies
    the marking criterion.
    """
    return parse_tgds(
        """
        T(x, y, z) -> S(y, w)
        R(x, y), P(y, z) -> T(x, y, w)
        """
    )


@pytest.fixture
def figure1_non_sticky():
    """The non-sticky tgd set of Figure 1.

    Here S keeps x instead of the join variable y: chasing R(a,b), P(b,c)
    infers T(a,b,⊥) and then S(a,⊥'), losing the join value b — the marking
    procedure marks y in the second tgd, where it occurs twice.
    """
    return parse_tgds(
        """
        T(x, y, z) -> S(x, w)
        R(x, y), P(y, z) -> T(x, y, w)
        """
    )


def db(text: str):
    """Parse a database literal in tests."""
    return parse_database(text)


# -- differential-harness knobs ---------------------------------------------


def pytest_addoption(parser):
    """Knobs for the randomized differential suite (test_differential.py).

    ``--seed`` reproduces a run exactly; ``--diff-cases`` scales the case
    count (CI smoke jobs sweep a small seed matrix at the default size);
    ``--diff-time-cap`` bounds wall-clock so a pathological draw degrades
    the run to fewer cases instead of hanging it.
    """
    parser.addoption(
        "--seed",
        type=int,
        default=20260806,
        help="base RNG seed for randomized differential tests",
    )
    parser.addoption(
        "--diff-cases",
        type=int,
        default=200,
        help="number of random OMQ pairs the differential suite draws",
    )
    parser.addoption(
        "--diff-time-cap",
        type=float,
        default=120.0,
        help="wall-clock cap (seconds) for the differential suite",
    )


@pytest.fixture
def diff_options(request):
    """(seed, cases, time_cap) as configured on the command line."""
    return (
        request.config.getoption("--seed"),
        request.config.getoption("--diff-cases"),
        request.config.getoption("--diff-time-cap"),
    )
