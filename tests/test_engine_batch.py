"""The BatchEngine façade: caching, verdicts, failure semantics, matrix.

These tests mirror the acceptance criteria: warm re-runs of a batch are
(nearly) all cache hits, an injected crash/timeout degrades exactly one
task to UNKNOWN, and results always come back in input order.
"""

import pytest

from repro import OMQ, Schema, parse_cq, parse_tgds
from repro.containment import Verdict, contains
from repro.engine import (
    BatchEngine,
    ClassifyJob,
    ContainmentJob,
    RewriteJob,
)
from repro.engine.jobs import CrashJob, SleepJob


SIGMA = "P(x) -> R(x, w)\nR(x, y) -> P(y)\nT(x) -> P(x)"
SCHEMA = Schema.of(P=1, T=1)


def _omq(query: str, rules: str = SIGMA, name: str = "Q") -> OMQ:
    return OMQ(SCHEMA, tuple(parse_tgds(rules)), parse_cq(query), name)


@pytest.fixture
def family():
    """A small family of comparable OMQs over the Example 1 ontology."""
    return [
        _omq("q(x) :- R(x, y), P(y)", name="Qr"),
        _omq("q(x) :- P(x)", name="Qp"),
        _omq("q(x) :- T(x)", name="Qt"),
    ]


class TestRunBatch:
    def test_verdicts_match_direct_calls(self, family):
        engine = BatchEngine()
        jobs = [
            ContainmentJob(family[0], family[1]),
            ContainmentJob(family[1], family[0]),
            ContainmentJob(family[2], family[1]),
            ContainmentJob(family[1], family[2]),
        ]
        results = engine.run_batch(jobs)
        for job, res in zip(jobs, results):
            assert res.ok
            assert res.value.verdict is contains(job.q1, job.q2).verdict

    def test_warm_rerun_is_all_cache_hits(self, family):
        engine = BatchEngine()
        jobs = [
            ContainmentJob(q1, q2)
            for q1 in family
            for q2 in family
            if q1 is not q2
        ]
        cold = engine.run_batch(jobs)
        assert not any(r.cached for r in cold)
        warm = engine.run_batch(jobs)
        hits = sum(1 for r in warm if r.cached)
        assert hits / len(warm) >= 0.95
        for c, w in zip(cold, warm):
            assert c.value.verdict is w.value.verdict

    def test_alpha_variant_hits_the_cache(self):
        engine = BatchEngine()
        q1 = _omq("q(x) :- R(x, y), P(y)")
        variant = OMQ(
            SCHEMA,
            tuple(reversed(parse_tgds(SIGMA))),
            parse_cq("q(u) :- P(v), R(u, v)"),
            name="other-name",
        )
        target = _omq("q(x) :- P(x)")
        assert not engine.contains(q1, target).cached
        assert engine.contains(variant, target).cached

    def test_alpha_duplicates_within_one_batch_run_once(self, family):
        # Dedup inside a single batch: the α-renamed copy is never
        # scheduled — it rides on the first copy's computation.
        engine = BatchEngine()
        variant = OMQ(
            SCHEMA,
            tuple(reversed(parse_tgds(SIGMA))),
            parse_cq("q(u) :- P(v), R(u, v)"),
            name="other-name",
        )
        results = engine.run_batch(
            [
                ContainmentJob(family[0], family[1]),
                ContainmentJob(variant, family[1]),
            ]
        )
        snap = engine.stats()["metrics"]
        assert snap["engine.containment.runs"] == 1
        assert snap["engine.dedup.coalesced"] == 1
        assert not results[0].coalesced and results[1].coalesced
        assert results[0].value.verdict is results[1].value.verdict

    def test_mixed_job_kinds(self, family):
        engine = BatchEngine()
        sigma = tuple(parse_tgds(SIGMA))
        results = engine.run_batch(
            [
                ContainmentJob(family[0], family[1]),
                RewriteJob(family[0], 5_000),
                ClassifyJob(sigma),
            ]
        )
        assert results[0].value.verdict is Verdict.CONTAINED
        assert results[1].value.complete
        assert {"P(?x)", "T(?x)"} <= {
            str(a) for d in results[1].value.rewriting for a in d.body
        }
        assert str(results[2].value.best) == "L"

    def test_results_in_input_order(self, family):
        engine = BatchEngine()
        jobs = [
            ContainmentJob(family[i % 3], family[(i + 1) % 3])
            for i in range(6)
        ]
        results = engine.run_batch(jobs)
        assert [r.job for r in results] == jobs

    def test_batch_engine_rewrite_parity_with_cli_budget(self):
        engine = BatchEngine()
        res = engine.rewrite(_omq("q(x) :- R(x, y), P(y)"), budget=20_000)
        assert res.ok and res.value.complete
        assert len(res.value.rewriting) == 2


class TestFailureSemantics:
    def test_crash_degrades_one_containment_to_unknown(self, family):
        engine = BatchEngine(workers=2)
        jobs = [
            ContainmentJob(family[0], family[1]),
            CrashJob(),
            ContainmentJob(family[2], family[1]),
        ]
        results = engine.run_batch(jobs)
        assert results[0].ok and results[0].value.verdict is Verdict.CONTAINED
        assert results[2].ok and results[2].value.verdict is Verdict.CONTAINED
        assert not results[1].ok
        assert results[1].value is None  # CrashJob has no UNKNOWN encoding

    def test_timeout_yields_unknown_containment(self, family):
        # A slow sleeping task stands in for a diverging containment check;
        # the containment jobs around it are unaffected.
        engine = BatchEngine(workers=2, task_timeout=0.5)
        slow = SleepJob(10.0)
        jobs = [
            ContainmentJob(family[0], family[1]),
            slow,
            ContainmentJob(family[1], family[2]),
        ]
        results = engine.run_batch(jobs)
        assert results[0].value.verdict is Verdict.CONTAINED
        assert results[1].error is not None
        assert "timed out" in results[1].error
        assert results[2].value.verdict is Verdict.NOT_CONTAINED

    def test_containment_pool_failure_maps_to_unknown_verdict(self, family):
        # Drive the mapping directly through the job API.
        job = ContainmentJob(family[0], family[1])
        result = job.failure_result("worker crashed (exit code -9)")
        assert result.verdict is Verdict.UNKNOWN
        assert result.method == "engine-pool"
        assert "crashed" in result.detail

    def test_failed_results_are_not_cached(self, family):
        engine = BatchEngine(workers=2, task_timeout=0.5)
        engine.run_batch([SleepJob(10.0), SleepJob(10.0)])
        stats = engine.stats()["cache"]
        assert stats["memory_entries"] == 0

    def test_metrics_track_failures(self, family):
        engine = BatchEngine(workers=2, task_timeout=0.5)
        engine.run_batch([SleepJob(10.0), ContainmentJob(family[0], family[1])])
        snap = engine.stats()["metrics"]
        assert snap.get("engine.sleep.failures") == 1
        assert snap.get("engine.containment.runs") == 1


class TestContainmentMatrix:
    def test_matrix_shape_and_diagonal(self, family):
        engine = BatchEngine()
        matrix = engine.containment_matrix(family)
        assert len(matrix) == 3 and all(len(row) == 3 for row in matrix)
        for i in range(3):
            assert matrix[i][i].value.verdict is Verdict.CONTAINED
            assert matrix[i][i].value.method == "reflexivity"

    def test_matrix_matches_pairwise_contains(self, family):
        engine = BatchEngine()
        matrix = engine.containment_matrix(family)
        for i, q1 in enumerate(family):
            for j, q2 in enumerate(family):
                if i == j:
                    continue
                assert (
                    matrix[i][j].value.verdict
                    is contains(q1, q2).verdict
                ), f"mismatch at ({i}, {j})"

    def test_matrix_reruns_warm(self, family):
        engine = BatchEngine()
        engine.containment_matrix(family)
        warm = engine.containment_matrix(family)
        off_diagonal = [
            warm[i][j] for i in range(3) for j in range(3) if i != j
        ]
        assert all(r.cached for r in off_diagonal)

    def test_matrix_feeds_minimization_shape(self, family):
        # Qt ⊆ Qp: the matrix exposes exactly the subsumptions a minimizer
        # over a catalog would drop.
        engine = BatchEngine()
        matrix = engine.containment_matrix(family)
        subsumed = {
            (i, j)
            for i in range(3)
            for j in range(3)
            if i != j and matrix[i][j].value.verdict is Verdict.CONTAINED
        }
        assert (2, 1) in subsumed  # Qt ⊆ Qp
        assert (1, 2) not in subsumed


class TestPersistence:
    def test_warm_across_engine_instances(self, family, tmp_path):
        jobs = [
            ContainmentJob(family[0], family[1]),
            ContainmentJob(family[1], family[2]),
        ]
        with BatchEngine(cache_dir=str(tmp_path)) as e1:
            cold = e1.run_batch(jobs)
        with BatchEngine(cache_dir=str(tmp_path)) as e2:
            warm = e2.run_batch(jobs)
        assert all(r.cached for r in warm)
        for c, w in zip(cold, warm):
            assert c.value.verdict is w.value.verdict
