"""Unit tests for the term model."""

from repro.core.terms import (
    Constant,
    Null,
    NullFactory,
    Variable,
    constants_of,
    is_constant,
    is_null,
    is_variable,
    variables_of,
)


class TestTermIdentity:
    def test_constants_equal_by_name(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_variables_equal_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_nulls_equal_by_ident(self):
        assert Null(3) == Null(3)
        assert Null(3) != Null(4)

    def test_kinds_are_disjoint(self):
        assert Constant("x") != Variable("x")
        assert Constant("1") != Null(1)
        assert Variable("n1") != Null(1)

    def test_terms_are_hashable(self):
        s = {Constant("a"), Variable("a"), Null(0)}
        assert len(s) == 3

    def test_str_forms_are_distinct(self):
        assert str(Constant("a")) == "a"
        assert str(Variable("x")) == "?x"
        assert str(Null(7)) == "_:n7"


class TestNullFactory:
    def test_fresh_nulls_are_distinct(self):
        f = NullFactory()
        assert f.fresh() != f.fresh()

    def test_factory_is_deterministic(self):
        assert NullFactory().fresh() == NullFactory().fresh()

    def test_start_offset(self):
        f = NullFactory(start=10)
        assert f.fresh() == Null(10)


class TestPredicatesAndCollectors:
    def test_kind_predicates(self):
        assert is_constant(Constant("a"))
        assert is_variable(Variable("x"))
        assert is_null(Null(0))
        assert not is_constant(Variable("a"))
        assert not is_variable(Null(0))
        assert not is_null(Constant("0"))

    def test_collectors(self):
        terms = [Constant("a"), Variable("x"), Null(0), Variable("y")]
        assert variables_of(terms) == {Variable("x"), Variable("y")}
        assert constants_of(terms) == {Constant("a")}
