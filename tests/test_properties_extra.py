"""Second wave of property-based tests: trees, automata, reductions, apps.

These tie the subsystems together: random tree-shaped databases round-trip
through the Γ_{S,l} encoding, the query automaton agrees with direct
evaluation on every encoding, the Prop-5/6 reductions agree with direct
evaluation, and federated evaluation agrees with centralized evaluation
exactly when the distribution verdict promises it.
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.automata import consistency_automaton, query_automaton
from repro.containment.dispatch import contains
from repro.containment.result import Verdict
from repro.core.atoms import Atom
from repro.core.homomorphism import instance_homomorphism
from repro.core.instance import Instance
from repro.core.omq import OMQ
from repro.core.parser import parse_cq, parse_tgds
from repro.core.queries import CQ
from repro.core.schema import Schema
from repro.core.terms import Constant, Null, Variable
from repro.evaluation import evaluate_omq
from repro.reductions import eval_to_containment, eval_to_non_containment
from repro.trees import decode_tree, encode_ctree, is_consistent


# ---------------------------------------------------------------------------
# Random tree-shaped databases: a core edge plus a random tree of R-edges.
# ---------------------------------------------------------------------------


@st.composite
def ctree_databases(draw):
    n_extra = draw(st.integers(min_value=0, max_value=5))
    constants = [Constant("a"), Constant("b")]
    atoms = [Atom("R", (constants[0], constants[1]))]
    domain = list(constants)
    for i in range(n_extra):
        parent = draw(st.sampled_from(domain))
        child = Constant(f"t{i}")
        domain.append(child)
        atoms.append(Atom("R", (parent, child)))
        if draw(st.booleans()):
            atoms.append(Atom("P", (child,)))
    if draw(st.booleans()):
        atoms.append(Atom("P", (constants[0],)))
    db = Instance.of(atoms)
    core = db.induced_by(set(constants))
    return db, core


class TestEncodingProperties:
    @given(ctree_databases())
    @settings(max_examples=40, deadline=None)
    def test_encode_is_consistent(self, pair):
        db, core = pair
        tree, alphabet = encode_ctree(db, core)
        assert is_consistent(tree, alphabet)

    @given(ctree_databases())
    @settings(max_examples=40, deadline=None)
    def test_encode_decode_hom_equivalent(self, pair):
        db, core = pair
        tree, alphabet = encode_ctree(db, core)
        decoded, decoded_core = decode_tree(tree, alphabet)
        assert len(decoded) == len(db)
        assert len(decoded_core) == len(core)

        def nullified(instance):
            mapping = {
                c: Null(i)
                for i, c in enumerate(sorted(instance.constants(), key=str))
            }
            return instance.rename(mapping)

        assert instance_homomorphism(nullified(decoded), nullified(db))
        assert instance_homomorphism(nullified(db), nullified(decoded))

    @given(ctree_databases())
    @settings(max_examples=30, deadline=None)
    def test_consistency_automaton_accepts_every_encoding(self, pair):
        db, core = pair
        tree, alphabet = encode_ctree(db, core)
        assert consistency_automaton(alphabet).accepts(tree)

    @given(
        ctree_databases(),
        st.sampled_from(
            ["q() :- R(x, y)", "q() :- P(x)", "q() :- R(x, x)",
             "q() :- R(x, y), P(z)"]
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_query_automaton_agrees_with_evaluation(self, pair, query_text):
        db, core = pair
        query = parse_cq(query_text)
        tree, alphabet = encode_ctree(db, core)
        automaton = query_automaton(query, alphabet)
        decoded, _ = decode_tree(tree, alphabet)
        assert automaton.accepts(tree) == bool(query.evaluate(decoded))


# ---------------------------------------------------------------------------
# Reduction properties (Props 5 and 6) over random inputs.
# ---------------------------------------------------------------------------

SCHEMA = Schema.of(A=1, E=2)
# Non-recursive, so both reduction directions are decided by the *exact*
# procedures (the starred Σ of Prop 6 stays NR after fact-tgd extension);
# a recursive Σ would leave the CONTAINED direction honestly UNKNOWN.
SIGMA = parse_tgds("A(x) -> B(x)\nE(x, y), B(x) -> C(y)")
QUERY = parse_cq("q(x) :- C(x)")
CONSTANTS = [Constant(c) for c in "abc"]

ground_atoms = st.one_of(
    st.builds(lambda c: Atom("A", (c,)), st.sampled_from(CONSTANTS)),
    st.builds(
        lambda c, d: Atom("E", (c, d)),
        st.sampled_from(CONSTANTS),
        st.sampled_from(CONSTANTS),
    ),
)
random_dbs = st.frozensets(ground_atoms, min_size=1, max_size=5).map(Instance)


class TestReductionProperties:
    @given(random_dbs, st.sampled_from(CONSTANTS))
    @settings(max_examples=30, deadline=None)
    def test_prop5_agrees(self, db, c):
        assume(c in db.domain())
        omq = OMQ(SCHEMA, SIGMA, QUERY)
        direct = (c,) in evaluate_omq(omq, db).answers
        q1, q2 = eval_to_containment(omq, db, (c,))
        result = contains(q1, q2)
        assert result.decided and result.is_contained is direct

    @given(random_dbs, st.sampled_from(CONSTANTS))
    @settings(max_examples=30, deadline=None)
    def test_prop6_agrees(self, db, c):
        assume(c in db.domain())
        omq = OMQ(SCHEMA, SIGMA, QUERY)
        direct = (c,) in evaluate_omq(omq, db).answers
        q1, q2 = eval_to_non_containment(omq, db, (c,))
        result = contains(q1, q2)
        assert result.decided and result.is_contained is (not direct)


# ---------------------------------------------------------------------------
# Distribution over components: verdicts guarantee federated agreement.
# ---------------------------------------------------------------------------


class TestDistributionProperties:
    @given(random_dbs)
    @settings(max_examples=30, deadline=None)
    def test_connected_query_federates_exactly(self, db):
        assume(len(db) > 0)
        from repro.applications import evaluate_distributed

        omq = OMQ(SCHEMA, SIGMA, QUERY)  # connected query: distributes
        central = evaluate_omq(omq, db).answers
        federated = evaluate_distributed(omq, db)
        assert central == federated

    @given(random_dbs)
    @settings(max_examples=30, deadline=None)
    def test_federated_is_always_sound(self, db):
        from repro.applications import evaluate_distributed

        omq = OMQ(SCHEMA, SIGMA, parse_cq("q() :- B(x), B(y)"))
        central = evaluate_omq(omq, db).answers
        federated = evaluate_distributed(omq, db)
        assert federated <= central  # never invents answers


# ---------------------------------------------------------------------------
# Minimization properties.
# ---------------------------------------------------------------------------


class TestMinimizationProperties:
    @given(random_dbs)
    @settings(max_examples=25, deadline=None)
    def test_minimized_query_is_equivalent(self, db):
        from repro.optimize import minimize_query

        omq = OMQ(SCHEMA, SIGMA, parse_cq("q(x) :- B(x), A(x)"))
        minimized, _ = minimize_query(omq)
        assert (
            evaluate_omq(omq, db).answers
            == evaluate_omq(minimized, db).answers
        )
