"""Tests for repro.obs.profile: aggregation, diffing, gating, CLI."""

import json

import pytest

from repro import obs
from repro.obs.profile import (
    DEFAULT_MIN_CHANGE_PCT,
    DEFAULT_NOISE_FLOOR_PCT,
    PROFILE_VERSION,
    ProfileAccumulator,
    _Reservoir,
    build_profile,
    diff_regressions,
    format_diff,
    format_profile,
    inflate_phase,
    load_profile,
    profile_diff,
    resolve_noise_floor,
)


def span(name, start, dur, self_s=None, attrs=None, counters=None,
         children=(), span_id=None):
    node = {
        "id": span_id or f"{name}-{start}",
        "name": name,
        "pid": 1,
        "tid": 1,
        "start": float(start),
        "dur_s": float(dur),
        "self_s": float(dur if self_s is None else self_s),
    }
    if attrs:
        node["attrs"] = dict(attrs)
    if counters:
        node["counters"] = dict(counters)
    if children:
        node["children"] = list(children)
    return node


def decision(i, decide_s=0.1, chase_s=0.4, verdict="CONTAINED"):
    return span(
        "containment.decide", 10 * i, decide_s + chase_s, self_s=decide_s,
        attrs={"fragment": "guarded", "verdict": verdict, "method": "chase"},
        counters={"chase.facts": 10},
        children=[span("chase.run", 10 * i + decide_s / 2, chase_s)],
        span_id=f"d{i}",
    )


class TestAccumulator:
    def test_counts_sums_and_shares(self):
        profile = build_profile([decision(i) for i in range(4)])
        assert profile["profile_version"] == PROFILE_VERSION
        assert profile["decisions"] == 4
        spans = profile["spans"]
        assert spans["containment.decide"]["count"] == 4
        assert spans["chase.run"]["self"]["sum_s"] == pytest.approx(1.6)
        assert spans["chase.run"]["self_share"] == pytest.approx(0.8)
        assert spans["containment.decide"]["self_share"] == pytest.approx(0.2)
        # Ordered hottest-first by self time.
        assert list(spans) == ["chase.run", "containment.decide"]
        assert profile["counters"] == {"chase.facts": 40}

    def test_total_vs_self_blocks(self):
        profile = build_profile([decision(0)])
        decide = profile["spans"]["containment.decide"]
        assert decide["total"]["sum_s"] == pytest.approx(0.5)
        assert decide["self"]["sum_s"] == pytest.approx(0.1)
        assert decide["total"]["min_s"] == decide["total"]["max_s"]

    def test_breakdowns_keyed_on_existing_attrs(self):
        roots = [decision(0), decision(1, verdict="NOT_CONTAINED")]
        profile = build_profile(roots)
        verdicts = profile["breakdowns"]["verdict"]
        assert verdicts["CONTAINED"]["count"] == 1
        assert verdicts["NOT_CONTAINED"]["count"] == 1
        assert profile["breakdowns"]["fragment"]["guarded"]["count"] == 2
        assert profile["breakdowns"]["method"]["chase"][
            "mean_s"
        ] == pytest.approx(0.5)

    def test_decision_block_covers_root_durations(self):
        profile = build_profile([decision(0), decision(1, chase_s=0.9)])
        assert profile["decision"]["count"] == 2
        assert profile["decision"]["total"]["max_s"] == pytest.approx(1.0)

    def test_percentiles_from_samples(self):
        acc = ProfileAccumulator()
        for i in range(100):
            acc.add_root(span("phase", i, (i + 1) / 100.0))
        doc = acc.profile()["spans"]["phase"]
        assert doc["self"]["p50_s"] == pytest.approx(0.5, abs=0.02)
        assert doc["self"]["p95_s"] == pytest.approx(0.95, abs=0.02)
        assert doc["self"]["p99_s"] == pytest.approx(0.99, abs=0.02)

    def test_reservoir_decimation_bounds_memory(self):
        res = _Reservoir(64)
        for i in range(100_000):
            res.add(float(i))
        assert len(res.samples) < 64
        assert res.seen == 100_000
        # Decimation is deterministic and keeps the spread.
        assert min(res.samples) < 10_000 and max(res.samples) > 90_000

    def test_percentiles_stay_sane_after_decimation(self):
        acc = ProfileAccumulator(max_samples_per_name=32)
        for i in range(10_000):
            acc.add_root(span("phase", i, (i % 100 + 1) / 100.0))
        doc = acc.profile()["spans"]["phase"]
        assert doc["count"] == 10_000  # counts stay exact
        assert 0.3 <= doc["self"]["p50_s"] <= 0.7

    def test_meta_rides_on_the_document(self):
        profile = build_profile([decision(0)], meta={"workload": "w"})
        assert profile["meta"]["workload"] == "w"

    def test_empty_profile(self):
        profile = build_profile([])
        assert profile["decisions"] == 0
        assert profile["spans"] == {}
        assert "decision" not in profile


class TestDiff:
    def _profiles(self, old_chase=0.4, new_chase=0.4, floor=None):
        meta = {"noise_floor_pct": floor} if floor is not None else None
        old = build_profile(
            [decision(i, chase_s=old_chase) for i in range(4)], meta=meta
        )
        new = build_profile(
            [decision(i, chase_s=new_chase) for i in range(4)], meta=meta
        )
        return old, new

    def test_identical_profiles_have_no_significant_changes(self):
        old, new = self._profiles()
        diff = profile_diff(old, new)
        assert diff["summary"]["regressed"] == []
        assert diff["summary"]["improved"] == []
        for entry in diff["phases"].values():
            assert entry["verdict"] in ("unchanged", "negligible")

    def test_regression_beyond_threshold_is_flagged(self):
        old, new = self._profiles(old_chase=0.4, new_chase=1.2)
        diff = profile_diff(old, new, metric="self_mean")
        entry = diff["phases"]["chase.run"]
        assert entry["verdict"] == "regressed"
        assert entry["change_pct"] == pytest.approx(200.0, abs=0.5)
        assert entry["self_mean_ratio"] == pytest.approx(3.0, rel=1e-6)
        assert "chase.run" in diff["summary"]["regressed"]

    def test_improvement_is_flagged(self):
        old, new = self._profiles(old_chase=1.2, new_chase=0.4)
        diff = profile_diff(old, new, metric="self_mean")
        assert diff["phases"]["chase.run"]["verdict"] == "improved"

    def test_noise_floor_widens_the_gate(self):
        # +30% on the chase: significant at a quiet 5% floor, gated out
        # when the measured floor is 20% (threshold 2×20 = 40%).
        old, new = self._profiles(old_chase=0.4, new_chase=0.52)
        quiet = profile_diff(old, new, metric="self_mean",
                             noise_floor_pct=5.0)
        noisy = profile_diff(old, new, metric="self_mean",
                             noise_floor_pct=20.0)
        assert quiet["phases"]["chase.run"]["verdict"] == "regressed"
        assert noisy["phases"]["chase.run"]["verdict"] == "unchanged"
        assert noisy["threshold_pct"] == pytest.approx(40.0)

    def test_noise_floor_resolution_order(self):
        old, new = self._profiles(floor=7.0)
        assert resolve_noise_floor(old, new) == pytest.approx(7.0)
        assert resolve_noise_floor(old, new, 3.0) == pytest.approx(3.0)
        bare_old, bare_new = self._profiles()
        assert resolve_noise_floor(bare_old, bare_new) == pytest.approx(
            DEFAULT_NOISE_FLOOR_PCT
        )
        # The noisier side wins when both profiles measured a floor.
        noisy = build_profile([decision(0)], meta={"noise_floor_pct": 12.0})
        assert resolve_noise_floor(old, noisy) == pytest.approx(12.0)

    def test_min_change_floor_applies_on_quiet_machines(self):
        old, new = self._profiles()
        diff = profile_diff(old, new, noise_floor_pct=0.5)
        assert diff["threshold_pct"] == pytest.approx(DEFAULT_MIN_CHANGE_PCT)

    def test_added_and_removed_phases(self):
        old = build_profile([decision(0)])
        new = build_profile(
            [decision(0), span("guarded.refutation", 50, 0.3)]
        )
        diff = profile_diff(old, new)
        assert diff["phases"]["guarded.refutation"]["verdict"] == "added"
        reverse = profile_diff(new, old)
        assert reverse["phases"]["guarded.refutation"]["verdict"] == "removed"

    def test_negligible_phases_never_gate(self):
        old = build_profile([span("tiny", 0, 0.0004)])
        new = build_profile([span("tiny", 0, 0.0016)])  # 4x, but sub-2ms
        diff = profile_diff(old, new, metric="self_mean")
        assert diff["phases"]["tiny"]["verdict"] == "negligible"
        assert diff_regressions(diff) == []

    def test_self_share_is_machine_speed_invariant(self):
        # The same workload on a 3x slower machine: every wall-time
        # metric triples, shares do not move.
        old = build_profile([decision(i) for i in range(4)])
        slow = build_profile(
            [decision(i, decide_s=0.3, chase_s=1.2) for i in range(4)]
        )
        diff = profile_diff(old, slow)  # default metric: self_share
        assert diff["summary"]["regressed"] == []
        wall = profile_diff(old, slow, metric="self_mean")
        assert set(wall["summary"]["regressed"]) == {
            "chase.run", "containment.decide",
        }

    def test_counter_changes_use_tight_tolerance(self):
        old = build_profile([decision(0)])
        new = build_profile([decision(0, verdict="NOT_CONTAINED")])
        new["counters"]["chase.facts"] = 15
        diff = profile_diff(old, new)
        assert diff["counters"]["chase.facts"]["verdict"] == "changed"
        same = profile_diff(old, old)
        assert same["counters"]["chase.facts"]["verdict"] == "unchanged"

    def test_unknown_metric_rejected(self):
        old, new = self._profiles()
        with pytest.raises(ValueError, match="unknown diff metric"):
            profile_diff(old, new, metric="wall_clock")

    def test_diff_regressions_gate_threshold(self):
        old, new = self._profiles(old_chase=0.4, new_chase=1.2)  # +200%
        diff = profile_diff(old, new, metric="self_mean")
        assert diff_regressions(diff, 75.0) == [
            ("chase.run", pytest.approx(200.0, abs=0.5))
        ]
        assert diff_regressions(diff, 500.0) == []


class TestInflatePhase:
    def test_inflation_recomputes_shares(self):
        profile = build_profile([decision(i) for i in range(4)])
        bad = inflate_phase(profile, "chase.run", 10.0)
        assert bad["spans"]["chase.run"]["self"]["mean_s"] == pytest.approx(
            10 * profile["spans"]["chase.run"]["self"]["mean_s"]
        )
        shares = [s["self_share"] for s in bad["spans"].values()]
        assert sum(shares) == pytest.approx(1.0)
        assert bad["meta"]["synthetic_regression"]["factor"] == 10.0
        # The original is untouched.
        assert profile["spans"]["chase.run"]["self_share"] == pytest.approx(
            0.8
        )

    def test_inflated_profile_trips_every_metric(self):
        profile = build_profile([decision(i) for i in range(4)])
        bad = inflate_phase(profile, "containment.decide", 10.0)
        for metric in ("self_share", "self_mean", "total_mean"):
            diff = profile_diff(profile, bad, metric=metric)
            assert "containment.decide" in diff["summary"]["regressed"], (
                metric
            )

    def test_unknown_phase_rejected(self):
        profile = build_profile([decision(0)])
        with pytest.raises(ValueError, match="no phase"):
            inflate_phase(profile, "nonexistent", 2.0)


class TestLoadProfile:
    def test_loads_profile_document(self, tmp_path):
        profile = build_profile([decision(0)])
        path = tmp_path / "p.json"
        path.write_text(json.dumps(profile))
        assert load_profile(str(path))["spans"].keys() == profile[
            "spans"
        ].keys()

    def test_builds_from_trace_files(self, tmp_path):
        roots = [decision(i) for i in range(2)]
        jsonl = tmp_path / "t.jsonl"
        obs.write_jsonl(roots, str(jsonl))
        profile = load_profile(str(jsonl))
        assert profile["decisions"] == 2
        assert profile["meta"]["source"] == str(jsonl)
        chrome = tmp_path / "t.json"
        obs.write_chrome_trace(roots, str(chrome))
        assert load_profile(str(chrome))["decisions"] == 2

    def test_rejects_future_versions(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"profile_version": 99, "spans": {}}))
        with pytest.raises(ValueError, match="profile version 99"):
            load_profile(str(path))


class TestRendering:
    def test_format_profile_lists_phases_and_breakdowns(self):
        profile = build_profile([decision(i) for i in range(3)])
        text = format_profile(profile)
        assert "3 decision(s)" in text
        assert "chase.run" in text and "containment.decide" in text
        assert "80.0%" in text
        assert "by verdict: CONTAINED" in text

    def test_format_profile_top_limits_rows(self):
        profile = build_profile([decision(0)])
        text = format_profile(profile, top=1)
        assert "chase.run" in text
        assert "containment.decide\n" not in text

    def test_format_diff_orders_significant_first(self):
        old = build_profile([decision(i) for i in range(4)])
        bad = inflate_phase(old, "containment.decide", 10.0)
        text = format_diff(profile_diff(old, bad, metric="self_mean"))
        assert text.index("containment.decide") < text.index("chase.run")
        assert "regressed" in text and "significance threshold" in text


class TestProfileCLI:
    def _trace(self, tmp_path, chase_s=0.4, name="t.jsonl"):
        path = tmp_path / name
        obs.write_jsonl(
            [decision(i, chase_s=chase_s) for i in range(3)], str(path)
        )
        return str(path)

    def test_profile_builds_and_writes(self, tmp_path, capsys):
        from repro.cli import main

        trace = self._trace(tmp_path)
        out = tmp_path / "p.json"
        rc = main([
            "profile", trace, "--out", str(out), "--workload", "demo",
            "--noise-floor", "3",
        ])
        assert rc == 0
        assert "chase.run" in capsys.readouterr().out
        profile = json.loads(out.read_text())
        assert profile["decisions"] == 3
        assert profile["meta"]["workload"] == "demo"
        assert profile["meta"]["noise_floor_pct"] == 3

    def test_profile_json_output(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["profile", self._trace(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["profile_version"] == PROFILE_VERSION

    def test_profile_rejects_garbage_input(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        assert main(["profile", str(bad)]) == 2
        assert "cannot load trace" in capsys.readouterr().err

    def test_diff_passes_on_identical_traces(self, tmp_path, capsys):
        from repro.cli import main

        trace = self._trace(tmp_path)
        rc = main([
            "profile", "diff", trace, trace, "--fail-on-regression", "75",
        ])
        assert rc == 0
        assert "no phase regressed" in capsys.readouterr().err

    def test_diff_gate_trips_on_regression(self, tmp_path, capsys):
        from repro.cli import main

        old = self._trace(tmp_path, chase_s=0.4, name="old.jsonl")
        new = self._trace(tmp_path, chase_s=1.6, name="new.jsonl")
        report = tmp_path / "diff.json"
        rc = main([
            "profile", "diff", old, new, "--metric", "self_mean",
            "--report", str(report), "--fail-on-regression", "75",
        ])
        assert rc == 1
        captured = capsys.readouterr()
        assert "FAIL: phase 'chase.run' regressed" in captured.err
        doc = json.loads(report.read_text())
        assert "chase.run" in doc["summary"]["regressed"]

    def test_diff_without_gate_reports_and_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        old = self._trace(tmp_path, chase_s=0.4, name="old.jsonl")
        new = self._trace(tmp_path, chase_s=1.6, name="new.jsonl")
        rc = main(["profile", "diff", old, new, "--metric", "self_mean"])
        assert rc == 0
        assert "regressed" in capsys.readouterr().out

    def test_diff_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["profile", "diff", "only-one"]) == 2
        assert "usage" in capsys.readouterr().err
