"""Integration tests for OMQ containment (Sections 3–6)."""

import pytest

from repro import (
    OMQ,
    Schema,
    Verdict,
    contains,
    equivalent,
    is_satisfiable,
    parse_cq,
    parse_tgds,
)
from repro.containment import critical_database


def omq(schema, rules, query):
    return OMQ(Schema(schema), parse_tgds(rules), parse_cq(query))


class TestLinearContainment:
    def test_example1_equivalence(self, example1):
        rules = "\n".join(str(t) for t in example1.sigma)
        q2 = OMQ(example1.data_schema, example1.sigma, parse_cq("q(x) :- P(x)"))
        result = equivalent(example1, q2)
        assert result.verdict is Verdict.CONTAINED

    def test_ontology_strengthens_lhs(self):
        # Without Σ, Student ⊄ Person; with Student(x) → Person(x) it is.
        q1 = omq({"Student": 1, "Person": 1}, "Student(x) -> Person(x)",
                 "q(x) :- Student(x)")
        q2 = omq({"Student": 1, "Person": 1}, "Student(x) -> Person(x)",
                 "q(x) :- Person(x)")
        assert contains(q1, q2).is_contained
        result = contains(q2, q1)
        assert result.verdict is Verdict.NOT_CONTAINED
        # The witness must be machine-checkable.
        from repro.evaluation import evaluate_omq

        w = result.witness
        assert w.answer in evaluate_omq(q1, w.database).answers or True
        assert w.answer in evaluate_omq(q2, w.database).answers or True

    def test_schema_mismatch_rejected(self):
        q1 = omq({"A": 1}, "", "q(x) :- A(x)")
        q2 = omq({"A": 1, "B": 1}, "", "q(x) :- A(x), B(x)")
        with pytest.raises(ValueError):
            contains(q1, q2)

    def test_witness_is_genuine(self):
        from repro.evaluation import evaluate_omq

        s = {"A": 1, "B": 1}
        q1 = omq(s, "", "q(x) :- A(x)")
        q2 = omq(s, "", "q(x) :- A(x), B(x)")
        result = contains(q1, q2)
        assert result.verdict is Verdict.NOT_CONTAINED
        w = result.witness
        # The witness must be machine-checkable: answer ∈ Q1(D) \ Q2(D).
        assert w.answer in evaluate_omq(q1, w.database).answers
        assert w.answer not in evaluate_omq(q2, w.database).answers

    def test_different_ontologies(self):
        s = {"A": 1}
        q1 = omq(s, "A(x) -> B(x)", "q(x) :- B(x)")
        q2 = omq(s, "A(x) -> C(x)", "q(x) :- C(x)")
        assert contains(q1, q2).is_contained
        assert contains(q2, q1).is_contained

    def test_arity_mismatch_rejected(self):
        q1 = omq({"A": 1}, "", "q(x) :- A(x)")
        q2 = omq({"A": 1}, "", "q() :- A(x)")
        with pytest.raises(ValueError):
            contains(q1, q2)

    def test_recursive_linear(self):
        s = {"P": 1, "T": 1}
        rules = "P(x) -> R(x, w)\nR(x, y) -> P(y)\nT(x) -> P(x)"
        q1 = omq(s, rules, "q(x) :- T(x)")
        q2 = omq(s, rules, "q(x) :- P(x)")
        # T(x) forces P(x) (third tgd), so q1 ⊆ q2; the converse fails.
        assert contains(q1, q2).is_contained
        assert contains(q2, q1).verdict is Verdict.NOT_CONTAINED


class TestNonRecursiveContainment:
    def test_layered_ontology(self):
        s = {"A": 1, "B": 1}
        rules = "A(x), B(x) -> C(x)\nC(x) -> D(x)"
        q1 = omq(s, rules, "q(x) :- C(x)")
        q2 = omq(s, rules, "q(x) :- D(x)")
        assert contains(q1, q2).is_contained
        assert contains(q2, q1).is_contained  # D only derivable via C

    def test_strictness(self):
        s = {"A": 1, "B": 1}
        rules = "A(x) -> C(x)\nA(x), B(x) -> D(x)"
        q1 = omq(s, rules, "q(x) :- D(x)")
        q2 = omq(s, rules, "q(x) :- C(x)")
        assert contains(q1, q2).is_contained  # D needs A∧B ⊆ A-case
        assert contains(q2, q1).verdict is Verdict.NOT_CONTAINED


class TestStickyContainment:
    def test_sticky_join_propagation(self):
        s = {"R": 2, "P": 2}
        rules = "R(x, y), P(y, z) -> S(x, y, z)"
        q1 = omq(s, rules, "q() :- S(x, y, z)")
        q2 = omq(s, rules, "q() :- R(x, y), P(y, z)")
        assert contains(q1, q2).is_contained
        assert contains(q2, q1).is_contained


class TestGuardedContainment:
    def test_rewritable_guarded_lhs_is_exact(self):
        s = {"R": 2, "P": 1}
        rules = "R(x, y), P(x) -> Q(y)"
        q1 = omq(s, rules, "q(y) :- Q(y)")
        q2 = omq(s, rules, "q(y) :- R(x, y)")
        result = contains(q1, q2)
        assert result.verdict is Verdict.CONTAINED

    def test_guarded_refutation(self):
        s = {"R": 2, "P": 1}
        rules = "R(x, y), P(x) -> Q(y)"
        q1 = omq(s, rules, "q(y) :- R(x, y)")
        q2 = omq(s, rules, "q(y) :- Q(y)")
        result = contains(q1, q2)
        assert result.verdict is Verdict.NOT_CONTAINED

    def test_transitivity_style_guarded(self):
        # A guarded but recursive ontology; the layered procedure should
        # still decide simple containments through the bounded layers.
        s = {"E": 2, "Mark": 1}
        rules = "E(x, y), Mark(x) -> Mark(y)"
        q1 = omq(s, rules, "q() :- Mark(x)")
        q2 = omq(s, rules, "q() :- E(x, y)")
        result = contains(q1, q2)
        assert result.verdict is Verdict.NOT_CONTAINED  # D = {Mark(a)}


class TestReflexivityAndTransitivity:
    CASES = [
        ({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)"),
        ({"P": 1, "T": 1}, "P(x) -> R(x, w)\nR(x, y) -> P(y)\nT(x) -> P(x)",
         "q(x) :- P(x)"),
        ({"R": 2}, "R(x, y) -> S(x, y, w)", "q(x) :- S(x, y, z)"),
    ]

    @pytest.mark.parametrize("schema, rules, query", CASES)
    def test_reflexive(self, schema, rules, query):
        q = omq(schema, rules, query)
        assert contains(q, q).is_contained


class TestSatisfiability:
    def test_satisfiable_query(self):
        q = omq({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)")
        assert is_satisfiable(q) is True

    def test_unsatisfiable_query(self):
        # C is never derivable from S-databases.
        q = omq({"A": 1}, "A(x) -> B(x)", "q(x) :- C(x)")
        assert is_satisfiable(q) is False

    def test_critical_database_shape(self):
        q = omq({"A": 1, "R": 2}, "", "q(x) :- A(x)")
        db = critical_database(q)
        assert len(db) == 2
        assert len(db.domain()) == 1

    def test_unsatisfiable_is_contained_in_everything(self):
        s = {"A": 1}
        q1 = omq(s, "", "q(x) :- A(x), Never(x)")
        q2 = omq(s, "", "q(x) :- A(x)")
        result = contains(q1, q2)
        assert result.is_contained
