"""Property-based tests (hypothesis) for the core invariants.

The strategies build small random vocabularies: a couple of unary/binary
predicates, a handful of constants and variables.  Sizes are kept small so
each property runs hundreds of scenarios in seconds.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.chase import chase
from repro.containment.cq import cq_contained_in
from repro.core.atoms import Atom
from repro.core.homomorphism import (
    find_homomorphism,
    homomorphisms,
    instance_homomorphism,
)
from repro.core.instance import Instance
from repro.core.omq import OMQ
from repro.core.queries import CQ
from repro.core.schema import Schema
from repro.core.terms import Constant, Variable
from repro.core.tgd import TGD
from repro.evaluation import evaluate_omq
from repro.rewriting.unification import mgu
from repro.rewriting.xrewrite import xrewrite

SCHEMA = Schema.of(R=2, P=1, Q=1)
CONSTANTS = [Constant(c) for c in "abcd"]
VARIABLES = [Variable(v) for v in "xyzuvw"]


def atoms_strategy(terms, predicates=(("R", 2), ("P", 1), ("Q", 1))):
    def build(draw):
        name, arity = draw(st.sampled_from(predicates))
        args = tuple(draw(st.sampled_from(terms)) for _ in range(arity))
        return Atom(name, args)

    return st.composite(lambda draw: build(draw))()


ground_atoms = atoms_strategy(CONSTANTS)
databases = st.frozensets(ground_atoms, min_size=0, max_size=6).map(Instance)
query_atoms = atoms_strategy(VARIABLES + CONSTANTS[:1])
boolean_cqs = st.lists(query_atoms, min_size=1, max_size=4).map(
    lambda body: CQ((), tuple(body), "q")
)


@st.composite
def nr_tgds(draw):
    """A small random non-recursive single-head tgd over a layered alphabet.

    Bodies use layer-i predicates, heads layer-(i+1): acyclicity for free.
    """
    layer = draw(st.integers(min_value=0, max_value=1))
    body_preds = [(f"R{layer}", 2), (f"P{layer}", 1)]
    head_preds = [(f"R{layer+1}", 2), (f"P{layer+1}", 1)]
    n_body = draw(st.integers(min_value=1, max_value=2))
    body = []
    for _ in range(n_body):
        name, arity = draw(st.sampled_from(body_preds))
        args = tuple(
            draw(st.sampled_from(VARIABLES[:4])) for _ in range(arity)
        )
        body.append(Atom(name, args))
    body_vars = sorted(
        {t for a in body for t in a.args if isinstance(t, Variable)},
        key=lambda v: v.name,
    )
    name, arity = draw(st.sampled_from(head_preds))
    head_terms = []
    for _ in range(arity):
        use_existential = draw(st.booleans())
        if use_existential or not body_vars:
            # Two existential names so heads like R(e,e), R(e,f) both arise
            # (the repeated-existential case caught a real soundness bug).
            head_terms.append(
                Variable(draw(st.sampled_from(["fresh_e", "fresh_f"])))
            )
        else:
            head_terms.append(draw(st.sampled_from(body_vars)))
    return TGD(tuple(body), (Atom(name, tuple(head_terms)),))


nr_ontologies = st.lists(nr_tgds(), min_size=1, max_size=3)

layered_ground_atoms = atoms_strategy(
    CONSTANTS, (("R0", 2), ("P0", 1))
)
layered_databases = st.frozensets(
    layered_ground_atoms, min_size=0, max_size=5
).map(Instance)


class TestHomomorphismProperties:
    @given(databases, databases)
    @settings(max_examples=60, deadline=None)
    def test_subset_implies_homomorphism(self, d1, d2):
        union = d1 | d2
        assert instance_homomorphism(d1, union) is not None

    @given(databases)
    @settings(max_examples=60, deadline=None)
    def test_identity_homomorphism(self, db):
        assert instance_homomorphism(db, db) is not None

    @given(boolean_cqs, databases, databases)
    @settings(max_examples=60, deadline=None)
    def test_cq_evaluation_monotone(self, q, d1, d2):
        assert q.evaluate(d1) <= q.evaluate(d1 | d2)

    @given(boolean_cqs, databases)
    @settings(max_examples=60, deadline=None)
    def test_all_homomorphisms_are_homomorphisms(self, q, db):
        for h in homomorphisms(q.body, db):
            for a in q.body:
                assert a.substitute(h) in db


class TestMGUProperties:
    @given(st.lists(atoms_strategy(VARIABLES), min_size=1, max_size=3))
    @settings(max_examples=80, deadline=None)
    def test_mgu_unifies(self, atoms):
        same_pred = [a for a in atoms if a.predicate == atoms[0].predicate
                     and a.arity == atoms[0].arity]
        sub = mgu(same_pred)
        if sub is not None:
            images = {a.substitute(sub) for a in same_pred}
            assert len(images) == 1


class TestChaseProperties:
    @given(nr_ontologies, layered_databases)
    @settings(max_examples=30, deadline=None)
    def test_chase_extends_database(self, sigma, db):
        result = chase(db, sigma, max_steps=2_000)
        assert db <= result.instance

    @given(nr_ontologies, layered_databases)
    @settings(max_examples=30, deadline=None)
    def test_chase_satisfies_sigma(self, sigma, db):
        result = chase(db, sigma, max_steps=2_000)
        for rule in sigma:
            for h in homomorphisms(rule.body, result.instance):
                frontier = {v: h[v] for v in rule.frontier()}
                assert (
                    find_homomorphism(rule.head, result.instance, frontier)
                    is not None
                )

    @given(nr_ontologies, layered_databases)
    @settings(max_examples=20, deadline=None)
    def test_restricted_embeds_into_oblivious(self, sigma, db):
        restricted = chase(db, sigma, max_steps=2_000)
        oblivious = chase(db, sigma, policy="oblivious", max_steps=2_000)
        assert (
            instance_homomorphism(restricted.instance, oblivious.instance)
            is not None
        )


class TestChandraMerlinProperties:
    @given(boolean_cqs, boolean_cqs, databases)
    @settings(max_examples=60, deadline=None)
    def test_containment_sound_on_samples(self, q1, q2, db):
        if cq_contained_in(q1, q2):
            assert q1.evaluate(db) <= q2.evaluate(db)

    @given(boolean_cqs, boolean_cqs)
    @settings(max_examples=60, deadline=None)
    def test_non_containment_has_canonical_counterexample(self, q1, q2):
        if not cq_contained_in(q1, q2):
            db, canonical = q1.canonical_database()
            assert q1.holds_in(db, canonical)
            assert not q2.holds_in(db, canonical)

    @given(boolean_cqs)
    @settings(max_examples=60, deadline=None)
    def test_reflexive(self, q):
        assert cq_contained_in(q, q)


class TestSignatureProperties:
    @given(boolean_cqs)
    @settings(max_examples=60, deadline=None)
    def test_signature_invariant_under_renaming(self, q):
        renamed = q.rename(
            {v: Variable(v.name + "_r") for v in q.variables()}
        )
        assert q.signature() == renamed.signature()
        assert q.is_isomorphic_to(renamed)


class TestRewritingProperties:
    @given(nr_ontologies, layered_databases)
    @settings(max_examples=20, deadline=None)
    def test_rewriting_agrees_with_chase(self, sigma, db):
        # Query the top layer; XRewrite answers must equal chase answers.
        query = CQ((), (Atom("P2", (Variable("x"),)),), "q")
        omq = OMQ(Schema.of(R0=2, P0=1), tuple(sigma), query)
        rewriting = xrewrite(omq, max_queries=4_000)
        if not rewriting.complete:
            return
        via_rewriting = rewriting.rewriting.evaluate(db)
        via_chase = query.evaluate(chase(db, sigma, max_steps=5_000).instance)
        assert via_rewriting == via_chase


class TestComponentProperties:
    @given(databases)
    @settings(max_examples=60, deadline=None)
    def test_components_partition_atoms(self, db):
        comps = db.components()
        total = Instance.empty()
        for c in comps:
            total = total | c
        assert total == db
        assert all(c.is_connected() for c in comps)

    @given(databases)
    @settings(max_examples=60, deadline=None)
    def test_components_are_domain_disjoint(self, db):
        comps = db.components()
        for i, c1 in enumerate(comps):
            for c2 in comps[i + 1:]:
                assert not (c1.domain() & c2.domain())


class TestEvaluationProperties:
    @given(nr_ontologies, layered_databases, layered_databases)
    @settings(max_examples=20, deadline=None)
    def test_certain_answers_monotone(self, sigma, d1, d2):
        query = CQ((), (Atom("P1", (Variable("x"),)),), "q")
        omq = OMQ(Schema.of(R0=2, P0=1), tuple(sigma), query)
        small = evaluate_omq(omq, d1, method="chase").answers
        big = evaluate_omq(omq, d1 | d2, method="chase").answers
        assert small <= big
