"""Unit tests for the text parser."""

import pytest

from repro.core.atoms import atom, fact
from repro.core.parser import (
    ParseError,
    parse_atom,
    parse_cq,
    parse_database,
    parse_tgd,
    parse_tgds,
    parse_ucq,
)
from repro.core.terms import Constant, Variable

x, y, w = Variable("x"), Variable("y"), Variable("w")


class TestAtomParsing:
    def test_variables_lowercase(self):
        assert parse_atom("R(x, y)") == atom("R", x, y)

    def test_numbers_are_constants(self):
        assert parse_atom("Bit(0)") == atom("Bit", Constant("0"))

    def test_quoted_constants(self):
        assert parse_atom("R('a', \"b\")") == fact("R", "a", "b")

    def test_zero_ary(self):
        assert parse_atom("Goal()") == atom("Goal")
        assert parse_atom("Goal") == atom("Goal")

    def test_uppercase_term_is_constant(self):
        # In term position an uppercase identifier denotes a constant.
        assert parse_atom("R(A)") == atom("R", Constant("A"))

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_atom("R(x) R(y)")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_atom("R(x$)")


class TestTGDParsing:
    def test_simple_tgd(self):
        t = parse_tgd("R(x, y) -> P(y)")
        assert t.body == (atom("R", x, y),)
        assert t.head == (atom("P", y),)
        assert t.is_full()

    def test_existential_inferred(self):
        t = parse_tgd("P(x) -> R(x, w)")
        assert t.existential_variables() == {w}

    def test_fact_tgd(self):
        t = parse_tgd("true -> Bit(0)")
        assert t.is_fact_tgd()
        t2 = parse_tgd("-> Bit(1)")
        assert t2.is_fact_tgd()

    def test_multi_atom_tgd(self):
        t = parse_tgd("R(x, y), P(y, z) -> T(x, y, w)")
        assert len(t.body) == 2
        assert t.frontier() == {x, y}

    def test_unicode_arrow(self):
        t = parse_tgd("R(x, y) → P(y)")
        assert t.head == (atom("P", y),)

    def test_program_with_comments(self):
        sigma = parse_tgds(
            """
            % a comment
            P(x) -> R(x, y)
            # another comment
            R(x, y) -> P(y)
            """
        )
        assert len(sigma) == 2

    def test_period_separated(self):
        sigma = parse_tgds("P(x) -> Q(x). Q(x) -> S(x).")
        assert len(sigma) == 2


class TestCQParsing:
    def test_with_head(self):
        q = parse_cq("q(x) :- R(x, y), P(y)")
        assert q.head == (x,)
        assert q.size() == 2
        assert q.name == "q"

    def test_boolean_bare_body(self):
        q = parse_cq("R(x, y), P(y)")
        assert q.is_boolean()

    def test_boolean_with_head(self):
        q = parse_cq("q() :- R(x, y)")
        assert q.is_boolean()

    def test_constant_in_head(self):
        q = parse_cq("q(0, x) :- Ans(0, x)")
        assert q.head == (Constant("0"), x)


class TestUCQParsing:
    def test_pipe_separated(self):
        q = parse_ucq("q(x) :- P(x) | q(x) :- T(x)")
        assert len(q) == 2

    def test_line_separated(self):
        q = parse_ucq("q(x) :- P(x)\nq(x) :- T(x)")
        assert len(q) == 2

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_ucq("   ")


class TestDatabaseParsing:
    def test_identifiers_become_constants(self):
        db = parse_database("R(a, b). P(b).")
        assert fact("R", "a", "b") in db
        assert fact("P", "b") in db

    def test_multiline(self):
        db = parse_database(
            """
            R(a, b)
            P(b)
            """
        )
        assert len(db) == 2

    def test_zero_ary_fact(self):
        db = parse_database("Goal()")
        assert atom("Goal") in db
