"""Round-trip tests for the text emitters."""

import pytest

from repro.core.atoms import atom, fact
from repro.core.instance import Instance
from repro.core.omq import OMQ
from repro.core.parser import (
    parse_cq,
    parse_database,
    parse_omq,
    parse_tgd,
    parse_tgds,
)
from repro.core.queries import CQ
from repro.core.schema import Schema
from repro.core.serialize import (
    cq_to_text,
    database_to_text,
    omq_to_document,
    tgd_to_text,
    tgds_to_text,
    ucq_to_text,
)
from repro.core.terms import Constant, Variable


class TestTGDRoundTrip:
    CASES = [
        "R(x, y) -> P(y)",
        "P(x) -> R(x, w)",
        "R(x, y), P(y, z) -> T(x, y, w)",
        "-> Bit(0)",
        "T(x) -> Ans(x, 1)",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_round_trip(self, text):
        original = parse_tgd(text)
        reparsed = parse_tgd(tgd_to_text(original))
        # Equal up to variable renaming: same shape after canonicalization.
        mapping = {
            v: Variable(f"n{i}")
            for i, v in enumerate(sorted(original.variables(), key=str))
        }
        mapping2 = {
            v: Variable(f"n{i}")
            for i, v in enumerate(sorted(reparsed.variables(), key=str))
        }
        assert len(original.body) == len(reparsed.body)
        assert len(original.head) == len(reparsed.head)
        assert original.rename(mapping).predicates() == reparsed.rename(
            mapping2
        ).predicates()

    def test_unsafe_variable_names_sanitized(self):
        rule = parse_tgd("R(x, y) -> P(y)").with_indexed_variables(3)
        text = tgd_to_text(rule)
        reparsed = parse_tgd(text)  # must not raise
        assert len(reparsed.body) == 1

    def test_constants_survive(self):
        rule = parse_tgd("T(x) -> Ans(x, 1)")
        reparsed = parse_tgd(tgd_to_text(rule))
        assert Constant("1") in reparsed.constants()

    def test_quoted_constants(self):
        rule = parse_tgd("T(x) -> Label(x, 'hello')")
        reparsed = parse_tgd(tgd_to_text(rule))
        assert Constant("hello") in reparsed.constants()

    def test_program_round_trip(self):
        sigma = parse_tgds("A(x) -> B(x)\nB(x) -> C(x, w)")
        reparsed = parse_tgds(tgds_to_text(sigma))
        assert len(reparsed) == 2


class TestCQRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "q(x) :- R(x, y), P(y)",
            "q() :- R(x, y)",
            "q(x, x) :- R(x, y)",
            "q(0, x) :- Ans(0, x)",
        ],
    )
    def test_round_trip_isomorphic(self, text):
        original = parse_cq(text)
        reparsed = parse_cq(cq_to_text(original))
        assert original.is_isomorphic_to(reparsed)

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            cq_to_text(CQ((), ()))

    def test_ucq_round_trip(self):
        from repro.core.parser import parse_ucq

        original = parse_ucq("q(x) :- P(x) | q(x) :- T(x)")
        reparsed = parse_ucq(ucq_to_text(original))
        assert len(reparsed) == 2


class TestDatabaseRoundTrip:
    def test_round_trip_exact(self):
        db = parse_database("R(a, b). P(b). Zero(0)")
        assert parse_database(database_to_text(db)) == db

    def test_odd_constant_names_quoted(self):
        db = Instance.of([atom("R", Constant("has space"))])
        assert parse_database(database_to_text(db)) == db

    def test_zero_ary_facts(self):
        db = Instance.of([atom("Goal")])
        assert parse_database(database_to_text(db)) == db

    def test_nulls_rejected(self):
        from repro.core.terms import Null

        db = Instance.of([atom("R", Null(0))])
        with pytest.raises(ValueError):
            database_to_text(db)


class TestOMQDocument:
    def test_document_round_trip(self):
        omq = OMQ(
            Schema.of(P=1, T=1),
            parse_tgds("P(x) -> R(x, w)\nT(x) -> P(x)"),
            parse_cq("q(x) :- R(x, y)"),
        )
        reparsed = parse_omq(omq_to_document(omq))
        assert reparsed.data_schema == omq.data_schema
        assert len(reparsed.sigma) == len(omq.sigma)
        assert reparsed.as_cq().is_isomorphic_to(omq.as_cq())

    def test_document_without_rules(self):
        omq = OMQ(Schema.of(A=1), (), parse_cq("q(x) :- A(x)"))
        reparsed = parse_omq(omq_to_document(omq))
        assert not reparsed.sigma

    def test_semantic_round_trip(self):
        from repro.evaluation import evaluate_omq

        omq = OMQ(
            Schema.of(P=1, T=1),
            parse_tgds("P(x) -> R(x, w)\nR(x, y) -> P(y)\nT(x) -> P(x)"),
            parse_cq("q(x) :- P(x)"),
        )
        reparsed = parse_omq(omq_to_document(omq))
        db = parse_database("T(alice). P(bob)")
        assert (
            evaluate_omq(omq, db).answers == evaluate_omq(reparsed, db).answers
        )


class TestStructuredJSON:
    """Lossless JSON round-trips for terms, atoms, instances, and
    containment results — the serving tier's wire shapes."""

    def test_term_round_trip(self):
        from repro.core.serialize import term_from_json, term_to_json
        from repro.core.terms import Null

        for term in (Constant("a"), Constant("odd name!"), Null(7)):
            assert term_from_json(term_to_json(term)) == term

    def test_variables_are_rejected(self):
        from repro.core.serialize import term_from_json, term_to_json

        with pytest.raises(ValueError):
            term_to_json(Variable("x"))
        with pytest.raises(ValueError):
            term_from_json({"variable": "x"})

    def test_atom_and_instance_round_trip(self):
        from repro.core.atoms import Atom
        from repro.core.serialize import (
            instance_from_json,
            instance_to_json,
        )
        from repro.core.terms import Null

        instance = Instance(
            frozenset(
                {
                    Atom("R", (Constant("a"), Null(1))),
                    Atom("P", (Null(1),)),
                    Atom("S", ()),
                }
            )
        )
        doc = instance_to_json(instance)
        assert instance_from_json(doc) == instance
        # Deterministic: serialization order is sorted, not set order.
        assert doc == instance_to_json(Instance(frozenset(instance.atoms)))

    def test_containment_result_round_trip_with_witness(self):
        from repro.containment.result import not_contained
        from repro.core.atoms import fact as mk_fact
        from repro.core.serialize import (
            containment_result_from_json,
            containment_result_to_json,
        )

        witnessed = not_contained(
            "ucq-rewriting",
            Instance(frozenset({mk_fact("R", "a", "b")})),
            (Constant("a"),),
            detail="rewriting disjunct 3",
        )
        doc = containment_result_to_json(witnessed)
        assert doc["verdict"] == "not-contained"
        assert doc["witness"]["database_text"]  # human-readable mirror
        restored = containment_result_from_json(doc)
        assert restored == witnessed

    def test_containment_result_round_trip_without_witness(self):
        from repro.containment.result import contained, unknown
        from repro.core.serialize import (
            containment_result_from_json,
            containment_result_to_json,
        )

        for result in (
            contained("tree-witness", detail="by chase termination"),
            unknown("engine-pool", detail="deadline"),
        ):
            doc = containment_result_to_json(result)
            assert containment_result_from_json(doc) == result

    def test_witness_with_nulls_survives(self):
        from repro.containment.result import not_contained
        from repro.core.atoms import Atom
        from repro.core.serialize import (
            containment_result_from_json,
            containment_result_to_json,
        )
        from repro.core.terms import Null

        # database_to_text cannot express nulls (it round-trips through
        # the fact parser); the structured JSON form must.
        witnessed = not_contained(
            "chase",
            Instance(frozenset({Atom("R", (Constant("a"), Null(3)))})),
            (Constant("a"), Null(3)),
        )
        restored = containment_result_from_json(
            containment_result_to_json(witnessed)
        )
        assert restored == witnessed

    def test_json_is_actually_json(self):
        import json as _json

        from repro.containment.result import not_contained
        from repro.core.atoms import fact as mk_fact
        from repro.core.serialize import containment_result_to_json

        doc = containment_result_to_json(
            not_contained(
                "m", Instance(frozenset({mk_fact("R", "a")})), (Constant("a"),)
            )
        )
        assert _json.loads(_json.dumps(doc)) == doc
