"""Tests for labeled trees, decompositions, C-trees and encodings."""

import pytest

from repro.core.atoms import fact
from repro.core.homomorphism import instance_homomorphism
from repro.core.instance import Instance
from repro.core.parser import parse_database
from repro.trees import (
    LabeledTree,
    consistency_violations,
    decode_tree,
    decomposition_from_bags,
    encode_ctree,
    is_consistent,
    is_ctree,
    star_decomposition,
    trivial_decomposition,
    try_build_ctree_decomposition,
)
from repro.core.terms import Constant


class TestLabeledTree:
    def test_construction_and_structure(self):
        t = LabeledTree({(): "a", (1,): "b", (2,): "c", (1, 1): "d"})
        assert t.children(()) == [(1,), (2,)]
        assert t.parent((1, 1)) == (1,)
        assert t.depth() == 2
        assert t.branching_degree() == 2
        assert set(t.leaves()) == {(2,), (1, 1)}

    def test_orphan_rejected(self):
        with pytest.raises(ValueError):
            LabeledTree({(): "a", (1, 1): "b"})

    def test_missing_root_rejected(self):
        with pytest.raises(ValueError):
            LabeledTree({(1,): "a"})

    def test_path_between(self):
        t = LabeledTree({(): 0, (1,): 1, (1, 1): 2, (2,): 3})
        path = t.path_between((1, 1), (2,))
        assert path == [(1, 1), (1,), (), (2,)]

    def test_path_to_self(self):
        t = LabeledTree({(): 0, (1,): 1})
        assert t.path_between((1,), (1,)) == [(1,)]

    def test_subtree(self):
        t = LabeledTree({(): "r", (1,): "a", (1, 1): "b", (2,): "c"})
        sub = t.subtree((1,))
        assert sub.labels == {(): "a", (1,): "b"}

    def test_attach(self):
        t = LabeledTree.single("r")
        t2 = t.attach((), LabeledTree.single("child"))
        assert t2.labels == {(): "r", (1,): "child"}

    def test_relabel(self):
        t = LabeledTree({(): 1, (1,): 2})
        doubled = t.relabel(lambda n, v: v * 2)
        assert doubled.label((1,)) == 4


class TestTreeDecomposition:
    def test_trivial_is_valid(self):
        db = parse_database("R(a, b). P(b, c)")
        decomp = trivial_decomposition(db)
        assert decomp.is_valid_for(db)
        assert decomp.width() == 2

    def test_star_for_disjoint_atoms(self):
        db = parse_database("R(a, b). P(c, d)")
        decomp = star_decomposition(db)
        assert decomp is not None
        assert decomp.is_valid_for(db)
        assert decomp.is_guarded_except(db, exempt=[()])

    def test_star_fails_on_shared_terms(self):
        db = parse_database("R(a, b). P(b, c)")
        assert star_decomposition(db) is None

    def test_connectivity_violation_detected(self):
        db = parse_database("R(a, b). P(b, c)")
        # b appears in two non-adjacent bags.
        bad = decomposition_from_bags(
            {
                (): {Constant("a"), Constant("b")},
                (1,): {Constant("a")},
                (1, 1): {Constant("b"), Constant("c")},
            }
        )
        assert not bad.is_valid_for(db)

    def test_coverage_violation_detected(self):
        db = parse_database("R(a, b)")
        bad = decomposition_from_bags({(): {Constant("a")}})
        assert not bad.covers(db)


class TestCTrees:
    def test_path_database_is_ctree(self):
        db = parse_database("R(a, b). R(b, c). R(c, d)")
        core = db.induced_by({Constant("a"), Constant("b")})
        assert is_ctree(db, core)

    def test_cycle_outside_core_is_not_ctree(self):
        db = parse_database("R(a, b). R(b, c). R(c, a). Core(z)")
        core = db.induced_by({Constant("z")})
        assert not is_ctree(db, core)

    def test_cycle_inside_core_is_fine(self):
        db = parse_database("R(a, b). R(b, c). R(c, a). R(a, d)")
        core = db.induced_by({Constant("a"), Constant("b"), Constant("c")})
        assert is_ctree(db, core)

    def test_decomposition_properties(self):
        db = parse_database("R(a, b). R(b, c)")
        core = db.induced_by({Constant("a"), Constant("b")})
        decomp = try_build_ctree_decomposition(db, core)
        assert decomp is not None
        assert decomp.is_valid_for(db)
        assert decomp.is_guarded_except(db, exempt=[()])
        assert decomp.induced_instance(db, ()) == core


class TestEncodingRoundTrip:
    CASES = [
        ("R(a, b). R(b, c). R(c, d)", {"a", "b"}),
        ("R(a, b). R(b, c). R(b, d). P(d)", {"a", "b"}),
        ("R(a, b). R(b, c). R(c, a). R(a, d). R(d, e)", {"a", "b", "c"}),
    ]

    @pytest.mark.parametrize("db_text, core_names", CASES)
    def test_encode_decode_isomorphic(self, db_text, core_names):
        db = parse_database(db_text)
        core = db.induced_by({Constant(n) for n in core_names})
        tree, alphabet = encode_ctree(db, core)
        assert is_consistent(tree, alphabet)
        decoded, decoded_core = decode_tree(tree, alphabet)
        # Isomorphism via mutual homomorphism + equal cardinalities.
        assert len(decoded) == len(db)
        assert len(decoded.domain()) == len(db.domain())
        renamed_db = db.rename(
            {c: Constant(f"n_{c.name}") for c in db.constants()}
        )
        # Hom both ways after dropping constant rigidity: freeze via nulls.
        from repro.core.terms import Null

        def as_nullified(instance):
            mapping = {
                c: Null(i)
                for i, c in enumerate(sorted(instance.constants(), key=str))
            }
            return instance.rename(mapping)

        left = as_nullified(decoded)
        right = as_nullified(db)
        assert instance_homomorphism(left, right) is not None
        assert instance_homomorphism(right, left) is not None
        assert len(decoded_core) == len(core)

    def test_inconsistent_tree_rejected(self):
        db = parse_database("R(a, b). R(b, c)")
        core = db.induced_by({Constant("a"), Constant("b")})
        tree, alphabet = encode_ctree(db, core)
        # Tamper: drop a core flag somewhere it is required.
        from repro.trees.ctree import TreeLabel

        def strip_core(node, label):
            if node == ():
                return TreeLabel(label.names, frozenset(), label.atoms)
            return label

        tampered = tree.relabel(strip_core)
        violations = consistency_violations(tampered, alphabet)
        assert violations
        with pytest.raises(ValueError):
            decode_tree(tampered, alphabet)

    def test_non_ctree_encoding_raises(self):
        db = parse_database("R(a, b). R(b, c). R(c, a). Core(z)")
        core = db.induced_by({Constant("z")})
        with pytest.raises(ValueError):
            encode_ctree(db, core)
