"""Unit tests for the OMQ triple and its validation."""

import pytest

from repro.core.omq import OMQ, OMQError, TGDClass, UCQ_REWRITABLE_CLASSES
from repro.core.parser import parse_cq, parse_database, parse_tgds, parse_ucq
from repro.core.schema import Schema


def omq(schema, rules, query_text, ucq=False):
    query = parse_ucq(query_text) if ucq else parse_cq(query_text)
    return OMQ(Schema(schema), parse_tgds(rules), query)


class TestOMQStructure:
    def test_basic_accessors(self):
        q = omq({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)")
        assert q.arity == 1
        assert not q.is_boolean()
        assert q.data_predicates() == {"A"}
        assert q.ontology_schema().arity("B") == 1

    def test_full_schema_merges(self):
        q = omq({"A": 1}, "A(x) -> B(x, w)", "q() :- B(x, y), C(x)")
        full = q.full_schema()
        assert full.arity("A") == 1
        assert full.arity("B") == 2
        assert full.arity("C") == 1  # query-only predicate allowed

    def test_arity_clash_rejected(self):
        with pytest.raises(OMQError):
            omq({"A": 1}, "A(x) -> B(x)", "q() :- A(x, y)")

    def test_as_cq_and_as_ucq(self):
        q = omq({"A": 1}, "", "q(x) :- A(x)")
        assert q.as_cq().size() == 1
        assert len(q.as_ucq()) == 1
        u = omq({"A": 1, "B": 1}, "", "q(x) :- A(x) | q(x) :- B(x)", ucq=True)
        assert len(u.as_ucq()) == 2
        with pytest.raises(OMQError):
            u.as_cq()

    def test_size_counts_symbols(self):
        q = omq({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)")
        assert q.size() == (1 + 1 + 1 + 1) + (1 + 1)

    def test_validate_database(self):
        q = omq({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)")
        q.validate_database(parse_database("A(a)"))
        with pytest.raises(OMQError):
            q.validate_database(parse_database("B(b)"))
        with pytest.raises(OMQError):
            q.validate_database(parse_database("A(a, b)"))

    def test_omq_is_hashable(self):
        q1 = omq({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)")
        q2 = omq({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)")
        assert hash(q1) == hash(q2)
        assert q1 == q2

    def test_boolean_omq(self):
        q = omq({"A": 1}, "", "q() :- A(x)")
        assert q.is_boolean()
        assert q.arity == 0


class TestLanguages:
    def test_rewritable_class_set(self):
        assert TGDClass.LINEAR in UCQ_REWRITABLE_CLASSES
        assert TGDClass.STICKY in UCQ_REWRITABLE_CLASSES
        assert TGDClass.NON_RECURSIVE in UCQ_REWRITABLE_CLASSES
        assert TGDClass.GUARDED not in UCQ_REWRITABLE_CLASSES
        assert TGDClass.FULL not in UCQ_REWRITABLE_CLASSES

    def test_class_str(self):
        assert str(TGDClass.LINEAR) == "L"
        assert str(TGDClass.GUARDED) == "G"
        assert str(TGDClass.NON_RECURSIVE) == "NR"
