"""Unit tests for atoms and schemas."""

import pytest

from repro.core.atoms import Atom, atom, fact, terms_of, variables_of_atoms
from repro.core.schema import Schema, SchemaError
from repro.core.terms import Constant, Null, Variable

x, y = Variable("x"), Variable("y")
a, b = Constant("a"), Constant("b")


class TestAtom:
    def test_construction_and_accessors(self):
        at = atom("R", x, a)
        assert at.predicate == "R"
        assert at.arity == 2
        assert at.variables() == {x}
        assert at.constants() == {a}

    def test_zero_ary_atom(self):
        at = atom("Goal")
        assert at.arity == 0
        assert at.is_fact()

    def test_fact_detection(self):
        assert fact("R", "a", "b").is_fact()
        assert not atom("R", x, a).is_fact()
        assert atom("R", Null(0), a).is_ground()
        assert not atom("R", Null(0), a).is_fact()

    def test_substitute(self):
        at = atom("R", x, y).substitute({x: a})
        assert at == atom("R", a, y)

    def test_substitute_leaves_original(self):
        original = atom("R", x, y)
        original.substitute({x: a})
        assert original == atom("R", x, y)

    def test_positions_of(self):
        at = atom("R", x, y, x)
        assert at.positions_of(x) == (0, 2)
        assert at.positions_of(y) == (1,)
        assert at.positions_of(a) == ()

    def test_atoms_hashable_and_equal_structurally(self):
        assert atom("R", x, y) == atom("R", x, y)
        assert len({atom("R", x, y), atom("R", x, y)}) == 1

    def test_str(self):
        assert str(atom("R", x, a)) == "R(?x, a)"
        assert str(atom("P")) == "P()"

    def test_collectors(self):
        atoms = [atom("R", x, a), atom("P", y)]
        assert terms_of(atoms) == {x, y, a}
        assert variables_of_atoms(atoms) == {x, y}


class TestSchema:
    def test_of_constructor(self):
        s = Schema.of(R=2, P=1)
        assert s.arity("R") == 2
        assert s.arity("P") == 1
        assert "R" in s and "Q" not in s

    def test_from_atoms(self):
        s = Schema.from_atoms([atom("R", x, y), atom("P", x)])
        assert s == Schema.of(R=2, P=1)

    def test_from_atoms_arity_clash(self):
        with pytest.raises(SchemaError):
            Schema.from_atoms([atom("R", x), atom("R", x, y)])

    def test_unknown_predicate(self):
        with pytest.raises(SchemaError):
            Schema.of(R=2).arity("P")

    def test_max_arity(self):
        assert Schema.of(R=2, P=5, Q=1).max_arity == 5
        assert Schema().max_arity == 0

    def test_union(self):
        s = Schema.of(R=2) | Schema.of(P=1)
        assert s == Schema.of(R=2, P=1)

    def test_union_clash(self):
        with pytest.raises(SchemaError):
            Schema.of(R=2) | Schema.of(R=3)

    def test_restrict(self):
        s = Schema.of(R=2, P=1, Q=3).restrict(["R", "Q"])
        assert s == Schema.of(R=2, Q=3)

    def test_validate_atom(self):
        s = Schema.of(R=2)
        s.validate_atom(atom("R", x, y))
        with pytest.raises(SchemaError):
            s.validate_atom(atom("R", x))

    def test_predicates_sorted(self):
        assert Schema.of(Z=1, A=1, M=1).predicates() == ("A", "M", "Z")

    def test_hash_and_eq(self):
        assert hash(Schema.of(R=1)) == hash(Schema.of(R=1))
        assert Schema.of(R=1) != Schema.of(R=2)

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(R=-1)
