"""The engine's result cache: the front's memory layer, the backend
registry, sqlite-specific regressions (WAL mode, lock-degrade semantics,
stale version stamps), and the process-wide cache registry behind
``repro.clear_caches()``.

Behaviour every backend must share (round-trips, persistence, corruption
degrade, two-process contention) lives in the parametrized conformance
suite ``test_cache_backends.py``.
"""

import sqlite3

import pytest

import repro
from repro import OMQ, Schema, parse_cq, parse_tgds
from repro.engine import cache as cache_module
from repro.engine.cache import (
    _DB_NAME,
    BACKENDS,
    CacheBackend,
    ResultCache,
    ShardedDirBackend,
    SqliteBackend,
    available_backends,
    register_backend,
)
from repro.evaluation import cached_rewriting, evaluate_omq


class TestMemoryLayer:
    def test_roundtrip(self):
        cache = ResultCache()
        assert cache.get("k") == (False, None)
        cache.put("k", {"answer": 42})
        assert cache.get("k") == (True, {"answer": 42})

    def test_lru_eviction(self):
        cache = ResultCache(memory_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", 3)
        assert cache.get("a") == (True, 1)
        assert cache.get("b") == (False, None)
        assert cache.get("c") == (True, 3)

    def test_not_persistent_without_dir(self):
        assert not ResultCache().persistent

    def test_stats_shape(self):
        cache = ResultCache()
        cache.put("k", 1)
        cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats["memory_hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["backend"] == "memory"


class TestBackendRegistry:
    def test_builtins_registered(self):
        assert BACKENDS["sqlite"] is SqliteBackend
        assert BACKENDS["sharded"] is ShardedDirBackend
        assert available_backends() == ("memory", "sharded", "sqlite")

    def test_unknown_backend_name_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="sharded"):
            ResultCache(str(tmp_path), backend="bogus")

    def test_non_string_non_backend_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            ResultCache(str(tmp_path), backend=42)

    def test_memory_name_means_no_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path), backend="memory")
        assert not cache.persistent
        assert cache.backend_name == "memory"
        cache.close()

    def test_no_cache_dir_means_no_disk(self):
        cache = ResultCache(None, backend="sqlite")
        assert not cache.persistent
        cache.close()

    def test_backend_instance_used_as_is(self, tmp_path):
        backend = ShardedDirBackend(str(tmp_path))
        cache = ResultCache(str(tmp_path), backend=backend)
        assert cache._backend is backend
        assert cache.backend_name == "sharded"
        cache.put("k", "v")
        cache.clear_memory()
        assert cache.get("k") == (True, "v")
        cache.close()

    def test_register_backend_plugs_into_names(self, tmp_path, monkeypatch):
        class NullBackend(CacheBackend):
            name = "null"
            persistent = False

            def __init__(self, cache_dir):
                super().__init__()

            def load(self, key):
                return None

            def store(self, key, payload):
                pass

            def delete(self, key):
                pass

            def clear(self):
                pass

            def count(self):
                return 0

        monkeypatch.setitem(cache_module.BACKENDS, "null", NullBackend)
        assert "null" in available_backends()
        cache = ResultCache(str(tmp_path), backend="null")
        cache.put("k", "v")
        cache.clear_memory()
        assert cache.get("k") == (False, None)  # NullBackend drops bytes
        cache.close()

    def test_register_backend_function(self, monkeypatch):
        registered = dict(cache_module.BACKENDS)
        monkeypatch.setattr(cache_module, "BACKENDS", registered)

        class Dummy(CacheBackend):
            name = "dummy"

        register_backend("dummy", Dummy)
        assert registered["dummy"] is Dummy


class TestSqliteRegressions:
    def test_disk_layer_opens_in_wal_mode(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        mode = (
            cache._backend._conn.execute("PRAGMA journal_mode").fetchone()[0]
        )
        assert mode == "wal"
        cache.close()

    def test_corrupted_file_is_rebuilt(self, tmp_path):
        c1 = ResultCache(str(tmp_path))
        c1.put("k", "v")
        c1.close()
        (tmp_path / _DB_NAME).write_bytes(b"\x00garbage, not sqlite\xff" * 64)
        c2 = ResultCache(str(tmp_path))
        # The bad file was discarded; the cache still works.
        assert c2.recoveries == 1
        assert c2.persistent
        assert c2.get("k") == (False, None)
        c2.put("k2", "v2")
        c2.clear_memory()
        assert c2.get("k2") == (True, "v2")
        c2.close()

    def test_stale_version_is_discarded(self, tmp_path):
        c1 = ResultCache(str(tmp_path))
        c1.put("k", "v")
        c1.close()
        conn = sqlite3.connect(str(tmp_path / _DB_NAME))
        conn.execute(
            "UPDATE meta SET value = '0-stale' WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        c2 = ResultCache(str(tmp_path))
        assert c2.recoveries == 1
        assert c2.get("k") == (False, None)  # old rows gone
        c2.close()

    def test_locked_database_degrades_without_deletion(
        self, tmp_path, monkeypatch
    ):
        # Regression: a "database is locked" OperationalError used to be
        # treated like corruption — the shared cache file was deleted out
        # from under every other process using it.  Now it only costs the
        # one store: recoveries stays 0, the file stays put, and the
        # cache recovers as soon as the lock clears.
        monkeypatch.setattr(cache_module, "_BUSY_TIMEOUT_MS", 50)
        cache = ResultCache(str(tmp_path))
        cache.put("before", "v")

        locker = sqlite3.connect(str(tmp_path / _DB_NAME))
        locker.execute("BEGIN IMMEDIATE")  # hold the write lock
        try:
            cache.put("during", "w")  # write blocked -> transient degrade
            stats = cache.stats()
            assert stats["recoveries"] == 0
            assert stats["transient_errors"] >= 1
            assert (tmp_path / _DB_NAME).exists()
            assert cache.persistent
            # The value still landed in the memory layer.
            assert cache.get("during") == (True, "w")
        finally:
            locker.rollback()
            locker.close()

        # Lock released: disk writes work again on the same connection.
        cache.put("after", "x")
        cache.clear_memory()
        assert cache.get("before") == (True, "v")
        assert cache.get("after") == (True, "x")
        assert cache.recoveries == 0
        cache.close()


class TestShardedLayout:
    def test_version_stamped_directory(self, tmp_path):
        cache = ResultCache(str(tmp_path), backend="sharded")
        cache.put("k", "v")
        roots = [p.name for p in tmp_path.iterdir() if p.is_dir()]
        assert len(roots) == 1
        assert roots[0].startswith("repro-cache-shards-v")
        cache.close()

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ResultCache(str(tmp_path), backend="sharded")
        for i in range(10):
            cache.put(f"k{i}", i)
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []
        assert cache.stats()["disk_entries"] == 10
        cache.close()


class TestCacheRegistry:
    def test_clear_caches_reports_registrations(self):
        # The evaluation module registers four lru_caches at import time.
        assert repro.clear_caches() >= 4

    def test_clear_caches_empties_evaluation_memos(self):
        omq = OMQ(
            Schema.of(P=1),
            tuple(parse_tgds("P(x) -> R(x, w)\nR(x, y) -> P(y)")),
            parse_cq("q(x) :- P(x)"),
        )
        cached_rewriting(omq, 1_000)
        assert cached_rewriting.cache_info().currsize > 0
        repro.clear_caches()
        assert cached_rewriting.cache_info().currsize == 0

    def test_clear_caches_empties_engine_memory(self, tmp_path):
        from repro.engine import BatchEngine, ContainmentJob

        omq = OMQ(Schema.of(P=1), (), parse_cq("q(x) :- P(x)"))
        engine = BatchEngine(cache_dir=str(tmp_path))
        engine.run_batch([ContainmentJob(omq, omq)])
        assert engine.cache.stats()["memory_entries"] == 1
        repro.clear_caches()
        assert engine.cache.stats()["memory_entries"] == 0
        # The disk layer survives a registry clear (it is persistent state).
        assert engine.cache.get(
            ContainmentJob(omq, omq).cache_key()
        )[0]
        engine.close()

    def test_evaluation_still_correct_after_clear(self):
        # Clearing mid-flight must not change any answer.
        omq = OMQ(
            Schema.of(P=1, T=1),
            tuple(parse_tgds("T(x) -> P(x)")),
            parse_cq("q(x) :- P(x)"),
        )
        db = repro.parse_database("T(a). P(b).")
        before = evaluate_omq(omq, db).answers
        repro.clear_caches()
        after = evaluate_omq(omq, db).answers
        assert before == after
