"""The engine's result cache: round-trips, persistence, corruption recovery,
contention tolerance (shared cache_dir across processes), and the
process-wide cache registry behind ``repro.clear_caches()``.
"""

import json
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import OMQ, Schema, parse_cq, parse_tgds
from repro.containment.result import ContainmentResult, Verdict, contained
from repro.engine import cache as cache_module
from repro.engine.cache import _DB_NAME, SCHEMA_VERSION, ResultCache
from repro.evaluation import cached_rewriting, evaluate_omq


class TestMemoryLayer:
    def test_roundtrip(self):
        cache = ResultCache()
        assert cache.get("k") == (False, None)
        cache.put("k", {"answer": 42})
        assert cache.get("k") == (True, {"answer": 42})

    def test_lru_eviction(self):
        cache = ResultCache(memory_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", 3)
        assert cache.get("a") == (True, 1)
        assert cache.get("b") == (False, None)
        assert cache.get("c") == (True, 3)

    def test_not_persistent_without_dir(self):
        assert not ResultCache().persistent

    def test_stats_shape(self):
        cache = ResultCache()
        cache.put("k", 1)
        cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats["memory_hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


class TestDiskLayer:
    def test_survives_reopen(self, tmp_path):
        c1 = ResultCache(str(tmp_path))
        c1.put("k", contained("test-method", "detail"))
        c1.close()
        c2 = ResultCache(str(tmp_path))
        found, value = c2.get("k")
        assert found
        assert isinstance(value, ContainmentResult)
        assert value.verdict is Verdict.CONTAINED
        assert value.method == "test-method"
        c2.close()

    def test_clear_memory_keeps_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", "v")
        cache.clear_memory()
        assert cache.get("k") == (True, "v")  # reloaded from disk
        assert cache.stats()["disk_hits"] == 1
        cache.close()

    def test_clear_empties_both_layers(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", "v")
        cache.clear()
        assert cache.get("k") == (False, None)
        cache.close()

    def test_corrupted_file_is_rebuilt(self, tmp_path):
        c1 = ResultCache(str(tmp_path))
        c1.put("k", "v")
        c1.close()
        (tmp_path / _DB_NAME).write_bytes(b"\x00garbage, not sqlite\xff" * 64)
        c2 = ResultCache(str(tmp_path))
        # The bad file was discarded; the cache still works.
        assert c2.recoveries == 1
        assert c2.persistent
        assert c2.get("k") == (False, None)
        c2.put("k2", "v2")
        c2.clear_memory()
        assert c2.get("k2") == (True, "v2")
        c2.close()

    def test_stale_version_is_discarded(self, tmp_path):
        c1 = ResultCache(str(tmp_path))
        c1.put("k", "v")
        c1.close()
        conn = sqlite3.connect(str(tmp_path / _DB_NAME))
        conn.execute(
            "UPDATE meta SET value = '0-stale' WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        c2 = ResultCache(str(tmp_path))
        assert c2.recoveries == 1
        assert c2.get("k") == (False, None)  # old rows gone
        c2.close()

    def test_corrupt_pickle_row_degrades_to_miss(self, tmp_path):
        c1 = ResultCache(str(tmp_path))
        c1.put("k", "v")
        c1.close()
        conn = sqlite3.connect(str(tmp_path / _DB_NAME))
        conn.execute(
            "UPDATE results SET payload = ? WHERE key = 'k'",
            (b"not a pickle",),
        )
        conn.commit()
        conn.close()
        c2 = ResultCache(str(tmp_path))
        assert c2.get("k") == (False, None)
        c2.close()

    def test_unpicklable_value_stays_in_memory(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        value = lambda: None  # noqa: E731 - deliberately unpicklable
        cache.put("k", value)
        assert cache.get("k") == (True, value)
        cache.clear_memory()
        assert cache.get("k") == (False, None)  # never reached disk
        cache.close()


class TestContentionTolerance:
    def test_disk_layer_opens_in_wal_mode(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        mode = cache._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        cache.close()

    def test_locked_database_degrades_without_deletion(
        self, tmp_path, monkeypatch
    ):
        # Regression: a "database is locked" OperationalError used to be
        # treated like corruption — the shared cache file was deleted out
        # from under every other process using it.  Now it only costs the
        # one store: recoveries stays 0, the file stays put, and the
        # cache recovers as soon as the lock clears.
        monkeypatch.setattr(cache_module, "_BUSY_TIMEOUT_MS", 50)
        cache = ResultCache(str(tmp_path))
        cache.put("before", "v")

        locker = sqlite3.connect(str(tmp_path / _DB_NAME))
        locker.execute("BEGIN IMMEDIATE")  # hold the write lock
        try:
            cache.put("during", "w")  # write blocked -> transient degrade
            stats = cache.stats()
            assert stats["recoveries"] == 0
            assert stats["transient_errors"] >= 1
            assert (tmp_path / _DB_NAME).exists()
            assert cache.persistent
            # The value still landed in the memory layer.
            assert cache.get("during") == (True, "w")
        finally:
            locker.rollback()
            locker.close()

        # Lock released: disk writes work again on the same connection.
        cache.put("after", "x")
        cache.clear_memory()
        assert cache.get("before") == (True, "v")
        assert cache.get("after") == (True, "x")
        assert cache.recoveries == 0
        cache.close()

    def test_two_processes_share_one_cache_dir(self, tmp_path):
        # Two concurrent writers hammer one cache_dir.  WAL + busy_timeout
        # must absorb the contention: neither process may "recover" (i.e.
        # delete) the shared file, and every row must survive.
        script = (
            "import json, sys\n"
            "from repro.engine.cache import ResultCache\n"
            "tag, cache_dir = sys.argv[1], sys.argv[2]\n"
            "cache = ResultCache(cache_dir)\n"
            "for i in range(40):\n"
            "    cache.put(f'{tag}:{i}', {'tag': tag, 'i': i})\n"
            "    cache.get(f'{tag}:{i}')\n"
            "stats = cache.stats()\n"
            "cache.close()\n"
            "print(json.dumps({'recoveries': stats['recoveries'],\n"
            "                  'persistent': stats['persistent']}))\n"
        )
        repo_root = Path(__file__).resolve().parent.parent
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, tag, str(tmp_path)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                cwd=repo_root,
                env={"PYTHONPATH": str(repo_root / "src")},
            )
            for tag in ("a", "b")
        ]
        reports = []
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            reports.append(json.loads(out))
        assert [r["recoveries"] for r in reports] == [0, 0]
        assert all(r["persistent"] for r in reports)

        survivor = ResultCache(str(tmp_path))
        assert survivor.stats()["disk_entries"] == 80
        assert survivor.get("a:0") == (True, {"tag": "a", "i": 0})
        assert survivor.get("b:39") == (True, {"tag": "b", "i": 39})
        assert survivor.recoveries == 0
        survivor.close()


class TestCacheRegistry:
    def test_clear_caches_reports_registrations(self):
        # The evaluation module registers four lru_caches at import time.
        assert repro.clear_caches() >= 4

    def test_clear_caches_empties_evaluation_memos(self):
        omq = OMQ(
            Schema.of(P=1),
            tuple(parse_tgds("P(x) -> R(x, w)\nR(x, y) -> P(y)")),
            parse_cq("q(x) :- P(x)"),
        )
        cached_rewriting(omq, 1_000)
        assert cached_rewriting.cache_info().currsize > 0
        repro.clear_caches()
        assert cached_rewriting.cache_info().currsize == 0

    def test_clear_caches_empties_engine_memory(self, tmp_path):
        from repro.engine import BatchEngine, ContainmentJob

        omq = OMQ(Schema.of(P=1), (), parse_cq("q(x) :- P(x)"))
        engine = BatchEngine(cache_dir=str(tmp_path))
        engine.run_batch([ContainmentJob(omq, omq)])
        assert engine.cache.stats()["memory_entries"] == 1
        repro.clear_caches()
        assert engine.cache.stats()["memory_entries"] == 0
        # The disk layer survives a registry clear (it is persistent state).
        assert engine.cache.get(
            ContainmentJob(omq, omq).cache_key()
        )[0]
        engine.close()

    def test_evaluation_still_correct_after_clear(self):
        # Clearing mid-flight must not change any answer.
        omq = OMQ(
            Schema.of(P=1, T=1),
            tuple(parse_tgds("T(x) -> P(x)")),
            parse_cq("q(x) :- P(x)"),
        )
        db = repro.parse_database("T(a). P(b).")
        before = evaluate_omq(omq, db).answers
        repro.clear_caches()
        after = evaluate_omq(omq, db).answers
        assert before == after
