"""Randomized differential testing of the containment procedures.

The harness draws seeded random OMQ pairs from :mod:`repro.generators`
(linear / non-recursive / sticky / guarded / propositional) and checks,
for every pair, that

* every *applicable* procedure — the dispatch front door, the
  small-witness algorithm (UCQ-rewritable LHS), the layered guarded
  procedure (guarded LHS), exhaustive propositional enumeration (0-ary
  data schema) — agrees with every other on decided verdicts (UNKNOWN
  never contradicts anything);
* decided verdicts agree with a brute-force oracle: a ``strategy="naive"``
  chase of random databases followed by homomorphism enumeration by
  exhaustive substitution (no kernel involvement), so CONTAINED implies
  ``Q1(D) ⊆ Q2(D)`` on every sampled database;
* NOT_CONTAINED verdicts ship a witness the oracle can replay:
  ``c̄ ∈ Q1(D)`` and ``c̄ ∉ Q2(D)`` on the reported database;
* construction-time knowledge is respected: α-pairs and specialized
  pairs (Q1 = Q2's query plus conjuncts, over an α-renamed ontology —
  which defeats the syntactic Σ1 ⊆ Σ2 subsumption shortcut) are never
  reported NOT_CONTAINED.

Run size, seed, and wall-clock budget come from the command line::

    pytest tests/test_differential.py --seed 7 --diff-cases 500

A failing case prints its (seed, case index) so it replays exactly.
"""

from __future__ import annotations

import contextlib
import itertools
import random
import signal
import time
from collections import Counter

import pytest

from repro.chase import ChaseBudgetExceeded, chase
from repro.containment.dispatch import contains
from repro.containment.guarded import contains_guarded
from repro.containment.propositional import (
    contains_propositional,
    is_propositional,
)
from repro.containment.result import Verdict
from repro.containment.small_witness import contains_via_small_witness
from repro.core.omq import UCQ_REWRITABLE_CLASSES
from repro.core.terms import Constant
from repro.engine.canon import hash_omq
from repro.fragments.classify import best_class
from repro.fragments.guarded import is_guarded, is_linear
from repro.fragments.nonrecursive import is_non_recursive
from repro.fragments.sticky import is_sticky
from repro.generators import (
    FRAGMENTS,
    alpha_rename,
    random_database,
    random_omq,
    random_omq_pair,
)

#: Naive-chase step budget for the oracle; a draw whose chase outgrows it
#: is skipped (counted), never trusted.
ORACLE_CHASE_STEPS = 400

#: Enumeration cap: |universe| ** |vars| substitutions per disjunct.
ORACLE_ENUM_CAP = 100_000

#: Procedure-side budgets — small, so pathological draws degrade to
#: UNKNOWN instead of stalling the suite (a random guarded set can make
#: the default XRewrite budget take minutes on a single pair).
PROC_CHASE_STEPS = 2_000
PROC_REWRITING_BUDGET = 200

#: Wall-clock guard per drawn pair.  XRewrite's query budget bounds how
#: many rewritings it *keeps*, not how many candidate subsets it
#: *enumerates* — a rare draw can make that enumeration explode — so the
#: harness abandons any case that overruns this and counts it instead.
CASE_TIMEOUT_S = 5.0

#: Weights for drawing pair modes: mostly independent pairs (maximum
#: verdict diversity), with steady streams of known-answer pairs.
_MODES = ("independent", "independent", "specialized", "alpha")


class _CaseTimeout(Exception):
    pass


@contextlib.contextmanager
def case_deadline(seconds):
    """Raise :class:`_CaseTimeout` in the main thread after *seconds*.

    SIGALRM-based, so it interrupts pure-Python loops the cooperative
    budgets inside the procedures cannot see.  A no-op on platforms
    without ``setitimer``.
    """
    if not hasattr(signal, "setitimer"):  # pragma: no cover - POSIX CI
        yield
        return

    def _alarm(signum, frame):
        raise _CaseTimeout()

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def brute_force_answers(query, instance):
    """``query(instance)`` by exhaustive substitution, or None if too big.

    Enumerates *every* mapping of a disjunct's variables into the
    instance's domain and keeps the all-constant head tuples — no
    homomorphism kernel, no join ordering, nothing shared with the code
    under test.
    """
    universe = sorted(instance.domain(), key=str)
    answers = set()
    for disjunct in query.as_ucq().disjuncts:
        variables = sorted(
            {v for a in disjunct.body for v in a.variables()},
            key=lambda v: v.name,
        )
        if universe and len(universe) ** len(variables) > ORACLE_ENUM_CAP:
            return None
        if not universe and variables:
            continue
        for image in itertools.product(universe, repeat=len(variables)):
            mapping = dict(zip(variables, image))
            if all(
                a.substitute(mapping) in instance.atoms
                for a in disjunct.body
            ):
                tup = tuple(mapping.get(t, t) for t in disjunct.head)
                if all(isinstance(t, Constant) for t in tup):
                    answers.add(tup)
    return answers


def oracle_answers(omq, database):
    """Certain answers of *omq* on *database* via the naive chase, or
    None when the chase or the enumeration outgrows its budget."""
    try:
        result = chase(
            database,
            omq.sigma,
            strategy="naive",
            max_steps=ORACLE_CHASE_STEPS,
        )
    except ChaseBudgetExceeded:
        return None
    if not result.terminated:
        return None
    return brute_force_answers(omq, result.instance)


def applicable_procedures(q1):
    """Name → callable for every procedure that may decide this pair."""
    procedures = {
        "dispatch": lambda a, b: contains(
            a,
            b,
            chase_max_steps=PROC_CHASE_STEPS,
            rewriting_budget=PROC_REWRITING_BUDGET,
        )
    }
    if best_class(q1.sigma) in UCQ_REWRITABLE_CLASSES:
        procedures["small_witness"] = lambda a, b: contains_via_small_witness(
            a,
            b,
            chase_max_steps=PROC_CHASE_STEPS,
            rewriting_budget=PROC_REWRITING_BUDGET,
        )
    if is_guarded(q1.sigma):
        procedures["guarded"] = lambda a, b: contains_guarded(
            a,
            b,
            chase_max_steps=PROC_CHASE_STEPS,
            rewriting_budget=PROC_REWRITING_BUDGET,
        )
    if is_propositional(q1):
        procedures["propositional"] = lambda a, b: contains_propositional(
            a, b, chase_max_steps=PROC_CHASE_STEPS
        )
    return procedures


def _check_oracle(q1, q2, verdicts, results, stats, oracle_seeds, context):
    """Cross-check decided verdicts against the brute-force oracle."""
    checked = False
    for sample_seed in oracle_seeds:
        db = random_database(
            q1.data_schema,
            n_constants=3,
            n_atoms=4,
            seed=sample_seed,
        )
        ans1 = oracle_answers(q1, db)
        ans2 = oracle_answers(q2, db)
        if ans1 is None or ans2 is None:
            stats["oracle_skipped"] += 1
            continue
        checked = True
        if Verdict.CONTAINED in verdicts:
            assert ans1 <= ans2, (
                f"{context}: CONTAINED but Q1(D) ⊄ Q2(D) on sampled "
                f"D={db}; extra answers: {ans1 - ans2}"
            )
    # NOT_CONTAINED must come with a replayable counterexample.
    for name, result in results.items():
        if result.verdict is not Verdict.NOT_CONTAINED:
            continue
        witness = result.witness
        assert witness is not None, f"{context}: {name} lost its witness"
        if not witness.database.is_database():
            stats["oracle_skipped"] += 1
            continue
        wans1 = oracle_answers(q1, witness.database)
        wans2 = oracle_answers(q2, witness.database)
        if wans1 is None or wans2 is None:
            stats["oracle_skipped"] += 1
            continue
        checked = True
        assert witness.answer in wans1, (
            f"{context}: {name} witness answer not certain for Q1"
        )
        assert witness.answer not in wans2, (
            f"{context}: {name} witness answer IS certain for Q2 — "
            "not a counterexample"
        )
    if checked:
        stats["oracle_checked"] += 1


def test_differential_containment(diff_options):
    """≥ --diff-cases random pairs: procedures agree with each other and
    with the brute-force oracle; zero disagreements tolerated."""
    seed, cases, time_cap = diff_options
    rng = random.Random(seed)
    deadline = time.monotonic() + time_cap
    stats = Counter()
    for case in range(cases):
        if time.monotonic() > deadline:
            stats["time_capped"] = 1
            break
        fragment = rng.choice(FRAGMENTS)
        mode = rng.choice(_MODES)
        q1, q2, expected = random_omq_pair(fragment, rng, mode)
        # Drawn up front so a timed-out case does not shift the stream.
        oracle_seeds = [rng.randrange(2**31) for _ in range(2)]
        context = f"seed={seed} case={case} fragment={fragment} mode={mode}"
        stats["cases"] += 1
        stats[f"fragment:{fragment}"] += 1
        stats[f"mode:{mode}"] += 1

        try:
            with case_deadline(CASE_TIMEOUT_S):
                results = {
                    name: proc(q1, q2)
                    for name, proc in applicable_procedures(q1).items()
                }
        except _CaseTimeout:
            stats["proc_timeout"] += 1
            continue
        assert len(results) >= 1
        verdicts = {
            r.verdict for r in results.values() if r.verdict is not Verdict.UNKNOWN
        }
        # The differential core: decided procedures never disagree.
        assert len(verdicts) <= 1, (
            f"{context}: procedures disagree: "
            + ", ".join(
                f"{n}={r.verdict.name}({r.method})"
                for n, r in sorted(results.items())
            )
        )
        if not verdicts:
            stats["all_unknown"] += 1
        for v in verdicts:
            stats[f"verdict:{v.name}"] += 1

        # Construction-time knowledge: these pairs are contained.
        if expected in ("contained", "equivalent"):
            assert Verdict.NOT_CONTAINED not in verdicts, (
                f"{context}: expected {expected}, got NOT_CONTAINED"
            )
        if expected == "equivalent":
            assert hash_omq(q1) == hash_omq(q2), (
                f"{context}: α-pair hashes differ"
            )

        _check_oracle(
            q1, q2, verdicts, results, stats, oracle_seeds, context
        )

    # The run must have real coverage, not just survive.  A handful of
    # timed-out draws is expected; wholesale timeouts are not.
    assert stats["cases"] >= min(cases, 50), dict(stats)
    assert stats["proc_timeout"] <= stats["cases"] // 10, dict(stats)
    if not stats["time_capped"]:
        assert stats["cases"] == cases
    assert stats["oracle_checked"] > stats["cases"] // 10, dict(stats)
    assert stats["verdict:CONTAINED"] > 0, dict(stats)
    assert stats["verdict:NOT_CONTAINED"] > 0, dict(stats)


# -- deterministic spot checks on the generators themselves -----------------


@pytest.mark.parametrize("fragment", FRAGMENTS)
def test_random_omq_lands_in_fragment(fragment):
    """Every draw passes the library's own classifier for its fragment."""
    checkers = {
        "linear": is_linear,
        "non_recursive": is_non_recursive,
        "sticky": is_sticky,
        "guarded": is_guarded,
    }
    rng = random.Random(99)
    for _ in range(10):
        omq = random_omq(fragment, rng)
        if fragment == "propositional":
            assert is_propositional(omq)
        else:
            assert checkers[fragment](omq.sigma)
        assert omq.query.head == tuple(
            t for t in omq.query.head
        )  # safe head survived CQ validation


def test_alpha_rename_is_canonical_noop():
    rng = random.Random(3)
    for fragment in FRAGMENTS:
        omq = random_omq(fragment, rng)
        assert hash_omq(alpha_rename(omq, rng)) == hash_omq(omq)


def test_specialized_pair_defeats_subsumption_shortcut():
    """The α-renamed ontology makes Σ1 ⊆ Σ2 fail syntactically, so the
    specialized mode really exercises the full procedures."""
    rng = random.Random(11)
    syntactic_subsets = 0
    for _ in range(20):
        q1, q2, expected = random_omq_pair("linear", rng, "specialized")
        assert expected == "contained"
        if set(q1.sigma) <= set(q2.sigma):
            syntactic_subsets += 1
    assert syntactic_subsets < 20


def test_pair_mode_and_fragment_validation():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        random_omq("datalog", rng)
    with pytest.raises(ValueError):
        random_omq_pair("linear", rng, mode="bogus")
