"""Canonical hashing (repro.engine.canon): the cache-key algebra.

The engine's cache is only as good as these invariants: α-renaming,
body-atom reordering, rule reordering, and disjunct reordering must not
change a hash, while semantically distinct inputs must (with overwhelming
probability) get distinct hashes.
"""

import pytest

from repro import OMQ, Schema, parse_cq, parse_tgds
from repro.core.queries import UCQ
from repro.engine.canon import (
    canonical_cq,
    canonical_tgd,
    canonical_tgds,
    hash_cq,
    hash_omq,
    hash_tgds,
    hash_ucq,
)


class TestCQHashing:
    def test_alpha_renaming_invariant(self):
        q1 = parse_cq("q(x) :- R(x, y), P(y)")
        q2 = parse_cq("q(a) :- R(a, b), P(b)")
        assert hash_cq(q1) == hash_cq(q2)

    def test_body_reordering_invariant(self):
        q1 = parse_cq("q(x) :- R(x, y), P(y), S(y, z)")
        q2 = parse_cq("q(x) :- S(y, z), P(y), R(x, y)")
        assert hash_cq(q1) == hash_cq(q2)

    def test_rename_and_reorder_together(self):
        q1 = parse_cq("q(x, y) :- E(x, z), E(z, y), A(z)")
        q2 = parse_cq("q(u, v) :- A(m), E(m, v), E(u, m)")
        assert hash_cq(q1) == hash_cq(q2)

    def test_query_name_is_cosmetic(self):
        q1 = parse_cq("q(x) :- P(x)")
        q2 = parse_cq("answers(x) :- P(x)")
        assert hash_cq(q1) == hash_cq(q2)

    def test_head_order_is_semantic(self):
        q1 = parse_cq("q(x, y) :- R(x, y)")
        q2 = parse_cq("q(y, x) :- R(x, y)")
        assert hash_cq(q1) != hash_cq(q2)

    def test_distinct_bodies_differ(self):
        assert hash_cq(parse_cq("q(x) :- P(x)")) != hash_cq(
            parse_cq("q(x) :- T(x)")
        )

    def test_constants_are_distinguished(self):
        q1 = parse_cq("q(x) :- R(x, 'a')")
        q2 = parse_cq("q(x) :- R(x, 'b')")
        assert hash_cq(q1) != hash_cq(q2)

    def test_repeated_variable_vs_fresh(self):
        # R(x, x) is not isomorphic to R(x, y).
        q1 = parse_cq("q() :- R(x, x)")
        q2 = parse_cq("q() :- R(x, y)")
        assert hash_cq(q1) != hash_cq(q2)

    def test_symmetric_query_canonicalizes_exactly(self):
        # A 2-cycle has an automorphism swapping the variables; the exact
        # tie-break must still produce one canonical form.
        q1 = parse_cq("q() :- E(x, y), E(y, x)")
        q2 = parse_cq("q() :- E(b, a), E(a, b)")
        form1, form2 = canonical_cq(q1), canonical_cq(q2)
        assert form1.exact and form2.exact
        assert form1.text == form2.text

    def test_triangle_vs_path(self):
        triangle = parse_cq("q() :- E(x, y), E(y, z), E(z, x)")
        path = parse_cq("q() :- E(x, y), E(y, z), E(z, w)")
        assert hash_cq(triangle) != hash_cq(path)


class TestTGDHashing:
    def test_rule_alpha_invariance(self):
        t1 = parse_tgds("R(x, y), P(y) -> T(x, y, w)")[0]
        t2 = parse_tgds("R(a, b), P(b) -> T(a, b, c)")[0]
        assert canonical_tgd(t1).text == canonical_tgd(t2).text

    def test_rule_order_invariance(self):
        s1 = parse_tgds("P(x) -> R(x, w)\nR(x, y) -> P(y)")
        s2 = parse_tgds("R(u, v) -> P(v)\nP(u) -> R(u, w)")
        assert hash_tgds(s1) == hash_tgds(s2)

    def test_duplicate_rules_collapse(self):
        s1 = parse_tgds("P(x) -> Q(x)")
        s2 = parse_tgds("P(x) -> Q(x)\nP(y) -> Q(y)")
        assert hash_tgds(s1) == hash_tgds(s2)

    def test_figure1_sets_differ(self, figure1_sticky, figure1_non_sticky):
        # The two Figure 1 tgd sets differ in one head variable — their
        # hashes must differ.
        assert hash_tgds(figure1_sticky) != hash_tgds(figure1_non_sticky)

    def test_body_head_sides_matter(self):
        t1 = parse_tgds("P(x) -> Q(x)")
        t2 = parse_tgds("Q(x) -> P(x)")
        assert hash_tgds(t1) != hash_tgds(t2)

    def test_existential_vs_frontier(self):
        t1 = parse_tgds("P(x) -> R(x, x)")
        t2 = parse_tgds("P(x) -> R(x, w)")
        assert hash_tgds(t1) != hash_tgds(t2)


class TestOMQHashing:
    def _omq(self, rules: str, query: str, schema=None):
        return OMQ(
            schema or Schema.of(P=1, T=1),
            tuple(parse_tgds(rules)),
            parse_cq(query),
        )

    def test_full_omq_invariance(self):
        q1 = self._omq(
            "P(x) -> R(x, w)\nR(x, y) -> P(y)", "q(x) :- R(x, y), P(y)"
        )
        q2 = OMQ(
            Schema.of(P=1, T=1),
            tuple(reversed(parse_tgds("P(a) -> R(a, b)\nR(a, b) -> P(b)"))),
            parse_cq("q(u) :- P(v), R(u, v)"),
            name="renamed",
        )
        assert hash_omq(q1) == hash_omq(q2)

    def test_schema_matters(self):
        q1 = self._omq("P(x) -> Q(x)", "q(x) :- Q(x)", Schema.of(P=1))
        q2 = self._omq("P(x) -> Q(x)", "q(x) :- Q(x)", Schema.of(P=1, T=1))
        assert hash_omq(q1) != hash_omq(q2)

    def test_figure1_omqs_differ(self, figure1_sticky, figure1_non_sticky):
        schema = Schema.of(R=2, P=2)
        query = parse_cq("q(x) :- S(x, y)")
        omq1 = OMQ(schema, tuple(figure1_sticky), query)
        omq2 = OMQ(schema, tuple(figure1_non_sticky), query)
        assert hash_omq(omq1) != hash_omq(omq2)

    def test_disjunct_order_invariance(self):
        schema = Schema.of(A=1, B=1)
        u1 = UCQ.of(parse_cq("q(x) :- A(x)"), parse_cq("q(x) :- B(x)"))
        u2 = UCQ.of(parse_cq("q(y) :- B(y)"), parse_cq("q(y) :- A(y)"))
        assert hash_ucq(u1) == hash_ucq(u2)
        assert hash_omq(OMQ(schema, (), u1)) == hash_omq(OMQ(schema, (), u2))


class TestCanonicalFormProperties:
    @pytest.mark.parametrize(
        "text",
        [
            "q(x) :- R(x, y), P(y)",
            "q() :- E(x, y), E(y, z), E(z, x)",
            "q(x, y) :- R(x, z), R(z, y), R(y, x)",
            "q(x) :- R(x, x)",
        ],
    )
    def test_exact_for_small_queries(self, text):
        assert canonical_cq(parse_cq(text)).exact

    def test_hash_is_hex_sha256(self):
        h = hash_cq(parse_cq("q(x) :- P(x)"))
        assert len(h) == 64
        int(h, 16)  # parses as hex

    def test_isomorphic_queries_share_canonical_text(self):
        # Cross-check against the library's own isomorphism test.
        q1 = parse_cq("q(x) :- R(x, y), S(y, z), R(z, x)")
        q2 = parse_cq("q(m) :- R(n, m), S(o, n), R(m, o)")
        assert q1.is_isomorphic_to(q2) == (
            canonical_cq(q1).text == canonical_cq(q2).text
        )
