"""Unit tests for XRewrite, anchored on Example 1 and the f_O bounds."""

import pytest

from repro import OMQ, Schema, parse_cq, parse_database, parse_tgds
from repro.chase import chase
from repro.rewriting import (
    RewritingBudgetExceeded,
    f_linear,
    f_non_recursive,
    f_sticky,
    witness_size_bound,
    xrewrite,
)
from repro.core.omq import TGDClass


class TestExample1:
    def test_rewriting_is_p_or_t(self, example1):
        result = xrewrite(example1)
        assert result.complete
        predicates = {
            tuple(sorted(d.predicates())) for d in result.rewriting.disjuncts
        }
        assert predicates == {("P",), ("T",)}
        assert all(d.size() == 1 for d in result.rewriting.disjuncts)

    def test_rewriting_semantics(self, example1):
        result = xrewrite(example1)
        for text, expected in [
            ("P(a)", {("a",)}),
            ("T(a)", {("a",)}),
            ("P(a). T(b).", {("a",), ("b",)}),
        ]:
            db = parse_database(text)
            answers = {
                tuple(t.name for t in tup)
                for tup in result.rewriting.evaluate(db)
            }
            assert answers == expected

    def test_factorization_needed(self, example1):
        # The run must use at least one factorization step (the paper's
        # R(x,y) ∧ R(x,z) example) or reach P(x) via pair resolution.
        result = xrewrite(example1)
        assert result.stats.rewriting_steps >= 3


class TestRewritingCorrectness:
    """Rewriting answers must equal chase answers (Definition 1)."""

    @pytest.mark.parametrize(
        "rules, schema, query, dbs",
        [
            (
                "Emp(x) -> Works(x, w)\nWorks(x, y) -> Busy(x)",
                {"Emp": 1},
                "q(x) :- Busy(x)",
                ["Emp(a). Emp(b)", "Emp(c)"],
            ),
            (
                "A(x) -> B(x)\nB(x) -> C(x)\nC(x) -> D(x)",
                {"A": 1, "B": 1, "C": 1, "D": 1},
                "q(x) :- D(x)",
                ["A(a). C(b)", "B(a). D(d)"],
            ),
            (
                "R(x, y) -> S(x, y, w)",
                {"R": 2},
                "q(x) :- S(x, y, z)",
                ["R(a, b). R(b, c)"],
            ),
        ],
    )
    def test_rewriting_matches_chase(self, rules, schema, query, dbs):
        sigma = parse_tgds(rules)
        omq = OMQ(Schema(schema), sigma, parse_cq(query))
        rewriting = xrewrite(omq)
        assert rewriting.complete
        for text in dbs:
            db = parse_database(text)
            via_rewriting = rewriting.rewriting.evaluate(db)
            via_chase = omq.as_ucq().evaluate(chase(db, sigma).instance)
            assert via_rewriting == via_chase

    def test_nonterminating_chase_rewriting_still_works(self):
        # Linear recursive ontology: infinite chase, finite rewriting.
        sigma = parse_tgds("P(x) -> R(x, w)\nR(x, y) -> P(y)")
        omq = OMQ(Schema.of(P=1), sigma, parse_cq("q(x) :- P(x)"))
        result = xrewrite(omq)
        assert result.complete
        db = parse_database("P(a)")
        assert result.rewriting.evaluate(db) != set()

    def test_constants_in_tgds(self):
        sigma = parse_tgds("In(x) -> Ans(x, 1)")
        omq = OMQ(Schema.of(In=1), sigma, parse_cq("q(x) :- Ans(x, 1)"))
        result = xrewrite(omq)
        db = parse_database("In(a)")
        assert result.rewriting.evaluate(db) == omq.as_ucq().evaluate(
            chase(db, sigma).instance
        )

    def test_fact_tgds_resolve_atoms_away(self):
        sigma = parse_tgds("-> Zero(0)")
        omq = OMQ(Schema.of(P=1), sigma, parse_cq("q(x) :- P(x), Zero(y)"))
        result = xrewrite(omq)
        db = parse_database("P(a)")
        assert result.rewriting.evaluate(db) == {(parse_database("P(a)").constants().pop(),)}

    def test_ucq_input(self):
        sigma = parse_tgds("A(x) -> B(x)")
        from repro.core.parser import parse_ucq

        omq = OMQ(
            Schema.of(A=1, C=1),
            sigma,
            parse_ucq("q(x) :- B(x) | q(x) :- C(x)"),
        )
        result = xrewrite(omq)
        predicates = {
            tuple(sorted(d.predicates())) for d in result.rewriting.disjuncts
        }
        assert ("A",) in predicates and ("C",) in predicates


class TestRepeatedExistentialPositions:
    """Regression: heads like ∃e R(e, e) must resolve R(x, x).

    Found by hypothesis: the naive "no shared variable at an existential
    position" reading of Definition 6 wrongly blocks the resolution when
    the repetition is forced by the head pattern itself.
    """

    def test_same_existential_at_two_positions(self):
        sigma = parse_tgds("P0(x) -> R1(e, e)\nR1(x, x) -> P2(x)")
        omq = OMQ(Schema.of(P0=1, R0=2), sigma, parse_cq("q() :- P2(x)"))
        rewriting = xrewrite(omq)
        assert rewriting.complete
        db = parse_database("P0(a)")
        via_rewriting = rewriting.rewriting.evaluate(db)
        via_chase = omq.as_ucq().evaluate(chase(db, sigma).instance)
        assert via_rewriting == via_chase == {()}

    def test_distinct_existentials_stay_distinct(self):
        # ∃e,f R(e, f) creates two distinct nulls: R(x, x) must NOT resolve.
        sigma = parse_tgds("P0(x) -> R1(e, f)\nR1(x, x) -> P2(x)")
        omq = OMQ(Schema.of(P0=1), sigma, parse_cq("q() :- P2(x)"))
        rewriting = xrewrite(omq)
        assert rewriting.complete
        db = parse_database("P0(a)")
        assert rewriting.rewriting.evaluate(db) == set()
        assert omq.as_ucq().evaluate(chase(db, sigma).instance) == set()

    def test_existential_cannot_capture_free_variable(self):
        sigma = parse_tgds("P0(x) -> R1(e, e)\nR1(x, y) -> P2(x)")
        omq = OMQ(Schema.of(P0=1), sigma, parse_cq("q(x) :- P2(x)"))
        rewriting = xrewrite(omq)
        assert rewriting.complete
        # P2's argument is always a null, never a constant answer.
        db = parse_database("P0(a)")
        assert rewriting.rewriting.evaluate(db) == set()

    def test_mixed_frontier_and_existential_repetition(self):
        # Head R(u, e) with query atom R(x, x): x would have to equal a
        # fresh null and a frontier value at once — never resolvable.
        sigma = parse_tgds("P0(u) -> R1(u, e)\nR1(x, x) -> P2(x)")
        omq = OMQ(Schema.of(P0=1), sigma, parse_cq("q() :- P2(x)"))
        rewriting = xrewrite(omq)
        assert rewriting.complete
        db = parse_database("P0(a)")
        via_chase = omq.as_ucq().evaluate(chase(db, sigma).instance)
        assert rewriting.rewriting.evaluate(db) == via_chase == set()


class TestQueryElimination:
    """[40]'s query-elimination optimization: core-minimized candidates."""

    def test_recursive_sticky_set_terminates(self):
        # Without core minimization this sticky set accumulates redundant
        # B-atoms and the exhaustive rewriting diverges.
        sigma = parse_tgds(
            """
            A(x, y), B(y, z) -> C(x, y, z)
            C(x, y, z) -> A(y, x)
            """
        )
        from repro.fragments import is_sticky

        assert is_sticky(sigma)
        omq = OMQ(Schema.of(A=2, B=2), sigma, parse_cq("q(x) :- A(x, y)"))
        result = xrewrite(omq, max_queries=1_000)
        assert result.complete
        assert len(result.rewriting) == 4

    def test_recursive_sticky_rewriting_is_correct(self):
        sigma = parse_tgds(
            """
            A(x, y), B(y, z) -> C(x, y, z)
            C(x, y, z) -> A(y, x)
            """
        )
        omq = OMQ(Schema.of(A=2, B=2), sigma, parse_cq("q(x) :- A(x, y)"))
        rewriting = xrewrite(omq).rewriting
        for text in ["A(a, b)", "A(a, b). B(b, c)", "A(a, b). B(a, c). B(b, d)"]:
            db = parse_database(text)
            # Bounded chase is sound; on these tiny databases depth 6 is
            # enough for all constant answers to appear.
            reference = omq.as_ucq().evaluate(
                chase(db, sigma, max_depth=6, partial=True).instance
            )
            assert rewriting.evaluate(db) == reference

    def test_generated_disjuncts_are_cores(self):
        sigma = parse_tgds("P(x) -> R(x, w)\nR(x, y) -> P(y)")
        omq = OMQ(Schema.of(P=1), sigma, parse_cq("q(x) :- P(x), R(x, y)"))
        result = xrewrite(omq)
        for d in result.rewriting.disjuncts:
            assert d.size() == d.core().size()


class TestBudget:
    def test_budget_exceeded_raises(self):
        # Full transitive closure is not UCQ-rewritable; the run must stop.
        sigma = parse_tgds("E(x, y), E(y, z) -> E(x, z)")
        omq = OMQ(Schema.of(E=2), sigma, parse_cq("q() :- E(x, y)"))
        # The query E(x,y) only resolves into longer chains; give a budget.
        sigma2 = parse_tgds("E(x, y), E(y, z) -> T(x, z)\nT(x, y), T(y, z) -> T(x, z)")
        omq2 = OMQ(Schema.of(E=2), sigma2, parse_cq("q() :- T(x, y)"))
        with pytest.raises(RewritingBudgetExceeded) as err:
            xrewrite(omq2, max_queries=30)
        assert not err.value.partial.complete

    def test_partial_mode(self):
        sigma = parse_tgds("E(x, y), E(y, z) -> T(x, z)\nT(x, y), T(y, z) -> T(x, z)")
        omq = OMQ(Schema.of(E=2), sigma, parse_cq("q() :- T(x, y)"))
        from repro.rewriting.xrewrite import xrewrite_cq

        result = xrewrite_cq(
            omq.data_schema, omq.sigma, omq.as_cq(), max_queries=30, partial=True
        )
        assert not result.complete
        # Partial disjuncts are still sound consequences.
        for d in result.rewriting.disjuncts:
            assert set(d.predicates()) <= {"E"}


class TestBounds:
    def test_linear_bound_respected(self, example1):
        result = xrewrite(example1)
        assert result.max_disjunct_size() <= f_linear(example1)

    def test_non_recursive_bound_respected(self):
        sigma = parse_tgds(
            """
            A(x), B(x) -> C(x)
            C(x), D(x) -> E(x)
            """
        )
        omq = OMQ(
            Schema.of(A=1, B=1, D=1), sigma, parse_cq("q(x) :- E(x)")
        )
        result = xrewrite(omq)
        assert result.complete
        assert result.max_disjunct_size() <= f_non_recursive(omq)
        # The actual growth: E needs C∧D, C needs A∧B → 3 atoms.
        assert result.max_disjunct_size() == 3

    def test_sticky_bound_respected(self):
        sigma = parse_tgds("R(x, y), P(y, z) -> S(x, y, z)")
        omq = OMQ(Schema.of(R=2, P=2), sigma, parse_cq("q(x) :- S(x, y, z)"))
        result = xrewrite(omq)
        assert result.complete
        assert result.max_disjunct_size() <= f_sticky(omq)

    def test_witness_size_bound_dispatch(self, example1):
        assert witness_size_bound(example1, TGDClass.LINEAR) == 2
        with pytest.raises(ValueError):
            witness_size_bound(example1, TGDClass.GUARDED)
