"""The structural counterexample index, proven sound by differential fire.

Structural (subsumption-based) witness replay is the first feature whose
soundness rests on a meta-theorem rather than a hash equality: a stored
witness ``(D, c̄)`` for ``q ⊄ q'`` refutes a *different* pair ``(p1, p2)``
iff ``c̄ ∈ p1(D)`` (membership — sound even from an under-approximating
evaluation) and ``c̄ ∉ p2(D)`` *exactly*.  This suite is the harness the
index ships inside:

* a differential parity sweep — structural-replay-on vs replay-off
  verdicts over perturbed-pair draws in every fragment, SIGALRM-capped
  per case like ``test_differential.py``, zero disagreements tolerated;
* hypothesis property tests that replay only ever fires when the two
  fresh hom-checks confirm the stored witness refutes the candidate —
  even against adversarially planted (lying) store rows;
* regression pins extending PR 8's: UNKNOWNs never enter the signature
  index, and a schema-version-mismatched store degrades to miss without
  attempting a structural replay;
* the CLI/engine knobs: ``--witness-replay {exact,structural,off}`` and
  the streaming ``repro witnesses --limit`` listing.
"""

import contextlib
import itertools
import json
import random
import signal
import sqlite3

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.containment.dispatch import contains
from repro.containment.result import Verdict, Witness
from repro.core.atoms import Atom
from repro.core.instance import Instance
from repro.core.parser import parse_omq
from repro.core.terms import Constant
from repro.engine import BatchEngine, ContainmentJob
from repro.engine.canon import hash_omq
from repro.engine.metrics import MetricsRegistry
from repro.engine.witness_store import (
    REPLAY_MODES,
    WitnessStore,
    omq_signature,
)
from repro.evaluation import evaluate_omq
from repro.generators.random_omqs import (
    FRAGMENTS,
    PERTURBATIONS,
    perturb_pair,
    perturbed_pair_family,
    random_omq_pair,
)
from repro.kernel import instance_signature

#: Per-case wall-clock cap (SIGALRM); overruns are skipped, not failed.
CASE_TIMEOUT_S = 5.0

#: Budgets small enough to keep 5 fragments × draws cheap; draws the
#: procedures cannot settle within them come back UNKNOWN and are skipped.
BUDGETS = {"rewriting_budget": 2_000, "chase_max_steps": 5_000}


class _CaseTimeout(Exception):
    pass


@contextlib.contextmanager
def case_deadline(seconds):
    """Raise :class:`_CaseTimeout` in the main thread after *seconds*."""
    if not hasattr(signal, "setitimer"):  # pragma: no cover - POSIX CI
        yield
        return

    def _alarm(signum, frame):
        raise _CaseTimeout()

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _path_omq(body: str) -> "object":
    return parse_omq(f"schema: E/2\nquery: q() :- {body}\n")


SHORT = "E(x, y), E(y, z)"
LONG = "E(x, y), E(y, z), E(z, w)"
#: Redundant-atom perturbations: equivalent queries, different canonical
#: hashes, same signature — neither side hash-matches the base pair.
P_SHORT = "E(x, y), E(y, z), E(u, v)"
P_LONG = "E(x, y), E(y, z), E(z, w), E(u, v)"


def _witness_refutes(q1, q2, witness) -> bool:
    """The ground-truth oracle: does (D, c̄) certify ``q1 ⊄ q2``?

    Generous budgets; requires an *exact* negative on the RHS — exactly
    the two facts structural replay claims to have established.
    """
    lhs = evaluate_omq(q1, witness.database)
    if witness.answer not in lhs.answers:
        return False
    rhs = evaluate_omq(q2, witness.database)
    return rhs.exact and witness.answer not in rhs.answers


class TestSignatureKeys:
    def test_omq_signature_is_canonical(self):
        short, pshort = _path_omq(SHORT), _path_omq(P_SHORT)
        assert omq_signature(short) == "E/2"
        # Redundant atoms and α-renamings do not move the key…
        assert omq_signature(pshort) == omq_signature(short)
        # …but the canonical hash does move for the redundant atom.
        assert hash_omq(pshort) != hash_omq(short)
        assert omq_signature(None) == ""

    def test_kernel_instance_signature(self):
        db = Instance.of(
            [
                Atom("E", (Constant("a"), Constant("b"))),
                Atom("P", (Constant("a"),)),
            ]
        )
        assert instance_signature(db) == frozenset({("E", 2), ("P", 1)})

    @pytest.mark.parametrize("fragment", FRAGMENTS)
    def test_perturbation_labels_match_measurements(self, fragment):
        rng = random.Random(20260808)
        _, variants = perturbed_pair_family(fragment, rng, n_rules=2)
        by_kind = {v.kind: v for v in variants}
        assert set(by_kind) == set(PERTURBATIONS)
        # Hash-invariant spellings: reorder and α-rename.
        assert by_kind["atom_reorder"].hash_preserved == (True, True)
        assert by_kind["variable_rename"].hash_preserved == (True, True)
        # The structural-replay input: signatures survive a redundant atom.
        assert by_kind["redundant_atom"].signature_preserved == (True, True)
        # A predicate rename moves exactly one side's signature key.
        assert by_kind["predicate_rename"].signature_preserved != (
            True,
            True,
        )
        assert not by_kind["predicate_rename"].verdict_preserved


class TestStructuralReplay:
    def _primed_store(self, **kwargs):
        """A store holding the (short ⊄ long) witness, signature-keyed."""
        short, long = _path_omq(SHORT), _path_omq(LONG)
        verdict = contains(short, long)
        assert verdict.verdict is Verdict.NOT_CONTAINED
        metrics = MetricsRegistry()
        store = WitnessStore(metrics=metrics, **kwargs)
        store.record(
            hash_omq(short),
            hash_omq(long),
            verdict.witness,
            q1=short,
            q2=long,
        )
        return store, metrics

    def test_structural_hit_on_non_hash_equal_pair(self):
        store, metrics = self._primed_store()
        job = ContainmentJob(_path_omq(P_SHORT), _path_omq(P_LONG))
        result = store.replay(job)
        assert result is not None
        assert result.verdict is Verdict.NOT_CONTAINED
        assert result.method == "witness-replay"
        assert "structural" in result.detail
        snap = metrics.snapshot()
        assert snap["engine.witness.structural.attempts"] == 1
        assert snap["engine.witness.structural.hits"] == 1
        assert snap.get("engine.witness.exact_hits", 0) == 0
        # The hit was re-recorded under the candidate pair: exact now.
        again = store.replay(job)
        assert again is not None and "exact" in again.detail
        assert metrics.snapshot()["engine.witness.exact_hits"] == 1
        entry = [e for e in store.entries() if e["origin"] != "decided"]
        assert entry and entry[0]["origin"] == "structural-replay"
        store.close()

    def test_refuted_replay_degrades_to_miss(self):
        """The contained direction shares the signature pair but the
        fresh LHS hom-check disconfirms — replay must refuse."""
        store, metrics = self._primed_store()
        job = ContainmentJob(_path_omq(LONG), _path_omq(SHORT))
        assert store.replay(job) is None
        snap = metrics.snapshot()
        assert snap["engine.witness.structural.attempts"] == 1
        assert snap["engine.witness.structural.refuted_replays"] == 1
        assert snap.get("engine.witness.structural.hits", 0) == 0
        store.close()

    def test_exact_mode_never_replays_structurally(self):
        store, metrics = self._primed_store(replay_mode="exact")
        job = ContainmentJob(_path_omq(P_SHORT), _path_omq(P_LONG))
        assert store.replay(job) is None
        assert (
            metrics.snapshot().get("engine.witness.structural.attempts", 0)
            == 0
        )
        store.close()

    def test_off_mode_never_replays_at_all(self):
        store, _ = self._primed_store(replay_mode="off")
        short, long = _path_omq(SHORT), _path_omq(LONG)
        assert store.replay(ContainmentJob(short, long)) is None
        store.close()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            WitnessStore(replay_mode="sometimes")
        with pytest.raises(ValueError):
            BatchEngine(witness_replay="sometimes")
        assert set(REPLAY_MODES) == {"exact", "structural", "off"}

    def test_blown_replay_budget_degrades_to_miss(self):
        """A replay_budget the chase cannot finish under makes the RHS
        evaluation inexact, which must read as a miss, not a refutation
        taken on faith."""
        omq_text = (
            "schema: E/2\nrules:\n    E(x, y) -> P(x, y)\n"
            "query: q() :- {body}\n"
        )
        p2 = ", ".join(f"P(v{i}, v{i+1})" for i in range(2))
        p3 = ", ".join(f"P(v{i}, v{i+1})" for i in range(3))
        short = parse_omq(omq_text.format(body=p2))
        long = parse_omq(omq_text.format(body=p3))
        verdict = contains(short, long)
        assert verdict.verdict is Verdict.NOT_CONTAINED
        metrics = MetricsRegistry()
        store = WitnessStore(metrics=metrics, replay_budget=1)
        store.record(
            hash_omq(short), hash_omq(long), verdict.witness,
            q1=short, q2=long,
        )
        pshort = parse_omq(omq_text.format(body=p2 + ", P(u, v)"))
        plong = parse_omq(omq_text.format(body=p3 + ", P(u, v)"))
        assert store.replay(ContainmentJob(pshort, plong)) is None
        snap = metrics.snapshot()
        assert snap["engine.witness.structural.attempts"] >= 1
        assert snap.get("engine.witness.structural.hits", 0) == 0
        store.close()

    def test_engine_replays_structurally_end_to_end(self, tmp_path):
        path = str(tmp_path / "w.sqlite")
        short, long = _path_omq(SHORT), _path_omq(LONG)
        with BatchEngine(witness_store=path) as cold:
            assert (
                cold.contains(short, long).value.verdict
                is Verdict.NOT_CONTAINED
            )
        pshort, plong = _path_omq(P_SHORT), _path_omq(P_LONG)
        with BatchEngine(witness_store=path) as warm:
            result = warm.contains(pshort, plong)
            assert result.value.verdict is Verdict.NOT_CONTAINED
            assert result.value.method == "witness-replay"
            snap = warm.stats()["metrics"]
            assert snap["engine.witness.structural.hits"] == 1
            assert snap.get("engine.witness.exact_hits", 0) == 0
            assert snap.get("engine.containment.runs", 0) == 0
        # Engine-level override: replay off leaves the pair to the full
        # procedure even though the store could answer it.
        with BatchEngine(witness_store=path, witness_replay="off") as off:
            result = off.contains(pshort, plong)
            assert result.value.verdict is Verdict.NOT_CONTAINED
            assert result.value.method != "witness-replay"


class TestDifferentialParity:
    """Replay-on vs replay-off verdict parity over perturbed-pair draws.

    A structural replay may only strengthen UNKNOWN into NOT_CONTAINED
    (it holds a verified counterexample the budgeted procedure timed out
    before finding); it may never contradict a decided verdict.  Both
    replay outcomes are therefore checked against the replay-off path
    *and* against the witness oracle.
    """

    @pytest.mark.parametrize("fragment", FRAGMENTS)
    def test_fragment_parity(self, fragment):
        rng = random.Random(20180611 + len(fragment))
        disagreements = []
        structural_hits = 0
        checked = 0
        for _ in range(14):
            if checked >= 4:
                break
            base, variants = perturbed_pair_family(
                fragment, rng, n_rules=2
            )
            try:
                with case_deadline(CASE_TIMEOUT_S):
                    base_verdict = contains(*base, **BUDGETS)
            except Exception:
                continue
            if base_verdict.verdict is not Verdict.NOT_CONTAINED:
                continue
            checked += 1
            store = WitnessStore(metrics=MetricsRegistry())
            store.record(
                hash_omq(base[0]),
                hash_omq(base[1]),
                base_verdict.witness,
                q1=base[0],
                q2=base[1],
            )
            for variant in variants:
                p1, p2 = variant.pair
                job = ContainmentJob(p1, p2, **BUDGETS)
                try:
                    with case_deadline(CASE_TIMEOUT_S):
                        replayed = store.replay(job)
                        off = contains(p1, p2, **BUDGETS)
                except Exception:
                    continue
                if replayed is None:
                    continue
                if "structural" in replayed.detail:
                    structural_hits += 1
                # Parity: replay may never contradict a decided verdict.
                if off.verdict is Verdict.CONTAINED:
                    disagreements.append((fragment, variant.kind, p1, p2))
                # And its witness must verify against the candidate pair.
                if not _witness_refutes(p1, p2, replayed.witness):
                    disagreements.append(
                        (fragment, variant.kind, "unverified", p1, p2)
                    )
            store.close()
        assert not disagreements, disagreements
        assert checked > 0, f"no refuted base pairs drawn for {fragment}"

    def test_verdict_preserving_variants_agree_with_base(self):
        """Spot-check the generator's own labels: a verdict-preserving
        variant of a decided pair decides the same way."""
        rng = random.Random(99)
        agreed = 0
        for _ in range(20):
            if agreed >= 3:
                break
            base, variants = perturbed_pair_family(
                "linear", rng, n_rules=2
            )
            try:
                with case_deadline(CASE_TIMEOUT_S):
                    base_verdict = contains(*base, **BUDGETS)
            except Exception:
                continue
            if base_verdict.verdict is Verdict.UNKNOWN:
                continue
            for variant in variants:
                if not variant.verdict_preserved:
                    continue
                try:
                    with case_deadline(CASE_TIMEOUT_S):
                        v = contains(*variant.pair, **BUDGETS)
                except Exception:
                    continue
                if v.verdict is Verdict.UNKNOWN:
                    continue
                assert v.verdict is base_verdict.verdict, (
                    variant.kind,
                    variant.pair,
                )
            agreed += 1
        assert agreed > 0


def _edges_db(edges):
    return Instance.of(
        Atom("E", (Constant(f"c{a}"), Constant(f"c{b}")))
        for a, b in edges
    )


def _has_path(edges, length):
    """Exhaustive k-hop path check over a tiny edge list."""
    adjacency = {}
    for a, b in edges:
        adjacency.setdefault(a, set()).add(b)
    frontier = {a for a, _ in edges}
    for _ in range(length):
        frontier = set().union(
            *(adjacency.get(n, set()) for n in frontier)
        ) if frontier else set()
    return bool(frontier)


class TestHypothesisSoundness:
    """Replay only fires when the fresh hom-checks confirm — even when
    the store lies."""

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            min_size=0,
            max_size=8,
        )
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_planted_witness_only_replays_if_it_really_refutes(self, edges):
        """Plant an *arbitrary* database as a claimed counterexample to
        ``short ⊆ long`` and replay the perturbed pair: a hit demands
        that the database genuinely has a 2-path and no 3-path; a
        genuine refuter must also be found (the candidate is the only
        signature-compatible row, well inside ``scan_limit``)."""
        short, long = _path_omq(SHORT), _path_omq(LONG)
        pshort, plong = _path_omq(P_SHORT), _path_omq(P_LONG)
        planted = Witness(_edges_db(edges), ())
        store = WitnessStore(metrics=MetricsRegistry())
        store.record(
            hash_omq(short), hash_omq(long), planted, q1=short, q2=long
        )
        result = store.replay(ContainmentJob(pshort, plong))
        really_refutes = (
            bool(edges)
            and _has_path(edges, 2)
            and not _has_path(edges, 3)
        )
        if result is not None:
            assert really_refutes, edges
            assert _witness_refutes(pshort, plong, result.witness)
        else:
            assert not really_refutes, edges
        store.close()

    @given(seed=st.integers(0, 2**16))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_signature_mismatch_is_never_attempted(self, seed):
        """A predicate-renamed candidate shares no signature key with the
        stored pair, so the structural rung must not even attempt it."""
        rng = random.Random(seed)
        base, _ = perturbed_pair_family("linear", rng, n_rules=2)
        renamed = perturb_pair(*base, rng, "predicate_rename")
        metrics = MetricsRegistry()
        store = WitnessStore(metrics=metrics)
        store.record(
            hash_omq(base[0]),
            hash_omq(base[1]),
            Witness(Instance.empty(), ()),
            q1=base[0],
            q2=base[1],
        )
        p1, p2 = renamed.pair
        if (
            hash_omq(p1) == hash_omq(base[0])
            or hash_omq(p2) == hash_omq(base[1])
        ):  # pragma: no cover - rename always moves the renamed side
            store.close()
            return
        store.replay(ContainmentJob(p1, p2))
        assert (
            metrics.snapshot().get("engine.witness.structural.attempts", 0)
            == 0
        )
        store.close()


class TestDegradePins:
    """Satellite 3: PR 8's never-durable pins, extended to the new keying."""

    def test_unknowns_never_enter_the_signature_index(self, tmp_path):
        short, long = _path_omq(SHORT), _path_omq(LONG)
        with BatchEngine(
            witness_store=str(tmp_path / "w.sqlite")
        ) as engine:
            degraded = engine.submit(
                ContainmentJob(short, long), deadline=0.001
            )
            assert degraded.result(timeout=5).error == "deadline"
            job = ContainmentJob(short, long)
            engine.scheduler._note_verdict(job, job.failure_result("boom"))
            stats = engine.stats()["witness_store"]
            assert stats["entries"] == 0
            assert stats["signature_keys"] == 0
            # The degraded UNKNOWNs must not have poisoned replay either.
            assert engine.witness_store.replay(job) is None

    def test_decided_verdicts_are_signature_keyed(self, tmp_path):
        short, long = _path_omq(SHORT), _path_omq(LONG)
        with BatchEngine(
            witness_store=str(tmp_path / "w.sqlite")
        ) as engine:
            engine.contains(short, long)
            stats = engine.stats()["witness_store"]
            assert stats["entries"] == 1
            assert stats["signature_keys"] == 1
            entry = engine.witness_store.entries()[0]
            assert entry["lhs_sig"] == "E/2"
            assert entry["rhs_sig"] == "E/2"
            assert entry["origin"] == "decided"

    def test_schema_mismatch_degrades_to_miss_not_structural(self, tmp_path):
        """A store stamped with a foreign schema version is discarded and
        rebuilt empty (the stamp contract); replay on the rebuilt store
        is an honest miss with zero structural attempts — never a replay
        over unkeyed rows."""
        path = str(tmp_path / "w.sqlite")
        short, long = _path_omq(SHORT), _path_omq(LONG)
        with BatchEngine(witness_store=path) as engine:
            engine.contains(short, long)
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = '1' WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        metrics = MetricsRegistry()
        with WitnessStore(path, metrics=metrics) as reopened:
            assert reopened.recoveries == 1
            assert len(reopened) == 0
            job = ContainmentJob(_path_omq(P_SHORT), _path_omq(P_LONG))
            assert reopened.replay(job) is None
            snap = metrics.snapshot()
            assert (
                snap.get("engine.witness.structural.attempts", 0) == 0
            )
            assert snap.get("engine.witness.misses", 0) == 1


class TestCLI:
    def _populate(self, tmp_path, pairs) -> str:
        """A store with one decided witness per (short, long) body pair."""
        path = str(tmp_path / "w.sqlite")
        with BatchEngine(witness_store=path) as engine:
            for q1_body, q2_body in pairs:
                result = engine.contains(
                    _path_omq(q1_body), _path_omq(q2_body)
                )
                assert result.value.verdict is Verdict.NOT_CONTAINED
        return path

    def _distinct_pairs(self, n):
        """n distinct NOT_CONTAINED pairs: k-path vs (k+1)-path."""

        def body(k):
            return ", ".join(
                f"E(x{i}, x{i + 1})" for i in range(k)
            )

        return [(body(k), body(k + 1)) for k in range(2, 2 + n)]

    def test_witnesses_limit_streams_a_prefix(self, tmp_path, capsys):
        from repro.cli import main

        path = self._populate(tmp_path, self._distinct_pairs(5))
        assert main(["witnesses", path, "--json", "--limit", "2"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["entries"] == 5
        assert len(doc["witnesses"]) == 2
        assert doc["witnesses"][0]["lhs_sig"] == "E/2"
        assert doc["witnesses"][0]["origin"] == "decided"
        # The text listing notes the rows it withheld.
        assert main(["witnesses", path, "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "5 stored witness(es)" in out
        assert "… 3 more" in out

    def test_witnesses_scan_is_read_only_even_on_mismatch(
        self, tmp_path, capsys
    ):
        """Inspection must not trip the discard-and-rebuild contract."""
        from repro.cli import main

        path = self._populate(tmp_path, self._distinct_pairs(1))
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = 'antique' WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        assert main(["witnesses", path]) == 0
        out = capsys.readouterr().out
        assert "stale stamps" in out
        # The file survived untouched — stamp still antique.
        conn = sqlite3.connect(path)
        (value,) = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        conn.close()
        assert value == "antique"

    def test_contains_witness_replay_flag(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "w.sqlite")
        files = {}
        for name, body in (
            ("short", SHORT),
            ("long", LONG),
            ("pshort", P_SHORT),
            ("plong", P_LONG),
            # A second, distinct perturbation: the exact-mode run below
            # records (pshort, plong), so the structural probe needs a
            # pair hash-equal to nothing already in the store.
            ("pshort2", SHORT + ", E(s, t), E(g, h)"),
            ("plong2", LONG + ", E(s, t), E(g, h)"),
        ):
            f = tmp_path / f"{name}.omq"
            f.write_text(f"schema: E/2\nquery: q() :- {body}\n")
            files[name] = str(f)
        base = ["contains", files["short"], files["long"],
                "--witness-store", store, "--json"]
        assert main(base) == 1  # exit 1 = not contained, populates store
        capsys.readouterr()
        perturbed = ["contains", files["pshort"], files["plong"],
                     "--witness-store", store, "--json"]
        # exact mode: non-hash-equal pair must run the full procedure.
        assert main(perturbed + ["--witness-replay", "exact"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["method"] != "witness-replay"
        # structural (default): replayed from the signature index.
        perturbed2 = ["contains", files["pshort2"], files["plong2"],
                      "--witness-store", store, "--json"]
        assert main(perturbed2) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["method"] == "witness-replay"
        assert "structural" in doc["detail"]
        # off: even the exact pair is re-decided.
        assert main(base + ["--witness-replay", "off"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["method"] != "witness-replay"

    def test_serve_config_witness_replay_passthrough(self, tmp_path):
        from repro.serve.server import ServeConfig

        path = self._populate(tmp_path, self._distinct_pairs(1))
        config = ServeConfig(witness_store=path, witness_replay="exact")
        engine = config.build_engine()
        try:
            assert engine.witness_store.replay_mode == "exact"
        finally:
            engine.close()
        config = ServeConfig(witness_store=path)
        engine = config.build_engine()
        try:
            assert engine.witness_store.replay_mode == "structural"
        finally:
            engine.close()
