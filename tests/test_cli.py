"""Tests for the command-line interface and the OMQ file format."""

import json

import pytest

from repro.cli import main
from repro.core.parser import ParseError, parse_omq


OMQ_TEXT = """
schema: P/1, T/1
rules:
    P(x) -> R(x, w)
    R(x, y) -> P(y)
    T(x) -> P(x)
query: q(x) :- R(x, y), P(y)
"""

OMQ_P = """
schema: P/1, T/1
rules:
    P(x) -> R(x, w)
    R(x, y) -> P(y)
    T(x) -> P(x)
query: q(x) :- P(x)
"""

OMQ_T_ONLY = """
schema: P/1, T/1
query: q(x) :- T(x)
"""


class TestOMQFileFormat:
    def test_parse_full_document(self):
        omq = parse_omq(OMQ_TEXT)
        assert len(omq.sigma) == 3
        assert omq.arity == 1
        assert omq.data_schema.arity("P") == 1

    def test_rules_optional(self):
        omq = parse_omq(OMQ_T_ONLY)
        assert not omq.sigma

    def test_ucq_query(self):
        omq = parse_omq(
            "schema: A/1, B/1\nquery: q(x) :- A(x) | q(x) :- B(x)"
        )
        assert len(omq.as_ucq()) == 2

    def test_multiple_query_lines(self):
        omq = parse_omq(
            "schema: A/1, B/1\nquery: q(x) :- A(x)\nquery: q(x) :- B(x)"
        )
        assert len(omq.as_ucq()) == 2

    def test_missing_schema_rejected(self):
        with pytest.raises(ParseError):
            parse_omq("query: q(x) :- A(x)")

    def test_missing_query_rejected(self):
        with pytest.raises(ParseError):
            parse_omq("schema: A/1")

    def test_comments_allowed(self):
        omq = parse_omq(
            "% a comment\nschema: A/1\nquery: q(x) :- A(x)"
        )
        assert omq.arity == 1

    def test_stray_line_rejected(self):
        with pytest.raises(ParseError):
            parse_omq("A(x) -> B(x)\nschema: A/1\nquery: q() :- A(x)")


@pytest.fixture
def files(tmp_path):
    omq1 = tmp_path / "q1.omq"
    omq1.write_text(OMQ_TEXT)
    omq2 = tmp_path / "q2.omq"
    omq2.write_text(OMQ_P)
    omq3 = tmp_path / "q3.omq"
    omq3.write_text(OMQ_T_ONLY)
    ontology = tmp_path / "rules.tgd"
    ontology.write_text("P(x) -> R(x, w)\nR(x, y) -> P(y)")
    db = tmp_path / "data.db"
    db.write_text("T(alice). P(bob).")
    return {
        "q1": str(omq1),
        "q2": str(omq2),
        "q3": str(omq3),
        "ontology": str(ontology),
        "db": str(db),
    }


class TestCLI:
    def test_classify(self, files, capsys):
        assert main(["classify", files["ontology"]]) == 0
        out = capsys.readouterr().out
        assert "L" in out and "preferred" in out

    def test_rewrite(self, files, capsys):
        assert main(["rewrite", files["q1"]]) == 0
        out = capsys.readouterr().out
        assert "P(?x)" in out and "T(?x)" in out

    def test_evaluate(self, files, capsys):
        assert main(["evaluate", files["q1"], files["db"]]) == 0
        out = capsys.readouterr().out
        assert "(alice)" in out and "(bob)" in out

    def test_contains_yes(self, files, capsys):
        assert main(["contains", files["q1"], files["q2"]]) == 0
        assert "contained" in capsys.readouterr().out

    def test_contains_no_prints_witness(self, files, capsys):
        assert main(["contains", files["q2"], files["q3"]]) == 1
        out = capsys.readouterr().out
        assert "not-contained" in out
        assert "witness database" in out

    def test_distributes(self, files, capsys):
        assert main(["distributes", files["q1"]]) == 0
        assert "distributes: True" in capsys.readouterr().out

    def test_rewritable(self, files, capsys):
        assert main(["rewritable", files["q1"], "--show"]) == 0
        out = capsys.readouterr().out
        assert "UCQ rewritable: True" in out

    def test_minimize(self, files, capsys, tmp_path):
        redundant = tmp_path / "redundant.omq"
        redundant.write_text(
            "schema: A/1\nrules:\n    A(x) -> B(x)\nquery: q(x) :- B(x), A(x)"
        )
        assert main(["minimize", str(redundant)]) == 0
        out = capsys.readouterr().out
        assert "query:" in out
        # A(x) is redundant given B(x)... no: B needs A — A(x) implies B(x),
        # so the minimized query keeps exactly one atom.
        assert out.count("A(") + out.count("B(") >= 1

    def test_explain(self, files, capsys, tmp_path):
        # Explanations need a terminating chase: use an acyclic ontology.
        terminating = tmp_path / "terminating.omq"
        terminating.write_text(
            "schema: T/1, P/1\nrules:\n    T(x) -> Pp(x)\n"
            "query: q(x) :- Pp(x)"
        )
        assert main(["explain", str(terminating), files["db"], "alice"]) == 0
        out = capsys.readouterr().out
        assert "[fact]" in out and "T(alice)" in out

    def test_explain_non_answer(self, files, capsys, tmp_path):
        terminating = tmp_path / "terminating.omq"
        terminating.write_text(
            "schema: T/1, P/1\nrules:\n    T(x) -> Pp(x)\n"
            "query: q(x) :- Pp(x)"
        )
        assert main(["explain", str(terminating), files["db"], "nobody"]) == 1

    def test_explain_diverging_chase(self, files, capsys):
        # The quickstart ontology's chase is infinite: honest exit code 2.
        assert main(
            ["explain", files["q1"], files["db"], "alice", "--budget", "200"]
        ) == 2


class TestJSONOutput:
    def test_contains_json_contained(self, files, capsys):
        assert main(["contains", files["q1"], files["q2"], "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "contained"
        assert payload["witness"] is None
        assert payload["method"]

    def test_contains_json_witness(self, files, capsys):
        assert main(["contains", files["q2"], files["q3"], "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "not-contained"
        assert payload["witness"]["database"]
        assert isinstance(payload["witness"]["answer"], list)

    def test_rewrite_json(self, files, capsys):
        assert main(["rewrite", files["q1"], "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["complete"] is True
        assert payload["count"] == len(payload["disjuncts"]) == 2

    def test_contains_json_through_engine(self, files, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        args = [
            "contains", files["q1"], files["q2"], "--json",
            "--cache-dir", cache,
        ]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cached"] is False
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cached"] is True
        assert warm["verdict"] == cold["verdict"] == "contained"


class TestBatchCommand:
    @pytest.fixture
    def batch_file(self, files, tmp_path):
        ontology = tmp_path / "rules.tgd"
        ontology.write_text("P(x) -> R(x, w)\nR(x, y) -> P(y)")
        manifest = tmp_path / "batch.txt"
        manifest.write_text(
            "% a demo manifest\n"
            f"contains {files['q1']} {files['q2']}\n"
            f"contains {files['q2']} {files['q3']}\n"
            f"rewrite {files['q1']}\n"
            "classify rules.tgd\n"
        )
        return str(manifest)

    def test_batch_text_output(self, batch_file, capsys):
        assert main(["batch", batch_file]) == 0
        out = capsys.readouterr().out
        assert "contained via" in out
        assert "not-contained via" in out
        assert "2 disjuncts, complete" in out
        assert "preferred L" in out

    def test_batch_json_output(self, batch_file, capsys):
        assert main(["batch", batch_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["jobs"]) == 4
        kinds = [j["kind"] for j in payload["jobs"]]
        assert kinds == ["containment", "containment", "rewrite", "classify"]
        assert payload["jobs"][0]["verdict"] == "contained"
        assert payload["jobs"][1]["verdict"] == "not-contained"
        assert payload["jobs"][3]["best"] == "L"
        assert "cache" in payload["stats"]

    def test_batch_warm_cache(self, batch_file, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["batch", batch_file, "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["batch", batch_file, "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert out.count("(cached)") == 4

    def test_batch_rejects_bad_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("frobnicate something.omq\n")
        assert main(["batch", str(bad)]) == 2
        assert "unrecognized" in capsys.readouterr().err

    def test_batch_empty_manifest(self, tmp_path, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("% nothing here\n")
        assert main(["batch", str(empty)]) == 2

    def test_batch_parallel_matches_serial(self, batch_file, capsys):
        assert main(["batch", batch_file, "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["batch", batch_file, "--json", "--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        for s, p in zip(serial["jobs"], parallel["jobs"]):
            assert s.get("verdict") == p.get("verdict")
            assert s.get("count") == p.get("count")

    @pytest.fixture
    def dedup_file(self, files, tmp_path):
        """A manifest asking the same containment question twice, the
        second time through an α-renamed spelling of q1."""
        alpha = tmp_path / "q1_alpha.omq"
        alpha.write_text(
            "schema: P/1, T/1\n"
            "rules:\n"
            "    T(a) -> P(a)\n"
            "    R(u, v) -> P(v)\n"
            "    P(u) -> R(u, w)\n"
            "query: q(m) :- P(n), R(m, n)\n"
        )
        manifest = tmp_path / "dedup.txt"
        manifest.write_text(
            f"contains {files['q1']} {files['q2']}\n"
            f"contains {alpha} {files['q2']}\n"
        )
        return str(manifest)

    def test_batch_reports_coalesced_duplicates(self, dedup_file, capsys):
        assert main(["batch", dedup_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["stats"]["metrics"]
        assert metrics["engine.dedup.coalesced"] >= 1
        assert metrics["engine.containment.runs"] == 1
        coalesced = [j["coalesced"] for j in payload["jobs"]]
        assert coalesced == [False, True]
        verdicts = {j["verdict"] for j in payload["jobs"]}
        assert verdicts == {"contained"}

    def test_batch_dedup_marked_in_text_output(self, dedup_file, capsys):
        assert main(["batch", dedup_file]) == 0
        out = capsys.readouterr().out
        assert out.count("(deduplicated)") == 1

    def test_batch_stream_text(self, batch_file, capsys):
        assert main(["batch", batch_file, "--stream", "--workers", "2"]) == 0
        captured = capsys.readouterr()
        # Every job shows up as a progress line, numbered by arrival.
        for n in range(1, 5):
            assert f"[{n}/4]" in captured.out
        assert "contained via" in captured.out
        assert "preferred L" in captured.out
        assert "4 jobs" in captured.err  # the summary still prints

    def test_batch_stream_json_keeps_stdout_clean(self, batch_file, capsys):
        assert main(["batch", batch_file, "--stream", "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout is one JSON document
        assert len(payload["jobs"]) == 4
        assert "[1/4]" in captured.err  # progress went to stderr

    def test_batch_stream_matches_plain_batch(self, batch_file, capsys):
        assert main(["batch", batch_file, "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert main(
            ["batch", batch_file, "--json", "--stream", "--workers", "2"]
        ) == 0
        streamed = json.loads(capsys.readouterr().out)
        for s, p in zip(streamed["jobs"], plain["jobs"]):
            assert s.get("verdict") == p.get("verdict")
            assert s.get("count") == p.get("count")
            assert s.get("best") == p.get("best")
