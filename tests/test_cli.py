"""Tests for the command-line interface and the OMQ file format."""

import pytest

from repro.cli import main
from repro.core.parser import ParseError, parse_omq


OMQ_TEXT = """
schema: P/1, T/1
rules:
    P(x) -> R(x, w)
    R(x, y) -> P(y)
    T(x) -> P(x)
query: q(x) :- R(x, y), P(y)
"""

OMQ_P = """
schema: P/1, T/1
rules:
    P(x) -> R(x, w)
    R(x, y) -> P(y)
    T(x) -> P(x)
query: q(x) :- P(x)
"""

OMQ_T_ONLY = """
schema: P/1, T/1
query: q(x) :- T(x)
"""


class TestOMQFileFormat:
    def test_parse_full_document(self):
        omq = parse_omq(OMQ_TEXT)
        assert len(omq.sigma) == 3
        assert omq.arity == 1
        assert omq.data_schema.arity("P") == 1

    def test_rules_optional(self):
        omq = parse_omq(OMQ_T_ONLY)
        assert not omq.sigma

    def test_ucq_query(self):
        omq = parse_omq(
            "schema: A/1, B/1\nquery: q(x) :- A(x) | q(x) :- B(x)"
        )
        assert len(omq.as_ucq()) == 2

    def test_multiple_query_lines(self):
        omq = parse_omq(
            "schema: A/1, B/1\nquery: q(x) :- A(x)\nquery: q(x) :- B(x)"
        )
        assert len(omq.as_ucq()) == 2

    def test_missing_schema_rejected(self):
        with pytest.raises(ParseError):
            parse_omq("query: q(x) :- A(x)")

    def test_missing_query_rejected(self):
        with pytest.raises(ParseError):
            parse_omq("schema: A/1")

    def test_comments_allowed(self):
        omq = parse_omq(
            "% a comment\nschema: A/1\nquery: q(x) :- A(x)"
        )
        assert omq.arity == 1

    def test_stray_line_rejected(self):
        with pytest.raises(ParseError):
            parse_omq("A(x) -> B(x)\nschema: A/1\nquery: q() :- A(x)")


@pytest.fixture
def files(tmp_path):
    omq1 = tmp_path / "q1.omq"
    omq1.write_text(OMQ_TEXT)
    omq2 = tmp_path / "q2.omq"
    omq2.write_text(OMQ_P)
    omq3 = tmp_path / "q3.omq"
    omq3.write_text(OMQ_T_ONLY)
    ontology = tmp_path / "rules.tgd"
    ontology.write_text("P(x) -> R(x, w)\nR(x, y) -> P(y)")
    db = tmp_path / "data.db"
    db.write_text("T(alice). P(bob).")
    return {
        "q1": str(omq1),
        "q2": str(omq2),
        "q3": str(omq3),
        "ontology": str(ontology),
        "db": str(db),
    }


class TestCLI:
    def test_classify(self, files, capsys):
        assert main(["classify", files["ontology"]]) == 0
        out = capsys.readouterr().out
        assert "L" in out and "preferred" in out

    def test_rewrite(self, files, capsys):
        assert main(["rewrite", files["q1"]]) == 0
        out = capsys.readouterr().out
        assert "P(?x)" in out and "T(?x)" in out

    def test_evaluate(self, files, capsys):
        assert main(["evaluate", files["q1"], files["db"]]) == 0
        out = capsys.readouterr().out
        assert "(alice)" in out and "(bob)" in out

    def test_contains_yes(self, files, capsys):
        assert main(["contains", files["q1"], files["q2"]]) == 0
        assert "contained" in capsys.readouterr().out

    def test_contains_no_prints_witness(self, files, capsys):
        assert main(["contains", files["q2"], files["q3"]]) == 1
        out = capsys.readouterr().out
        assert "not-contained" in out
        assert "witness database" in out

    def test_distributes(self, files, capsys):
        assert main(["distributes", files["q1"]]) == 0
        assert "distributes: True" in capsys.readouterr().out

    def test_rewritable(self, files, capsys):
        assert main(["rewritable", files["q1"], "--show"]) == 0
        out = capsys.readouterr().out
        assert "UCQ rewritable: True" in out

    def test_minimize(self, files, capsys, tmp_path):
        redundant = tmp_path / "redundant.omq"
        redundant.write_text(
            "schema: A/1\nrules:\n    A(x) -> B(x)\nquery: q(x) :- B(x), A(x)"
        )
        assert main(["minimize", str(redundant)]) == 0
        out = capsys.readouterr().out
        assert "query:" in out
        # A(x) is redundant given B(x)... no: B needs A — A(x) implies B(x),
        # so the minimized query keeps exactly one atom.
        assert out.count("A(") + out.count("B(") >= 1

    def test_explain(self, files, capsys, tmp_path):
        # Explanations need a terminating chase: use an acyclic ontology.
        terminating = tmp_path / "terminating.omq"
        terminating.write_text(
            "schema: T/1, P/1\nrules:\n    T(x) -> Pp(x)\n"
            "query: q(x) :- Pp(x)"
        )
        assert main(["explain", str(terminating), files["db"], "alice"]) == 0
        out = capsys.readouterr().out
        assert "[fact]" in out and "T(alice)" in out

    def test_explain_non_answer(self, files, capsys, tmp_path):
        terminating = tmp_path / "terminating.omq"
        terminating.write_text(
            "schema: T/1, P/1\nrules:\n    T(x) -> Pp(x)\n"
            "query: q(x) :- Pp(x)"
        )
        assert main(["explain", str(terminating), files["db"], "nobody"]) == 1

    def test_explain_diverging_chase(self, files, capsys):
        # The quickstart ontology's chase is infinite: honest exit code 2.
        assert main(
            ["explain", files["q1"], files["db"], "alice", "--budget", "200"]
        ) == 2
