"""Tests for the engine metrics registry: reset semantics and histograms."""

import pytest

from repro.engine.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestResetInPlace:
    def test_cached_references_survive_reset(self):
        """The regression: reset() must zero in place, not orphan objects.

        Call sites cache metric objects (the kernel holds its counters for
        the lifetime of the process); a reset that cleared the name→object
        maps would leave those references accumulating into objects no
        snapshot ever reads again.
        """
        registry = MetricsRegistry()
        counter = registry.counter("kernel.hom.searches")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        counter.inc(3)  # the *old* reference keeps working...
        assert registry.snapshot() == {"kernel.hom.searches": 3}
        # ...because it is still the registered object, not an orphan.
        assert registry.counter("kernel.hom.searches") is counter

    def test_reset_zeroes_every_metric_kind(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        timer = registry.timer("t")
        hist = registry.histogram("h")
        gauge.add(4)
        timer.observe(1.5)
        hist.observe(0.01)
        registry.reset()
        assert gauge.value == 0 and gauge.high_water == 0
        assert timer.count == 0 and timer.total == 0.0
        assert hist.count == 0 and hist.sum == 0.0
        assert registry.snapshot() == {}
        gauge.add(1)
        timer.observe(0.5)
        hist.observe(0.5)
        snap = registry.snapshot()
        assert snap["g"] == {"value": 1, "high_water": 1}
        assert snap["t"]["count"] == 1
        assert snap["h"]["count"] == 1

    def test_snapshot_omits_untouched_metrics(self):
        registry = MetricsRegistry()
        registry.counter("never.used")
        registry.timer("also.idle")
        registry.histogram("idle.hist")
        assert registry.snapshot() == {}


class TestHistogram:
    def test_bucket_assignment(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes", buckets=(1, 5, 10))
        for value in (0, 1, 2, 7, 10, 11, 1000):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == {"le_1": 2, "le_5": 1, "le_10": 2, "inf": 2}
        assert snap["count"] == 7
        assert snap["max"] == 1000
        assert snap["mean"] == pytest.approx(1031 / 7)

    def test_buckets_fixed_after_creation(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1, 2))
        assert registry.histogram("h", buckets=(9, 99)) is hist
        assert hist.buckets == (1, 2)

    def test_default_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        assert hist.buckets == DEFAULT_BUCKETS

    def test_rejects_unsorted_or_empty_buckets(self):
        import threading

        lock = threading.RLock()
        with pytest.raises(ValueError):
            Histogram("bad", lock, buckets=(5, 1))
        with pytest.raises(ValueError):
            Histogram("bad", lock, buckets=())

    def test_memory_is_bounded(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1, 10))
        for i in range(10_000):
            hist.observe(i % 50)
        assert len(hist.snapshot()["buckets"]) == 3
        assert hist.count == 10_000


class TestExemplars:
    def test_exemplar_recorded_per_bucket_last_wins(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1, 10))
        hist.observe(0.5, exemplar="job-a")
        hist.observe(0.7, exemplar="job-b")  # same bucket: replaces job-a
        hist.observe(50.0, exemplar="trace-z")
        hist.observe(5.0)  # no exemplar: bucket le_10 stays bare
        snap = hist.snapshot()
        assert snap["exemplars"] == {
            "le_1": {"ref": "job-b", "value": 0.7},
            "inf": {"ref": "trace-z", "value": 50.0},
        }

    def test_snapshot_omits_exemplars_when_none_recorded(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1,))
        hist.observe(0.5)
        assert "exemplars" not in hist.snapshot()

    def test_reset_clears_exemplars(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1,))
        hist.observe(0.5, exemplar="j1")
        registry.reset()
        hist.observe(0.4)
        assert "exemplars" not in hist.snapshot()

    def test_render_prometheus_tolerates_exemplars(self):
        from repro.engine.metrics import render_prometheus

        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1, 10))
        hist.observe(0.5, exemplar="j1")
        hist.observe(3.0, exemplar="j2")
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_lat histogram" in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_count 2" in text
        # Exemplar refs are JSON-surface only, never leak into the text.
        assert "j1" not in text and "exemplar" not in text


class TestHistogramQuantiles:
    def test_interpolates_within_buckets(self):
        from repro.engine.metrics import histogram_quantiles

        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 2.5, 3.5):
            hist.observe(value)
        q = histogram_quantiles(hist.snapshot(), (0.5, 0.99))
        assert 1.0 <= q[0.5] <= 2.0
        assert q[0.99] <= 4.0

    def test_overflow_clamped_to_observed_max(self):
        from repro.engine.metrics import histogram_quantiles

        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0,))
        for value in (5.0, 7.0, 9.0):
            hist.observe(value)
        q = histogram_quantiles(hist.snapshot(), (0.99,))
        assert q[0.99] <= 9.0

    def test_empty_histogram_estimates_zero(self):
        from repro.engine.metrics import histogram_quantiles

        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0,))
        assert histogram_quantiles(hist.snapshot()) == {
            0.5: 0.0, 0.95: 0.0, 0.99: 0.0,
        }

    def test_quantiles_monotone(self):
        from repro.engine.metrics import histogram_quantiles

        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.01, 0.1, 1.0, 10.0))
        for i in range(200):
            hist.observe((i + 1) / 40.0)  # 0.025 .. 5.0
        q = histogram_quantiles(hist.snapshot(), (0.5, 0.95, 0.99))
        assert 0.0 < q[0.5] <= q[0.95] <= q[0.99]


class TestUnifiedSnapshot:
    def test_kernel_round_size_histogram_reaches_stats(self):
        """The chase records round sizes into the kernel registry, and the
        unified BatchEngine.stats()["metrics"] snapshot surfaces them."""
        from repro import OMQ, Schema, parse_cq, parse_tgds
        from repro.engine import BatchEngine

        q1 = OMQ(
            Schema.of(T=1),
            parse_tgds("T(x) -> P(x)\nP(x) -> R(x, w)"),
            parse_cq("q(x) :- R(x, y)"),
            name="A",
        )
        q2 = OMQ(
            Schema.of(T=1),
            parse_tgds("T(x) -> P(x)\nP(x) -> R(x, w)"),
            parse_cq("q(x) :- T(x)"),
            name="B",
        )
        with BatchEngine() as engine:
            engine.contains(q1, q2)
            snap = engine.stats()
        assert snap["metrics"] == {**snap["metrics"]}  # plain dict
        engine_keys = [k for k in snap["metrics"] if k.startswith("engine.")]
        assert "engine.containment.runs" in engine_keys
        # kernel.* keys ride in the same flat namespace and in stats["kernel"].
        kernel_keys = [k for k in snap["metrics"] if k.startswith("kernel.")]
        assert kernel_keys
        assert snap["kernel"] == {
            k: v for k, v in snap["metrics"].items() if k in snap["kernel"]
        }
