"""Tests for the engine metrics registry: reset semantics and histograms."""

import pytest

from repro.engine.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestResetInPlace:
    def test_cached_references_survive_reset(self):
        """The regression: reset() must zero in place, not orphan objects.

        Call sites cache metric objects (the kernel holds its counters for
        the lifetime of the process); a reset that cleared the name→object
        maps would leave those references accumulating into objects no
        snapshot ever reads again.
        """
        registry = MetricsRegistry()
        counter = registry.counter("kernel.hom.searches")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        counter.inc(3)  # the *old* reference keeps working...
        assert registry.snapshot() == {"kernel.hom.searches": 3}
        # ...because it is still the registered object, not an orphan.
        assert registry.counter("kernel.hom.searches") is counter

    def test_reset_zeroes_every_metric_kind(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        timer = registry.timer("t")
        hist = registry.histogram("h")
        gauge.add(4)
        timer.observe(1.5)
        hist.observe(0.01)
        registry.reset()
        assert gauge.value == 0 and gauge.high_water == 0
        assert timer.count == 0 and timer.total == 0.0
        assert hist.count == 0 and hist.sum == 0.0
        assert registry.snapshot() == {}
        gauge.add(1)
        timer.observe(0.5)
        hist.observe(0.5)
        snap = registry.snapshot()
        assert snap["g"] == {"value": 1, "high_water": 1}
        assert snap["t"]["count"] == 1
        assert snap["h"]["count"] == 1

    def test_snapshot_omits_untouched_metrics(self):
        registry = MetricsRegistry()
        registry.counter("never.used")
        registry.timer("also.idle")
        registry.histogram("idle.hist")
        assert registry.snapshot() == {}


class TestHistogram:
    def test_bucket_assignment(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sizes", buckets=(1, 5, 10))
        for value in (0, 1, 2, 7, 10, 11, 1000):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == {"le_1": 2, "le_5": 1, "le_10": 2, "inf": 2}
        assert snap["count"] == 7
        assert snap["max"] == 1000
        assert snap["mean"] == pytest.approx(1031 / 7)

    def test_buckets_fixed_after_creation(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1, 2))
        assert registry.histogram("h", buckets=(9, 99)) is hist
        assert hist.buckets == (1, 2)

    def test_default_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        assert hist.buckets == DEFAULT_BUCKETS

    def test_rejects_unsorted_or_empty_buckets(self):
        import threading

        lock = threading.RLock()
        with pytest.raises(ValueError):
            Histogram("bad", lock, buckets=(5, 1))
        with pytest.raises(ValueError):
            Histogram("bad", lock, buckets=())

    def test_memory_is_bounded(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1, 10))
        for i in range(10_000):
            hist.observe(i % 50)
        assert len(hist.snapshot()["buckets"]) == 3
        assert hist.count == 10_000


class TestUnifiedSnapshot:
    def test_kernel_round_size_histogram_reaches_stats(self):
        """The chase records round sizes into the kernel registry, and the
        unified BatchEngine.stats()["metrics"] snapshot surfaces them."""
        from repro import OMQ, Schema, parse_cq, parse_tgds
        from repro.engine import BatchEngine

        q1 = OMQ(
            Schema.of(T=1),
            parse_tgds("T(x) -> P(x)\nP(x) -> R(x, w)"),
            parse_cq("q(x) :- R(x, y)"),
            name="A",
        )
        q2 = OMQ(
            Schema.of(T=1),
            parse_tgds("T(x) -> P(x)\nP(x) -> R(x, w)"),
            parse_cq("q(x) :- T(x)"),
            name="B",
        )
        with BatchEngine() as engine:
            engine.contains(q1, q2)
            snap = engine.stats()
        assert snap["metrics"] == {**snap["metrics"]}  # plain dict
        engine_keys = [k for k in snap["metrics"] if k.startswith("engine.")]
        assert "engine.containment.runs" in engine_keys
        # kernel.* keys ride in the same flat namespace and in stats["kernel"].
        kernel_keys = [k for k in snap["metrics"] if k.startswith("kernel.")]
        assert kernel_keys
        assert snap["kernel"] == {
            k: v for k, v in snap["metrics"].items() if k in snap["kernel"]
        }
