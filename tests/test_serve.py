"""The serving tier: protocol parsing, the app's routes, a live server.

Three layers of coverage mirroring the module layering:

* pure protocol tests (``parse_job_spec``, tenant policies) — no engine;
* a live in-process replica (`_Replica`) driven through
  :class:`repro.serve.ServeClient` — submissions, coalescing across
  tenants, deadline degradation, cancellation, SSE, metrics formats,
  malformed-request handling, concurrent clients;
* a real subprocess (``python -m repro serve``) for the SIGTERM drain.
"""

import asyncio
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.engine import BatchEngine
from repro.serve import (
    PROTOCOL_VERSION,
    ProtocolError,
    ReproServer,
    ServeClient,
    ServeConfig,
    ServeError,
    TenantTable,
    parse_job_spec,
)

# Two α-equivalent spellings of one containment question (variables
# renamed, body reordered) plus a structurally different third query.
OMQ_A = """
schema: R/2, P/1, T/1
rules:
    P(x) -> R(x, w)
    R(x, y) -> P(y)
query: q(x) :- R(x, y), P(y)
"""
OMQ_A2 = """
schema: R/2, P/1, T/1
rules:
    P(u) -> R(u, v)
    R(u, v) -> P(v)
query: q(a) :- P(b), R(a, b)
"""
OMQ_B = """
schema: R/2, P/1, T/1
rules:
    T(x) -> P(x)
query: q(x) :- R(x, y)
"""


def containment_doc(q1: str, q2: str, **extra) -> dict:
    return {"kind": "containment", "q1": q1, "q2": q2, **extra}


# ---------------------------------------------------------------------------
# Protocol layer (no engine, no socket)
# ---------------------------------------------------------------------------


class TestParseJobSpec:
    def test_containment_spec(self):
        spec = parse_job_spec(
            containment_doc(OMQ_A, OMQ_B, tenant="t1", deadline_ms=500)
        )
        assert spec.tenant == "t1"
        assert spec.deadline_ms == 500
        assert spec.job.kind == "containment"
        assert "⊆" in spec.label

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError) as exc:
            parse_job_spec(["not", "an", "object"])
        assert exc.value.status == 400

    def test_rejects_missing_omq(self):
        with pytest.raises(ProtocolError):
            parse_job_spec({"kind": "containment", "q1": OMQ_A})

    def test_unparsable_omq_is_422(self):
        with pytest.raises(ProtocolError) as exc:
            parse_job_spec(containment_doc(OMQ_A, "query: nope("))
        assert exc.value.status == 422

    def test_rejects_bad_deadline(self):
        with pytest.raises(ProtocolError):
            parse_job_spec(containment_doc(OMQ_A, OMQ_B, deadline_ms=-5))
        with pytest.raises(ProtocolError):
            parse_job_spec(containment_doc(OMQ_A, OMQ_B, deadline_ms="soon"))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ProtocolError):
            parse_job_spec({"kind": "mine-bitcoin"})

    def test_sleep_is_gated(self):
        with pytest.raises(ProtocolError):
            parse_job_spec({"kind": "sleep", "seconds": 1})
        spec = parse_job_spec(
            {"kind": "sleep", "seconds": 1}, allow_test_jobs=True
        )
        assert spec.job.kind == "sleep"


class TestTenantTable:
    def test_defaults_on_first_sight(self):
        table = TenantTable()
        policy = table.get("newcomer")
        assert policy.weight == 1.0
        assert policy.default_deadline_ms is None

    def test_update_and_load(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            json.dumps(
                {
                    "tenants": {
                        "gold": {"weight": 4, "priority": "high"},
                        "bulk": {
                            "weight": 1,
                            "priority": "low",
                            "default_deadline_ms": 2000,
                        },
                    }
                }
            )
        )
        table = TenantTable.load(str(path))
        assert table.get("gold").weight == 4.0
        assert table.get("bulk").default_deadline_ms == 2000
        assert table.names() == ["bulk", "gold"]

    def test_rejects_bad_policy(self):
        table = TenantTable()
        with pytest.raises(ProtocolError):
            table.update_from_json({"t": {"weight": 0}})
        with pytest.raises(ProtocolError):
            table.update_from_json({"t": {"priority": "urgent"}})
        with pytest.raises(ProtocolError):
            table.update_from_json({"t": {"default_deadline_ms": -1}})


# ---------------------------------------------------------------------------
# A live in-process replica
# ---------------------------------------------------------------------------


class _Replica:
    """One server on an event loop in a daemon thread; port 0."""

    def __init__(self, **config):
        config.setdefault("port", 0)
        self.server = ReproServer(ServeConfig(**config))
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_forever()

    def __enter__(self) -> "_Replica":
        self.thread.start()
        assert self._ready.wait(10), "server failed to start"
        return self

    def __exit__(self, *exc) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=False), self.loop
        )
        future.result(20)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, **kwargs) -> ServeClient:
        kwargs.setdefault("timeout", 15)
        return ServeClient(port=self.port, **kwargs)


class TestLiveServer:
    def test_boot_health_and_envelope(self):
        with _Replica() as replica, replica.client() as client:
            health = client.health()
            assert health["status"] == "ok"
            assert health["protocol"] == PROTOCOL_VERSION
            assert health["workers"] == 1

    def test_submit_poll_and_verdict(self):
        with _Replica() as replica, replica.client() as client:
            record = client.run(containment_doc(OMQ_A, OMQ_A2, tenant="t1"))
            assert record["state"] == "done"
            assert record["error"] is None
            assert record["result"]["verdict"] == "contained"
            # The same canonical pair again answers from the cache.
            again = client.run(containment_doc(OMQ_A, OMQ_A2, tenant="t2"))
            assert again["cached"] is True
            assert again["result"]["verdict"] == "contained"

    def test_alpha_equivalent_pairs_coalesce_across_tenants(self):
        with _Replica(allow_test_jobs=True) as replica:
            with replica.client() as client:
                # Occupy the single worker so both submissions queue —
                # coalescing is then deterministic, not a race.
                plug = client.submit(
                    {"kind": "sleep", "seconds": 0.4, "tenant": "ops"}
                )
                first = client.submit(
                    containment_doc(OMQ_A, OMQ_B, tenant="alice")
                )
                second = client.submit(
                    containment_doc(OMQ_A2, OMQ_B, tenant="bob")
                )
                assert second["coalesced_onto"] == first["id"]
                done1 = client.wait(first["id"], timeout=30)
                done2 = client.wait(second["id"], timeout=30)
                assert (
                    done1["result"]["verdict"] == done2["result"]["verdict"]
                )
                assert done2["coalesced"] is True
                snapshot = client.metrics()["metrics"]
                assert snapshot["engine.containment.runs"] == 1
                assert (
                    snapshot["serve.requests.bob.coalesced"] == 1
                )
                client.wait(plug["id"], timeout=30)

    def test_deadline_miss_degrades_without_running(self):
        with _Replica() as replica, replica.client() as client:
            # 50ms is below the scheduler's 250ms floor: the submission
            # must answer inline (200), UNKNOWN with reason "deadline",
            # and never reach a pool worker.
            record = client.submit(
                containment_doc(OMQ_A, OMQ_B, tenant="t1", deadline_ms=50)
            )
            assert record["state"] == "done"
            assert record["error"] == "deadline"
            assert record["result"]["verdict"] == "unknown"
            assert record["result"]["detail"] == "deadline"
            snapshot = client.metrics()["metrics"]
            assert snapshot["engine.scheduler.deadline.degraded"] == 1
            assert snapshot.get("engine.containment.runs", 0) == 0
            assert snapshot["serve.requests.t1.deadline"] == 1
            # The same pair without a deadline completes normally.
            record = client.run(containment_doc(OMQ_A, OMQ_B, tenant="t1"))
            assert record["error"] is None
            assert record["result"]["verdict"] in (
                "contained", "not-contained",
            )

    def test_tenant_default_deadline_applies(self):
        with _Replica() as replica, replica.client() as client:
            client.set_tenants(
                {"impatient": {"weight": 1, "default_deadline_ms": 10}}
            )
            record = client.submit(
                containment_doc(OMQ_A, OMQ_B, tenant="impatient")
            )
            assert record["deadline_ms"] == 10
            assert record["error"] == "deadline"

    def test_cancel_reports_coalesced_survivor(self):
        with _Replica(allow_test_jobs=True) as replica:
            with replica.client() as client:
                plug = client.submit(
                    {"kind": "sleep", "seconds": 0.4, "tenant": "ops"}
                )
                first = client.submit(
                    containment_doc(OMQ_A, OMQ_B, tenant="alice")
                )
                second = client.submit(
                    containment_doc(OMQ_A2, OMQ_B, tenant="bob")
                )
                outcome = client.cancel(second["id"])
                assert outcome["cancelled"] is True
                assert outcome["coalesced_onto"] == first["id"]
                done = client.wait(first["id"], timeout=30)
                assert done["error"] is None
                cancelled = client.job(second["id"])
                assert cancelled["error"] == "cancelled"
                client.wait(plug["id"], timeout=30)

    def test_cancel_done_job_is_false(self):
        with _Replica() as replica, replica.client() as client:
            record = client.run(containment_doc(OMQ_A, OMQ_A2, tenant="t"))
            assert client.cancel(record["id"])["cancelled"] is False

    def test_batch_submission(self):
        with _Replica() as replica, replica.client() as client:
            records = client.submit_batch(
                [
                    containment_doc(OMQ_A, OMQ_A2, tenant="t1"),
                    containment_doc(OMQ_A, OMQ_B, tenant="t2"),
                ]
            )
            assert len(records) == 2
            for record in records:
                done = client.wait(record["id"], timeout=30)
                assert done["result"]["verdict"] in (
                    "contained", "not-contained", "unknown",
                )

    def test_sse_stream_ends_with_result(self):
        with _Replica(allow_test_jobs=True) as replica:
            with replica.client() as client:
                record = client.submit(
                    {"kind": "sleep", "seconds": 0.4, "tenant": "t",
                     "payload": "done!"}
                )
                events = list(client.stream(record["id"], timeout=30))
                assert events[0][0] == "status"
                assert events[-1][0] == "result"
                final = events[-1][1]
                assert final["state"] == "done"
                assert final["result"] == {"payload": "done!"}

    def test_metrics_json_and_prometheus(self):
        with _Replica() as replica, replica.client() as client:
            client.run(containment_doc(OMQ_A, OMQ_A2, tenant="acme"))
            snapshot = client.metrics()
            assert "serve.requests.acme.submitted" in snapshot["metrics"]
            assert "cache" in snapshot
            text = client.metrics_prometheus()
            assert "# TYPE repro_serve_requests_acme_submitted counter" in text
            assert "repro_serve_requests_acme_submitted 1" in text
            assert "repro_serve_http_requests" in text

    def test_debug_profile_reports_latency_and_live_profile(self):
        with _Replica(trace_mode="always") as replica:
            with replica.client() as client:
                done = client.run(
                    containment_doc(OMQ_A, OMQ_A2, tenant="acme.eu")
                )
                body = client.debug_profile()
                # Tenant ids may contain dots, so latency is nested by
                # tenant then kind — never parsed back out of a flat name.
                lat = body["latency"]["acme.eu"]["containment"]
                assert lat["count"] == 1
                assert 0.0 < lat["p50_s"] <= lat["p95_s"] <= lat["p99_s"]
                assert lat["max_s"] >= lat["mean_s"] > 0.0
                # Exemplars link the bucket to the decision's trace id
                # ("<pid>-<n>"), not the job id, when tracing is on.
                refs = [ex["ref"] for ex in lat["exemplars"].values()]
                assert len(refs) == 1
                assert refs[0] != done["id"]
                assert re.fullmatch(r"[0-9a-f]+-\d+", refs[0])
                # The live profile aggregates the captured span trees.
                assert body["traced_decisions"] == 1
                profile = body["profile"]
                assert profile["decisions"] == 1
                assert profile["meta"]["source"] == "serve.live"
                assert profile["meta"]["trace_mode"] == "always"
                assert any(
                    name.startswith("containment") or name.startswith("job")
                    for name in profile["spans"]
                )

    def test_debug_profile_untraced_uses_job_id_exemplars(self):
        with _Replica() as replica, replica.client() as client:
            done = client.run(containment_doc(OMQ_A, OMQ_B, tenant="plain"))
            body = client.debug_profile()
            lat = body["latency"]["plain"]["containment"]
            assert lat["count"] == 1
            refs = [ex["ref"] for ex in lat["exemplars"].values()]
            assert done["id"] in refs
            # No tracing configured: nothing accumulates into the profile.
            assert body["traced_decisions"] == 0
            assert body["profile"]["spans"] == {}

    def test_tenants_roundtrip_and_live_weight(self):
        with _Replica() as replica, replica.client() as client:
            updated = client.set_tenants(
                {"gold": {"weight": 4, "priority": "high"}}
            )
            assert updated["gold"]["weight"] == 4.0
            assert client.tenants()["gold"]["priority"] == "high"
            scheduler = replica.server.app.engine.scheduler
            assert scheduler._weights["gold"] == 4.0

    def test_unknown_job_and_route_are_404(self):
        with _Replica() as replica, replica.client() as client:
            with pytest.raises(ServeError) as exc:
                client.job("j-nope-000001")
            assert exc.value.status == 404
            with pytest.raises(ServeError) as exc:
                client.request("GET", "/v2/everything")
            assert exc.value.status == 404

    def test_wrong_method_is_405(self):
        with _Replica() as replica, replica.client() as client:
            with pytest.raises(ServeError) as exc:
                client.request("DELETE", "/healthz")
            assert exc.value.status == 405

    def test_malformed_requests_answer_4xx(self):
        with _Replica() as replica:
            def raw_exchange(payload: bytes) -> bytes:
                with socket.create_connection(
                    ("127.0.0.1", replica.port), timeout=10
                ) as sock:
                    sock.sendall(payload)
                    sock.shutdown(socket.SHUT_WR)
                    chunks = []
                    while True:
                        chunk = sock.recv(4096)
                        if not chunk:
                            return b"".join(chunks)
                        chunks.append(chunk)

            # Garbage request line.
            reply = raw_exchange(b"???\r\n\r\n")
            assert reply.startswith(b"HTTP/1.1 400")
            # Unsupported protocol version.
            reply = raw_exchange(b"GET / SPDY/3\r\n\r\n")
            assert reply.startswith(b"HTTP/1.1 400")
            # Body bigger than its Content-Length cap.
            reply = raw_exchange(
                b"POST /v1/jobs HTTP/1.1\r\n"
                b"Content-Length: 99999999\r\n\r\n"
            )
            assert reply.startswith(b"HTTP/1.1 413")
            # Chunked request bodies are not supported.
            reply = raw_exchange(
                b"POST /v1/jobs HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )
            assert reply.startswith(b"HTTP/1.1 415")
            # Valid HTTP, body is not JSON.
            reply = raw_exchange(
                b"POST /v1/jobs HTTP/1.1\r\n"
                b"Content-Length: 9\r\n\r\nnot json!"
            )
            assert reply.startswith(b"HTTP/1.1 400")

    def test_draining_rejects_new_work(self):
        with _Replica() as replica, replica.client() as client:
            replica.server.app.draining = True
            try:
                with pytest.raises(ServeError) as exc:
                    client.submit(containment_doc(OMQ_A, OMQ_B))
                assert exc.value.status == 503
                assert exc.value.code == "draining"
                with pytest.raises(ServeError) as exc:
                    client.health()
                assert exc.value.status == 503
            finally:
                replica.server.app.draining = False

    def test_concurrent_clients(self):
        pairs = [(OMQ_A, OMQ_A2), (OMQ_A, OMQ_B), (OMQ_B, OMQ_A)]
        with _Replica() as replica:
            results, errors = [], []

            def work(index: int):
                try:
                    with replica.client() as client:
                        q1, q2 = pairs[index % len(pairs)]
                        record = client.run(
                            containment_doc(q1, q2, tenant=f"t{index}"),
                            timeout=60,
                        )
                        results.append(record["result"]["verdict"])
                except Exception as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(90)
            assert not errors
            assert len(results) == 6
            assert all(
                v in ("contained", "not-contained", "unknown")
                for v in results
            )


# ---------------------------------------------------------------------------
# Drain-on-SIGTERM, against a real subprocess
# ---------------------------------------------------------------------------


class TestSigtermDrain:
    def test_sigterm_drains_and_exits(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--allow-test-jobs",
                "--drain-grace", "5",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            port = None
            deadline = time.monotonic() + 30
            for line in proc.stderr:
                if "listening on" in line:
                    port = int(
                        line.rsplit("listening on", 1)[1]
                        .split("(")[0].strip().rsplit(":", 1)[1]
                    )
                    break
                if time.monotonic() > deadline:
                    break
            assert port, "server never reported its port"
            with ServeClient(port=port, timeout=10) as client:
                assert client.health()["status"] == "ok"
                record = client.submit(
                    {"kind": "sleep", "seconds": 0.3, "tenant": "t"}
                )
                proc.send_signal(signal.SIGTERM)
                # In-flight work still resolves on the draining server's
                # engine; the process then exits within the grace period.
                assert record["id"]
            proc.wait(timeout=30)
            assert proc.returncode == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(10)
            proc.stderr.close()


# ---------------------------------------------------------------------------
# Embedding: a caller-owned engine is not closed by the server
# ---------------------------------------------------------------------------


class TestEmbedding:
    def test_external_engine_survives_shutdown(self):
        engine = BatchEngine(workers=1)
        try:
            server = ReproServer(ServeConfig(port=0), engine=engine)
            loop = asyncio.new_event_loop()
            try:
                loop.run_until_complete(server.start())
                loop.run_until_complete(server.shutdown(drain=False))
            finally:
                loop.close()
            # The engine still works: the server must not have closed it.
            from repro.engine.jobs import SleepJob

            handle = engine.submit(SleepJob(0.0, payload="alive"))
            assert handle.result(10).value == "alive"
        finally:
            engine.close()
