"""Tests for the synthetic workload generators."""

from repro.core.schema import Schema
from repro.fragments import (
    is_guarded,
    is_linear,
    is_non_recursive,
    is_sticky,
)
from repro.generators import (
    chain_database,
    disjoint_union,
    guarded_acyclic,
    guarded_reachability,
    linear_chain,
    linear_witness_family,
    non_recursive_doubling,
    random_database,
    sticky_arity_family,
    star_database,
)
from repro.rewriting import xrewrite


class TestOntologyFamilies:
    def test_linear_chain_class_and_semantics(self):
        q = linear_chain(4)
        assert is_linear(q.sigma)
        result = xrewrite(q)
        assert result.complete
        assert result.max_disjunct_size() == 1

    def test_linear_witness_family_tracks_query_size(self):
        for size in (1, 2, 4):
            q = linear_witness_family(size)
            assert is_linear(q.sigma)
            result = xrewrite(q)
            assert result.complete
            assert result.max_disjunct_size() == size

    def test_non_recursive_doubling_is_exponential(self):
        sizes = []
        for layers in (1, 2, 3):
            q = non_recursive_doubling(layers)
            assert is_non_recursive(q.sigma)
            result = xrewrite(q)
            assert result.complete
            sizes.append(result.max_disjunct_size())
        assert sizes == [2, 4, 8]

    def test_sticky_arity_family(self):
        for arity in (2, 3):
            q = sticky_arity_family(arity)
            assert is_sticky(q.sigma)
            assert xrewrite(q).complete

    def test_guarded_reachability_class(self):
        q = guarded_reachability()
        assert is_guarded(q.sigma)
        assert not is_linear(q.sigma)
        assert not is_sticky(q.sigma)
        assert not is_non_recursive(q.sigma)

    def test_guarded_acyclic_is_rewritable(self):
        q = guarded_acyclic(2)
        assert is_guarded(q.sigma)
        assert is_non_recursive(q.sigma)
        assert xrewrite(q).complete


class TestDatabaseGenerators:
    def test_random_database_is_deterministic(self):
        schema = Schema.of(R=2, P=1)
        assert random_database(schema, 5, 10, seed=7) == random_database(
            schema, 5, 10, seed=7
        )
        assert random_database(schema, 5, 10, seed=7) != random_database(
            schema, 5, 10, seed=8
        )

    def test_random_database_respects_schema(self):
        schema = Schema.of(R=2, P=1)
        db = random_database(schema, 4, 12, seed=1)
        for atom in db:
            schema.validate_atom(atom)

    def test_chain_database(self):
        db = chain_database("E", 5)
        assert len(db) == 5
        assert len(db.domain()) == 6
        assert db.is_connected()

    def test_star_database(self):
        db = star_database("E", 4)
        assert len(db) == 4
        assert db.is_connected()

    def test_disjoint_union_components(self):
        parts = [chain_database("E", 2), star_database("E", 3)]
        db = disjoint_union(parts)
        assert len(db.components()) == 2
        assert len(db) == 5
