"""Tests for the appendix reductions (Props 5/6/9/35, Theorems 16/34)."""

import pytest

from repro import (
    OMQ,
    Schema,
    Verdict,
    contains,
    evaluate_omq,
    parse_cq,
    parse_database,
    parse_tgds,
    parse_ucq,
)
from repro.core.terms import Constant
from repro.fragments import (
    is_full,
    is_guarded,
    is_linear,
    is_non_recursive,
    is_sticky,
)
from repro.reductions import (
    ETPInstance,
    TilingInstance,
    all_pairs,
    canonical_query_of_database,
    equal_pairs,
    etp_to_containment,
    eval_to_containment,
    eval_to_non_containment,
    expected_witness_size,
    full_to_sticky,
    has_solution,
    minimal_satisfying_database,
    prop18_family,
    solve_etp,
    solve_tiling,
    tiling_to_containment,
    ucq_omq_to_cq_omq,
)


def omq(schema, rules, query):
    return OMQ(Schema(schema), parse_tgds(rules), parse_cq(query))


class TestProp5:
    """Eval reduces to containment."""

    CASES = [
        ({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)", "A(a). A(b)", ("a",), True),
        (
            {"A": 1, "C": 1},
            "A(x) -> B(x)",
            "q(x) :- B(x)",
            "A(a). C(c)",
            ("c",),  # c ∈ dom(D) but B(c) is not derivable
            False,
        ),
        (
            {"E": 2},
            "E(x, y) -> P(y)",
            "q() :- P(x)",
            "E(a, b)",
            (),
            True,
        ),
    ]

    @pytest.mark.parametrize("schema, rules, query, db, answer, expected", CASES)
    def test_reduction_agrees_with_eval(
        self, schema, rules, query, db, answer, expected
    ):
        q = omq(schema, rules, query)
        database = parse_database(db)
        tup = tuple(Constant(c) for c in answer)
        direct = tup in evaluate_omq(q, database).answers
        assert direct is expected
        q1, q2 = eval_to_containment(q, database, tup)
        assert not q1.sigma  # Q1 ∈ O_∅
        result = contains(q1, q2)
        assert result.decided
        assert result.is_contained is expected

    def test_canonical_query_structure(self):
        database = parse_database("R(a, b). P(b)")
        q = canonical_query_of_database(database, (Constant("a"),))
        assert q.arity == 1
        assert q.size() == 2
        assert not q.constants()


class TestProp6:
    """Eval reduces to the complement of containment."""

    CASES = [
        ({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)", "A(a). A(b)", ("a",), True),
        ({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)", "A(a)", ("c",), False),
    ]

    @pytest.mark.parametrize("schema, rules, query, db, answer, expected", CASES)
    def test_reduction_agrees_with_eval(
        self, schema, rules, query, db, answer, expected
    ):
        q = omq(schema, rules, query)
        database = parse_database(db)
        tup = tuple(Constant(c) for c in answer)
        q1, q2 = eval_to_non_containment(q, database, tup)
        # Q2 is the unsatisfiable query over S; Q1 carries D as fact tgds.
        assert not q2.sigma
        assert any(t.is_fact_tgd() for t in q1.sigma)
        result = contains(q1, q2)
        assert result.decided
        assert result.is_contained is (not expected)

    def test_fact_tgd_extension_stays_in_class(self):
        q = omq({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)")
        database = parse_database("A(a)")
        q1, _ = eval_to_non_containment(q, database, (Constant("a"),))
        assert is_linear(q1.sigma)  # fact tgds keep the class (Section 3.1)


class TestProp9:
    """The UCQ → CQ Or-gadget."""

    def test_translation_preserves_answers(self):
        sigma = parse_tgds("A(x) -> B(x)")
        base = OMQ(
            Schema.of(A=1, C=1),
            sigma,
            parse_ucq("q() :- B(x) | q() :- C(x)"),
        )
        translated = ucq_omq_to_cq_omq(base)
        from repro.core.queries import CQ

        assert isinstance(translated.query, CQ)
        for db_text in ["A(a)", "C(c)", "A(a). C(c)"]:
            db = parse_database(db_text)
            assert bool(evaluate_omq(base, db).answers) == bool(
                evaluate_omq(translated, db, method="chase").answers
            ), db_text

    def test_translation_empty_database(self):
        base = OMQ(
            Schema.of(A=1, C=1),
            parse_tgds("A(x) -> B(x)"),
            parse_ucq("q() :- B(x) | q() :- C(x)"),
        )
        translated = ucq_omq_to_cq_omq(base)
        db = parse_database("Z(z)").restrict_to_predicates([])
        assert not evaluate_omq(translated, db, method="chase").answers

    def test_class_preservation_linear(self):
        base = OMQ(
            Schema.of(A=1, C=1),
            parse_tgds("A(x) -> B(x, w)"),
            parse_ucq("q() :- B(x, y) | q() :- C(x)"),
        )
        translated = ucq_omq_to_cq_omq(base)
        assert is_linear(translated.sigma)

    def test_class_preservation_non_recursive(self):
        base = OMQ(
            Schema.of(A=1, C=1),
            parse_tgds("A(x) -> B(x)\nB(x) -> D(x)"),
            parse_ucq("q() :- D(x) | q() :- C(x)"),
        )
        translated = ucq_omq_to_cq_omq(base)
        assert is_non_recursive(translated.sigma)

    def test_non_boolean_rejected(self):
        base = OMQ(
            Schema.of(A=1),
            (),
            parse_ucq("q(x) :- A(x)"),
        )
        with pytest.raises(ValueError):
            ucq_omq_to_cq_omq(base)


class TestTilingSolver:
    def test_all_pairs_always_solvable(self):
        t = TilingInstance(1, 2, all_pairs(2), all_pairs(2), (1, 2))
        solution = solve_tiling(t)
        assert solution is not None
        assert solution[(0, 0)] == 1 and solution[(1, 0)] == 2

    def test_diagonal_forces_constant_tiling(self):
        t = TilingInstance(1, 3, equal_pairs(3), equal_pairs(3), (2,))
        solution = solve_tiling(t)
        assert set(solution.values()) == {2}

    def test_conflicting_initial_unsolvable(self):
        # Diagonal relations but two different initial tiles.
        t = TilingInstance(1, 2, equal_pairs(2), equal_pairs(2), (1, 2))
        assert not has_solution(t)

    def test_solution_respects_relations(self):
        h = frozenset({(1, 2), (2, 1)})
        v = frozenset({(1, 1), (2, 2)})
        t = TilingInstance(1, 2, h, v, ())
        solution = solve_tiling(t)
        assert solution is not None
        for (i, j), tile in solution.items():
            if (i + 1, j) in solution:
                assert (tile, solution[(i + 1, j)]) in h
            if (i, j + 1) in solution:
                assert (tile, solution[(i, j + 1)]) in v

    def test_initial_too_long_rejected(self):
        with pytest.raises(ValueError):
            TilingInstance(1, 2, all_pairs(2), all_pairs(2), (1, 1, 1))

    def test_n2_grid(self):
        t = TilingInstance(2, 2, all_pairs(2), all_pairs(2), (1, 2, 1))
        assert has_solution(t)


class TestETP:
    def test_solve_etp_yes(self):
        inst = ETPInstance(
            1, 1, 2, all_pairs(2), all_pairs(2), all_pairs(2), all_pairs(2)
        )
        assert solve_etp(inst)

    def test_solve_etp_no(self):
        inst = ETPInstance(
            1, 1, 2, all_pairs(2), all_pairs(2), frozenset(), frozenset()
        )
        assert not solve_etp(inst)


class TestTheorem16:
    CASES = [
        ETPInstance(1, 1, 2, all_pairs(2), all_pairs(2), all_pairs(2), all_pairs(2)),
        ETPInstance(1, 1, 2, frozenset(), all_pairs(2), frozenset(), frozenset()),
        ETPInstance(1, 1, 2, all_pairs(2), all_pairs(2), frozenset(), frozenset()),
        ETPInstance(
            1, 1, 2, equal_pairs(2), equal_pairs(2), all_pairs(2), all_pairs(2)
        ),
    ]

    @pytest.mark.parametrize("instance", CASES, ids=lambda i: f"k{i.k}n{i.n}m{i.m}")
    def test_bi_implication(self, instance):
        expected = solve_etp(instance)
        q1, q2 = etp_to_containment(instance)
        assert is_non_recursive(q1.sigma)
        assert is_non_recursive(q2.sigma)
        result = contains(q1, q2)
        assert result.decided
        assert result.is_contained is expected

    def test_k2(self):
        instance = ETPInstance(
            2, 1, 2, all_pairs(2), all_pairs(2), all_pairs(2), all_pairs(2)
        )
        q1, q2 = etp_to_containment(instance)
        result = contains(q1, q2)
        assert result.is_contained is solve_etp(instance)


class TestTheorem34:
    CASES = [
        TilingInstance(1, 2, all_pairs(2), all_pairs(2), (1,)),
        TilingInstance(1, 2, frozenset(), all_pairs(2), ()),
        TilingInstance(1, 2, equal_pairs(2), equal_pairs(2), (2,)),
        TilingInstance(1, 2, equal_pairs(2), equal_pairs(2), (1, 2)),
    ]

    @pytest.mark.parametrize("instance", CASES, ids=lambda t: f"H{len(t.horizontal)}V{len(t.vertical)}s{t.initial}")
    def test_bi_implication(self, instance):
        solvable = has_solution(instance)
        q_t, q_t_prime = tiling_to_containment(instance)
        assert is_full(q_t.sigma) and is_non_recursive(q_t.sigma)
        assert is_linear(q_t_prime.sigma)
        result = contains(q_t, q_t_prime)
        assert result.decided
        assert result.is_contained is (not solvable)


class TestProp35:
    def test_output_is_sticky_and_lossless(self):
        t = TilingInstance(1, 2, all_pairs(2), all_pairs(2), (1,))
        q_t = tiling_to_containment(t)[0]
        sticky_q = full_to_sticky(q_t)
        assert is_sticky(sticky_q.sigma)
        from repro.fragments import is_lossless

        assert all(
            rule.is_lossless() or rule.is_fact_tgd() for rule in sticky_q.sigma
        )

    def test_equivalence_on_01_databases(self):
        t = TilingInstance(1, 2, all_pairs(2), all_pairs(2), ())
        q_t = tiling_to_containment(t)[0]
        sticky_q = full_to_sticky(q_t)
        # A complete tiling database (every cell tiled by tile 1).
        rows = []
        for x in ("0", "1"):
            for y in ("0", "1"):
                rows.append(f"TiledBy_1({x}, {y})")
        full_db = parse_database(". ".join(rows))
        partial_db = parse_database("TiledBy_1(0, 0)")
        for db in (full_db, partial_db):
            original = bool(evaluate_omq(q_t, db, method="chase").answers)
            translated = bool(evaluate_omq(sticky_q, db, method="chase").answers)
            assert original == translated

    def test_rejects_existential_rules(self):
        q = omq({"A": 1}, "A(x) -> B(x, w)", "q() :- B(x, y)")
        with pytest.raises(ValueError):
            full_to_sticky(q)


class TestProp18:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_minimal_witness_is_exponential(self, n):
        q = prop18_family(n)
        assert is_sticky(q.sigma)
        assert is_non_recursive(q.sigma)
        db = minimal_satisfying_database(q)
        assert len(db) == expected_witness_size(n)

    def test_witness_shape(self):
        q = prop18_family(4)
        db = minimal_satisfying_database(q)
        # All atoms are S-facts ending in (0, 1).
        for a in db:
            assert a.predicate == "S"
            assert a.args[-2].name == "0" and a.args[-1].name == "1"
        # The data positions enumerate the full Boolean cube.
        cubes = {tuple(t.name for t in a.args[:-2]) for a in db}
        assert len(cubes) == 4

    def test_family_omq_is_satisfiable(self):
        from repro.containment import is_satisfiable

        assert is_satisfiable(prop18_family(3)) is True
