"""The cross-session OMQ equivalence catalog (``repro.engine.catalog``).

Covers the union-find/SCC core (including cycles longer than two), the
sqlite persistence contract (reopen, version invalidation, corruption
recovery), the engine integration (catalog short-circuit, rep-based
cache keys, verdict harvesting), and the ``repro catalog`` CLI.
"""

import json
import sqlite3

import pytest

from repro import OMQ, Schema, parse_cq, parse_tgds
from repro.containment.result import Verdict
from repro.engine import BatchEngine, ContainmentJob
from repro.engine.canon import hash_omq
from repro.engine.catalog import CATALOG_SCHEMA_VERSION, OMQCatalog


class TestUnionFindCore:
    def test_unmerged_hashes_are_their_own_reps(self):
        cat = OMQCatalog()
        assert cat.rep("h1") == "h1"
        assert not cat.equivalent("h1", "h2")
        assert cat.equivalent("h1", "h1")

    def test_one_direction_does_not_merge(self):
        cat = OMQCatalog()
        assert not cat.note_contained("a", "b")
        assert not cat.equivalent("a", "b")
        assert cat.stats()["edges"] == 1
        assert cat.stats()["groups"] == 0

    def test_cycle_of_two_merges(self):
        cat = OMQCatalog()
        cat.note_contained("b", "a")
        assert cat.note_contained("a", "b")
        assert cat.equivalent("a", "b")
        # Deterministic rep: lexicographically least member.
        assert cat.rep("b") == "a"
        assert cat.groups() == {"a": ("a", "b")}

    def test_cycle_of_three_merges(self):
        """A⊆B, B⊆C, C⊆A — only SCC condensation catches this."""
        cat = OMQCatalog()
        assert not cat.note_contained("a", "b")
        assert not cat.note_contained("b", "c")
        assert cat.note_contained("c", "a")
        assert cat.equivalent("a", "c")
        assert cat.equivalent("b", "c")
        assert cat.rep("c") == "a"
        assert cat.stats()["groups"] == 1
        assert cat.stats()["grouped_hashes"] == 3

    def test_note_equivalent_shortcut(self):
        cat = OMQCatalog()
        assert cat.note_equivalent("x", "y")
        assert cat.equivalent("x", "y")

    def test_groups_merge_transitively(self):
        cat = OMQCatalog()
        cat.note_equivalent("a", "b")
        cat.note_equivalent("c", "d")
        assert cat.stats()["groups"] == 2
        cat.note_equivalent("b", "c")
        assert cat.stats()["groups"] == 1
        assert cat.groups()["a"] == ("a", "b", "c", "d")

    def test_duplicate_edges_are_idempotent(self):
        cat = OMQCatalog()
        cat.note_contained("a", "b")
        cat.note_contained("a", "b")
        assert cat.stats()["edges"] == 1

    def test_clear_forgets_everything(self):
        cat = OMQCatalog()
        cat.note_equivalent("a", "b")
        cat.clear()
        assert not cat.equivalent("a", "b")
        assert cat.stats()["hashes"] == 0


class TestPersistence:
    def test_groups_survive_reopen(self, tmp_path):
        path = str(tmp_path / "catalog.sqlite")
        with OMQCatalog(path) as c1:
            c1.note_equivalent("a", "b")
            c1.note_contained("x", "y")
            assert c1.persistent
        with OMQCatalog(path) as c2:
            assert c2.equivalent("a", "b")
            assert not c2.equivalent("x", "y")
            # The one-directional edge also survived: closing the cycle
            # in the second session merges.
            assert c2.note_contained("y", "x")
            assert c2.equivalent("x", "y")

    def test_cycle_split_across_sessions(self, tmp_path):
        """Each session records one arc of a 3-cycle; the last one merges."""
        path = str(tmp_path / "catalog.sqlite")
        with OMQCatalog(path) as c:
            c.note_contained("a", "b")
        with OMQCatalog(path) as c:
            c.note_contained("b", "c")
        with OMQCatalog(path) as c:
            assert c.note_contained("c", "a")
            assert c.equivalent("a", "c")

    def test_stale_version_is_discarded(self, tmp_path):
        path = tmp_path / "catalog.sqlite"
        with OMQCatalog(str(path)) as c1:
            c1.note_equivalent("a", "b")
        conn = sqlite3.connect(str(path))
        conn.execute(
            "UPDATE meta SET value = '0-stale' WHERE key = 'canon_version'"
        )
        conn.commit()
        conn.close()
        with OMQCatalog(str(path)) as c2:
            assert c2.recoveries == 1
            assert not c2.equivalent("a", "b")  # dead dialect discarded
            assert c2.persistent

    def test_corrupted_file_is_rebuilt(self, tmp_path):
        path = tmp_path / "catalog.sqlite"
        with OMQCatalog(str(path)) as c1:
            c1.note_equivalent("a", "b")
        path.write_bytes(b"\xffnot sqlite\x00" * 32)
        with OMQCatalog(str(path)) as c2:
            assert c2.recoveries == 1
            assert c2.persistent
            c2.note_equivalent("p", "q")
        with OMQCatalog(str(path)) as c3:
            assert c3.equivalent("p", "q")

    def test_memory_only_catalog_is_not_persistent(self):
        cat = OMQCatalog()
        assert not cat.persistent
        assert cat.stats()["persistent"] is False

    def test_schema_version_stamped(self, tmp_path):
        path = tmp_path / "catalog.sqlite"
        OMQCatalog(str(path)).close()
        conn = sqlite3.connect(str(path))
        stamps = dict(conn.execute("SELECT key, value FROM meta"))
        conn.close()
        assert stamps["schema_version"] == CATALOG_SCHEMA_VERSION


def _equivalent_pair():
    """Two hash-distinct but semantically equivalent OMQs: the second
    carries an extra tautological rule."""
    schema = Schema.of(E=2)
    query = parse_cq("q(x) :- P(x)")
    sigma1 = tuple(parse_tgds("E(x, y) -> P(x)"))
    sigma2 = tuple(parse_tgds("E(x, y) -> P(x)\nP(x) -> P(x)"))
    q1 = OMQ(schema, sigma1, query, name="Q1")
    q2 = OMQ(schema, sigma2, query, name="Q2")
    assert hash_omq(q1) != hash_omq(q2)
    return q1, q2


class TestEngineIntegration:
    def test_contained_verdicts_feed_the_catalog(self, tmp_path):
        q1, q2 = _equivalent_pair()
        path = str(tmp_path / "catalog.sqlite")
        with BatchEngine(catalog=path) as engine:
            engine.contains(q1, q2)
            engine.contains(q2, q1)
            stats = engine.stats()["catalog"]
            assert stats["merges"] == 1
            assert stats["groups"] == 1

    def test_second_session_short_circuits(self, tmp_path):
        q1, q2 = _equivalent_pair()
        path = str(tmp_path / "catalog.sqlite")
        with BatchEngine(catalog=path) as engine:
            engine.contains(q1, q2)
            engine.contains(q2, q1)
        # Fresh engine, fresh (empty) cache — only the catalog carries over.
        with BatchEngine(catalog=path) as engine:
            result = engine.contains(q1, q2)
            assert result.value.verdict is Verdict.CONTAINED
            assert result.value.method == "catalog-equivalence"
            assert result.cached
            snap = engine.metrics.snapshot()
            assert snap.get("engine.catalog.short_circuits", 0) == 1

    def test_catalog_rewrites_cache_keys_to_reps(self, tmp_path):
        """A cached verdict for Q1 ⊆ Q3 is served for Q2 ⊆ Q3 once
        Q1 ≡ Q2 is in the catalog."""
        q1, q2 = _equivalent_pair()
        q3 = OMQ(
            Schema.of(E=2),
            tuple(parse_tgds("E(x, y) -> P(y)")),
            parse_cq("q(x) :- P(x)"),
            name="Q3",
        )
        path = str(tmp_path / "catalog.sqlite")
        with BatchEngine(catalog=path) as engine:
            engine.contains(q1, q2)
            engine.contains(q2, q1)  # Q1 ≡ Q2 proven
            first = engine.contains(q1, q3)
            assert not first.cached
            second = engine.contains(q2, q3)  # different raw cache key
            assert second.cached
            assert second.value.verdict == first.value.verdict

    def test_catalog_instance_can_be_shared(self):
        cat = OMQCatalog()
        q1, q2 = _equivalent_pair()
        with BatchEngine(catalog=cat) as engine:
            engine.contains(q1, q2)
            engine.contains(q2, q1)
        assert cat.equivalent(hash_omq(q1), hash_omq(q2))

    def test_engine_without_catalog_unchanged(self):
        q1, q2 = _equivalent_pair()
        with BatchEngine() as engine:
            result = engine.contains(q1, q2)
            assert result.value.verdict is Verdict.CONTAINED
            assert "catalog" not in engine.stats()

    def test_unknown_is_never_noted(self, tmp_path):
        """UNKNOWN verdicts must not create catalog facts."""
        diverging = OMQ(
            Schema.of(P=1),
            tuple(parse_tgds("P(x) -> R(x, w)\nR(x, y) -> R(y, z)")),
            parse_cq("q(x) :- R(x, y), R(y, x)"),
            name="Qdiv",
        )
        other = OMQ(
            Schema.of(P=1),
            tuple(parse_tgds("P(x) -> R(x, w)\nR(x, y) -> R(y, z)")),
            parse_cq("q(x) :- R(x, y), R(y, x), R(x, x)"),
            name="Qdiv2",
        )
        path = str(tmp_path / "catalog.sqlite")
        with BatchEngine(catalog=path) as engine:
            result = engine.contains(
                diverging, other, chase_max_steps=5, rewriting_budget=5
            )
            if result.value.verdict is Verdict.UNKNOWN:
                assert engine.stats()["catalog"]["edges"] == 0


class TestCatalogCLI:
    def _populate(self, tmp_path):
        q1, q2 = _equivalent_pair()
        path = str(tmp_path / "catalog.sqlite")
        with BatchEngine(catalog=path) as engine:
            engine.contains(q1, q2)
            engine.contains(q2, q1)
        return path

    def test_inspect_text(self, tmp_path, capsys):
        from repro.cli import main

        path = self._populate(tmp_path)
        code = main(["catalog", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "equivalence group" in out
        assert "2 members" in out

    def test_inspect_json(self, tmp_path, capsys):
        from repro.cli import main

        path = self._populate(tmp_path)
        code = main(["catalog", path, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["stats"]["groups"] == 1
        (members,) = payload["groups"].values()
        assert len(members) == 2

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["catalog", str(tmp_path / "absent.sqlite")])
        assert code == 2

    def test_batch_accepts_catalog_flag(self, tmp_path, capsys):
        from repro.cli import main

        q = tmp_path / "q.omq"
        q.write_text(
            "schema: E/2\nrules:\n    E(x, y) -> P(x)\n"
            "query: q(x) :- P(x)\n",
            encoding="utf-8",
        )
        manifest = tmp_path / "batch.txt"
        manifest.write_text("contains q.omq q.omq\n", encoding="utf-8")
        catalog_path = str(tmp_path / "catalog.sqlite")
        code = main(
            [
                "batch", str(manifest),
                "--catalog", catalog_path, "--json",
            ]
        )
        capsys.readouterr()
        assert code == 0
