"""Integration tests for the tree-witness property (Proposition 21).

Proposition 21 says non-containment of guarded OMQs is witnessed by C-tree
databases whose core is small (|dom(C)| ≤ ar(S ∪ sch(Σ1)) · |q1|).  These
tests connect the containment and tree modules: the witnesses our
procedures actually produce are verified to *be* C-trees within the bound.
"""

import itertools

import pytest

from repro import OMQ, Schema, Verdict, contains, parse_cq, parse_tgds
from repro.core.instance import Instance
from repro.trees import is_ctree


def omq(schema, rules, query):
    return OMQ(Schema(schema), parse_tgds(rules), parse_cq(query))


def core_bound(q1: OMQ) -> int:
    """ar(S ∪ sch(Σ1)) · |q1| (the Proposition 21 core bound)."""
    arity = (q1.data_schema | q1.ontology_schema()).max_arity
    return arity * q1.as_cq().size()


def has_small_core_ctree(db: Instance, bound: int) -> bool:
    """Is db a C-tree for some induced core with ≤ *bound* elements?"""
    domain = sorted(db.domain(), key=str)
    for size in range(0, min(len(domain), bound) + 1):
        for subset in itertools.combinations(domain, size):
            core = db.induced_by(set(subset))
            if is_ctree(db, core):
                return True
    # The whole database as its own core is always allowed if small enough.
    return len(domain) <= bound and is_ctree(db, db)


WITNESS_CASES = [
    # (schema, rules, q1, q2) with q1 ⊄ q2, both guarded.
    (
        {"R": 2, "P": 1},
        "R(x, y), P(x) -> Q(y)",
        "q(y) :- R(x, y)",
        "q(y) :- Q(y)",
    ),
    (
        {"E": 2, "S": 1},
        "E(x, y), S(x) -> S(y)",
        "q() :- S(x)",
        "q() :- E(x, y)",
    ),
    (
        {"A": 1, "B": 1},
        "A(x) -> C(x)",
        "q(x) :- C(x)",
        "q(x) :- B(x)",
    ),
]


class TestTreeWitnessProperty:
    @pytest.mark.parametrize(
        "schema, rules, q1_text, q2_text",
        WITNESS_CASES,
        ids=["acyclic-guard", "reachability", "unary"],
    )
    def test_witnesses_are_small_core_ctrees(
        self, schema, rules, q1_text, q2_text
    ):
        q1 = omq(schema, rules, q1_text)
        q2 = omq(schema, rules, q2_text)
        result = contains(q1, q2)
        assert result.verdict is Verdict.NOT_CONTAINED
        db = result.witness.database
        assert has_small_core_ctree(db, core_bound(q1))

    def test_path_witnesses_are_ctrees_with_tiny_cores(self):
        # Linear-witness databases are paths: cores of size ≤ 2 suffice.
        q1 = omq({"R": 2}, "R(x, y) -> R2(y, w)\nR2(x, y) -> P(y)",
                 "q() :- P(x)")
        q2 = omq({"R": 2}, "", "q() :- R(x, x)")
        result = contains(q1, q2)
        assert result.verdict is Verdict.NOT_CONTAINED
        assert has_small_core_ctree(result.witness.database, 2)

    def test_non_ctree_database_detected(self):
        # Sanity for the helper: a triangle with an empty core budget.
        from repro.core.parser import parse_database

        triangle = parse_database("R(a, b). R(b, c). R(c, a)")
        assert not has_small_core_ctree(triangle, 0)
        assert has_small_core_ctree(triangle, 3)
