"""Planner parity: cost-based join orders never change what is computed.

The cost-based planner (:mod:`repro.kernel.plan`) re-orders joins from
live cardinality statistics; by design the *answer set* of every search —
and therefore every decision layer above it — is order-independent.  This
suite pins that contract with randomized evidence:

* planned (cost) vs greedy OMQ evaluation returns identical answer sets
  across all five generator fragments;
* delta and naive chase agree under the cost planner exactly as they do
  under greedy — same canonical instance, same step count;
* the plan cache actually caches (hits on repetition, invalidates with
  ``repro.clear_caches``), and the skewed-cardinality shape that defeats
  the greedy ordering is planned small-relation-first.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.chase.engine import chase
from repro.core.atoms import atom, fact
from repro.core.instance import Instance
from repro.core.terms import Constant, Variable
from repro.engine.canon import hash_instance
from repro.evaluation import evaluate_omq
from repro.generators.databases import random_database
from repro.generators.random_omqs import FRAGMENTS, random_omq
from repro.kernel import (
    KERNEL_METRICS,
    WorkingInstance,
    compiled_search,
    use_planner,
)
from repro.kernel.plan import COST, GREEDY, cost_order, greedy_order

x, y, w1, w2, w3 = (Variable(n) for n in ("x", "y", "w1", "w2", "w3"))


def _answers(omq, db, mode):
    repro.clear_caches()
    with use_planner(mode):
        result = evaluate_omq(omq, db)
    return result.answers, result.method


@pytest.mark.parametrize("fragment", FRAGMENTS)
def test_cost_and_greedy_evaluation_agree(fragment):
    rng = random.Random(hash(fragment) & 0xFFFF)
    for trial in range(8):
        omq = random_omq(fragment, rng)
        db = random_database(omq.data_schema, 6, 14, seed=trial)
        got_cost, method_cost = _answers(omq, db, COST)
        got_greedy, method_greedy = _answers(omq, db, GREEDY)
        assert got_cost == got_greedy, (fragment, trial, omq)
        # Same strategy dispatch too: planning is invisible above the kernel.
        assert method_cost == method_greedy


@pytest.mark.parametrize("mode", [COST, GREEDY])
def test_delta_and_naive_chase_agree_under_planner(mode):
    rng = random.Random(99)
    for trial in range(6):
        fragment = FRAGMENTS[trial % len(FRAGMENTS)]
        omq = random_omq(fragment, rng)
        db = random_database(omq.data_schema, 5, 10, seed=trial)
        repro.clear_caches()
        with use_planner(mode):
            delta = chase(db, omq.sigma, strategy="delta", max_steps=5_000)
            naive = chase(db, omq.sigma, strategy="naive", max_steps=5_000)
        assert delta.steps == naive.steps
        assert hash_instance(delta.instance) == hash_instance(naive.instance)


def test_planned_chase_is_step_identical_to_greedy_chase():
    # Stronger than answer parity: the chase must produce the same run —
    # same step log, same nulls — whichever planner chose the join orders
    # (triggers are sorted before firing, so this is the pinned contract).
    rng = random.Random(7)
    for trial in range(6):
        fragment = FRAGMENTS[trial % len(FRAGMENTS)]
        omq = random_omq(fragment, rng)
        db = random_database(omq.data_schema, 5, 10, seed=trial)
        repro.clear_caches()
        with use_planner(COST):
            planned = chase(db, omq.sigma, max_steps=5_000)
        repro.clear_caches()
        with use_planner(GREEDY):
            greedy = chase(db, omq.sigma, max_steps=5_000)
        assert planned.steps == greedy.steps
        assert planned.log == greedy.log
        assert planned.instance == greedy.instance


def _skewed_instance(big=400, wide=4):
    atoms = [fact("Big", f"a{i}", f"b{i % 7}") for i in range(big)]
    atoms += [fact("Wide", f"a{i}", f"p{i}", f"q{i}", f"r{i}") for i in range(wide)]
    return WorkingInstance(atoms)


def test_cost_order_puts_small_relation_first_on_skewed_instance():
    work = _skewed_instance()
    body = (atom("Big", x, y), atom("Wide", x, w1, w2, w3))
    search = compiled_search(body)
    search.ensure_compiled()
    planned = cost_order(search, work, frozenset())
    greedy = greedy_order(search, frozenset())
    # Greedy counts unbound slots: Big (2) beats Wide (4).  Cost sees 400
    # facts vs 4 and reverses the join.
    assert search.source[greedy[0]].predicate == "Big"
    assert search.source[planned[0]].predicate == "Wide"
    # And both orders enumerate the same matches.
    with use_planner(COST):
        cost_hits = sorted(str(h) for h in search.search(work))
    with use_planner(GREEDY):
        greedy_hits = sorted(str(h) for h in search.search(work))
    assert cost_hits == greedy_hits
    assert len(cost_hits) == 4


def test_plan_cache_hits_on_repeated_searches():
    repro.clear_caches()
    work = _skewed_instance(big=50, wide=3)
    body = (atom("Big", x, y), atom("Wide", x, w1, w2, w3))
    search = compiled_search(body)
    with use_planner(COST):
        list(search.search(work))
        before = KERNEL_METRICS.snapshot().get("kernel.plan.hits", 0)
        for _ in range(5):
            list(search.search(work))
    snap = KERNEL_METRICS.snapshot()
    assert snap.get("kernel.plan.hits", 0) >= before + 5
    assert snap.get("kernel.plan.misses", 0) >= 1


def test_plan_cache_survives_instance_growth_within_regime():
    # The fingerprint buckets statistics by bit length, so adding one fact
    # to a 50-fact relation replans nothing.
    repro.clear_caches()
    work = _skewed_instance(big=50, wide=3)
    body = (atom("Big", x, y), atom("Wide", x, w1, w2, w3))
    search = compiled_search(body)
    with use_planner(COST):
        list(search.search(work))
        work.add(fact("Big", "extra", "b0"))
        misses_before = KERNEL_METRICS.snapshot().get("kernel.plan.misses", 0)
        list(search.search(work))
    assert (
        KERNEL_METRICS.snapshot().get("kernel.plan.misses", 0) == misses_before
    )


def test_clear_caches_invalidates_plans_but_not_answers():
    work = _skewed_instance(big=30, wide=2)
    body = (atom("Big", x, y), atom("Wide", x, w1, w2, w3))
    with use_planner(COST):
        before = sorted(str(h) for h in compiled_search(body).search(work))
        repro.clear_caches()
        after = sorted(str(h) for h in compiled_search(body).search(work))
    assert before == after


def test_cardinality_counters_flow_from_chase():
    repro.clear_caches()
    db = Instance.of([fact("P", "a")])
    sigma = repro.parse_tgds("P(x) -> R(x, y)\nR(x, y) -> S(y)")
    chase(db, sigma, strategy="delta")
    snap = KERNEL_METRICS.snapshot()
    assert snap.get("kernel.cardinality.P") == 1
    assert snap.get("kernel.cardinality.R") == 1
    assert snap.get("kernel.cardinality.S") == 1


def test_frozen_and_working_targets_agree_under_cost_planner():
    atoms = [fact("E", f"v{i}", f"v{i+1}") for i in range(12)]
    work = WorkingInstance(atoms)
    frozen = work.snapshot()
    body = (atom("E", x, y), atom("E", y, Variable("z")))
    with use_planner(COST):
        on_work = sorted(str(h) for h in compiled_search(body).search(work))
        on_frozen = sorted(
            str(h) for h in compiled_search(body).search(frozen)
        )
    assert on_work == on_frozen
    assert len(on_work) == 11


def test_fixed_bindings_pass_through_under_both_planners():
    work = WorkingInstance([fact("E", "a", "b"), fact("E", "b", "c")])
    body = (atom("E", x, y),)
    extra = Variable("unused")
    for mode in (COST, GREEDY):
        with use_planner(mode):
            hits = list(
                compiled_search(body).search(
                    work, {x: Constant("a"), extra: Constant("k")}
                )
            )
    assert hits == [
        {x: Constant("a"), y: Constant("b"), extra: Constant("k")}
    ]
