"""Tests for Section 7: distribution over components and UCQ rewritability."""

import pytest

from repro import OMQ, Schema, parse_cq, parse_database, parse_tgds
from repro.applications import (
    distributes_over_components,
    evaluate_distributed,
    is_ucq_rewritable,
)
from repro.evaluation import evaluate_omq


def omq(schema, rules, query):
    return OMQ(Schema(schema), parse_tgds(rules), parse_cq(query))


class TestDistribution:
    def test_connected_query_distributes(self):
        q = omq({"R": 2}, "R(x, y) -> P(y)", "q(x) :- R(x, y), P(y)")
        result = distributes_over_components(q)
        assert result.distributes is True

    def test_unsatisfiable_query_distributes(self):
        q = omq({"A": 1}, "", "q() :- Never(x)")
        result = distributes_over_components(q)
        assert result.distributes is True
        assert "unsatisfiable" in result.reason

    def test_cartesian_product_does_not_distribute(self):
        # q() :- A(x), B(y) needs both components at once.
        q = omq({"A": 1, "B": 1}, "", "q() :- A(x), B(y)")
        result = distributes_over_components(q)
        assert result.distributes is False

    def test_redundant_disconnected_query_distributes(self):
        # q() :- A(x), A(y): the component A(x) is equivalent to q.
        q = omq({"A": 1}, "", "q() :- A(x), A(y)")
        result = distributes_over_components(q)
        assert result.distributes is True
        assert result.witness_component is not None

    def test_ontology_can_make_component_sufficient(self):
        # A(x) forces B(w') to exist, so the A-component alone entails q.
        q = omq(
            {"A": 1, "B": 1},
            "A(x) -> B(w)",
            "q() :- A(x), B(y)",
        )
        result = distributes_over_components(q)
        assert result.distributes is True

    def test_distributed_evaluation_agrees_when_distributing(self):
        q = omq({"A": 1}, "", "q() :- A(x), A(y)")
        db = parse_database("A(a). A(b)")
        assert evaluate_distributed(q, db) == evaluate_omq(q, db).answers

    def test_distributed_evaluation_differs_when_not(self):
        q = omq({"A": 1, "B": 1}, "", "q() :- A(x), B(y)")
        db = parse_database("A(a). B(b)")
        central = evaluate_omq(q, db).answers
        distributed = evaluate_distributed(q, db)
        assert central == {()}
        assert distributed == set()

    def test_zero_ary_atoms_rejected(self):
        q = omq({"Flag": 0, "A": 1}, "", "q() :- Flag(), A(x)")
        with pytest.raises(ValueError):
            distributes_over_components(q)

    def test_non_boolean_distribution(self):
        q = omq({"A": 1, "B": 1}, "", "q(x) :- A(x), B(y)")
        result = distributes_over_components(q)
        assert result.distributes is False


class TestUCQRewritability:
    def test_linear_always_rewritable(self):
        q = omq(
            {"P": 1, "T": 1},
            "P(x) -> R(x, w)\nR(x, y) -> P(y)\nT(x) -> P(x)",
            "q(x) :- P(x)",
        )
        result = is_ucq_rewritable(q)
        assert result.rewritable is True
        assert result.rewriting is not None

    def test_sticky_always_rewritable(self):
        q = omq(
            {"R": 2, "P": 2},
            "R(x, y), P(y, z) -> S(x, y, z)",
            "q() :- S(x, y, z)",
        )
        assert is_ucq_rewritable(q).rewritable is True

    def test_guarded_rewritable_instance(self):
        # A guarded but acyclic ontology: XRewrite converges.
        q = omq(
            {"R": 2, "P": 1},
            "R(x, y), P(x) -> Q(y)",
            "q(y) :- Q(y)",
        )
        result = is_ucq_rewritable(q)
        assert result.rewritable is True

    def test_guarded_non_rewritable_instance_reports_divergence(self):
        # Reachability-style guarded recursion is not UCQ rewritable.
        q = omq(
            {"E": 2, "S": 1},
            "E(x, y), S(x) -> S(y)",
            "q(x) :- S(x)",
        )
        result = is_ucq_rewritable(q, budgets=(100, 400, 1_600))
        assert result.rewritable is None
        assert result.max_disjunct_sizes
        with pytest.raises(ValueError):
            bool(result)

    def test_full_recursive_divergence(self):
        q = omq(
            {"E": 2},
            "E(x, y), E(y, z) -> T(x, z)\nT(x, y), T(y, z) -> T(x, z)",
            "q() :- T(x, y)",
        )
        result = is_ucq_rewritable(q, budgets=(50, 200, 800))
        assert result.rewritable is None

    def test_rewriting_returned_is_correct(self):
        q = omq({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)")
        result = is_ucq_rewritable(q)
        db = parse_database("A(a)")
        assert result.rewriting.evaluate(db) == evaluate_omq(q, db).answers
