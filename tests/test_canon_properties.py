"""Property-based tests for :mod:`repro.engine.canon`.

``test_canon.py`` pins hand-picked (anti-)examples; this module turns the
two load-bearing contracts into *properties* over randomized inputs:

* **invariance** — canonical hashes are blind to presentation: variable
  and null renamings, atom reorderings, rule reorderings (α-variants from
  :func:`repro.generators.alpha_rename`, null permutations of chase
  outputs) never change a hash;
* **separation** — structural edits (dropping a rule whose canonical form
  is unique, adding an atom over a fresh predicate, permuting a head)
  always change it.

Randomness is driven through hypothesis so shrinking reports minimal
counterexamples; the OMQ corpus itself comes from the seeded fragment
generators, keeping the distributions aligned with the differential
harness (`test_differential.py`).
"""

from __future__ import annotations

import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.atoms import Atom  # noqa: E402
from repro.core.instance import Instance  # noqa: E402
from repro.core.omq import OMQ  # noqa: E402
from repro.core.queries import CQ  # noqa: E402
from repro.core.terms import Constant, Null, Variable  # noqa: E402
from repro.engine.canon import (  # noqa: E402
    canonical_tgd,
    hash_cq,
    hash_instance,
    hash_omq,
)
from repro.generators import FRAGMENTS, alpha_rename, random_omq  # noqa: E402

SETTINGS = settings(max_examples=60, deadline=None)


# -- strategies --------------------------------------------------------------


@st.composite
def omqs(draw):
    fragment = draw(st.sampled_from(FRAGMENTS))
    seed = draw(st.integers(0, 2**31))
    return random_omq(fragment, random.Random(seed))


@st.composite
def instances(draw):
    """Instances over a small vocabulary, mixing constants and nulls."""
    n_atoms = draw(st.integers(1, 8))
    atoms = []
    for _ in range(n_atoms):
        pred = draw(st.sampled_from(("P", "Q", "R")))
        arity = {"P": 1, "Q": 2, "R": 3}[pred]
        args = tuple(
            draw(
                st.one_of(
                    st.sampled_from([Constant("a"), Constant("b")]),
                    st.integers(0, 5).map(Null),
                )
            )
            for _ in range(arity)
        )
        atoms.append(Atom(pred, args))
    return Instance.of(atoms)


# -- invariance --------------------------------------------------------------


@SETTINGS
@given(omqs(), st.integers(0, 2**31))
def test_hash_omq_alpha_invariant(omq, rename_seed):
    """Renaming every rule's and the query's variables, and shuffling atom
    and rule order, never moves the canonical hash."""
    variant = alpha_rename(omq, random.Random(rename_seed))
    assert hash_omq(variant) == hash_omq(omq)


@SETTINGS
@given(instances(), st.integers(0, 2**31))
def test_hash_instance_null_renaming_invariant(instance, seed):
    """Nulls are isomorphism-invariant labels: any injective re-labeling
    (plus atom reordering — instances are sets) preserves the hash."""
    rng = random.Random(seed)
    nulls = sorted(instance.nulls(), key=lambda n: n.ident)
    offsets = list(range(100, 100 + len(nulls)))
    rng.shuffle(offsets)
    mapping = {n: Null(o) for n, o in zip(nulls, offsets)}
    renamed = instance.rename(mapping)
    assert hash_instance(renamed) == hash_instance(instance)


@SETTINGS
@given(omqs(), st.integers(0, 2**31))
def test_hash_cq_variable_renaming_invariant(omq, seed):
    rng = random.Random(seed)
    q = omq.query
    variables = sorted(q.variables(), key=lambda v: v.name)
    names = [f"u{i}" for i in range(len(variables))]
    rng.shuffle(names)
    mapping = {v: Variable(n) for v, n in zip(variables, names)}
    body = [a.substitute(mapping) for a in q.body]
    rng.shuffle(body)
    head = tuple(mapping.get(t, t) for t in q.head)
    assert hash_cq(CQ(head, tuple(body), q.name)) == hash_cq(q)


# -- separation --------------------------------------------------------------


@SETTINGS
@given(omqs())
def test_dropping_a_distinct_rule_changes_hash(omq):
    """Removing a rule whose canonical form is unique in Σ changes the
    OMQ hash (duplicate-modulo-α rules legitimately collapse)."""
    forms = [canonical_tgd(r) for r in omq.sigma]
    for i, form in enumerate(forms):
        if forms.count(form) > 1:
            continue
        thinned = omq.sigma[:i] + omq.sigma[i + 1 :]
        if not thinned:
            continue
        smaller = OMQ(omq.data_schema, thinned, omq.query, omq.name)
        assert hash_omq(smaller) != hash_omq(omq)


@SETTINGS
@given(instances())
def test_adding_an_atom_changes_instance_hash(instance):
    extended = Instance.of(
        list(instance.atoms) + [Atom("FRESH", (Constant("a"),))]
    )
    assert hash_instance(extended) != hash_instance(instance)


@SETTINGS
@given(omqs())
def test_extending_query_body_changes_hash(omq):
    """A genuinely new conjunct (fresh predicate — never foldable into the
    existing body) separates the hashes."""
    q = omq.query
    variables = sorted(q.variables(), key=lambda v: v.name)
    anchor = variables[0] if variables else Variable("w")
    wider = CQ(q.head, tuple(q.body) + (Atom("FRESH", (anchor,)),), q.name)
    assert hash_cq(wider) != hash_cq(q)
    assert hash_omq(
        OMQ(omq.data_schema, omq.sigma, wider, omq.name)
    ) != hash_omq(omq)


def test_head_order_separates():
    """Canonical forms respect answer-tuple order: q(x,y) ≠ q(y,x)."""
    x, y = Variable("x"), Variable("y")
    body = (Atom("Q", (x, y)),)
    assert hash_cq(CQ((x, y), body)) != hash_cq(CQ((y, x), body))
