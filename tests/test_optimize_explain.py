"""Tests for OMQ minimization and certain-answer explanations."""

import pytest

from repro import (
    OMQ,
    Schema,
    explain_answer,
    format_explanation,
    minimize_query,
    parse_cq,
    parse_database,
    parse_tgds,
    parse_ucq,
)
from repro.chase import ChaseBudgetExceeded
from repro.core.terms import Constant
from repro.evaluation import evaluate_omq


def omq(schema, rules, query):
    return OMQ(Schema(schema), parse_tgds(rules), parse_cq(query))


class TestMinimizeQuery:
    def test_plain_core_redundancy(self):
        q = omq({"R": 2}, "", "q() :- R(x, y), R(x, z)")
        minimized, report = minimize_query(q)
        assert minimized.as_cq().size() == 1
        assert report.cored_atoms_removed == 1

    def test_ontology_aware_pruning(self):
        q = omq(
            {"A": 1, "C": 1},
            "A(x) -> B(x)\nB(x), C(x) -> D(x)",
            "q(x) :- D(x), B(x), A(x)",
        )
        minimized, report = minimize_query(q)
        assert minimized.as_cq().size() == 1
        assert minimized.as_cq().predicates() == {"D"}
        assert report.cored_atoms_removed == 2

    def test_pruning_preserves_semantics(self):
        q = omq(
            {"A": 1, "C": 1},
            "A(x) -> B(x)\nB(x), C(x) -> D(x)",
            "q(x) :- D(x), B(x), A(x)",
        )
        minimized, _ = minimize_query(q)
        for text in ["A(a). C(a)", "A(a)", "C(c)", "A(a). C(b)"]:
            db = parse_database(text)
            assert (
                evaluate_omq(q, db).answers
                == evaluate_omq(minimized, db).answers
            ), text

    def test_non_redundant_atoms_kept(self):
        q = omq({"A": 1, "B": 1}, "", "q(x) :- A(x), B(x)")
        minimized, report = minimize_query(q)
        assert minimized.as_cq().size() == 2
        assert report.cored_atoms_removed == 0

    def test_subsumed_disjunct_dropped(self):
        base = omq({"A": 1, "B": 1}, "", "q(x) :- A(x)")
        query = parse_ucq("q(x) :- A(x) | q(x) :- A(x), B(x)")
        full = OMQ(base.data_schema, (), query)
        minimized, report = minimize_query(full)
        assert len(minimized.as_ucq()) == 1
        assert len(report.disjuncts_dropped) == 1

    def test_ontology_subsumption_between_disjuncts(self):
        sigma = parse_tgds("Student(x) -> Person(x)")
        query = parse_ucq("q(x) :- Person(x) | q(x) :- Student(x)")
        full = OMQ(Schema.of(Student=1, Person=1), sigma, query)
        minimized, report = minimize_query(full)
        # Student ⊆ Person under Σ, so only Person survives.
        assert len(minimized.as_ucq()) == 1
        assert minimized.as_ucq().disjuncts[0].predicates() == {"Person"}

    def test_ontology_unaware_mode(self):
        q = omq(
            {"A": 1, "C": 1},
            "A(x) -> B(x)\nB(x), C(x) -> D(x)",
            "q(x) :- D(x), B(x), A(x)",
        )
        minimized, _ = minimize_query(q, ontology_aware=False)
        assert minimized.as_cq().size() == 3  # plain core keeps all


class TestExplainAnswer:
    def test_multi_step_derivation(self):
        q = omq({"A": 1, "C": 1}, "A(x) -> B(x)\nB(x), C(x) -> D(x)",
                "q(x) :- D(x)")
        db = parse_database("A(a). C(a)")
        explanation = explain_answer(q, db, (Constant("a"),))
        assert explanation is not None
        assert explanation.max_depth() == 2
        assert set(map(str, explanation.facts_used())) == {"A(a)", "C(a)"}

    def test_direct_fact(self):
        q = omq({"A": 1}, "", "q(x) :- A(x)")
        explanation = explain_answer(q, parse_database("A(a)"), (Constant("a"),))
        assert explanation.max_depth() == 0
        assert explanation.derivations[0].is_fact()

    def test_non_answer_returns_none(self):
        q = omq({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)")
        db = parse_database("A(a)")
        assert explain_answer(q, db, (Constant("zzz"),)) is None

    def test_boolean_explanation(self):
        q = omq({"A": 1}, "A(x) -> B(x)", "q() :- B(x)")
        explanation = explain_answer(q, parse_database("A(a)"))
        assert explanation is not None
        assert explanation.answer == ()

    def test_formatting(self):
        q = omq({"A": 1, "C": 1}, "A(x) -> B(x)\nB(x), C(x) -> D(x)",
                "q(x) :- D(x)")
        explanation = explain_answer(
            q, parse_database("A(a). C(a)"), (Constant("a"),)
        )
        text = format_explanation(explanation)
        assert "D(a)" in text and "[fact]" in text and "by r" in text

    def test_ucq_explanation_names_the_disjunct(self):
        sigma = parse_tgds("A(x) -> B(x)")
        query = parse_ucq("q(x) :- B(x) | q(x) :- C(x)")
        q = OMQ(Schema.of(A=1, C=1), sigma, query)
        explanation = explain_answer(q, parse_database("C(c)"), (Constant("c"),))
        assert "C(" in explanation.disjunct

    def test_diverging_chase_raises(self):
        q = omq({"R": 2}, "R(x, y) -> R(y, w)", "q() :- R(x, y)")
        with pytest.raises(ChaseBudgetExceeded):
            explain_answer(q, parse_database("R(a, b)"), max_steps=50)

    def test_facts_used_deduplicated_across_derivations(self):
        q = omq({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x), A(x)")
        explanation = explain_answer(
            q, parse_database("A(a)"), (Constant("a"),)
        )
        # Both query atoms rest on the same fact; it is reported once.
        assert [str(a) for a in explanation.facts_used()] == ["A(a)"]

    def test_derivation_premises_chain(self):
        q = omq({"A": 1, "C": 1}, "A(x) -> B(x)\nB(x), C(x) -> D(x)",
                "q(x) :- D(x)")
        explanation = explain_answer(
            q, parse_database("A(a). C(a)"), (Constant("a"),)
        )
        (d,) = explanation.derivations
        assert str(d.atom) == "D(a)"
        premise_atoms = {str(p.atom) for p in d.premises}
        assert premise_atoms == {"B(a)", "C(a)"}
        (b,) = [p for p in d.premises if str(p.atom) == "B(a)"]
        assert not b.is_fact() and b.premises[0].is_fact()

    def test_no_decision_id_outside_a_trace(self):
        q = omq({"A": 1}, "", "q(x) :- A(x)")
        explanation = explain_answer(
            q, parse_database("A(a)"), (Constant("a"),)
        )
        assert explanation.decision_id is None
        assert "decision" not in format_explanation(explanation)

    def test_format_shows_the_decision_link(self):
        from dataclasses import replace

        q = omq({"A": 1}, "", "q(x) :- A(x)")
        explanation = explain_answer(
            q, parse_database("A(a)"), (Constant("a"),)
        )
        linked = replace(explanation, decision_id="abc-1")
        assert "(decision abc-1)" in format_explanation(linked)

    def test_explanation_facts_suffice(self):
        # Re-evaluating on just the used facts must still give the answer.
        q = omq({"A": 1, "C": 1}, "A(x) -> B(x)\nB(x), C(x) -> D(x)",
                "q(x) :- D(x)")
        db = parse_database("A(a). C(a). A(b). C(z)")
        explanation = explain_answer(q, db, (Constant("a"),))
        from repro.core.instance import Instance

        support = Instance.of(explanation.facts_used())
        assert (Constant("a"),) in evaluate_omq(q, support).answers
