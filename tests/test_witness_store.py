"""The cross-session NOT_CONTAINED witness store (``repro.engine.witness_store``).

Covers the store core (record/replay, eviction, persistence stamps,
corruption contract), the engine integration (replay shortcut ahead of
the catalog, verdict harvesting, metrics), the canonical-serialization
fix for colliding null renderings, the deadline-degradation regression
(UNKNOWN must never become durable), the generation-stamped reload
contract, the all-fragment replay parity suite, and the ``repro
witnesses`` CLI.
"""

import json
import random
import sqlite3

import pytest

import repro
from repro.containment.dispatch import contains
from repro.containment.result import Verdict, Witness
from repro.core.atoms import Atom
from repro.core.instance import Instance
from repro.core.parser import parse_omq
from repro.core.serialize import witness_from_json, witness_to_json
from repro.core.terms import Constant, Null
from repro.engine import BatchEngine, ContainmentJob
from repro.engine.canon import hash_omq
from repro.engine.witness_store import (
    WITNESS_SCHEMA_VERSION,
    WitnessStore,
)
from repro.generators.random_omqs import FRAGMENTS, random_omq_pair
from repro.kernel.intern import INTERN


def _path_omq(length: int) -> "repro.OMQ":
    """A Boolean E-path query of the given length (no rules)."""
    body = ", ".join(f"E(x{i}, x{i + 1})" for i in range(length))
    return parse_omq(f"schema: E/2\nquery: q() :- {body}\n")


def _not_contained_pair():
    """A pair with Q1 ⊄ Q2: a 2-path has no 3-path."""
    return _path_omq(2), _path_omq(3)


def _simple_witness(n: int = 1) -> Witness:
    db = Instance.of(
        Atom("E", (Constant(f"a{i}"), Constant(f"b{i}"))) for i in range(n)
    )
    return Witness(db, ())


class TestStoreCore:
    def test_record_then_exact_replay(self, tmp_path):
        q1, q2 = _not_contained_pair()
        h1, h2 = hash_omq(q1), hash_omq(q2)
        verdict = contains(q1, q2)
        assert verdict.verdict is Verdict.NOT_CONTAINED
        store = WitnessStore(str(tmp_path / "w.sqlite"))
        assert store.record(h1, h2, verdict.witness)
        # Second record of the same pair is a no-op.
        assert not store.record(h1, h2, verdict.witness)
        replayed = store.replay(ContainmentJob(q1, q2))
        assert replayed is not None
        assert replayed.verdict is Verdict.NOT_CONTAINED
        assert replayed.method == "witness-replay"
        assert replayed.witness.database == verdict.witness.database
        store.close()

    def test_contained_pair_never_replays(self, tmp_path):
        q1, q2 = _not_contained_pair()
        store = WitnessStore(str(tmp_path / "w.sqlite"))
        verdict = contains(q1, q2)
        store.record(hash_omq(q1), hash_omq(q2), verdict.witness)
        # The reverse direction (3-path ⊆ 2-path... actually contained)
        # shares neither side's role, so replay must miss, not guess.
        assert store.replay(ContainmentJob(q2, q1)) is None
        store.close()

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "w.sqlite")
        q1, q2 = _not_contained_pair()
        verdict = contains(q1, q2)
        with WitnessStore(path) as store:
            store.record(hash_omq(q1), hash_omq(q2), verdict.witness)
        with WitnessStore(path) as reopened:
            assert len(reopened) == 1
            replayed = reopened.replay(ContainmentJob(q1, q2))
            assert replayed is not None
            assert replayed.verdict is Verdict.NOT_CONTAINED

    def test_eviction_drops_oldest(self, tmp_path):
        store = WitnessStore(str(tmp_path / "w.sqlite"), max_entries=2)
        for i in range(4):
            assert store.record(f"l{i}", f"r{i}", _simple_witness())
        assert len(store) == 2
        stats = store.stats()
        assert stats["entries"] == 2
        assert [e["lhs"] for e in store.entries()] == ["l2", "l3"]
        store.close()
        # Evictions are durable too.
        with WitnessStore(str(tmp_path / "w.sqlite")) as reopened:
            assert [e["lhs"] for e in reopened.entries()] == ["l2", "l3"]

    def test_schema_version_mismatch_discards_file(self, tmp_path):
        path = str(tmp_path / "w.sqlite")
        with WitnessStore(path) as store:
            store.record("a", "b", _simple_witness())
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = 'antique' WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        with WitnessStore(path) as reopened:
            assert len(reopened) == 0
            assert reopened.recoveries == 1
            assert reopened.persistent

    def test_corrupted_file_degrades_to_empty_never_crashes(self, tmp_path):
        path = tmp_path / "w.sqlite"
        path.write_bytes(b"this is not a sqlite database at all")
        with WitnessStore(str(path)) as store:
            assert len(store) == 0
            assert store.replay(ContainmentJob(*_not_contained_pair())) is None
            # The recovered file accepts new rows again.
            assert store.record("a", "b", _simple_witness())
            assert store.persistent

    def test_corrupted_rows_are_skipped_not_fatal(self, tmp_path):
        path = str(tmp_path / "w.sqlite")
        q1, q2 = _not_contained_pair()
        verdict = contains(q1, q2)
        with WitnessStore(path) as store:
            store.record(hash_omq(q1), hash_omq(q2), verdict.witness)
            store.record("other", "pair", _simple_witness())
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE witnesses SET doc = '{not json' WHERE lhs = 'other'"
        )
        conn.commit()
        conn.close()
        with WitnessStore(path) as reopened:
            assert len(reopened) == 1
            assert reopened.skipped_rows == 1
            assert reopened.replay(ContainmentJob(q1, q2)) is not None

    def test_unserializable_witness_is_dropped(self, tmp_path):
        from repro.core.terms import Variable

        bad = Witness(Instance.empty(), (Variable("x"),))
        with WitnessStore(str(tmp_path / "w.sqlite")) as store:
            assert not store.record("a", "b", bad)
            assert len(store) == 0


class TestCanonicalWitnessSerialization:
    """Satellite: colliding null renderings must not scramble listings."""

    def _colliding_witness(self) -> Witness:
        # str(Null(1)) == "_:n1" == str(Constant("_:n1")): sorting atoms
        # by str is ambiguous for exactly this database.
        db = Instance.of(
            [
                Atom("P", (Null(1),)),
                Atom("P", (Constant("_:n1"),)),
                Atom("R", (Null(2), Constant("_:n2"))),
                Atom("R", (Constant("_:n2"), Null(2))),
            ]
        )
        return Witness(db, (Null(1), Constant("_:n1")))

    def test_round_trip_equality_with_colliding_nulls(self):
        w = self._colliding_witness()
        assert witness_from_json(witness_to_json(w)) == w

    def test_listing_order_is_canonical_and_aligned(self):
        w = self._colliding_witness()
        doc = witness_to_json(w)
        # Constants sort before nulls within a predicate band, so the
        # order is fully determined — not an accident of set iteration.
        assert doc["database"] == [
            {"predicate": "P", "args": [{"const": "_:n1"}]},
            {"predicate": "P", "args": [{"null": 1}]},
            {"predicate": "R", "args": [{"const": "_:n2"}, {"null": 2}]},
            {"predicate": "R", "args": [{"null": 2}, {"const": "_:n2"}]},
        ]
        # database_text line i renders database entry i.
        assert len(doc["database_text"]) == len(doc["database"])
        assert doc["database_text"][0] == doc["database_text"][1] == "P(_:n1)"
        assert json.dumps(doc)  # JSON-safe throughout

    def test_null_heavy_round_trip(self):
        rng = random.Random(7)
        atoms = [
            Atom(
                "T",
                (Null(rng.randint(0, 5)), Constant(f"_:n{rng.randint(0, 5)}")),
            )
            for _ in range(20)
        ]
        w = Witness(Instance.of(atoms), (Null(0),))
        assert witness_from_json(witness_to_json(w)) == w
        # Serialization is deterministic across calls.
        assert witness_to_json(w) == witness_to_json(w)


class TestEngineIntegration:
    def test_cold_stores_then_warm_replays(self, tmp_path):
        path = str(tmp_path / "w.sqlite")
        q1, q2 = _not_contained_pair()
        with BatchEngine(witness_store=path) as cold:
            result = cold.contains(q1, q2)
            assert result.value.verdict is Verdict.NOT_CONTAINED
            assert result.value.method != "witness-replay"
            snap = cold.stats()
            assert snap["witness_store"]["entries"] == 1
            assert snap["metrics"]["engine.witness.stored"] == 1
        # A fresh engine with a fresh cache: only the store is shared.
        with BatchEngine(witness_store=path) as warm:
            result = warm.contains(q1, q2)
            assert result.value.verdict is Verdict.NOT_CONTAINED
            assert result.value.method == "witness-replay"
            assert result.value.witness is not None
            assert result.cached
            snap = warm.stats()["metrics"]
            assert snap["engine.witness.hits"] == 1
            assert snap.get("engine.containment.runs", 0) == 0

    def test_alpha_equivalent_spelling_replays(self, tmp_path):
        path = str(tmp_path / "w.sqlite")
        q1, q2 = _not_contained_pair()
        q1_alpha = parse_omq(
            "schema: E/2\nquery: q() :- E(u, v), E(v, w)\n"
        )
        with BatchEngine(witness_store=path) as cold:
            cold.contains(q1, q2)
        with BatchEngine(witness_store=path) as warm:
            result = warm.contains(q1_alpha, q2)
            assert result.value.method == "witness-replay"

    def test_cross_pair_replay_same_lhs(self, tmp_path):
        """A stored witness refutes a *different* RHS with one check."""
        path = str(tmp_path / "w.sqlite")
        q1 = _path_omq(2)
        with BatchEngine(witness_store=path) as cold:
            cold.contains(q1, _path_omq(3))
        with BatchEngine(witness_store=path) as warm:
            result = warm.contains(q1, _path_omq(4))
            assert result.value.verdict is Verdict.NOT_CONTAINED
            assert result.value.method == "witness-replay"
            snap = warm.stats()["metrics"]
            assert snap["engine.witness.replays"] >= 1
            assert snap.get("engine.containment.runs", 0) == 0
            # The cross-pair hit is re-recorded: now it replays exactly.
            assert warm.stats()["witness_store"]["entries"] == 2

    def test_replay_runs_ahead_of_catalog(self, tmp_path):
        q1, q2 = _not_contained_pair()
        store = WitnessStore(str(tmp_path / "w.sqlite"))
        verdict = contains(q1, q2)
        store.record(hash_omq(q1), hash_omq(q2), verdict.witness)
        with BatchEngine(
            catalog=str(tmp_path / "cat.sqlite"), witness_store=store
        ) as engine:
            result = engine.contains(q1, q2)
            assert result.value.method == "witness-replay"
            snap = engine.stats()["metrics"]
            assert snap.get("engine.catalog.short_circuits", 0) == 0

    def test_degraded_deadline_unknown_never_becomes_durable(self, tmp_path):
        """Satellite regression: a deadline-degraded UNKNOWN must not
        poison the cache, the catalog, or the witness store."""
        q1, q2 = _not_contained_pair()
        with BatchEngine(
            cache_dir=str(tmp_path / "cache"),
            catalog=str(tmp_path / "cat.sqlite"),
            witness_store=str(tmp_path / "w.sqlite"),
        ) as engine:
            degraded = engine.submit(ContainmentJob(q1, q2), deadline=0.001)
            result = degraded.result(timeout=5)
            assert result.error == "deadline"
            assert result.value.verdict is Verdict.UNKNOWN
            assert engine.stats()["witness_store"]["entries"] == 0
            assert engine.stats()["catalog"]["edges"] == 0
            # The real run is not served a stale UNKNOWN from any layer.
            real = engine.contains(q1, q2)
            assert real.value.verdict is Verdict.NOT_CONTAINED
            assert engine.stats()["witness_store"]["entries"] == 1
        # And the next session replays the *real* verdict.
        with BatchEngine(
            witness_store=str(tmp_path / "w.sqlite")
        ) as warm:
            replayed = warm.contains(q1, q2)
            assert replayed.value.verdict is Verdict.NOT_CONTAINED

    def test_pool_failure_unknown_not_stored(self, tmp_path):
        q1, q2 = _not_contained_pair()
        job = ContainmentJob(q1, q2)
        with BatchEngine(witness_store=str(tmp_path / "w.sqlite")) as engine:
            # Simulate what a crashed worker produces and feed it through
            # the verdict path: UNKNOWN carries no witness, nothing lands.
            engine.scheduler._note_verdict(job, job.failure_result("boom"))
            assert engine.stats()["witness_store"]["entries"] == 0


class TestInvalidationContract:
    """Satellite: clear_caches()/intern clears rebuild the in-memory index."""

    def test_clear_caches_reloads_and_still_replays(self, tmp_path):
        path = str(tmp_path / "w.sqlite")
        q1, q2 = _not_contained_pair()
        with BatchEngine(witness_store=path) as engine:
            engine.contains(q1, q2)
            before = engine.witness_store.stats()["generation"]
            repro.clear_caches()  # bumps INTERN.generation, reloads index
            after = engine.witness_store.stats()["generation"]
            assert after > before
            assert engine.stats()["witness_store"]["entries"] == 1
            result = engine.contains(q1, q2)
            assert result.value.verdict is Verdict.NOT_CONTAINED

    def test_intern_generation_bump_triggers_lazy_reload(self, tmp_path):
        store = WitnessStore(str(tmp_path / "w.sqlite"))
        q1, q2 = _not_contained_pair()
        verdict = contains(q1, q2)
        store.record(hash_omq(q1), hash_omq(q2), verdict.witness)
        old_record = next(iter(store._records.values()))
        INTERN.clear()
        # The next lookup notices the stale generation and re-parses
        # every witness from its serialized document.
        replayed = store.replay(ContainmentJob(q1, q2))
        assert replayed is not None
        new_record = next(iter(store._records.values()))
        assert new_record is not old_record
        assert new_record.witness == old_record.witness
        assert store.stats()["generation"] == INTERN.generation
        store.close()

    def test_memory_only_store_survives_reload(self):
        store = WitnessStore()  # no path: memory only
        store.record("a", "b", _simple_witness(3))
        store.reload()
        assert len(store) == 1
        assert store.entries()[0]["atoms"] == 3
        store.close()


class TestReplayParity:
    """Satellite: stored-then-replayed witnesses agree with the full
    procedure on every fragment the generators cover."""

    #: Small budgets keep each draw cheap; draws the procedures cannot
    #: settle within them come back UNKNOWN and are skipped.
    BUDGETS = {"rewriting_budget": 2_000, "chase_max_steps": 5_000}

    @pytest.mark.parametrize("fragment", FRAGMENTS)
    def test_fragment_parity(self, fragment, tmp_path):
        rng = random.Random(20180611)
        disagreements = []
        replayed = 0
        store_path = str(tmp_path / f"{fragment}.sqlite")
        cases = 0
        for _ in range(40):
            if cases >= 4:
                break
            q1, q2, _ = random_omq_pair(
                fragment, rng, mode="independent", n_rules=2
            )
            try:
                full = contains(q1, q2, **self.BUDGETS)
            except Exception:
                continue
            if full.verdict is not Verdict.NOT_CONTAINED:
                continue
            cases += 1
            job = ContainmentJob(q1, q2, **self.BUDGETS)
            with BatchEngine(witness_store=store_path) as cold:
                cold_result = cold.submit(job).result(timeout=60)
                assert cold_result.value.verdict is Verdict.NOT_CONTAINED
            with BatchEngine(witness_store=store_path) as warm:
                warm_result = warm.submit(job).result(timeout=60)
                if warm_result.value.method == "witness-replay":
                    replayed += 1
                if warm_result.value.verdict is not Verdict.NOT_CONTAINED:
                    disagreements.append((q1, q2, warm_result.value))
        assert not disagreements, disagreements
        # Every fragment that produced refutations replayed all of them.
        assert replayed == cases

    def test_replay_with_mismatched_schema_degrades_to_miss(self, tmp_path):
        """A stored witness over a foreign schema must never crash replay."""
        store = WitnessStore(str(tmp_path / "w.sqlite"))
        q1 = _path_omq(2)
        h1 = hash_omq(q1)
        # Hand-plant a witness under q1's LHS hash whose database speaks
        # a different schema: the candidate check raises inside
        # evaluate_omq and must degrade to a miss.
        alien = Witness(
            Instance.of([Atom("Zap", (Constant("a"),))]), ()
        )
        store.record(h1, "bogus-rhs-hash", alien)
        assert store.replay(ContainmentJob(q1, _path_omq(4))) is None
        assert store.replay_errors >= 1
        store.close()


class TestCLI:
    def _populate(self, tmp_path) -> str:
        path = str(tmp_path / "w.sqlite")
        q1, q2 = _not_contained_pair()
        with BatchEngine(witness_store=path) as engine:
            engine.contains(q1, q2)
        return path

    def test_witnesses_listing(self, tmp_path, capsys):
        from repro.cli import main

        path = self._populate(tmp_path)
        assert main(["witnesses", path]) == 0
        out = capsys.readouterr().out
        assert "1 stored witness(es)" in out
        assert "⊄" in out

    def test_witnesses_json(self, tmp_path, capsys):
        from repro.cli import main

        path = self._populate(tmp_path)
        assert main(["witnesses", path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["stats"]["entries"] == 1
        assert len(doc["witnesses"]) == 1
        assert doc["witnesses"][0]["atoms"] >= 1

    def test_witnesses_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["witnesses", str(tmp_path / "nope.sqlite")]) == 2

    def test_contains_flag_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        q1 = tmp_path / "q1.omq"
        q2 = tmp_path / "q2.omq"
        q1.write_text("schema: E/2\nquery: q() :- E(x, y), E(y, z)\n")
        q2.write_text(
            "schema: E/2\nquery: q() :- E(x, y), E(y, z), E(z, w)\n"
        )
        store = str(tmp_path / "w.sqlite")
        assert main(
            ["contains", str(q1), str(q2), "--witness-store", store, "--json"]
        ) == 1  # exit 1 = not contained, by the CLI's verdict contract
        capsys.readouterr()
        assert main(
            ["contains", str(q1), str(q2), "--witness-store", store, "--json"]
        ) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["method"] == "witness-replay"

    def test_serve_config_passthrough(self, tmp_path):
        from repro.serve.server import ServeConfig

        path = self._populate(tmp_path)
        config = ServeConfig(witness_store=path)
        engine = config.build_engine()
        try:
            assert engine.witness_store is not None
            assert engine.stats()["witness_store"]["entries"] == 1
        finally:
            engine.close()
