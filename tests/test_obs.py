"""Tests for repro.obs: spans, sampling, exporters, cross-process capture."""

import json
import os

import pytest

from repro import OMQ, Schema, obs, parse_cq, parse_database, parse_tgds
from repro.containment import Verdict, contains
from repro.engine import BatchEngine, ContainmentJob
from repro.explain import explain_answer
from repro.obs import (
    NULL_HANDLE,
    TraceConfig,
    TracedOutcome,
    TracedTask,
    rollup_counters,
    walk,
)


def omq(schema, rules, query, name="Q"):
    return OMQ(Schema(schema), parse_tgds(rules), parse_cq(query), name=name)


LINEAR_A = omq(
    {"P": 1, "T": 1},
    "P(x) -> R(x, w)\nR(x, y) -> P(y)\nT(x) -> P(x)",
    "q(x) :- R(x, y), P(y)",
    name="A",
)
LINEAR_B = omq(
    {"P": 1, "T": 1},
    "P(x) -> R(x, w)\nR(x, y) -> P(y)\nT(x) -> P(x)",
    "q(x) :- P(x)",
    name="B",
)


class TestSpanTree:
    def test_nested_spans_build_a_tree(self):
        with obs.tracing("always"):
            with obs.span("outer", kind="demo") as outer:
                outer.add("things", 2)
                with obs.span("inner.first"):
                    obs.add("things")
                with obs.span("inner.second") as inner:
                    inner.event("tick", n=1)
            roots = obs.drain()
        assert len(roots) == 1
        root = roots[0]
        assert root["name"] == "outer"
        assert root["attrs"]["kind"] == "demo"
        assert [c["name"] for c in root["children"]] == [
            "inner.first",
            "inner.second",
        ]
        assert root["children"][1]["events"][0]["name"] == "tick"
        assert rollup_counters(root)["things"] == 3
        names = [node["name"] for node in walk(root)]
        assert names == ["outer", "inner.first", "inner.second"]

    def test_durations_are_consistent(self):
        with obs.tracing("always"):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
            (root,) = obs.drain()
        child = root["children"][0]
        assert root["dur_s"] >= child["dur_s"] >= 0
        assert root["self_s"] == pytest.approx(
            root["dur_s"] - child["dur_s"], abs=1e-9
        )
        assert child["start"] >= root["start"]

    def test_exception_recorded_and_propagated(self):
        with obs.tracing("always"):
            with pytest.raises(ValueError):
                with obs.span("doomed"):
                    raise ValueError("boom")
            (root,) = obs.drain()
        assert root["attrs"]["error"] == "ValueError: boom"

    def test_decision_id_is_the_root_span_id(self):
        with obs.tracing("always"):
            with obs.span("root") as h:
                assert obs.current_decision_id() == h.span.span_id
                with obs.span("child"):
                    assert obs.current_decision_id() == h.span.span_id
        assert obs.current_decision_id() is None


class TestSamplingAndBudgets:
    def test_off_mode_returns_the_shared_null_handle(self):
        assert not obs.is_enabled()
        handle = obs.span("anything")
        assert handle is NULL_HANDLE
        with handle:
            handle.set("k", 1)
            handle.add("c")
            handle.event("e")
            obs.add("c")
            obs.event("e")
        assert obs.drain() == []

    def test_per_job_sampling_keeps_every_nth_root(self):
        with obs.tracing("per-job", sample_every=3):
            for _ in range(9):
                with obs.span("decision"):
                    with obs.span("child"):
                        pass
            roots = obs.drain()
        assert len(roots) == 3
        assert all(r["name"] == "decision" for r in roots)
        snap = obs.obs_snapshot()
        assert snap["obs.unsampled_decisions"] == 6

    def test_max_spans_budget_drops_and_counts(self):
        with obs.tracing("always", max_spans=3):
            with obs.span("root"):
                for _ in range(5):
                    with obs.span("child"):
                        pass
            (root,) = obs.drain()
        assert len(root["children"]) == 2  # root + 2 children = budget 3
        assert root["dropped_spans"] == 3

    def test_counters_outside_any_span_are_dropped(self):
        with obs.tracing("always"):
            obs.add("orphan")
            obs.add_many([("a", 1), ("b", 2)])
            obs.event("orphan")
        assert obs.drain() == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(mode="sometimes")
        with pytest.raises(ValueError):
            TraceConfig(mode="per-job", sample_every=0)

    def test_tracing_restores_previous_config(self):
        before = obs.get_config()
        with obs.tracing("always"):
            assert obs.is_enabled()
        assert obs.get_config() is before
        assert not obs.is_enabled()


class TestExporters:
    def _tree(self):
        with obs.tracing("always"):
            with obs.span("containment.decide", method="demo") as h:
                h.add("hom.searches", 4)
                with obs.span("chase.round", n=1) as r:
                    r.event("growth", generated=10)
            (root,) = obs.drain()
        return root

    def test_jsonl_round_trip(self, tmp_path):
        root = self._tree()
        path = str(tmp_path / "t.jsonl")
        assert obs.write_trace([root], path) == "jsonl"
        assert obs.load_trace(path) == [root]

    def test_chrome_round_trip_preserves_shape(self, tmp_path):
        root = self._tree()
        path = str(tmp_path / "t.json")
        assert obs.write_trace([root], path) == "chrome"
        doc = json.loads((tmp_path / "t.json").read_text())
        assert obs.validate_chrome_trace(doc) == []
        (rebuilt,) = obs.load_trace(path)
        assert [n["name"] for n in walk(rebuilt)] == [
            n["name"] for n in walk(root)
        ]
        assert rebuilt["attrs"]["method"] == "demo"
        assert rebuilt["id"] == root["id"]

    def test_chrome_round_trip_preserves_counters_and_events(self):
        root = self._tree()
        doc = obs.chrome_trace([root])
        assert obs.validate_chrome_trace(doc) == []
        (rebuilt,) = obs.roots_from_chrome(doc)
        assert rebuilt["counters"] == {"hom.searches": 4}
        assert rebuilt["attrs"]["method"] == "demo"
        child = rebuilt["children"][0]
        assert child["attrs"] == {"n": 1}
        assert [e["name"] for e in child["events"]] == ["growth"]
        assert child["events"][0]["attrs"] == {"generated": 10}

    def test_chrome_round_trip_synthetic_tree_is_exact(self):
        # Hand-built timestamps, well clear of µs truncation edges.
        root = {
            "id": "d1", "name": "containment.decide", "pid": 9, "tid": 2,
            "start": 100.0, "dur_s": 0.5, "self_s": 0.1,
            "attrs": {"fragment": "guarded", "verdict": "CONTAINED"},
            "counters": {"chase.facts": 12},
            "events": [
                {"name": "cache.miss", "ts": 100.05, "attrs": {"key": "q"}}
            ],
            "children": [
                {
                    "id": "c1", "name": "chase.run", "pid": 9, "tid": 2,
                    "start": 100.1, "dur_s": 0.4, "self_s": 0.4,
                    "counters": {"chase.rounds": 3},
                    "events": [{"name": "round", "ts": 100.2, "attrs": {}}],
                }
            ],
        }
        doc = obs.chrome_trace([root])
        assert obs.validate_chrome_trace(doc) == []
        (rebuilt,) = obs.roots_from_chrome(doc)
        assert rebuilt["id"] == "d1"
        assert rebuilt["attrs"] == root["attrs"]
        assert rebuilt["counters"] == root["counters"]
        assert [e["name"] for e in rebuilt["events"]] == ["cache.miss"]
        assert rebuilt["events"][0]["attrs"] == {"key": "q"}
        child = rebuilt["children"][0]
        assert child["counters"] == {"chase.rounds": 3}
        assert [e["name"] for e in child["events"]] == ["round"]
        assert rebuilt["self_s"] == pytest.approx(0.1, abs=1e-5)
        assert child["self_s"] == pytest.approx(0.4, abs=1e-5)

    def test_chrome_legacy_flat_args_still_load(self):
        # Traces written before attrs/counters were nested carry a flat
        # args dict; everything loads back as attrs.
        doc = {
            "traceEvents": [
                {
                    "name": "old", "ph": "X", "ts": 0, "dur": 10,
                    "pid": 1, "tid": 1,
                    "args": {"span_id": "s1", "method": "demo"},
                }
            ]
        }
        (rebuilt,) = obs.roots_from_chrome(doc)
        assert rebuilt["id"] == "s1"
        assert rebuilt["attrs"] == {"method": "demo"}

    def test_load_trace_sniffs_content_not_extension(self, tmp_path):
        root = self._tree()
        # Chrome document under a .jsonl name.
        chrome = tmp_path / "misnamed.jsonl"
        chrome.write_text(json.dumps(obs.chrome_trace([root]), indent=2))
        assert obs.load_trace(str(chrome))[0]["name"] == root["name"]
        # JSONL under a .json name.
        jsonl = tmp_path / "misnamed.json"
        jsonl.write_text(json.dumps(root) + "\n")
        assert obs.load_trace(str(jsonl)) == [root]
        # A bare span dict and an array of span trees.
        single = tmp_path / "single.json"
        single.write_text(json.dumps(root, indent=2))
        assert obs.load_trace(str(single)) == [root]
        array = tmp_path / "array.json"
        array.write_text(json.dumps([root, root], indent=1))
        assert len(obs.load_trace(str(array))) == 2

    def test_load_trace_clear_error_for_neither(self, tmp_path):
        not_a_trace = tmp_path / "nope.json"
        not_a_trace.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match="not a repro trace"):
            obs.load_trace(str(not_a_trace))
        garbage = tmp_path / "garbage.json"
        garbage.write_text("definitely not json")
        with pytest.raises(ValueError, match="neither JSONL"):
            obs.load_trace(str(garbage))

    def test_chrome_doc_structure(self):
        root = self._tree()
        doc = obs.chrome_trace([root])
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X", "i", "M"}
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == f"repro pid {os.getpid()}"
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["dur"] >= 1 for e in xs)

    def test_validator_catches_broken_documents(self):
        assert obs.validate_chrome_trace([]) != []
        assert obs.validate_chrome_trace({"traceEvents": [{"ph": "Z"}]}) != []
        bad_overlap = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 1},
                {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 1},
            ]
        }
        assert any(
            "overlaps" in e for e in obs.validate_chrome_trace(bad_overlap)
        )
        unbalanced = {
            "traceEvents": [
                {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
            ]
        }
        assert any(
            "unmatched" in e for e in obs.validate_chrome_trace(unbalanced)
        )

    def test_format_trace_renders_the_tree(self):
        root = self._tree()
        text = obs.format_trace([root])
        assert f"decision {root['id']}" in text
        assert "containment.decide" in text
        assert "  chase.round" in text.replace(root["id"], "")
        assert "· growth" in text
        assert "hom.searches = 4" in text
        assert obs.format_trace([]) == "(no decisions recorded)"


class TestInstrumentation:
    def test_contains_produces_phase_spans(self):
        with obs.tracing("always"):
            result = contains(LINEAR_B, LINEAR_A)
            (root,) = obs.drain()
        assert root["name"] == "containment.decide"
        assert root["attrs"]["verdict"] == result.verdict.name
        assert root["attrs"]["method"] == result.method
        names = {n["name"] for n in walk(root)}
        assert "containment.subsumption" in names

    def test_explanation_links_to_the_active_decision(self):
        q = omq({"T": 1}, "T(x) -> P(x)", "q(x) :- P(x)")
        db = parse_database("T(a).")
        from repro.core.terms import Constant

        with obs.tracing("always"):
            with obs.span("containment.decide") as h:
                ex = explain_answer(q, db, (Constant("a"),))
            obs.drain()
        assert ex is not None
        assert ex.decision_id == h.span.span_id

    def test_explanation_without_tracing_has_no_decision_id(self):
        q = omq({"T": 1}, "T(x) -> P(x)", "q(x) :- P(x)")
        db = parse_database("T(a).")
        from repro.core.terms import Constant

        ex = explain_answer(q, db, (Constant("a"),))
        assert ex is not None
        assert ex.decision_id is None


class TestTraceCLI:
    OMQ_A = (
        "schema: P/1, T/1\n"
        "rules:\n"
        "    P(x) -> R(x, w)\n"
        "    R(x, y) -> P(y)\n"
        "    T(x) -> P(x)\n"
        "query: q(x) :- R(x, y), P(y)\n"
    )
    OMQ_B = (
        "schema: P/1, T/1\n"
        "rules:\n"
        "    P(x) -> R(x, w)\n"
        "    R(x, y) -> P(y)\n"
        "    T(x) -> P(x)\n"
        "query: q(x) :- P(x)\n"
    )

    @pytest.fixture
    def files(self, tmp_path):
        a = tmp_path / "a.omq"
        a.write_text(self.OMQ_A)
        b = tmp_path / "b.omq"
        b.write_text(self.OMQ_B)
        return {"a": str(a), "b": str(b), "dir": tmp_path}

    def test_contains_trace_chrome_then_pretty_print(self, files, capsys):
        from repro.cli import main

        trace_file = str(files["dir"] / "t.json")
        assert main(["contains", files["b"], files["a"], "--trace", trace_file]) == 0
        err = capsys.readouterr().err
        assert "wrote 1 decision trace(s)" in err
        doc = json.loads((files["dir"] / "t.json").read_text())
        assert obs.validate_chrome_trace(doc) == []
        assert main(["trace", trace_file]) == 0
        out = capsys.readouterr().out
        assert "containment.decide" in out and "decision " in out
        # The CLI restored the host's default (off) config afterwards.
        assert not obs.is_enabled()

    def test_batch_trace_includes_job_spans(self, files, capsys):
        from repro.cli import main

        manifest = files["dir"] / "batch.txt"
        manifest.write_text(
            f"contains {files['b']} {files['a']}\n"
            f"rewrite {files['a']}\n"
        )
        trace_file = str(files["dir"] / "batch.jsonl")
        assert main(["batch", str(manifest), "--trace", trace_file]) == 0
        capsys.readouterr()
        roots = obs.load_trace(trace_file)
        assert [r["name"] for r in roots] == ["job.containment", "job.rewrite"]

    def test_trace_command_rejects_garbage(self, files, capsys):
        from repro.cli import main

        bad = files["dir"] / "bad.json"
        bad.write_text("{not json")
        assert main(["trace", str(bad)]) == 2
        assert "cannot load" in capsys.readouterr().err


class TestCrossProcessCapture:
    def test_traced_task_bundles_the_tree(self):
        job = ContainmentJob(LINEAR_B, LINEAR_A)
        task = TracedTask(job, TraceConfig(mode="always"), 0.0)
        outcome = task.run()
        assert isinstance(outcome, TracedOutcome)
        assert outcome.value.verdict is Verdict.CONTAINED
        assert outcome.trace["name"] == "job.containment"
        assert outcome.trace["attrs"]["lhs_rules"] == 3
        assert "queue_wait_s" in outcome.trace["attrs"]
        child_names = {n["name"] for n in walk(outcome.trace)}
        assert "containment.decide" in child_names
        # The host process's config is restored afterwards.
        assert not obs.is_enabled()

    def test_engine_serial_traces(self):
        with BatchEngine(trace="always") as engine:
            result = engine.contains(LINEAR_B, LINEAR_A)
            stats = engine.stats()
        assert result.trace is not None
        assert result.trace["name"] == "job.containment"
        assert stats["traces"] == [result.trace]
        assert stats["metrics"]["obs.decisions"] >= 1

    def test_engine_pool_traces_come_from_the_worker(self):
        with BatchEngine(workers=2, trace="always") as engine:
            result = engine.contains(LINEAR_B, LINEAR_A)
        assert result.trace is not None
        assert result.trace["pid"] != os.getpid()

    def test_untraced_engine_has_no_traces_key(self):
        with BatchEngine() as engine:
            result = engine.contains(LINEAR_B, LINEAR_A)
            stats = engine.stats()
        assert result.trace is None
        assert "traces" not in stats

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_pool_trace_chrome_round_trip_fidelity(self, start_method):
        import multiprocessing as mp

        if start_method not in mp.get_all_start_methods():
            pytest.skip(f"{start_method} unavailable on this platform")
        with BatchEngine(
            workers=2, trace="always", start_method=start_method
        ) as engine:
            result = engine.contains(LINEAR_B, LINEAR_A)
        trace = result.trace
        assert trace is not None and trace["pid"] != os.getpid()
        doc = obs.chrome_trace([trace])
        assert obs.validate_chrome_trace(doc) == []
        (rebuilt,) = obs.roots_from_chrome(doc)
        assert [n["name"] for n in walk(rebuilt)] == [
            n["name"] for n in walk(trace)
        ]
        assert rebuilt["pid"] == trace["pid"]
        # Counters survive the round trip at every node, and every
        # original instant event reappears somewhere in the tree.
        originals = {n["id"]: n for n in walk(trace)}
        for node in walk(rebuilt):
            assert node.get("counters", {}) == originals[node["id"]].get(
                "counters", {}
            )
        rebuilt_events = sorted(
            e["name"] for n in walk(rebuilt) for e in n.get("events", ())
        )
        original_events = sorted(
            e["name"] for n in walk(trace) for e in n.get("events", ())
        )
        assert rebuilt_events == original_events

    def test_cached_results_share_the_original_trace(self):
        with BatchEngine(trace="always") as engine:
            first = engine.contains(LINEAR_B, LINEAR_A)
            second = engine.contains(LINEAR_B, LINEAR_A)
            traces = engine.traces()
        assert second.cached
        assert second.trace is None  # cache stores plain values
        assert traces == [first.trace]
