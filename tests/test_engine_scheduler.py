"""The async scheduler: non-blocking submission, canonical dedup of
α-equivalent jobs, streaming completion, and cancellation.

The dedup tests mirror the acceptance criterion directly: N α-renamed
copies of one containment question must cost exactly one execution
(``engine.containment.runs == 1``) while every handle still resolves,
with the absorbed copies visible in ``engine.dedup.coalesced``.
"""

import multiprocessing as mp
import time
from dataclasses import dataclass
from typing import Any

import pytest

from repro import OMQ, Schema, parse_cq, parse_tgds
from repro.containment import Verdict
from repro.engine import BatchEngine, ContainmentJob, Priority
from repro.engine.jobs import SleepJob

START_METHODS = [
    m for m in ("fork", "spawn") if m in mp.get_all_start_methods()
]

SIGMA = "P(x) -> R(x, w)\nR(x, y) -> P(y)\nT(x) -> P(x)"
SCHEMA = Schema.of(P=1, T=1)


def _omq(query: str, rules: str = SIGMA, name: str = "Q") -> OMQ:
    return OMQ(SCHEMA, tuple(parse_tgds(rules)), parse_cq(query), name)


def _alpha_variants():
    """Four spellings of the same OMQ: renamed variables, reordered body
    atoms, reordered rules, different display names — all α-equivalent,
    so all four share one canonical cache key."""
    spellings = [
        ("q(x) :- R(x, y), P(y)", SIGMA),
        ("q(u) :- P(v), R(u, v)", SIGMA),
        ("q(a) :- R(a, b), P(b)", "\n".join(reversed(SIGMA.split("\n")))),
        ("q(m) :- P(n), R(m, n)", SIGMA),
    ]
    return [
        OMQ(SCHEMA, tuple(parse_tgds(rules)), parse_cq(cq), f"spelling-{i}")
        for i, (cq, rules) in enumerate(spellings)
    ]


@dataclass(frozen=True)
class _SlowKeyedJob:
    """A cacheable job slow enough to still be in flight when its
    α-twin arrives (module-level, so it pickles into workers)."""

    key: str
    seconds: float = 0.3

    kind = "slowkeyed"

    def cache_key(self) -> str:
        return f"slow:{self.key}"

    def run(self) -> str:
        time.sleep(self.seconds)
        return f"value:{self.key}"

    def failure_result(self, reason: str) -> Any:
        return None


class TestSubmission:
    def test_submit_resolves_to_the_library_verdict(self):
        with BatchEngine() as engine:
            handle = engine.submit(
                ContainmentJob(_omq("q(x) :- T(x)"), _omq("q(x) :- P(x)"))
            )
            result = handle.result(timeout=60)
        assert result.ok
        assert result.value.verdict is Verdict.CONTAINED
        assert handle.done()

    def test_submit_does_not_block(self):
        with BatchEngine() as engine:
            start = time.monotonic()
            handle = engine.submit(SleepJob(0.5, "late"))
            submit_cost = time.monotonic() - start
            assert submit_cost < 0.3
            assert not handle.done()
            assert handle.result(timeout=10).value == "late"

    def test_result_timeout_raises(self):
        with BatchEngine(workers=2) as engine:
            handle = engine.submit(SleepJob(30.0))
            with pytest.raises(TimeoutError):
                handle.result(timeout=0.1)

    def test_cache_hit_resolves_immediately(self):
        with BatchEngine() as engine:
            job = ContainmentJob(_omq("q(x) :- T(x)"), _omq("q(x) :- P(x)"))
            cold = engine.submit(job).result(timeout=60)
            warm = engine.submit(job)
            assert warm.done()  # no pool round-trip at all
            assert warm.result().cached
            assert warm.result().value.verdict is cold.value.verdict


class TestCanonicalDedup:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_alpha_renamed_batch_executes_once(self, start_method):
        variants = _alpha_variants()
        target = _omq("q(x) :- P(x)")
        jobs = [ContainmentJob(v, target) for v in variants]
        assert len({j.cache_key() for j in jobs}) == 1
        with BatchEngine(workers=2, start_method=start_method) as engine:
            handles = engine.submit_batch(jobs)
            results = [h.result(timeout=120) for h in handles]
            snap = engine.stats()["metrics"]
        assert snap["engine.containment.runs"] == 1
        assert snap["engine.dedup.coalesced"] == len(jobs) - 1
        verdicts = {r.value.verdict for r in results}
        assert verdicts == {Verdict.CONTAINED}
        assert [r.coalesced for r in results] == [False, True, True, True]
        # Every handle keeps its own job identity despite sharing the run.
        assert [r.job for r in results] == jobs

    def test_serial_engine_dedups_too(self):
        variants = _alpha_variants()
        jobs = [ContainmentJob(v, _omq("q(x) :- P(x)")) for v in variants]
        with BatchEngine() as engine:
            results = engine.run_batch(jobs)
            snap = engine.stats()["metrics"]
        assert snap["engine.containment.runs"] == 1
        assert snap["engine.dedup.coalesced"] == len(jobs) - 1
        assert all(r.value.verdict is Verdict.CONTAINED for r in results)

    def test_inflight_submission_coalesces(self):
        # Not a batch: two independent submit() calls, the second arriving
        # while the first is still computing, land on one flight.
        with BatchEngine() as engine:
            first = engine.submit(_SlowKeyedJob("x"))
            second = engine.submit(_SlowKeyedJob("x"))
            r1 = first.result(timeout=10)
            r2 = second.result(timeout=10)
            snap = engine.stats()["metrics"]
        assert r1.value == r2.value == "value:x"
        assert not r1.coalesced and r2.coalesced
        assert snap["engine.slowkeyed.runs"] == 1
        assert snap["engine.dedup.coalesced"] == 1

    def test_distinct_keys_do_not_coalesce(self):
        with BatchEngine() as engine:
            handles = engine.submit_batch(
                [_SlowKeyedJob("x", 0.05), _SlowKeyedJob("y", 0.05)]
            )
            for h in handles:
                h.result(timeout=10)
            snap = engine.stats()["metrics"]
        assert snap["engine.slowkeyed.runs"] == 2
        assert snap.get("engine.dedup.coalesced", 0) == 0

    def test_scheduler_lifecycle_counters(self):
        variants = _alpha_variants()
        jobs = [ContainmentJob(v, _omq("q(x) :- P(x)")) for v in variants]
        with BatchEngine() as engine:
            engine.run_batch(jobs)
            engine.run_batch(jobs)  # warm: all four are cache hits now
            snap = engine.stats()["metrics"]
        assert snap["engine.scheduler.submitted"] == 8
        assert snap["engine.scheduler.dispatched"] == 1
        assert snap["engine.scheduler.completed"] == 8
        # Warm batch: within-batch dedup absorbs the duplicates before the
        # cache is consulted, so only the batch's first copy counts a hit.
        assert snap["engine.containment.cache_hits"] == 1
        assert snap["engine.dedup.coalesced"] == 6
        inflight = snap["engine.scheduler.inflight"]
        assert inflight["value"] == 0  # nothing left scheduled
        assert inflight["high_water"] == 1


class TestStreaming:
    def test_results_stream_in_completion_order(self):
        with BatchEngine(workers=2) as engine:
            slow = engine.submit(SleepJob(0.6, "slow"))
            fast = engine.submit(SleepJob(0.05, "fast"))
            order = [
                h.result().value
                for h in engine.as_completed([slow, fast], timeout=30)
            ]
        assert order == ["fast", "slow"]

    def test_first_result_arrives_before_batch_completes(self):
        # The acceptance criterion for `repro batch --stream`: a streamed
        # outcome is observable while other jobs are still running.
        with BatchEngine(workers=2) as engine:
            handles = engine.submit_batch(
                [SleepJob(0.8, "slow"), SleepJob(0.05, "fast")]
            )
            stream = engine.as_completed(handles, timeout=30)
            first = next(stream)
            assert first.result().value == "fast"
            assert not handles[0].done()  # the batch is NOT finished
            rest = [h.result().value for h in stream]
        assert rest == ["slow"]

    def test_stream_timeout_raises_with_stragglers_pending(self):
        with BatchEngine(workers=2) as engine:
            handles = engine.submit_batch([SleepJob(0.05), SleepJob(30.0)])
            stream = engine.as_completed(handles, timeout=0.5)
            next(stream)  # the fast one arrives fine
            with pytest.raises(TimeoutError):
                next(stream)

    def test_stream_covers_cached_and_coalesced_handles(self):
        variants = _alpha_variants()
        jobs = [ContainmentJob(v, _omq("q(x) :- P(x)")) for v in variants]
        with BatchEngine() as engine:
            handles = engine.submit_batch(jobs)
            seen = set()
            for h in engine.as_completed(handles, timeout=120):
                seen.add(id(h))
            assert seen == {id(h) for h in handles}


class TestCancellation:
    def test_cancel_pending_job(self):
        with BatchEngine() as engine:
            blocker = engine.submit(SleepJob(0.4, "blocker"))
            doomed = engine.submit(SleepJob(30.0, "doomed"))
            assert doomed.cancel()
            result = doomed.result(timeout=1)
            assert result.error == "cancelled"
            assert not result.ok
            assert blocker.result(timeout=10).value == "blocker"
            snap = engine.stats()["metrics"]
        assert snap["engine.scheduler.cancelled"] == 1

    def test_cancel_resolved_handle_returns_false(self):
        with BatchEngine() as engine:
            handle = engine.submit(SleepJob(0.01, "x"))
            handle.result(timeout=10)
            assert not handle.cancel()

    def test_cancelled_containment_degrades_to_unknown(self):
        with BatchEngine() as engine:
            blocker = engine.submit(SleepJob(0.4))
            doomed = engine.submit(
                ContainmentJob(_omq("q(x) :- T(x)"), _omq("q(x) :- P(x)"))
            )
            assert doomed.cancel()
            result = doomed.result(timeout=1)
            blocker.result(timeout=10)
        assert result.value.verdict is Verdict.UNKNOWN
        assert "cancelled" in result.value.detail

    def test_cancel_one_coalesced_handle_spares_the_others(self):
        with BatchEngine() as engine:
            first = engine.submit(_SlowKeyedJob("shared"))
            second = engine.submit(_SlowKeyedJob("shared"))
            assert second.cancel()
            assert second.result(timeout=1).error == "cancelled"
            # The primary handle still gets the real value.
            assert first.result(timeout=10).value == "value:shared"

    def test_cancelling_a_queued_flight_skips_the_pool(self):
        # A flight cancelled while still in the ready queue is retired
        # without the pool ever hearing about it: dispatched stays at 1.
        with BatchEngine(workers=1, max_inflight=1) as engine:
            blocker = engine.submit(SleepJob(0.3, "blocker"))
            doomed = engine.submit(SleepJob(30.0, "doomed"), priority="low")
            assert doomed.cancel()
            assert doomed.result(timeout=1).error == "cancelled"
            assert blocker.result(timeout=10).value == "blocker"
            snap = engine.stats()["metrics"]
        assert snap["engine.scheduler.dispatched"] == 1
        assert snap["engine.scheduler.cancelled"] == 1
        assert snap["engine.scheduler.priority.queued"]["value"] == 0
        assert snap["engine.scheduler.inflight"]["value"] == 0


class TestPriorityScheduling:
    """Class-based priorities, weighted fair share, and aging.

    Every test pins ``workers=1, max_inflight=1`` so exactly one flight
    occupies the dispatch window while the rest wait in the ready queue —
    with a single worker, completion order *is* dispatch order, which
    makes the scheduler's ranking directly observable.
    """

    def test_high_overtakes_queued_low_backlog(self):
        with BatchEngine(
            workers=1, max_inflight=1, aging_interval=None
        ) as engine:
            blocker = engine.submit(SleepJob(0.5, "blocker"))
            lows = [
                engine.submit(SleepJob(0.02, f"low{i}"), priority="low")
                for i in range(3)
            ]
            high = engine.submit(
                SleepJob(0.02, "high"), priority=Priority.HIGH
            )
            order = [
                h.result().value
                for h in engine.as_completed(
                    [blocker, *lows, high], timeout=60
                )
            ]
            snap = engine.stats()["metrics"]
        assert order[0] == "blocker"
        # HIGH jumps the whole LOW backlog; LOWs stay FIFO among equals.
        assert order[1] == "high"
        assert order[2:] == ["low0", "low1", "low2"]
        assert snap["engine.scheduler.priority.dispatched.high"] == 1
        assert snap["engine.scheduler.priority.dispatched.normal"] == 1
        assert snap["engine.scheduler.priority.dispatched.low"] == 3
        assert snap["engine.scheduler.priority.queued"]["value"] == 0
        assert "engine.scheduler.queue_wait" in snap

    def test_priority_spellings(self):
        with BatchEngine(workers=1, max_inflight=1) as engine:
            assert (
                engine.submit(SleepJob(0.0, "s"), priority="high")
                .result(timeout=10).value == "s"
            )
            assert (
                engine.submit(SleepJob(0.0, "i"), priority=2)
                .result(timeout=10).value == "i"
            )
            with pytest.raises(ValueError, match="urgent"):
                engine.submit(SleepJob(0.0), priority="urgent")

    def test_weighted_fair_share_between_submitters(self):
        # Stride scheduling: each dispatch charges the winner 1/weight on
        # its pass clock, so weight 2 earns two slots per weight-1 slot.
        with BatchEngine(
            workers=1, max_inflight=1, aging_interval=None
        ) as engine:
            engine.scheduler.set_weight("a", 2.0)
            blocker = engine.submit(SleepJob(0.5, "blocker"))
            handles = [
                engine.submit(SleepJob(0.01, f"a{i}"), submitter="a")
                for i in range(4)
            ] + [
                engine.submit(SleepJob(0.01, f"b{i}"), submitter="b")
                for i in range(4)
            ]
            order = [
                h.result().value
                for h in engine.as_completed([blocker] + handles, timeout=60)
            ]
        assert order[0] == "blocker"
        assert order[1:] == ["a0", "b0", "a1", "a2", "b1", "a3", "b2", "b3"]

    def test_equal_weights_alternate(self):
        with BatchEngine(
            workers=1, max_inflight=1, aging_interval=None
        ) as engine:
            blocker = engine.submit(SleepJob(0.5, "blocker"))
            handles = [
                engine.submit(SleepJob(0.01, f"a{i}"), submitter="a")
                for i in range(3)
            ] + [
                engine.submit(SleepJob(0.01, f"b{i}"), submitter="b")
                for i in range(3)
            ]
            order = [
                h.result().value
                for h in engine.as_completed([blocker] + handles, timeout=60)
            ]
        assert order[1:] == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_weight_must_be_positive(self):
        with BatchEngine(workers=1) as engine:
            with pytest.raises(ValueError, match="positive"):
                engine.scheduler.set_weight("a", 0.0)
            with pytest.raises(ValueError, match="positive"):
                engine.scheduler.set_weight("a", -1.0)

    def test_aging_rescues_a_starved_low_flight(self):
        # A LOW flight that has waited long enough is promoted one class
        # per aging_interval — here all the way to HIGH — so a later HIGH
        # submission cannot jump it (FIFO breaks the tie among equals).
        with BatchEngine(
            workers=1, max_inflight=1, aging_interval=0.05
        ) as engine:
            blocker = engine.submit(SleepJob(0.4, "blocker"))
            low = engine.submit(SleepJob(0.01, "low"), priority="low")
            time.sleep(0.25)
            high = engine.submit(SleepJob(0.01, "high"), priority="high")
            order = [
                h.result().value
                for h in engine.as_completed([blocker, low, high], timeout=60)
            ]
            snap = engine.stats()["metrics"]
        assert order == ["blocker", "low", "high"]
        assert snap["engine.scheduler.priority.aged"] >= 1
        # The aged LOW dispatch is accounted under its *effective* class.
        assert snap["engine.scheduler.priority.dispatched.high"] == 2

    def test_coalescing_promotes_a_queued_flight(self):
        # A HIGH rider attaching to a queued LOW flight promotes it: the
        # flight runs at the most urgent class anyone riding it asked for.
        with BatchEngine(
            workers=1, max_inflight=1, aging_interval=None
        ) as engine:
            blocker = engine.submit(SleepJob(0.5, "blocker"))
            other = engine.submit(
                _SlowKeyedJob("other", 0.01), priority="low"
            )
            shared = engine.submit(
                _SlowKeyedJob("shared", 0.01), priority="low"
            )
            rider = engine.submit(
                _SlowKeyedJob("shared", 0.01), priority="high"
            )
            order = [
                h.result().value
                for h in engine.as_completed(
                    [blocker, other, shared, rider], timeout=60
                )
            ]
            snap = engine.stats()["metrics"]
        # Without promotion "other" (earlier seq, same class) runs first.
        assert order == [
            "blocker", "value:shared", "value:shared", "value:other"
        ]
        assert snap["engine.dedup.coalesced"] == 1
        assert snap["engine.slowkeyed.runs"] == 2


class TestCoalescedOnto:
    """`JobHandle.coalesced_onto`: who a rider's computation belongs to."""

    def test_primary_handle_has_no_primary(self):
        with BatchEngine() as engine:
            handle = engine.submit(SleepJob(0.01, "x"))
            assert handle.coalesced_onto is None
            handle.result(timeout=10)

    def test_rider_points_at_the_primary(self):
        with BatchEngine() as engine:
            blocker = engine.submit(SleepJob(0.3, "blocker"))
            primary = engine.submit(_SlowKeyedJob("shared", 0.01))
            rider = engine.submit(_SlowKeyedJob("shared", 0.01))
            assert rider.coalesced_onto is primary
            assert primary.coalesced_onto is None
            # The link survives resolution (useful for post-hoc audit).
            rider.result(timeout=10)
            assert rider.coalesced_onto is primary
            blocker.result(timeout=10)

    def test_batch_attach_riders_point_at_their_primary(self):
        q = _alpha_variants()
        target = _omq("q(x) :- P(x)")
        with BatchEngine() as engine:
            handles = engine.submit_batch(
                [ContainmentJob(v, target) for v in q]
            )
            primary = handles[0]
            assert primary.coalesced_onto is None
            for rider in handles[1:]:
                assert rider.coalesced_onto is primary
            for h in handles:
                assert h.result(timeout=60).ok


class TestDeadlinePolicy:
    """Budgets: upfront degradation, in-flight expiry, EWMA estimates."""

    def test_budget_below_floor_degrades_immediately(self):
        with BatchEngine() as engine:
            handle = engine.submit(
                ContainmentJob(
                    _omq("q(x) :- R(x, y), P(y)"), _omq("q(x) :- P(x)")
                ),
                deadline=0.05,
            )
            # Resolved inline — no queueing, no pool dispatch.
            assert handle.done()
            result = handle.result(0)
            assert result.error == "deadline"
            assert result.value.verdict is Verdict.UNKNOWN
            snap = engine.stats()["metrics"]
        assert snap["engine.scheduler.deadline.degraded"] == 1
        assert snap.get("engine.containment.runs", 0) == 0
        assert snap.get("engine.scheduler.dispatched", 0) == 0

    def test_cheap_ladder_still_answers_under_any_budget(self):
        q1, q2 = _omq("q(x) :- R(x, y), P(y)"), _omq("q(x) :- P(x)")
        with BatchEngine() as engine:
            first = engine.submit(ContainmentJob(q1, q2))
            assert first.result(timeout=60).ok
            # A hopeless budget is irrelevant when the cache already
            # has the verdict: rung 2 answers before the policy is asked.
            again = engine.submit(ContainmentJob(q1, q2), deadline=0.001)
            result = again.result(timeout=1)
            assert result.cached
            assert result.error is None
            snap = engine.stats()["metrics"]
        assert "engine.scheduler.deadline.degraded" not in snap

    def test_generous_budget_runs_normally(self):
        with BatchEngine() as engine:
            handle = engine.submit(SleepJob(0.01, "fast"), deadline=30.0)
            result = handle.result(timeout=10)
            assert result.ok
            assert result.value == "fast"
            snap = engine.stats()["metrics"]
        assert "engine.scheduler.deadline.expired" not in snap

    def test_admitted_budget_expires_in_flight(self):
        # Sleep estimates start at the floor; a 0.3s budget admits the
        # job, but the 30s sleep blows it: the handle is abandoned with
        # the deadline result while the worker keeps going.
        with BatchEngine() as engine:
            blocker = engine.submit(SleepJob(0.2, "blocker"))
            doomed = engine.submit(SleepJob(30.0, "doomed"), deadline=0.3)
            result = doomed.result(timeout=5)
            assert result.error == "deadline"
            assert blocker.result(timeout=10).value == "blocker"
            snap = engine.stats()["metrics"]
        assert snap["engine.scheduler.deadline.expired"] == 1

    def test_ewma_learns_observed_durations(self):
        with BatchEngine() as engine:
            scheduler = engine.scheduler
            floor = scheduler.deadline_policy.floor_s
            assert scheduler.estimated_cost("sleep") == floor
            engine.submit(SleepJob(0.01, "a")).result(timeout=10)
            # Fast observations never pull the estimate below the floor.
            assert scheduler.estimated_cost("sleep") == floor
            scheduler._observe_cost("sleep", 10.0)
            assert scheduler.estimated_cost("sleep") > floor

    def test_estimate_gates_admission(self):
        from repro.engine import DeadlinePolicy

        with BatchEngine(
            deadline_policy=DeadlinePolicy(floor_s=0.01)
        ) as engine:
            scheduler = engine.scheduler
            scheduler._observe_cost("sleep", 5.0)
            # Budget below the learned estimate: refused upfront.
            refused = engine.submit(SleepJob(0.01, "x"), deadline=1.0)
            assert refused.done()
            assert refused.result(0).error == "deadline"
            # Budget above it: admitted and completed.
            admitted = engine.submit(SleepJob(0.01, "y"), deadline=30.0)
            assert admitted.result(timeout=10).value == "y"
