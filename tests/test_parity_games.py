"""Tests for the parity-game acceptance beyond the Ω ≡ 1 fragment.

The paper's automata all use priority 1 (finite runs only), but the
solver implements full parity acceptance via Zielonka; these tests pin the
general semantics (even self-loops accept, odd ones reject, mixed
priorities resolve by the maximum seen infinitely often).
"""

from repro.automata import TWAPA, Bottom, Top, box, conj, diamond, disj
from repro.trees import LabeledTree

TREE = LabeledTree({(): "a", (1,): "b", (1, 1): "c"})


def test_even_self_loop_accepts():
    def delta(state, label):
        return diamond(0, "loop")

    auto = TWAPA(frozenset({"loop"}), delta, "loop", {"loop": 0})
    assert auto.accepts(TREE)


def test_odd_self_loop_rejects():
    def delta(state, label):
        return diamond(0, "loop")

    auto = TWAPA(frozenset({"loop"}), delta, "loop", {"loop": 1})
    assert not auto.accepts(TREE)


def test_max_priority_wins_on_mixed_loop():
    # Alternate between priority-1 and priority-2 states: max = 2 (even).
    def delta(state, label):
        return diamond(0, "two" if state == "one" else "one")

    auto = TWAPA(
        frozenset({"one", "two"}), delta, "one", {"one": 1, "two": 2}
    )
    assert auto.accepts(TREE)


def test_max_priority_odd_loses():
    def delta(state, label):
        return diamond(0, "three" if state == "two" else "two")

    auto = TWAPA(
        frozenset({"two", "three"}), delta, "two", {"two": 2, "three": 3}
    )
    assert not auto.accepts(TREE)


def test_eve_escapes_odd_loop_when_possible():
    # Eve can choose: loop forever at priority 1, or jump to acceptance.
    def delta(state, label):
        if state == "start":
            return disj([diamond(0, "start"), diamond(0, "win")])
        return Top()

    auto = TWAPA(frozenset({"start", "win"}), delta, "start", {"start": 1})
    assert auto.accepts(TREE)


def test_adam_forces_odd_loop_when_possible():
    # Adam chooses between a rejecting loop and Eve's win: picks the loop.
    def delta(state, label):
        if state == "start":
            return conj([diamond(0, "trap")])
        return diamond(0, "trap")

    auto = TWAPA(frozenset({"start", "trap"}), delta, "start", {"trap": 1})
    assert not auto.accepts(TREE)


def test_buchi_style_infinitely_often():
    # Eve must revisit an even-priority "good" state infinitely often while
    # wandering a two-node tree; possible by bouncing root↔child.
    def delta(state, label):
        if state == "good":
            return disj([diamond("*", "move"), diamond(-1, "move")])
        return disj([diamond("*", "good"), diamond(-1, "good")])

    auto = TWAPA(
        frozenset({"good", "move"}), delta, "good", {"good": 2, "move": 1}
    )
    assert auto.accepts(LabeledTree({(): "a", (1,): "b"}))


def test_universal_branching_with_priorities():
    # Adam sends copies everywhere; each copy must still reach Top before
    # looping at odd priority — true only if every node carries the flag.
    def delta(state, label):
        if label == "ok":
            return conj([box("*", "check")])
        return Bottom()

    auto = TWAPA(frozenset({"check"}), delta, "check", {"check": 1})
    assert auto.accepts(LabeledTree({(): "ok", (1,): "ok"}))
    assert not auto.accepts(LabeledTree({(): "ok", (1,): "bad"}))


def test_complement_flips_parity_semantics():
    def delta(state, label):
        return diamond(0, "loop")

    even_loop = TWAPA(frozenset({"loop"}), delta, "loop", {"loop": 0})
    assert even_loop.accepts(TREE)
    assert not even_loop.complement().accepts(TREE)
    assert even_loop.complement().complement().accepts(TREE)
