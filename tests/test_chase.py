"""Unit tests for the chase engine and the guarded chase forest."""

import pytest

from repro.chase import (
    ChaseBudgetExceeded,
    GuardedChaseForest,
    chase,
    chase_terminates,
    certain_answers_via_chase,
)
from repro.core.atoms import atom, fact
from repro.core.homomorphism import find_homomorphism
from repro.core.instance import Instance
from repro.core.parser import parse_cq, parse_database, parse_tgds
from repro.core.terms import Constant, Variable

x, y = Variable("x"), Variable("y")


class TestBasicChase:
    def test_full_tgd_closure(self):
        sigma = parse_tgds("R(x, y) -> R(y, x)")
        db = parse_database("R(a, b)")
        result = chase(db, sigma)
        assert result.terminated
        assert fact("R", "b", "a") in result.instance

    def test_transitive_closure(self):
        sigma = parse_tgds("E(x, y), E(y, z) -> E(x, z)")
        db = parse_database("E(a, b). E(b, c). E(c, d).")
        result = chase(db, sigma)
        assert fact("E", "a", "d") in result.instance

    def test_existential_creates_null(self):
        sigma = parse_tgds("P(x) -> R(x, w)")
        db = parse_database("P(a)")
        result = chase(db, sigma)
        assert result.terminated
        nulls = result.instance.nulls()
        assert len(nulls) == 1

    def test_restricted_chase_reuses_witnesses(self):
        # R(a,b) already witnesses P(a) -> ∃w R(a,w): no new null.
        sigma = parse_tgds("P(x) -> R(x, w)")
        db = parse_database("P(a). R(a, b).")
        result = chase(db, sigma)
        assert not result.instance.nulls()

    def test_oblivious_chase_always_fires(self):
        sigma = parse_tgds("P(x) -> R(x, w)")
        db = parse_database("P(a). R(a, b).")
        result = chase(db, sigma, policy="oblivious")
        assert len(result.instance.nulls()) == 1

    def test_fact_tgd_fires_on_empty_database(self):
        sigma = parse_tgds("-> Bit(0)\n-> Bit(1)")
        result = chase(Instance.empty(), sigma)
        assert fact("Bit", "0") in result.instance
        assert fact("Bit", "1") in result.instance

    def test_original_atoms_preserved(self):
        sigma = parse_tgds("P(x) -> Q(x)")
        db = parse_database("P(a)")
        result = chase(db, sigma)
        assert db <= result.instance

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            chase(Instance.empty(), [], policy="bogus")


class TestSatisfaction:
    def test_result_satisfies_sigma(self):
        sigma = parse_tgds(
            """
            R(x, y) -> P(y)
            P(x) -> S(x, w)
            """
        )
        db = parse_database("R(a, b)")
        result = chase(db, sigma)
        for rule in sigma:
            from repro.core.homomorphism import homomorphisms

            for h in homomorphisms(rule.body, result.instance):
                frontier_fixed = {
                    v: h[v] for v in rule.frontier() if v in h
                }
                assert (
                    find_homomorphism(rule.head, result.instance, frontier_fixed)
                    is not None
                )

    def test_universality_on_small_case(self):
        # chase(D, Σ) maps homomorphically into any model of D ∪ Σ.
        sigma = parse_tgds("P(x) -> R(x, w)")
        db = parse_database("P(a)")
        result = chase(db, sigma)
        model = parse_database("P(a). R(a, a)")
        assert find_homomorphism(tuple(result.instance), model) is not None


class TestBudgetsAndTermination:
    def test_nonterminating_raises(self):
        sigma = parse_tgds("R(x, y) -> R(y, w)")
        db = parse_database("R(a, b)")
        with pytest.raises(ChaseBudgetExceeded) as err:
            chase(db, sigma, max_steps=20)
        assert not err.value.partial.terminated
        assert len(err.value.partial.instance) > 1

    def test_partial_mode_returns(self):
        sigma = parse_tgds("R(x, y) -> R(y, w)")
        db = parse_database("R(a, b)")
        result = chase(db, sigma, max_steps=20, partial=True)
        assert not result.terminated

    def test_chase_terminates_predicate(self):
        terminating = parse_tgds("P(x) -> Q(x)")
        looping = parse_tgds("R(x, y) -> R(y, w)")
        assert chase_terminates(parse_database("P(a)"), terminating)
        assert not chase_terminates(
            parse_database("R(a, b)"), looping, max_steps=20
        )

    def test_max_depth_truncates(self):
        sigma = parse_tgds("R(x, y) -> R(y, w)")
        db = parse_database("R(a, b)")
        result = chase(db, sigma, max_depth=3)
        assert result.terminated is True
        assert max(result.levels.values()) <= 3

    def test_levels_track_null_depth(self):
        sigma = parse_tgds("R(x, y) -> R(y, w)")
        db = parse_database("R(a, b)")
        result = chase(db, sigma, max_depth=2)
        depths = sorted(
            result.levels[n] for n in result.instance.nulls()
        )
        assert depths == [1, 2]


class TestCertainAnswers:
    def test_certain_answers_via_chase(self):
        sigma = parse_tgds("Prof(x) -> Teaches(x, w)")
        db = parse_database("Prof(ann)")
        q = parse_cq("q(x) :- Teaches(x, y)")
        answers = certain_answers_via_chase(q, db, sigma)
        assert answers == {(Constant("ann"),)}

    def test_nulls_not_reported(self):
        sigma = parse_tgds("Prof(x) -> Teaches(x, w)")
        db = parse_database("Prof(ann)")
        q = parse_cq("q(y) :- Teaches(x, y)")
        assert certain_answers_via_chase(q, db, sigma) == set()


class TestGuardedChaseForest:
    def test_forest_roots_are_facts(self):
        sigma = parse_tgds("P(x) -> R(x, w)")
        db = parse_database("P(a). P(b).")
        forest = GuardedChaseForest.build(db, sigma)
        assert {str(r.atom) for r in forest.roots} == {"P(a)", "P(b)"}

    def test_forest_depth(self):
        sigma = parse_tgds(
            """
            P(x) -> R(x, w)
            R(x, y) -> S(y, w)
            """
        )
        db = parse_database("P(a)")
        forest = GuardedChaseForest.build(db, sigma)
        assert forest.max_depth() == 2

    def test_atoms_up_to_depth(self):
        sigma = parse_tgds(
            """
            P(x) -> R(x, w)
            R(x, y) -> S(y, w)
            """
        )
        db = parse_database("P(a)")
        forest = GuardedChaseForest.build(db, sigma)
        level0 = forest.atoms_up_to_depth(0)
        assert level0 == db
        level1 = forest.atoms_up_to_depth(1)
        assert len(level1) == 2

    def test_subtree(self):
        sigma = parse_tgds(
            """
            P(x) -> R(x, w)
            R(x, y) -> S(y, w)
            """
        )
        db = parse_database("P(a)")
        forest = GuardedChaseForest.build(db, sigma)
        subtree = forest.subtree_atoms(fact("P", "a"))
        assert len(subtree) == 3
