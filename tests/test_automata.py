"""Tests for the 2WAPA machinery, C_{S,l}, and the query automaton."""

import pytest

from repro.automata import (
    TWAPA,
    Bottom,
    Top,
    box,
    conj,
    consistency_automaton,
    diamond,
    disj,
    enumerate_trees,
    find_accepted_tree,
    is_empty_bounded,
    query_automaton,
    UnsupportedQueryError,
)
from repro.core.parser import parse_cq, parse_database
from repro.core.terms import Constant
from repro.trees import LabeledTree, decode_tree, encode_ctree, is_consistent
from repro.trees.ctree import Alphabet, TreeLabel


def simple_automaton(target_label: str) -> TWAPA:
    """Accepts trees containing *target_label* somewhere."""

    def delta(state, label):
        if label == target_label:
            return Top()
        return disj([diamond("*", "seek")])

    return TWAPA(frozenset({"seek"}), delta, "seek", {}, name=f"find[{target_label}]")


def all_labels_automaton(required: str) -> TWAPA:
    """Accepts trees in which *every* node bears *required*."""

    def delta(state, label):
        if label != required:
            return Bottom()
        return box("*", "all")

    return TWAPA(frozenset({"all"}), delta, "all", {}, name=f"all[{required}]")


class TestTWAPABasics:
    def test_existential_search(self):
        auto = simple_automaton("hit")
        assert auto.accepts(LabeledTree({(): "hit"}))
        assert auto.accepts(LabeledTree({(): "x", (1,): "hit"}))
        assert auto.accepts(LabeledTree({(): "x", (1,): "y", (1, 1): "hit"}))
        assert not auto.accepts(LabeledTree({(): "x", (1,): "y"}))

    def test_universal_check(self):
        auto = all_labels_automaton("ok")
        assert auto.accepts(LabeledTree({(): "ok", (1,): "ok"}))
        assert not auto.accepts(LabeledTree({(): "ok", (1,): "bad"}))

    def test_infinite_wander_rejected(self):
        # A state that only moves without accepting must reject (Ω ≡ 1).
        def delta(state, label):
            return disj([diamond("*", "loop"), diamond(-1, "loop")])

        auto = TWAPA(frozenset({"loop"}), delta, "loop", {})
        assert not auto.accepts(LabeledTree({(): "a", (1,): "b"}))

    def test_parent_move(self):
        # Go down to a child, then check the parent's label from below.
        def delta(state, label):
            if state == "start":
                return diamond("*", "up")
            if state == "up":
                return diamond(-1, "check")
            return Top() if label == "root" else Bottom()

        auto = TWAPA(frozenset({"start", "up", "check"}), delta, "start", {})
        assert auto.accepts(LabeledTree({(): "root", (1,): "c"}))
        assert not auto.accepts(LabeledTree({(): "other", (1,): "c"}))

    def test_parent_at_root_fails_existentially(self):
        def delta(state, label):
            return diamond(-1, state)

        auto = TWAPA(frozenset({"s"}), delta, "s", {})
        assert not auto.accepts(LabeledTree({(): "a"}))

    def test_box_vacuous_on_leaf(self):
        def delta(state, label):
            return box("*", state)

        auto = TWAPA(frozenset({"s"}), delta, "s", {})
        # Infinite descent impossible on a finite tree: box succeeds at
        # the leaves, so the single-node tree is accepted vacuously.
        assert auto.accepts(LabeledTree({(): "x"}))

    def test_empty_tree_rejected(self):
        auto = simple_automaton("hit")
        assert not auto.accepts(LabeledTree({}))


class TestBooleanOperations:
    def test_intersection(self):
        both = simple_automaton("a").intersect(simple_automaton("b"))
        assert both.accepts(LabeledTree({(): "a", (1,): "b"}))
        assert not both.accepts(LabeledTree({(): "a", (1,): "a"}))

    def test_complement(self):
        never_hit = simple_automaton("hit").complement()
        assert never_hit.accepts(LabeledTree({(): "x"}))
        assert not never_hit.accepts(LabeledTree({(): "hit"}))

    def test_complement_of_complement(self):
        auto = simple_automaton("hit").complement().complement()
        assert auto.accepts(LabeledTree({(): "hit"}))
        assert not auto.accepts(LabeledTree({(): "x"}))

    def test_intersection_with_complement_is_difference(self):
        diff = simple_automaton("a").intersect(simple_automaton("b").complement())
        assert diff.accepts(LabeledTree({(): "a"}))
        assert not diff.accepts(LabeledTree({(): "a", (1,): "b"}))


class TestBoundedEmptiness:
    def test_enumerate_trees_counts(self):
        trees = list(enumerate_trees(["a"], max_depth=1, max_branching=2))
        # Shapes: single node, one child, two children.
        assert len(trees) == 3

    def test_enumeration_grows_with_labels(self):
        trees = list(enumerate_trees(["a", "b"], max_depth=1, max_branching=1))
        # Shapes: 1 node (2 labelings) + 2 nodes (4 labelings).
        assert len(trees) == 6

    def test_find_accepted_tree(self):
        auto = simple_automaton("hit")
        tree = find_accepted_tree(auto, ["x", "hit"], max_depth=1, max_branching=1)
        assert tree is not None
        assert any(lab == "hit" for lab in tree.labels.values())

    def test_bounded_emptiness(self):
        auto = simple_automaton("hit")
        assert is_empty_bounded(auto, ["x", "y"], max_depth=2, max_branching=2)
        assert not is_empty_bounded(auto, ["x", "hit"], max_depth=1, max_branching=1)


class TestConsistencyAutomaton:
    def _encoded(self, db_text, core_names):
        db = parse_database(db_text)
        core = db.induced_by({Constant(n) for n in core_names})
        return encode_ctree(db, core)

    def test_accepts_real_encodings(self):
        tree, alphabet = self._encoded("R(a, b). R(b, c). R(c, d)", {"a", "b"})
        auto = consistency_automaton(alphabet)
        assert auto.accepts(tree)

    def test_rejects_tampered_encoding(self):
        tree, alphabet = self._encoded("R(a, b). R(b, c)", {"a", "b"})
        auto = consistency_automaton(alphabet)

        def strip_core(node, label):
            return TreeLabel(label.names, frozenset(), label.atoms)

        tampered = tree.relabel(strip_core)
        assert not auto.accepts(tampered)

    def test_rejects_unguarded_node(self):
        tree, alphabet = self._encoded("R(a, b). R(b, c)", {"a", "b"})
        auto = consistency_automaton(alphabet)

        def drop_atoms(node, label):
            if node == ():
                return label
            return TreeLabel(label.names, label.core_names, frozenset())

        tampered = tree.relabel(drop_atoms)
        assert not auto.accepts(tampered)

    def test_agrees_with_direct_checker(self):
        tree, alphabet = self._encoded(
            "R(a, b). R(b, c). R(b, d). P(d)", {"a", "b"}
        )
        auto = consistency_automaton(alphabet)
        assert auto.accepts(tree) == is_consistent(tree, alphabet)


class TestQueryAutomaton:
    def _encoded(self, db_text, core_names):
        db = parse_database(db_text)
        core = db.induced_by({Constant(n) for n in core_names})
        return encode_ctree(db, core)

    @pytest.mark.parametrize(
        "query_text, db_text, expected",
        [
            ("q() :- R(x, y)", "R(a, b). R(b, c)", True),
            ("q() :- P(x)", "R(a, b). R(b, c)", False),
            ("q() :- R(x, x)", "R(a, b). R(b, c)", False),
            ("q() :- R(x, y), P(z)", "R(a, b). R(b, c). P(d). R(b, d)", True),
            ("q() :- R(x, y), P(z)", "R(a, b). R(b, c)", False),
        ],
    )
    def test_matches_direct_evaluation(self, query_text, db_text, expected):
        query = parse_cq(query_text)
        tree, alphabet = self._encoded(db_text, {"a", "b"})
        auto = query_automaton(query, alphabet)
        assert auto.accepts(tree) is expected
        # Cross-validate against decoding + direct evaluation.
        decoded, _ = decode_tree(tree, alphabet)
        assert bool(query.evaluate(decoded)) is expected

    def test_join_variables_rejected(self):
        query = parse_cq("q() :- R(x, y), P(y)")
        _, alphabet = self._encoded("R(a, b)", {"a", "b"})
        with pytest.raises(UnsupportedQueryError):
            query_automaton(query, alphabet)

    def test_non_boolean_rejected(self):
        query = parse_cq("q(x) :- R(x, y)")
        _, alphabet = self._encoded("R(a, b)", {"a", "b"})
        with pytest.raises(UnsupportedQueryError):
            query_automaton(query, alphabet)

    def test_intersection_with_consistency(self):
        # The Proposition-25 shape: C ∩ A_{q} accepts consistent trees
        # whose decoding satisfies q.
        query = parse_cq("q() :- R(x, y)")
        tree, alphabet = self._encoded("R(a, b). R(b, c)", {"a", "b"})
        product = consistency_automaton(alphabet).intersect(
            query_automaton(query, alphabet)
        )
        assert product.accepts(tree)
