"""Unit tests for OMQ evaluation (Eval(C, Q))."""

import pytest

from repro import OMQ, Schema, parse_cq, parse_database, parse_tgds
from repro.core.omq import OMQError
from repro.core.terms import Constant
from repro.evaluation import certain_answer, evaluate_omq


def omq(schema, rules, query):
    return OMQ(Schema(schema), parse_tgds(rules), parse_cq(query))


def names(answers):
    return {tuple(t.name for t in tup) for tup in answers}


class TestStrategies:
    def test_non_recursive_uses_chase(self):
        q = omq({"A": 1}, "A(x) -> B(x)\nB(x) -> C(x)", "q(x) :- C(x)")
        result = evaluate_omq(q, parse_database("A(a)"))
        assert result.exact
        assert result.method == "chase"
        assert names(result.answers) == {("a",)}

    def test_linear_recursive_uses_rewriting(self):
        q = omq(
            {"P": 1, "T": 1},
            "P(x) -> R(x, w)\nR(x, y) -> P(y)\nT(x) -> P(x)",
            "q(x) :- P(x)",
        )
        result = evaluate_omq(q, parse_database("T(a)"))
        assert result.exact
        assert result.method == "rewriting"
        assert names(result.answers) == {("a",)}

    def test_forced_methods_agree(self):
        q = omq({"A": 1}, "A(x) -> B(x)", "q(x) :- B(x)")
        db = parse_database("A(a). A(b)")
        by_chase = evaluate_omq(q, db, method="chase")
        by_rewriting = evaluate_omq(q, db, method="rewriting")
        assert by_chase.answers == by_rewriting.answers

    def test_bounded_chase_is_sound(self):
        q = omq(
            {"P": 1},
            "P(x) -> R(x, w)\nR(x, y) -> R(y, w)",
            "q(x) :- R(x, y)",
        )
        result = evaluate_omq(q, parse_database("P(a)"), method="bounded-chase")
        assert names(result.answers) == {("a",)}

    def test_unknown_method_rejected(self):
        q = omq({"A": 1}, "", "q(x) :- A(x)")
        with pytest.raises(ValueError):
            evaluate_omq(q, parse_database("A(a)"), method="magic")

    def test_database_schema_validated(self):
        q = omq({"A": 1}, "", "q(x) :- A(x)")
        with pytest.raises(OMQError):
            evaluate_omq(q, parse_database("Z(a)"))


class TestSemantics:
    def test_certain_answers_are_cautious(self):
        # R(a,⊥) gives no constant answer for the second position.
        q = omq({"P": 1}, "P(x) -> R(x, w)", "q(y) :- R(x, y)")
        result = evaluate_omq(q, parse_database("P(a)"))
        assert result.answers == set()

    def test_boolean_query(self):
        q = omq({"P": 1}, "P(x) -> R(x, w)", "q() :- R(x, y)")
        assert certain_answer(q, parse_database("P(a)"))
        assert not certain_answer(q, parse_database("P(a)").restrict_to_predicates([]))

    def test_monotonicity(self):
        q = omq({"A": 1, "B": 1}, "A(x) -> C(x)\nB(x) -> C(x)", "q(x) :- C(x)")
        small = parse_database("A(a)")
        big = parse_database("A(a). B(b)")
        assert evaluate_omq(q, small).answers <= evaluate_omq(q, big).answers

    def test_query_over_ontology_predicates(self):
        # The query may use predicates not in S (enriched schema).
        q = omq({"Emp": 1}, "Emp(x) -> Person(x)", "q(x) :- Person(x)")
        result = evaluate_omq(q, parse_database("Emp(e)"))
        assert names(result.answers) == {("e",)}

    def test_data_predicate_enriched_by_ontology(self):
        # Tgds may write into data-schema predicates too.
        q = omq({"A": 1, "B": 1}, "A(x) -> B(x)", "q(x) :- B(x)")
        result = evaluate_omq(q, parse_database("A(a). B(b)"))
        assert names(result.answers) == {("a",), ("b",)}

    def test_guarded_auto_fallback(self):
        # Guarded, recursive, non-rewritable within small budgets.
        q = omq(
            {"E": 2, "S": 1},
            "E(x, y), S(x) -> S(y)",
            "q(x) :- S(x)",
        )
        db = parse_database("E(a, b). E(b, c). S(a)")
        result = evaluate_omq(q, db)
        assert names(result.answers) == {("a",), ("b",), ("c",)}
