"""Kernel benchmark: delta vs naive chase, and cost vs greedy join planning.

Two claims are measured, each against the in-repo baseline that preceded
it, with canonical-output identity asserted before any timing is trusted:

* **delta vs naive** — the semi-naive chase over the kernel's
  :class:`~repro.kernel.WorkingInstance` windows against the pre-kernel
  re-enumerating chase, on the largest linear and guarded workloads;
* **cost vs greedy planning** — the cost-based join-order planner
  (:mod:`repro.kernel.plan`) against the seed's syntax-driven greedy
  ordering: no regression on the linear/guarded chase workloads (they are
  low-skew; the gate is "within 5%"), a required win on the
  ``skewed_join`` family (a huge binary relation joined with a tiny
  high-arity one — the shape where fewest-unbound-first picks the huge
  relation first), and a plan-cache hit-rate check on a repeated-batch
  scenario (the same OMQ evaluated over the same database again and
  again, as the batch engine does).

Planned-vs-greedy *output parity* is additionally asserted across every
random-OMQ generator fragment (step-identical chase runs), so a planner
bug cannot hide behind a fast wrong answer.

Run as a script — not through pytest::

    PYTHONPATH=src python benchmarks/bench_kernel.py          # full
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick  # CI smoke

Writes ``BENCH_kernel.json`` (see ``--out``) with per-workload timings,
speedups, step counts, and kernel counter deltas.  ``--trace-out PATH``
re-runs one untimed pass of each chase workload under ``obs`` tracing and
writes the per-phase Chrome trace there (the CI ``perf-profile`` artifact).
Exits non-zero if outputs diverge, a speedup falls below its floor
(relaxed in ``--quick`` mode: CI boxes are noisy; ratio claims are made by
the full run), or the repeated-batch plan-cache hit rate is zero (enforced
in both modes).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro import obs  # noqa: E402
from repro.chase.engine import chase  # noqa: E402
from repro.core.atoms import atom, fact  # noqa: E402
from repro.core.instance import Instance  # noqa: E402
from repro.core.terms import Variable  # noqa: E402
from repro.engine.canon import hash_instance  # noqa: E402
from repro.evaluation import evaluate_omq  # noqa: E402
from repro.generators.databases import chain_database, random_database  # noqa: E402
from repro.generators.ontologies import (  # noqa: E402
    guarded_reachability,
    linear_chain,
)
from repro.generators.random_omqs import FRAGMENTS, random_omq  # noqa: E402
from repro.kernel import (  # noqa: E402
    KERNEL_METRICS,
    WorkingInstance,
    compiled_search,
    kernel_snapshot,
    use_planner,
)
from repro.kernel.plan import COST, GREEDY  # noqa: E402
from repro.obs.export import write_chrome_trace  # noqa: E402


def linear_workload(length: int, chain: int):
    """Inclusion chain of *length* hops over a *chain*-edge database."""
    omq = linear_chain(length)
    return f"linear_chain_{length}_db{chain}", chain_database("R_0", chain), omq.sigma


def guarded_workload(chain: int):
    """Guarded reachability seeded at one end of a *chain*-edge path."""
    omq = guarded_reachability()
    atoms = list(chain_database("E", chain).atoms) + [fact("S", "n0")]
    return f"guarded_reach_db{chain}", Instance.of(atoms), omq.sigma


def skewed_instance(n_big: int, n_wide: int) -> WorkingInstance:
    """The planner's target family: huge binary × tiny 4-ary relation.

    ``Big`` has *n_big* facts whose second column is low-cardinality;
    ``Wide`` has *n_wide* facts sharing ``Big``'s join column.  The greedy
    ordering (fewest unbound slots first) starts at ``Big`` and scans it
    whole; the cost planner starts at ``Wide`` and drives the join through
    the positional index.
    """
    atoms = [fact("Big", f"a{i}", f"b{i % 5}") for i in range(n_big)]
    atoms += [
        fact("Wide", f"a{i * (n_big // max(n_wide, 1))}", f"p{i}", f"q{i}", f"r{i}")
        for i in range(n_wide)
    ]
    return WorkingInstance(atoms)


SKEWED_BODY = (
    atom("Big", Variable("x"), Variable("y")),
    atom(
        "Wide", Variable("x"), Variable("w1"), Variable("w2"), Variable("w3")
    ),
)


def time_chase(db, sigma, strategy: str, repeats: int, planner: str = GREEDY):
    """Best-of-*repeats* wall time plus the (identical) chase result."""
    best = float("inf")
    result = None
    with use_planner(planner):
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = chase(db, sigma, strategy=strategy, max_steps=1_000_000)
            best = min(best, time.perf_counter() - t0)
    return best, result


def run_chase_workload(name, db, sigma, repeats: int):
    """Delta-vs-naive and cost-vs-greedy timings for one chase workload."""
    naive_s, naive = time_chase(db, sigma, "naive", repeats)
    greedy_s, greedy = time_chase(db, sigma, "delta", repeats, planner=GREEDY)
    KERNEL_METRICS.reset()
    cost_s, planned = time_chase(db, sigma, "delta", repeats, planner=COST)
    counters = kernel_snapshot()
    naive_hash = hash_instance(naive.instance)
    planned_hash = hash_instance(planned.instance)
    row = {
        "workload": name,
        "db_atoms": len(db.atoms),
        "chase_atoms": len(planned.instance.atoms),
        "steps": planned.steps,
        "naive_s": round(naive_s, 6),
        "delta_greedy_s": round(greedy_s, 6),
        "delta_cost_s": round(cost_s, 6),
        "speedup": round(naive_s / cost_s, 2) if cost_s else float("inf"),
        "planner_ratio": round(greedy_s / cost_s, 3) if cost_s else float("inf"),
        "outputs_identical": naive_hash == planned_hash
        and naive.instance == planned.instance
        and naive.steps == planned.steps == greedy.steps
        and planned.log == greedy.log,
        "instance_hash": planned_hash,
        "kernel_counters": {
            k: v for k, v in counters.items() if isinstance(v, int)
        },
    }
    return row


def run_skewed_workload(n_big: int, n_wide: int, repeats: int):
    """Full join enumeration under each planner over the skewed family."""
    work = skewed_instance(n_big, n_wide)
    search = compiled_search(SKEWED_BODY)
    results = {}
    timings = {}
    for mode in (GREEDY, COST):
        best = float("inf")
        with use_planner(mode):
            for _ in range(repeats):
                t0 = time.perf_counter()
                hits = sorted(
                    tuple(sorted((str(k), str(v)) for k, v in h.items()))
                    for h in search.search(work)
                )
                best = min(best, time.perf_counter() - t0)
        results[mode] = hits
        timings[mode] = best
    return {
        "workload": f"skewed_join_big{n_big}_wide{n_wide}",
        "db_atoms": len(work),
        "matches": len(results[COST]),
        "greedy_s": round(timings[GREEDY], 6),
        "cost_s": round(timings[COST], 6),
        "planner_speedup": round(timings[GREEDY] / timings[COST], 2)
        if timings[COST]
        else float("inf"),
        "outputs_identical": results[GREEDY] == results[COST],
    }


def run_repeated_batch(repeats: int):
    """The plan-cache scenario: one OMQ evaluated over one database N times.

    This is the batch engine's steady state — same bodies, same statistics
    regime — so after the first evaluation every join order must come from
    the plan cache.  Reports the cost-planner hit rate.
    """
    rng = random.Random(20_18)
    omq = random_omq("linear", rng, n_rules=4, n_query_atoms=3)
    db = random_database(omq.data_schema, 8, 30, seed=4)
    repro.clear_caches()
    answers = None
    with use_planner(COST):
        for _ in range(repeats):
            got = evaluate_omq(omq, db).answers
            assert answers is None or got == answers
            answers = got
    snap = KERNEL_METRICS.snapshot()
    hits = snap.get("kernel.plan.hits", 0)
    misses = snap.get("kernel.plan.misses", 0)
    return {
        "workload": f"repeated_batch_x{repeats}",
        "plan_hits": hits,
        "plan_misses": misses,
        "plan_hit_rate": round(hits / (hits + misses), 4)
        if hits + misses
        else 0.0,
    }


def run_fragment_parity(trials: int):
    """Step-identical planned-vs-greedy chase across every generator family."""
    rows = []
    for fragment in FRAGMENTS:
        rng = random.Random(sum(map(ord, fragment)))
        identical = True
        for trial in range(trials):
            omq = random_omq(fragment, rng)
            db = random_database(omq.data_schema, 5, 12, seed=trial)
            repro.clear_caches()
            with use_planner(COST):
                planned = chase(db, omq.sigma, max_steps=20_000)
            repro.clear_caches()
            with use_planner(GREEDY):
                greedy = chase(db, omq.sigma, max_steps=20_000)
            identical = (
                identical
                and planned.steps == greedy.steps
                and planned.log == greedy.log
                and planned.instance == greedy.instance
            )
        rows.append(
            {"fragment": fragment, "trials": trials, "step_identical": identical}
        )
    return rows


def write_trace(workloads, path: str) -> None:
    """One untimed traced pass per chase workload → Chrome trace JSON."""
    obs.drain()
    with obs.tracing("always"):
        for name, db, sigma in workloads:
            with obs.span("bench.workload", workload=name):
                with use_planner(COST):
                    chase(db, sigma, strategy="delta", max_steps=1_000_000)
    write_chrome_trace(obs.drain(), path)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small workloads, one repeat, no speedup floors (CI smoke)",
    )
    parser.add_argument(
        "--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_kernel.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="fail below this delta-vs-naive ratio (full mode only)",
    )
    parser.add_argument(
        "--min-plan-speedup", type=float, default=1.5,
        help="fail below this cost-vs-greedy ratio on the skewed family "
        "(full mode only)",
    )
    parser.add_argument(
        "--max-plan-regression", type=float, default=0.95,
        help="fail if cost planning is slower than greedy by more than this "
        "factor on the chase workloads (full mode only)",
    )
    parser.add_argument(
        "--trace-out", default=None,
        help="also write a Chrome trace of one traced pass per workload",
    )
    args = parser.parse_args(argv)

    if args.quick:
        workloads = [
            linear_workload(8, 20),
            guarded_workload(60),
        ]
        skewed = (4_000, 6)
        repeats, floor = 1, 1.0
        plan_floor, regression_floor = 1.0, 0.0
        batch_repeats, parity_trials = 4, 1
    else:
        workloads = [
            linear_workload(16, 40),
            guarded_workload(150),
        ]
        skewed = (40_000, 8)
        repeats, floor = 3, args.min_speedup
        plan_floor, regression_floor = (
            args.min_plan_speedup,
            args.max_plan_regression,
        )
        batch_repeats, parity_trials = 6, 3

    rows = [run_chase_workload(*w, repeats=repeats) for w in workloads]
    skewed_row = run_skewed_workload(*skewed, repeats=repeats)
    batch_row = run_repeated_batch(batch_repeats)
    parity_rows = run_fragment_parity(parity_trials)
    report = {
        "benchmark": "bench_kernel",
        "mode": "quick" if args.quick else "full",
        "repeats": repeats,
        "min_speedup": floor,
        "min_plan_speedup": plan_floor,
        "max_plan_regression": regression_floor,
        "workloads": rows,
        "skewed": skewed_row,
        "repeated_batch": batch_row,
        "fragment_parity": parity_rows,
    }
    Path(args.out).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    ok = True
    for row in rows:
        status = "ok"
        if not row["outputs_identical"]:
            status, ok = "OUTPUT MISMATCH", False
        elif row["speedup"] < floor:
            status, ok = f"speedup < {floor}", False
        elif row["planner_ratio"] < regression_floor:
            status, ok = f"cost regressed > {regression_floor}", False
        print(
            f"{row['workload']:>28}: naive {row['naive_s']*1000:8.1f} ms  "
            f"delta/greedy {row['delta_greedy_s']*1000:7.1f} ms  "
            f"delta/cost {row['delta_cost_s']*1000:7.1f} ms  "
            f"speedup {row['speedup']:6.1f}x  [{status}]"
        )

    status = "ok"
    if not skewed_row["outputs_identical"]:
        status, ok = "OUTPUT MISMATCH", False
    elif skewed_row["planner_speedup"] < plan_floor:
        status, ok = f"plan speedup < {plan_floor}", False
    print(
        f"{skewed_row['workload']:>28}: greedy {skewed_row['greedy_s']*1000:8.1f} ms  "
        f"cost {skewed_row['cost_s']*1000:7.1f} ms  "
        f"speedup {skewed_row['planner_speedup']:6.1f}x  [{status}]"
    )

    status = "ok"
    if batch_row["plan_hit_rate"] <= 0.0:
        # Enforced in every mode: this is the CI perf-profile guard.
        status, ok = "plan cache never hit", False
    print(
        f"{batch_row['workload']:>28}: hits {batch_row['plan_hits']:5d}  "
        f"misses {batch_row['plan_misses']:5d}  "
        f"hit rate {batch_row['plan_hit_rate']:.2%}  [{status}]"
    )

    for row in parity_rows:
        status = "ok" if row["step_identical"] else "PARITY MISMATCH"
        ok = ok and row["step_identical"]
        print(
            f"{'parity ' + row['fragment']:>28}: {row['trials']} trial(s)  [{status}]"
        )

    if args.trace_out:
        write_trace(workloads, args.trace_out)
        print(f"chrome trace written to {args.trace_out}")
    print(f"report written to {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
