"""Kernel benchmark: delta-driven vs naive chase trigger discovery.

Measures the restricted chase under ``strategy="naive"`` (the pre-kernel
algorithm: every round re-enumerates every rule body over the whole
instance) against ``strategy="delta"`` (semi-naive discovery over the
kernel's :class:`~repro.kernel.WorkingInstance` windows) on the largest
linear and guarded workloads, asserting canonically identical outputs
(``hash_instance``) before trusting any timing.

Run as a script — not through pytest::

    PYTHONPATH=src python benchmarks/bench_kernel.py          # full
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick  # CI smoke

Writes ``BENCH_kernel.json`` (see ``--out``) with per-workload timings,
speedups, step counts, and the kernel counter deltas of the delta run.
Exits non-zero if any workload's outputs diverge or its speedup falls
below ``--min-speedup`` (relaxed to 1.0 in ``--quick`` mode: CI boxes are
noisy; the ratio claim is made by the full run).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.chase.engine import chase  # noqa: E402
from repro.core.atoms import fact  # noqa: E402
from repro.core.instance import Instance  # noqa: E402
from repro.engine.canon import hash_instance  # noqa: E402
from repro.generators.databases import chain_database  # noqa: E402
from repro.generators.ontologies import (  # noqa: E402
    guarded_reachability,
    linear_chain,
)
from repro.kernel import KERNEL_METRICS, kernel_snapshot  # noqa: E402


def linear_workload(length: int, chain: int):
    """Inclusion chain of *length* hops over a *chain*-edge database."""
    omq = linear_chain(length)
    return f"linear_chain_{length}_db{chain}", chain_database("R_0", chain), omq.sigma


def guarded_workload(chain: int):
    """Guarded reachability seeded at one end of a *chain*-edge path."""
    omq = guarded_reachability()
    atoms = list(chain_database("E", chain).atoms) + [fact("S", "n0")]
    return f"guarded_reach_db{chain}", Instance.of(atoms), omq.sigma


def time_chase(db, sigma, strategy: str, repeats: int):
    """Best-of-*repeats* wall time plus the (identical) chase result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = chase(db, sigma, strategy=strategy, max_steps=1_000_000)
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_workload(name, db, sigma, repeats: int):
    naive_s, naive = time_chase(db, sigma, "naive", repeats)
    KERNEL_METRICS.reset()
    delta_s, delta = time_chase(db, sigma, "delta", repeats)
    counters = kernel_snapshot()
    naive_hash = hash_instance(naive.instance)
    delta_hash = hash_instance(delta.instance)
    row = {
        "workload": name,
        "db_atoms": len(db.atoms),
        "chase_atoms": len(delta.instance.atoms),
        "steps": delta.steps,
        "naive_s": round(naive_s, 6),
        "delta_s": round(delta_s, 6),
        "speedup": round(naive_s / delta_s, 2) if delta_s else float("inf"),
        "outputs_identical": naive_hash == delta_hash
        and naive.instance == delta.instance
        and naive.steps == delta.steps,
        "instance_hash": delta_hash,
        "kernel_counters": {
            k: v for k, v in counters.items() if isinstance(v, int)
        },
    }
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small workloads, one repeat, no speedup floor (CI smoke)",
    )
    parser.add_argument(
        "--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_kernel.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="fail below this delta-vs-naive ratio (full mode only)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        workloads = [
            linear_workload(8, 20),
            guarded_workload(60),
        ]
        repeats, floor = 1, 1.0
    else:
        workloads = [
            linear_workload(16, 40),
            guarded_workload(150),
        ]
        repeats, floor = 3, args.min_speedup

    rows = [run_workload(*w, repeats=repeats) for w in workloads]
    report = {
        "benchmark": "bench_kernel",
        "mode": "quick" if args.quick else "full",
        "repeats": repeats,
        "min_speedup": floor,
        "workloads": rows,
    }
    Path(args.out).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    ok = True
    for row in rows:
        status = "ok"
        if not row["outputs_identical"]:
            status, ok = "OUTPUT MISMATCH", False
        elif row["speedup"] < floor:
            status, ok = f"speedup < {floor}", False
        print(
            f"{row['workload']:>28}: naive {row['naive_s']*1000:8.1f} ms  "
            f"delta {row['delta_s']*1000:7.1f} ms  "
            f"speedup {row['speedup']:6.1f}x  [{status}]"
        )
    print(f"report written to {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
