"""ENG: the batch containment engine — cold vs warm, 1 vs N workers.

Unlike the Table 1 benches, this one measures the *harness* rather than a
paper claim: the engine's worker pool must overlap independent containment
checks, and its canonical-hash cache must turn a warm re-run into (almost)
pure lookups.

Workloads:

* containment — 16 independent CONTAINED checks over per-task-renamed
  linear path OMQs (``P``-path under ``E ⊑ P`` vs the plain ``E``-path).
  The pairs are built so the CQ-subsumption shortcut does not fire and the
  full small-witness procedure runs.
* overlap — blocking tasks (stand-ins for checks that spend their time
  waiting) where the pool's per-worker overlap wins even on one core.

The CPU-parallel speedup is only asserted when the machine actually has
more than one usable core; the overlap speedup and the warm-cache hit rate
are asserted unconditionally.  Results land in ``BENCH_engine.json`` at the
repo root (cold/warm × serial/parallel timings plus cache stats).
"""

import json
import os
import time
from pathlib import Path

from conftest import print_table
from repro import OMQ, Schema, clear_caches, parse_cq
from repro.containment import Verdict
from repro.core.parser import parse_tgds
from repro.engine import BatchEngine, ContainmentJob
from repro.engine.jobs import SleepJob

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_engine.json"

N_TASKS = 16
WORKERS = 4
OVERLAP_TASKS = 12
OVERLAP_SLEEP = 0.2


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _containment_job(tag: int, size: int) -> ContainmentJob:
    """One CONTAINED check that must run the small-witness procedure.

    q1 is a ``P``-path whose ``P`` is derivable from the data relation
    ``E`` (one linear hop); q2 is the plain ``E``-path.  They are
    equivalent over ``E``-databases, but Σ(q1) ⊄ Σ(q2) = ∅, so the
    CQ-subsumption shortcut cannot answer and q1 gets fully rewritten.
    Per-task predicate names keep the 16 tasks cache-independent.
    """
    e, p = f"E{tag}", f"P{tag}"
    schema = Schema.of(**{e: 2})
    sigma = tuple(parse_tgds(f"{e}(x, y) -> {p}(x, y)"))
    hops = [
        (f"v{i}", f"v{i + 1}") for i in range(size)
    ]
    p_body = ", ".join(f"{p}({a}, {b})" for a, b in hops)
    e_body = ", ".join(f"{e}({a}, {b})" for a, b in hops)
    q1 = OMQ(schema, sigma, parse_cq(f"q() :- {p_body}"), f"ppath_{tag}")
    q2 = OMQ(schema, (), parse_cq(f"q() :- {e_body}"), f"epath_{tag}")
    return ContainmentJob(q1, q2)


def _containment_jobs():
    # Half the tasks one size up, so the batch mixes ~40ms and ~200ms work.
    return [_containment_job(tag, 4 + tag % 2) for tag in range(N_TASKS)]


def _timed_batch(engine: BatchEngine, jobs):
    start = time.perf_counter()
    results = engine.run_batch(jobs)
    return time.perf_counter() - start, results


def test_engine_cold_warm_and_workers(benchmark, tmp_path):
    """The headline scenario: cold serial vs cold parallel vs warm."""

    def _scenario():
        jobs = _containment_jobs()

        clear_caches()
        with BatchEngine(cache_dir=str(tmp_path / "serial"), workers=1) as eng:
            cold_serial, results = _timed_batch(eng, jobs)
        assert all(
            r.ok and r.value.verdict is Verdict.CONTAINED for r in results
        )

        clear_caches()
        with BatchEngine(
            cache_dir=str(tmp_path / "parallel"), workers=WORKERS
        ) as eng:
            cold_parallel, presults = _timed_batch(eng, jobs)
        assert [r.value.verdict for r in presults] == [
            r.value.verdict for r in results
        ]

        # Warm: a fresh engine over the serial run's cache directory.
        clear_caches()
        with BatchEngine(cache_dir=str(tmp_path / "serial"), workers=1) as eng:
            warm_serial, wresults = _timed_batch(eng, jobs)
            hit_rate = sum(1 for r in wresults if r.cached) / len(wresults)
        assert hit_rate >= 0.95
        assert warm_serial < cold_serial
        assert [r.value.verdict for r in wresults] == [
            r.value.verdict for r in results
        ]

        # Blocking workload: the pool overlaps waiting tasks regardless of
        # core count, so parallel must win even on a one-core box.
        sleepers = [
            SleepJob(OVERLAP_SLEEP, payload=i) for i in range(OVERLAP_TASKS)
        ]
        with BatchEngine(workers=1) as eng:
            overlap_serial, _ = _timed_batch(eng, sleepers)
        with BatchEngine(workers=WORKERS) as eng:
            overlap_parallel, _ = _timed_batch(eng, sleepers)
        assert overlap_parallel * 1.5 < overlap_serial

        cores = _usable_cores()
        if cores >= 2:
            # CPU-bound speedup needs actual cores to spread over.
            assert cold_parallel < cold_serial

        payload = {
            "bench": "engine_batch",
            "usable_cores": cores,
            "tasks": N_TASKS,
            "workers": WORKERS,
            "containment": {
                "cold_serial_s": round(cold_serial, 4),
                "cold_parallel_s": round(cold_parallel, 4),
                "warm_serial_s": round(warm_serial, 4),
                "warm_hit_rate": round(hit_rate, 4),
                "parallel_speedup": round(cold_serial / cold_parallel, 3),
                "warm_speedup": round(cold_serial / warm_serial, 3),
            },
            "overlap": {
                "tasks": OVERLAP_TASKS,
                "sleep_s": OVERLAP_SLEEP,
                "serial_s": round(overlap_serial, 4),
                "parallel_s": round(overlap_parallel, 4),
                "speedup": round(overlap_serial / overlap_parallel, 3),
            },
        }
        ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

        print_table(
            "ENG: batch engine (16 containment tasks)",
            ["configuration", "time (s)", "note"],
            [
                ["cold, workers=1", f"{cold_serial:.3f}", ""],
                [
                    f"cold, workers={WORKERS}",
                    f"{cold_parallel:.3f}",
                    f"{cores} core(s) usable",
                ],
                [
                    "warm, workers=1",
                    f"{warm_serial:.3f}",
                    f"hit rate {hit_rate:.0%}",
                ],
                [
                    f"overlap {OVERLAP_TASKS}×{OVERLAP_SLEEP}s",
                    f"{overlap_serial:.3f} → {overlap_parallel:.3f}",
                    f"{overlap_serial / overlap_parallel:.1f}× with pool",
                ],
            ],
        )

    benchmark.pedantic(_scenario, rounds=1, iterations=1)


DEDUP_DISTINCT = 6
DEDUP_COPIES = 3


def _alpha_copy(tag: int, size: int, salt: int) -> ContainmentJob:
    """An α-renamed spelling of ``_containment_job(tag, size)``: fresh
    variable names and reversed body-atom order, same canonical key."""
    e, p = f"E{tag}", f"P{tag}"
    schema = Schema.of(**{e: 2})
    sigma = tuple(parse_tgds(f"{e}(x, y) -> {p}(x, y)"))
    hops = [(f"w{salt}_{i}", f"w{salt}_{i + 1}") for i in range(size)]
    p_body = ", ".join(f"{p}({a}, {b})" for a, b in reversed(hops))
    e_body = ", ".join(f"{e}({a}, {b})" for a, b in reversed(hops))
    q1 = OMQ(schema, sigma, parse_cq(f"q() :- {p_body}"), f"ppath_{tag}~{salt}")
    q2 = OMQ(schema, (), parse_cq(f"q() :- {e_body}"), f"epath_{tag}~{salt}")
    return ContainmentJob(q1, q2)


def test_scheduler_dedup_and_streaming(benchmark, tmp_path):
    """SCHED: async submission — dedup saves the duplicate runs, streaming
    delivers the first verdict long before the batch drains."""

    def _scenario():
        # 6 distinct containment questions, each submitted 3 times through
        # α-renamed spellings: 18 jobs, 6 computations.
        jobs = []
        for tag in range(DEDUP_DISTINCT):
            size = 4 + tag % 2
            jobs.append(_containment_job(tag, size))
            for salt in range(1, DEDUP_COPIES):
                jobs.append(_alpha_copy(tag, size, salt))

        clear_caches()
        with BatchEngine(workers=WORKERS) as eng:
            start = time.perf_counter()
            handles = eng.submit_batch(jobs)
            submit_s = time.perf_counter() - start

            first_s = None
            for handle in eng.as_completed(handles):
                if first_s is None:
                    first_s = time.perf_counter() - start
            total_s = time.perf_counter() - start
            results = [h.result() for h in handles]
            metrics = eng.stats()["metrics"]

        assert all(
            r.ok and r.value.verdict is Verdict.CONTAINED for r in results
        )
        runs = metrics["engine.containment.runs"]
        coalesced = metrics["engine.dedup.coalesced"]
        assert runs == DEDUP_DISTINCT
        assert coalesced == DEDUP_DISTINCT * (DEDUP_COPIES - 1)
        assert submit_s < total_s  # submission never waits for workers
        assert first_s < total_s  # streaming beats draining the batch

        scheduler_payload = {
            "jobs": len(jobs),
            "distinct": DEDUP_DISTINCT,
            "copies_per_question": DEDUP_COPIES,
            "workers": WORKERS,
            "runs": runs,
            "coalesced": coalesced,
            "submit_s": round(submit_s, 4),
            "first_result_s": round(first_s, 4),
            "total_s": round(total_s, 4),
            "first_vs_total": round(first_s / total_s, 3),
        }
        try:
            payload = json.loads(ARTIFACT.read_text())
        except (OSError, ValueError):
            payload = {"bench": "engine_batch"}
        payload["scheduler"] = scheduler_payload
        ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

        print_table(
            "SCHED: async scheduler (18 jobs, 6 distinct questions)",
            ["measure", "value", "note"],
            [
                ["runs", str(runs), f"of {len(jobs)} submitted jobs"],
                ["coalesced", str(coalesced), "duplicate spellings absorbed"],
                ["submit", f"{submit_s:.3f}s", "non-blocking"],
                [
                    "first result",
                    f"{first_s:.3f}s",
                    f"total drain {total_s:.3f}s",
                ],
            ],
        )

    benchmark.pedantic(_scenario, rounds=1, iterations=1)


CATALOG_PAIRS = 8
CATALOG_SIZE = 4


def test_catalog_cold_vs_warm_session(benchmark, tmp_path):
    """CAT: the cross-session equivalence catalog — session one proves the
    pairs equivalent (both directions run the full procedure), session two
    re-answers every job from the catalog alone: fresh engine, fresh cache
    directory, only the catalog file carries over."""

    def _scenario():
        # Each tag yields a pair (P-path under E ⊑ P, plain E-path) that
        # is equivalent but hash-distinct; both directions per tag.
        jobs = []
        for tag in range(200, 200 + CATALOG_PAIRS):
            forward = _containment_job(tag, CATALOG_SIZE)
            jobs.append(forward)
            jobs.append(ContainmentJob(forward.q2, forward.q1))
        catalog_path = str(tmp_path / "catalog.sqlite")

        clear_caches()
        with BatchEngine(
            cache_dir=str(tmp_path / "cold"), workers=1, catalog=catalog_path
        ) as eng:
            cold_s, cold_results = _timed_batch(eng, jobs)
            cold_stats = eng.stats()["catalog"]
        assert all(
            r.ok and r.value.verdict is Verdict.CONTAINED
            for r in cold_results
        )
        assert cold_stats["groups"] == CATALOG_PAIRS

        # Session two: nothing cached, but every pair is in the catalog.
        clear_caches()
        with BatchEngine(
            cache_dir=str(tmp_path / "warm"), workers=1, catalog=catalog_path
        ) as eng:
            warm_s, warm_results = _timed_batch(eng, jobs)
            warm_metrics = eng.stats()["metrics"]
            short_circuits = warm_metrics.get(
                "engine.catalog.short_circuits", 0
            )
        assert all(
            r.value.verdict is Verdict.CONTAINED for r in warm_results
        )
        # Both directions of a pair rewrite to one rep-based key, so the
        # reverse coalesces onto the forward and each *pair* costs one
        # catalog lookup — and zero procedure runs.
        assert short_circuits == CATALOG_PAIRS
        assert warm_metrics.get("engine.dedup.coalesced", 0) == CATALOG_PAIRS
        assert warm_metrics.get("engine.containment.runs", 0) == 0
        assert {r.value.method for r in warm_results} == {
            "catalog-equivalence"
        }
        assert warm_s < cold_s

        catalog_payload = {
            "pairs": CATALOG_PAIRS,
            "jobs": len(jobs),
            "cold_session_s": round(cold_s, 4),
            "warm_session_s": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 3),
            "short_circuits": short_circuits,
            "groups": cold_stats["groups"],
        }
        try:
            payload = json.loads(ARTIFACT.read_text())
        except (OSError, ValueError):
            payload = {"bench": "engine_batch"}
        payload["catalog"] = catalog_payload
        ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

        print_table(
            f"CAT: equivalence catalog ({CATALOG_PAIRS} pairs, 2 sessions)",
            ["session", "time (s)", "note"],
            [
                ["cold (proves)", f"{cold_s:.3f}", "full procedures"],
                [
                    "warm (recalls)",
                    f"{warm_s:.3f}",
                    f"{short_circuits} short-circuits, "
                    f"{cold_s / warm_s:.0f}× faster",
                ],
            ],
        )

    benchmark.pedantic(_scenario, rounds=1, iterations=1)


WITNESS_PAIRS = 8
WITNESS_SIZE = 4


def _refuted_job(tag: int, size: int) -> ContainmentJob:
    """One NOT_CONTAINED check: q1 is a ``P``-path of *size* hops under
    ``E ⊑ P``, q2 the plain ``E``-path one hop longer.  A ``size``-hop
    path database has no ``size+1``-hop match, so the cold run rewrites
    q1 and then refutes via small-witness — producing a witness the
    store can replay."""
    e, p = f"E{tag}", f"P{tag}"
    schema = Schema.of(**{e: 2})
    sigma = tuple(parse_tgds(f"{e}(x, y) -> {p}(x, y)"))
    p_body = ", ".join(
        f"{p}(v{i}, v{i + 1})" for i in range(size)
    )
    e_body = ", ".join(
        f"{e}(v{i}, v{i + 1})" for i in range(size + 1)
    )
    q1 = OMQ(schema, sigma, parse_cq(f"q() :- {p_body}"), f"wpath_{tag}")
    q2 = OMQ(schema, (), parse_cq(f"q() :- {e_body}"), f"wlong_{tag}")
    return ContainmentJob(q1, q2)


def test_witness_store_cold_vs_warm_session(benchmark, tmp_path):
    """WIT: the negative-witness store — session one refutes the pairs
    with the full procedure and persists each counterexample; session two
    re-answers every job by replaying the stored witness: fresh engine,
    fresh cache directory, only the witness file carries over."""

    def _scenario():
        jobs = [
            _refuted_job(tag, WITNESS_SIZE)
            for tag in range(300, 300 + WITNESS_PAIRS)
        ]
        store_path = str(tmp_path / "witnesses.sqlite")

        clear_caches()
        with BatchEngine(
            cache_dir=str(tmp_path / "wcold"),
            workers=1,
            witness_store=store_path,
        ) as eng:
            cold_s, cold_results = _timed_batch(eng, jobs)
            cold_metrics = eng.stats()["metrics"]
        assert all(
            r.ok and r.value.verdict is Verdict.NOT_CONTAINED
            for r in cold_results
        )
        assert cold_metrics["engine.witness.stored"] == WITNESS_PAIRS

        # Session two: nothing cached, but every refutation is on file.
        clear_caches()
        with BatchEngine(
            cache_dir=str(tmp_path / "wwarm"),
            workers=1,
            witness_store=store_path,
        ) as eng:
            warm_s, warm_results = _timed_batch(eng, jobs)
            warm_metrics = eng.stats()["metrics"]
        assert all(
            r.value.verdict is Verdict.NOT_CONTAINED for r in warm_results
        )
        assert {r.value.method for r in warm_results} == {"witness-replay"}
        assert warm_metrics.get("engine.witness.hits", 0) == WITNESS_PAIRS
        assert warm_metrics.get("engine.containment.runs", 0) == 0
        # The acceptance gate: replay beats the full procedure by ≥10×.
        assert warm_s * 10 <= cold_s

        witness_payload = {
            "pairs": WITNESS_PAIRS,
            "cold_session_s": round(cold_s, 4),
            "warm_session_s": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 3),
            "replay_hits": warm_metrics.get("engine.witness.hits", 0),
            "stored": cold_metrics["engine.witness.stored"],
        }
        try:
            payload = json.loads(ARTIFACT.read_text())
        except (OSError, ValueError):
            payload = {"bench": "engine_batch"}
        payload["witness"] = witness_payload
        ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

        print_table(
            f"WIT: witness store ({WITNESS_PAIRS} refuted pairs, 2 sessions)",
            ["session", "time (s)", "note"],
            [
                ["cold (refutes)", f"{cold_s:.3f}", "full procedures"],
                [
                    "warm (replays)",
                    f"{warm_s:.3f}",
                    f"{witness_payload['replay_hits']} replay hits, "
                    f"{cold_s / warm_s:.0f}× faster",
                ],
            ],
        )

    benchmark.pedantic(_scenario, rounds=1, iterations=1)


def _perturbed_refuted_job(tag: int, size: int) -> ContainmentJob:
    """The structurally perturbed spelling of ``_refuted_job(tag, size)``:
    a homomorphically redundant atom on *both* sides (fresh variables,
    folds onto an existing body atom), so neither side's canonical hash
    matches the base pair — only the predicate-signature key does."""
    e, p = f"E{tag}", f"P{tag}"
    schema = Schema.of(**{e: 2})
    sigma = tuple(parse_tgds(f"{e}(x, y) -> {p}(x, y)"))
    p_body = ", ".join(
        f"{p}(v{i}, v{i + 1})" for i in range(size)
    ) + f", {p}(r0, r1)"
    e_body = ", ".join(
        f"{e}(v{i}, v{i + 1})" for i in range(size + 1)
    ) + f", {e}(r0, r1)"
    q1 = OMQ(schema, sigma, parse_cq(f"q() :- {p_body}"), f"wppath_{tag}")
    q2 = OMQ(schema, (), parse_cq(f"q() :- {e_body}"), f"wplong_{tag}")
    return ContainmentJob(q1, q2)


def test_witness_store_structural_replay(benchmark, tmp_path):
    """WIT-S: structural (subsumption-based) replay — session one refutes
    the *base* pairs and persists their witnesses; session two answers a
    perturbed, non-hash-equal spelling of every pair purely from the
    signature index: two budgeted hom-checks per job instead of a full
    rewriting + small-witness run, with zero exact-pair hits."""

    def _scenario():
        base_jobs = [
            _refuted_job(tag, WITNESS_SIZE)
            for tag in range(400, 400 + WITNESS_PAIRS)
        ]
        perturbed_jobs = [
            _perturbed_refuted_job(tag, WITNESS_SIZE)
            for tag in range(400, 400 + WITNESS_PAIRS)
        ]
        store_path = str(tmp_path / "swit.sqlite")

        # Baseline: the perturbed jobs decided by the full procedure.
        clear_caches()
        with BatchEngine(
            cache_dir=str(tmp_path / "scold"), workers=1
        ) as eng:
            cold_s, cold_results = _timed_batch(eng, perturbed_jobs)
        assert all(
            r.ok and r.value.verdict is Verdict.NOT_CONTAINED
            for r in cold_results
        )

        # Session one: refute the base pairs, populating the store.
        clear_caches()
        with BatchEngine(
            cache_dir=str(tmp_path / "sbase"),
            workers=1,
            witness_store=store_path,
        ) as eng:
            _, base_results = _timed_batch(eng, base_jobs)
            base_metrics = eng.stats()["metrics"]
        assert all(
            r.value.verdict is Verdict.NOT_CONTAINED for r in base_results
        )
        assert base_metrics["engine.witness.stored"] == WITNESS_PAIRS

        # Session two: every perturbed job replays structurally — no
        # canonical hash in the store matches either side.
        clear_caches()
        with BatchEngine(
            cache_dir=str(tmp_path / "swarm"),
            workers=1,
            witness_store=store_path,
        ) as eng:
            warm_s, warm_results = _timed_batch(eng, perturbed_jobs)
            warm_metrics = eng.stats()["metrics"]
        assert all(
            r.value.verdict is Verdict.NOT_CONTAINED for r in warm_results
        )
        assert {r.value.method for r in warm_results} == {"witness-replay"}
        structural_hits = warm_metrics.get(
            "engine.witness.structural.hits", 0
        )
        assert structural_hits == WITNESS_PAIRS
        assert warm_metrics.get("engine.witness.exact_hits", 0) == 0
        assert warm_metrics.get("engine.containment.runs", 0) == 0
        # The acceptance gate: structural replay beats the full run ≥5×.
        assert warm_s * 5 <= cold_s

        structural_payload = {
            "pairs": WITNESS_PAIRS,
            "cold_session_s": round(cold_s, 4),
            "warm_session_s": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 3),
            "structural_hits": structural_hits,
            "exact_hits": warm_metrics.get("engine.witness.exact_hits", 0),
            "attempts": warm_metrics.get(
                "engine.witness.structural.attempts", 0
            ),
        }
        try:
            payload = json.loads(ARTIFACT.read_text())
        except (OSError, ValueError):
            payload = {"bench": "engine_batch"}
        payload["witness_structural"] = structural_payload
        ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

        print_table(
            f"WIT-S: structural replay ({WITNESS_PAIRS} perturbed pairs)",
            ["session", "time (s)", "note"],
            [
                ["cold (full run)", f"{cold_s:.3f}", "no store"],
                [
                    "warm (structural)",
                    f"{warm_s:.3f}",
                    f"{structural_hits} structural hits, 0 exact, "
                    f"{cold_s / warm_s:.0f}× faster",
                ],
            ],
        )

    benchmark.pedantic(_scenario, rounds=1, iterations=1)


PRIORITY_BACKLOG = 12
PRIORITY_LOW_SLEEP = 0.15
PRIORITY_HIGH_SLEEP = 0.05


def test_priority_beats_saturating_backlog(benchmark):
    """PRIO: a HIGH submission lands while a LOW backlog saturates the
    pool; it must overtake the queue and finish long before the drain."""

    def _scenario():
        with BatchEngine(workers=2) as eng:
            start = time.perf_counter()
            lows = [
                eng.submit(
                    SleepJob(PRIORITY_LOW_SLEEP, payload=i), priority="low"
                )
                for i in range(PRIORITY_BACKLOG)
            ]
            high = eng.submit(
                SleepJob(PRIORITY_HIGH_SLEEP, payload="high"),
                priority="high",
            )
            high.result(timeout=60)
            high_latency = time.perf_counter() - start
            lows_done_first = sum(1 for h in lows if h.done())
            for h in lows:
                h.result(timeout=60)
            total_s = time.perf_counter() - start
            metrics = eng.stats()["metrics"]

        # The HIGH job waits out at most the in-flight LOWs (the dispatch
        # window), never the whole backlog.
        assert high_latency < total_s / 2
        assert lows_done_first < PRIORITY_BACKLOG / 2
        assert metrics["engine.scheduler.priority.dispatched.high"] == 1

        priority_payload = {
            "backlog": PRIORITY_BACKLOG,
            "low_sleep_s": PRIORITY_LOW_SLEEP,
            "high_sleep_s": PRIORITY_HIGH_SLEEP,
            "workers": 2,
            "high_latency_s": round(high_latency, 4),
            "total_drain_s": round(total_s, 4),
            "lows_finished_before_high": lows_done_first,
        }
        try:
            payload = json.loads(ARTIFACT.read_text())
        except (OSError, ValueError):
            payload = {"bench": "engine_batch"}
        payload["priority"] = priority_payload
        ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")

        print_table(
            f"PRIO: HIGH vs {PRIORITY_BACKLOG}-deep LOW backlog",
            ["measure", "value", "note"],
            [
                [
                    "HIGH latency",
                    f"{high_latency:.3f}s",
                    f"drain {total_s:.3f}s",
                ],
                [
                    "LOWs done first",
                    str(lows_done_first),
                    f"of {PRIORITY_BACKLOG}",
                ],
            ],
        )

    benchmark.pedantic(_scenario, rounds=1, iterations=1)


def test_parallel_verdicts_match_serial(benchmark):
    """Worker-pool execution is semantics-preserving on a small batch."""

    def _run():
        jobs = [_containment_job(100 + t, 3) for t in range(4)]
        clear_caches()
        with BatchEngine(workers=1) as eng:
            serial = eng.run_batch(jobs)
        clear_caches()
        with BatchEngine(workers=2) as eng:
            parallel = eng.run_batch(jobs)
        assert [r.value.verdict for r in serial] == [
            r.value.verdict for r in parallel
        ]
        assert all(
            r.value.verdict is Verdict.CONTAINED for r in serial
        )
        return serial

    benchmark.pedantic(_run, rounds=1, iterations=1)
