"""Shared helpers for the benchmark harness.

Every bench regenerates one row-set of the paper's Table 1 (or one
proposition) — see DESIGN.md's per-experiment index and EXPERIMENTS.md for
the paper-vs-measured record.  Timings come from pytest-benchmark; the
*shape* claims (who wins, what grows exponentially in what) are asserted,
so a bench run doubles as a reproduction check.
"""

from __future__ import annotations

from typing import List, Sequence


def growth_ratios(series: Sequence[float]) -> List[float]:
    """Successive ratios of a measured series (for shape assertions)."""
    return [
        b / a if a else float("inf") for a, b in zip(series, series[1:])
    ]


def is_roughly_doubling(series: Sequence[float], factor: float = 1.8) -> bool:
    """True iff every step grows by at least *factor* (exponential shape)."""
    return all(r >= factor for r in growth_ratios(series))


def is_roughly_flat(series: Sequence[float], slack: float = 1.5) -> bool:
    """True iff the series never grows by more than *slack* per step."""
    return all(r <= slack for r in growth_ratios(series))


def print_table(title: str, headers: Sequence[str], rows) -> None:
    """Print a small aligned table (visible with pytest -s)."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    print(f"\n== {title} ==")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
