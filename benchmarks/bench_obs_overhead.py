"""Observability overhead benchmark: tracing off must cost ~nothing.

The ``repro.obs`` design promise is that every instrumentation site costs
one module-level bool test when tracing is off.  This bench checks that
promise two ways on a real containment workload:

* **macro A/B** — the workload runs interleaved with tracing off and
  tracing ``"always"``; the off runs also estimate the machine's noise
  floor (spread between identical off runs);
* **micro estimate** — the per-call cost of disabled ``obs.span()`` /
  ``obs.add()`` is measured directly, multiplied by the number of
  instrumentation hits an actual traced run of the workload records (span
  count plus counter updates), and expressed as a fraction of the
  workload's wall time.  This is the disabled-mode overhead bound that
  does not depend on having an uninstrumented build to diff against.

Run as a script — not through pytest::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py          # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick  # CI

Writes ``BENCH_obs.json`` (see ``--out``).  Exits non-zero when the
estimated disabled-mode overhead exceeds ``--max-disabled-pct`` (default
5%) — the CI guard for accidental work on the off path — or when the
measured traced-mode overhead exceeds ``--max-traced-pct`` (default 75%,
deliberately generous: tracing is allowed to cost, but instrumentation
bloat that doubles the workload should be caught, not just logged).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import OMQ, Schema, obs, parse_cq, parse_tgds  # noqa: E402
from repro.containment import contains  # noqa: E402
from repro.obs.span import walk  # noqa: E402

RULES = """
P(x) -> R(x, w)
R(x, y) -> P(y)
T(x) -> P(x)
"""


def workload_pair():
    """A containment pair that exercises rewrite + witness + evaluation."""
    q1 = OMQ(
        Schema.of(P=1, T=1),
        parse_tgds(RULES),
        parse_cq("q(x) :- R(x, y), P(y)"),
        name="A",
    )
    q2 = OMQ(
        Schema.of(P=1, T=1),
        parse_tgds(RULES),
        parse_cq("q(x) :- P(x)"),
        name="B",
    )
    return q1, q2


def run_workload(q1, q2) -> None:
    r1 = contains(q1, q2)
    r2 = contains(q2, q1)
    assert r1.verdict.name == "CONTAINED" and r2.verdict.name == "CONTAINED"


def time_runs(q1, q2, repeats: int, mode: str):
    """Per-run wall times of the workload under the given tracing mode."""
    times = []
    with obs.tracing(mode):
        for _ in range(repeats):
            t0 = time.perf_counter()
            run_workload(q1, q2)
            times.append(time.perf_counter() - t0)
            obs.drain()  # keep the sink bounded out of the timed region
    return times


def instrumentation_hits(q1, q2) -> int:
    """Span + counter-update count of one traced run of the workload."""
    with obs.tracing("always"):
        run_workload(q1, q2)
        roots = obs.drain()
    hits = 0
    for root in roots:
        for node in walk(root):
            hits += 1  # the span() call
            hits += len(node.get("counters", {}))
            hits += len(node.get("events", ()))
    return hits


def disabled_call_cost(calls: int = 200_000) -> float:
    """Seconds per disabled obs.span()/obs.add() pair (averaged)."""
    assert not obs.is_enabled()
    t0 = time.perf_counter()
    for _ in range(calls):
        with obs.span("x"):
            pass
        obs.add("c")
    total = time.perf_counter() - t0
    return total / calls


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="CI smoke sizes")
    ap.add_argument(
        "--repeats", type=int, default=None,
        help="workload repetitions per mode (default 30, quick 8)",
    )
    ap.add_argument(
        "--max-disabled-pct", type=float, default=5.0,
        help="fail if the estimated disabled overhead exceeds this %%",
    )
    ap.add_argument(
        "--max-traced-pct", type=float, default=75.0,
        help="fail if the measured traced-mode overhead exceeds this %% "
        "(generous: catches instrumentation bloat, not tracing's "
        "expected cost)",
    )
    ap.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_obs.json"
        ),
    )
    args = ap.parse_args()
    repeats = args.repeats or (8 if args.quick else 30)

    q1, q2 = workload_pair()
    run_workload(q1, q2)  # warm module caches out of the timed region

    off_a = time_runs(q1, q2, repeats, "off")
    on = time_runs(q1, q2, repeats, "always")
    off_b = time_runs(q1, q2, repeats, "off")

    off = off_a + off_b
    off_best = min(off)
    # Noise floor: spread between two identical off runs.
    noise_pct = abs(min(off_a) - min(off_b)) / off_best * 100
    traced_pct = (min(on) - off_best) / off_best * 100

    hits = instrumentation_hits(q1, q2)
    per_call = disabled_call_cost(20_000 if args.quick else 200_000)
    disabled_est_pct = hits * per_call / off_best * 100

    report = {
        "repeats_per_mode": repeats,
        "workload": "contains(A,B) + contains(B,A), linear pair",
        "off_best_s": round(off_best, 6),
        "off_median_s": round(statistics.median(off), 6),
        "traced_best_s": round(min(on), 6),
        "traced_overhead_pct": round(traced_pct, 2),
        "noise_floor_pct": round(noise_pct, 2),
        "instrumentation_hits_per_run": hits,
        "disabled_call_cost_ns": round(per_call * 1e9, 1),
        "disabled_overhead_est_pct": round(disabled_est_pct, 3),
        "max_disabled_pct": args.max_disabled_pct,
        "max_traced_pct": args.max_traced_pct,
    }
    Path(args.out).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(report, indent=2))

    failed = False
    if disabled_est_pct > args.max_disabled_pct:
        print(
            f"FAIL: disabled-mode overhead estimate "
            f"{disabled_est_pct:.2f}% > {args.max_disabled_pct}%",
            file=sys.stderr,
        )
        failed = True
    # Traced mode is compared net of the measured noise floor, so a
    # noisy runner can't trip the ceiling on timing jitter alone.
    if traced_pct - noise_pct > args.max_traced_pct:
        print(
            f"FAIL: traced-mode overhead {traced_pct:.1f}% "
            f"(noise floor {noise_pct:.2f}%) > {args.max_traced_pct}%",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(
        f"OK: disabled-mode overhead estimate {disabled_est_pct:.3f}%, "
        f"traced-mode overhead {traced_pct:.1f}% "
        f"(noise floor {noise_pct:.2f}%)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
