"""FIG1: Figure 1 — stickiness and the marking procedure.

Paper: Figure 1 illustrates the inductive marking that defines sticky sets
(Definitions 4–5): the set that propagates the join variable into S is
sticky, the one that drops it is not.

Measured: the two Figure 1 sets classify as the paper states, and the
marking fixpoint scales with the number of rules (polynomial, as expected
of a syntactic check).
"""

import pytest

from conftest import print_table
from repro.core.parser import parse_tgds
from repro.fragments import is_sticky, marked_variables, sticky_violations

FIGURE1_STICKY = """
T(x, y, z) -> S(y, w)
R(x, y), P(y, z) -> T(x, y, w)
"""

FIGURE1_NON_STICKY = """
T(x, y, z) -> S(x, w)
R(x, y), P(y, z) -> T(x, y, w)
"""


def test_figure1_classification(benchmark):
    def _shape_check():
        sticky = parse_tgds(FIGURE1_STICKY)
        non_sticky = parse_tgds(FIGURE1_NON_STICKY)
        rows = [
            ["T(x,y,z) → ∃w S(y,w)", "sticky", is_sticky(sticky)],
            ["T(x,y,z) → ∃w S(x,w)", "not sticky", not is_sticky(non_sticky)],
        ]
        print_table(
            "FIG1: Figure 1 classification (paper vs measured)",
            ["first tgd", "paper", "measured agrees"],
            rows,
        )
        assert is_sticky(sticky)
        assert not is_sticky(non_sticky)
        # The violation is the join variable of the second tgd.
        (index, variable), = sticky_violations(non_sticky)
        assert index == 1 and variable.name.startswith("y")



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


@pytest.mark.parametrize("n_rules", [4, 8, 16, 32])
def test_marking_scales(benchmark, n_rules):
    """Marking fixpoint on growing rule chains."""
    lines = []
    for i in range(n_rules):
        lines.append(f"R_{i}(x, y), P_{i}(y, z) -> R_{i+1}(x, y, w)")
    sigma = parse_tgds("\n".join(lines))
    marks = benchmark(lambda: marked_variables(sigma))
    # Every z is marked by the base step (missing from the head).
    assert len(marks) >= n_rules
