"""APP-DIST / APP-UCQREW: the Section 7 applications.

Paper: Dist(G, CQ) is 2ExpTime-complete (Theorem 28, via Proposition 27's
reduction to containment); UCQRew(G₂, CQ) is 2ExpTime-complete (Theorem 29,
via the boundedness/infinity machinery).

Measured: the Prop-27 procedure decides the connected / disconnected /
redundant query trichotomy on guarded ontologies; the rewritability prober
answers YES constructively (with the rewriting) on rewritable inputs and
reports divergence evidence on the reachability family.
"""

import pytest

from conftest import print_table
from repro import OMQ, parse_cq, parse_tgds
from repro.applications import distributes_over_components, is_ucq_rewritable
from repro.core.schema import Schema
from repro.evaluation import cached_rewriting
from repro.generators import guarded_acyclic, guarded_reachability

SCHEMA = Schema.of(Link=2, Alert=1)
SIGMA = parse_tgds("Link(x, y), Alert(x) -> Alert(y)")

DIST_CASES = {
    "connected": "q(x) :- Alert(x)",
    "disconnected": "q() :- Alert(x), Link(y, z)",
    "redundant": "q() :- Alert(x), Alert(y)",
}


@pytest.mark.parametrize("name", list(DIST_CASES))
def test_distribution_timing(benchmark, name):
    omq = OMQ(SCHEMA, SIGMA, parse_cq(DIST_CASES[name]), name=name)

    def run():
        cached_rewriting.cache_clear()
        return distributes_over_components(omq)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.distributes is not None


def test_distribution_trichotomy(benchmark):
    def _shape_check():
        rows = []
        expected = {"connected": True, "disconnected": False, "redundant": True}
        for name, query in DIST_CASES.items():
            omq = OMQ(SCHEMA, SIGMA, parse_cq(query), name=name)
            result = distributes_over_components(omq)
            rows.append([name, result.distributes, expected[name]])
            assert result.distributes is expected[name]
        print_table(
            "APP-DIST: distribution over components (Prop 27)",
            ["query", "measured", "expected"],
            rows,
        )



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_rewritability_yes_timing(benchmark, depth):
    omq = guarded_acyclic(depth)

    def run():
        cached_rewriting.cache_clear()
        return is_ucq_rewritable(omq)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.rewritable is True


def test_rewritability_verdicts(benchmark):
    def _shape_check():
        rows = []
        yes = is_ucq_rewritable(guarded_acyclic(2))
        rows.append(["guarded acyclic", yes.rewritable, "True"])
        assert yes.rewritable is True and yes.rewriting is not None
        no = is_ucq_rewritable(
            guarded_reachability(), budgets=(100, 400, 1_600)
        )
        rows.append(["guarded reachability", no.rewritable, "None (diverges)"])
        assert no.rewritable is None
        print_table(
            "APP-UCQREW: UCQ rewritability verdicts",
            ["OMQ", "measured", "expected"],
            rows,
        )

    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


