"""T1-NR: Table 1, row Non-recursive.

Paper: Cont((NR,CQ)) sits between PNEXP and ExpSpace; the applicability
discussion highlights that the runtime is double-exponential not only in
the arity but in the *number of predicates of the ontology* — witnessed by
Proposition 14's bound ``|q| · (max body)^{|sch(Σ)|}`` and Proposition 15's
exponential witness family.

Measured shape:

* the rewriting of the binary AND-tree family doubles per layer (syntactic
  blowup driven by ontology structure);
* the Prop-18/15 family's *minimal semantic witness* doubles with each
  predicate added to sch(Σ) — the number-of-predicates exponent.
"""

import pytest

from conftest import is_roughly_doubling, print_table
from repro import contains
from repro.containment import contains_via_small_witness
from repro.evaluation import cached_rewriting
from repro.generators import non_recursive_doubling
from repro.reductions import (
    expected_witness_size,
    minimal_satisfying_database,
    prop18_family,
)
from repro.rewriting import f_non_recursive

LAYERS = [1, 2, 3, 4]


@pytest.mark.parametrize("layers", LAYERS)
def test_containment_by_layers(benchmark, layers):
    omq = non_recursive_doubling(layers)

    def run():
        cached_rewriting.cache_clear()
        return contains_via_small_witness(omq, omq)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.is_contained


def test_rewriting_doubles_per_layer(benchmark):
    def _shape_check():
        sizes = []
        rows = []
        for layers in LAYERS:
            omq = non_recursive_doubling(layers)
            rewriting = cached_rewriting(omq, 50_000)
            assert rewriting.complete
            measured = rewriting.rewriting.max_disjunct_size()
            bound = f_non_recursive(omq)
            sizes.append(measured)
            rows.append([layers, measured, 2**layers, bound])
            assert measured <= bound
        print_table(
            "T1-NR: rewriting size vs layers (paper: exponential)",
            ["layers", "max disjunct", "2^layers", "f_NR bound"],
            rows,
        )
        assert sizes == [2**l for l in LAYERS]



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


def test_semantic_witness_exponential_in_predicates(benchmark):
    def _shape_check():
        """Prop 15 shape via the Prop 18 family (which lives in NR too)."""
        sizes = []
        rows = []
        for n in (3, 4, 5):
            omq = prop18_family(n)
            witness = minimal_satisfying_database(omq)
            sizes.append(len(witness))
            rows.append([n, len(omq.ontology_schema()), len(witness),
                         expected_witness_size(n)])
            assert len(witness) == expected_witness_size(n)
        print_table(
            "T1-NR: minimal witness vs |sch(Σ)| (paper: ≥ 2^(n-1) shape)",
            ["n", "|sch(Σ)|", "minimal witness", "2^(n-2)"],
            rows,
        )
        assert is_roughly_doubling(sizes)



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


@pytest.mark.parametrize("n", [3, 4])
def test_prop18_rewriting_time(benchmark, n):
    omq = prop18_family(n)

    def run():
        cached_rewriting.cache_clear()
        return minimal_satisfying_database(omq)

    witness = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(witness) == expected_witness_size(n)
