"""P15/18: the exponential witness lower bounds.

Paper: Propositions 15 and 18 exhibit OMQ families whose non-containment
witnesses need exponentially many facts — the reason the sticky and
non-recursive rows of Table 1 sit above NP.

Measured: the minimal database on which Q^n is non-empty has exactly
``2^(n-2)`` facts, doubling per arity step, and every witness is the full
Boolean cube ending in (0, 1).
"""

import pytest

from conftest import is_roughly_doubling, print_table
from repro import Verdict, contains
from repro.core.omq import OMQ
from repro.core.queries import CQ
from repro.core.atoms import Atom
from repro.core.terms import Variable
from repro.evaluation import cached_rewriting
from repro.reductions import (
    expected_witness_size,
    minimal_satisfying_database,
    prop18_family,
)

NS = [2, 3, 4, 5]


def test_witness_sizes_double(benchmark):
    def _shape_check():
        sizes = []
        rows = []
        for n in NS:
            witness = minimal_satisfying_database(prop18_family(n))
            sizes.append(len(witness))
            rows.append([n, len(witness), expected_witness_size(n)])
            assert len(witness) == expected_witness_size(n)
        print_table(
            "P18: minimal witness sizes (paper: ≥ 2^(n-2))",
            ["n", "measured", "2^(n-2)"],
            rows,
        )
        assert is_roughly_doubling(sizes, factor=1.9)



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


def test_non_containment_witness_is_exponential(benchmark):
    def _shape_check():
        """Prop 18's statement: for any Q with Q^n ⊄ Q, the witness is huge."""
        n = 4
        family = prop18_family(n)
        # Q: an unsatisfiable right-hand side, so Q^n ⊄ Q with the minimal
        # possible witness — which must still be the full cube.
        x = Variable("x")
        never = OMQ(
            family.data_schema,
            (),
            CQ((), (Atom("Nope", (x,)),), "never"),
            "Q_unsat",
        )
        result = contains(family, never)
        assert result.verdict is Verdict.NOT_CONTAINED
        assert len(result.witness.database) >= expected_witness_size(n)



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


@pytest.mark.parametrize("n", NS)
def test_witness_computation_time(benchmark, n):
    omq = prop18_family(n)

    def run():
        cached_rewriting.cache_clear()
        return minimal_satisfying_database(omq)

    witness = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(witness) == expected_witness_size(n)
