"""SERVE: request latency and throughput of the HTTP serving tier.

Boots one in-process :class:`repro.serve.ReproServer` replica
(``allow_test_jobs`` on) and drives it with closed-loop client threads
over a mixed workload:

* **cheap** — a containment pair answered from the warm result cache
  (the steady state of a production replica: rung 2 of the ladder);
* **expensive** — ``kind: "sleep"`` jobs with a known 25ms service time,
  submitted with unique payloads so they cannot cache or coalesce
  (a stand-in for fresh decision-procedure runs with a *controlled*
  duration — real containment times would drown the serving overhead
  this benchmark isolates).

Reports per-request p50/p95/p99 latency and sustained throughput at two
concurrency levels, plus the deadline-degradation fast path (how quickly
a hopeless budget is refused).  Results land in ``BENCH_serve.json``.

Run::

    PYTHONPATH=src python benchmarks/bench_serve.py          # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick  # CI smoke
"""

import argparse
import asyncio
import json
import statistics
import sys
import threading
import time
from pathlib import Path

from repro.serve import ReproServer, ServeClient, ServeConfig

OMQ_A = """
schema: R/2, P/1
rules:
    P(x) -> R(x, w)
    R(x, y) -> P(y)
query: q(x) :- R(x, y), P(y)
"""
OMQ_B = """
schema: R/2, P/1
query: q(x) :- R(x, y)
"""

SLEEP_S = 0.025
CONCURRENCY_LEVELS = (1, 8)


class _Replica:
    """The server on its own event-loop thread (same shape as the tests)."""

    def __init__(self) -> None:
        self.server = ReproServer(
            ServeConfig(port=0, allow_test_jobs=True)
        )
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_forever()

    def __enter__(self) -> "_Replica":
        self.thread.start()
        assert self._ready.wait(10)
        return self

    def __exit__(self, *exc) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=False), self.loop
        )
        future.result(30)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


def percentiles(samples) -> dict:
    ordered = sorted(samples)

    def pct(p: float) -> float:
        index = min(len(ordered) - 1, int(round(p * (len(ordered) - 1))))
        return ordered[index]

    return {
        "p50_ms": round(pct(0.50) * 1000, 3),
        "p95_ms": round(pct(0.95) * 1000, 3),
        "p99_ms": round(pct(0.99) * 1000, 3),
        "max_ms": round(ordered[-1] * 1000, 3),
        "mean_ms": round(statistics.fmean(ordered) * 1000, 3),
    }


def drive(port: int, concurrency: int, requests_per_client: int) -> dict:
    """Closed-loop clients, 3 cheap cached reads per 1 fresh sleep job."""
    cheap_lat, fresh_lat = [], []
    errors = []

    def worker(client_id: int) -> None:
        try:
            with ServeClient(port=port, timeout=60) as client:
                for i in range(requests_per_client):
                    fresh = i % 4 == 3
                    started = time.perf_counter()
                    if fresh:
                        client.run(
                            {
                                "kind": "sleep",
                                "seconds": SLEEP_S,
                                "payload": f"c{client_id}-r{i}",
                                "tenant": f"tenant{client_id}",
                            },
                            timeout=120,
                        )
                    else:
                        client.run(
                            {
                                "kind": "containment",
                                "q1": OMQ_A,
                                "q2": OMQ_B,
                                "tenant": f"tenant{client_id}",
                            },
                            timeout=120,
                        )
                    elapsed = time.perf_counter() - started
                    (fresh_lat if fresh else cheap_lat).append(elapsed)
        except Exception as exc:  # pragma: no cover - reported below
            errors.append(f"client {client_id}: {exc!r}")

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(c,))
        for c in range(concurrency)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - started
    if errors:
        raise RuntimeError("; ".join(errors))
    total = len(cheap_lat) + len(fresh_lat)
    return {
        "concurrency": concurrency,
        "requests": total,
        "wall_s": round(wall, 3),
        "throughput_rps": round(total / wall, 1),
        "cached_containment": percentiles(cheap_lat),
        "fresh_sleep_25ms": percentiles(fresh_lat),
    }


def deadline_fast_path(port: int, rounds: int) -> dict:
    """How quickly a hopeless ``deadline_ms`` budget is refused."""
    lat = []
    with ServeClient(port=port, timeout=60) as client:
        for i in range(rounds):
            # A structurally distinct body each round (chain length i+2),
            # so no earlier rung of the ladder can answer: every request
            # exercises the upfront refusal itself.
            chain = ", ".join(
                f"R(y{j}, y{j + 1})" for j in range(i + 2)
            )
            q1 = (
                "schema: R/2, P/1\n"
                "rules:\n    P(x) -> R(x, w)\n"
                f"query: q(y0) :- {chain}, P(y{i + 2})\n"
            )
            started = time.perf_counter()
            record = client.submit(
                {
                    "kind": "containment",
                    "q1": q1,
                    "q2": OMQ_B,
                    "tenant": "impatient",
                    "deadline_ms": 1,
                }
            )
            lat.append(time.perf_counter() - started)
            assert record["error"] == "deadline", record
    return {"rounds": rounds, **percentiles(lat)}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="CI smoke sizes")
    ap.add_argument(
        "--requests", type=int, default=None,
        help="requests per client (default 80, quick 12)",
    )
    ap.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_serve.json"
        ),
    )
    args = ap.parse_args()
    per_client = args.requests or (12 if args.quick else 80)

    report = {
        "bench": "serve",
        "sleep_service_time_ms": SLEEP_S * 1000,
        "mix": "3 cached containment : 1 fresh sleep",
        "levels": [],
    }
    with _Replica() as replica:
        port = replica.server.port
        # Warm the cache so "cheap" requests measure rung 2, not rung 4.
        with ServeClient(port=port, timeout=60) as client:
            client.run(
                {"kind": "containment", "q1": OMQ_A, "q2": OMQ_B},
                timeout=120,
            )
        for concurrency in CONCURRENCY_LEVELS:
            level = drive(port, concurrency, per_client)
            report["levels"].append(level)
            print(
                f"concurrency {concurrency}: "
                f"{level['throughput_rps']} req/s, cached p50 "
                f"{level['cached_containment']['p50_ms']}ms / p99 "
                f"{level['cached_containment']['p99_ms']}ms",
                file=sys.stderr,
            )
        report["deadline_degrade"] = deadline_fast_path(
            port, 10 if args.quick else 50
        )

    Path(args.out).write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )
    print(json.dumps(report, indent=2))

    # Sanity floor, not a performance gate: the serving tier must not
    # add whole-second overheads to sub-30ms work.
    worst = max(
        level["cached_containment"]["p99_ms"] for level in report["levels"]
    )
    if worst > 2000:
        print(f"FAIL: cached p99 {worst}ms is pathological", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
