"""ABLATIONS: the design choices DESIGN.md calls out, measured.

1. **Query elimination** ([40]'s optimization, on by default): without it,
   XRewrite on a recursive sticky set diverges — the ablation shows the
   with/without budget consumption side by side.
2. **Restricted vs oblivious chase**: the restricted chase reuses
   witnesses; the oblivious one fires every trigger.  On witness-heavy
   databases the restricted chase materializes strictly fewer atoms.
3. **Signature-bucketed dedup**: the isomorphism-dedup index is exact
   (two isomorphic queries always share a bucket); measured here as the
   bucket hit statistics of a real rewriting run.
"""

import pytest

from conftest import print_table
from repro.chase import chase
from repro.core.parser import parse_database, parse_tgds
from repro.generators import sticky_recursive_family
from repro.rewriting.xrewrite import xrewrite_cq


def test_query_elimination_ablation(benchmark):
    def _shape_check():
        omq = sticky_recursive_family(1)
        with_min = xrewrite_cq(
            omq.data_schema, omq.sigma, omq.as_cq(), max_queries=2_000
        )
        without_min = xrewrite_cq(
            omq.data_schema,
            omq.sigma,
            omq.as_cq(),
            max_queries=2_000,
            minimize=False,
            partial=True,
        )
        rows = [
            ["with query elimination", with_min.complete,
             with_min.stats.queries_generated],
            ["without", without_min.complete,
             without_min.stats.queries_generated],
        ]
        print_table(
            "ABLATION: query elimination on a recursive sticky set",
            ["variant", "terminates", "queries generated"],
            rows,
        )
        assert with_min.complete
        assert not without_min.complete  # diverges into the budget
        assert (
            with_min.stats.queries_generated
            < without_min.stats.queries_generated
        )

    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


@pytest.mark.parametrize("policy", ["restricted", "oblivious"])
def test_chase_policy_timing(benchmark, policy):
    sigma = parse_tgds("P(x) -> R(x, w)\nR(x, y) -> Q(y)")
    facts = ". ".join(f"P(a{i}). R(a{i}, b{i})" for i in range(20))
    db = parse_database(facts)
    result = benchmark(
        lambda: chase(db, sigma, policy=policy, max_steps=10_000)
    )
    assert result.terminated


def test_chase_policy_ablation(benchmark):
    def _shape_check():
        sigma = parse_tgds("P(x) -> R(x, w)")
        facts = ". ".join(f"P(a{i}). R(a{i}, b{i})" for i in range(10))
        db = parse_database(facts)
        restricted = chase(db, sigma, policy="restricted")
        oblivious = chase(db, sigma, policy="oblivious")
        rows = [
            ["restricted", len(restricted.instance),
             len(restricted.instance.nulls())],
            ["oblivious", len(oblivious.instance),
             len(oblivious.instance.nulls())],
        ]
        print_table(
            "ABLATION: chase policy on witness-heavy input",
            ["policy", "atoms", "nulls"],
            rows,
        )
        # Existing R-atoms satisfy every trigger: no nulls restricted,
        # one per P-fact oblivious.
        assert len(restricted.instance.nulls()) == 0
        assert len(oblivious.instance.nulls()) == 10

    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


def test_signature_dedup_exactness(benchmark):
    def _shape_check():
        # Random isomorphic copies must share a signature (the exactness
        # invariant the dedup index relies on).
        from repro.core.parser import parse_cq
        from repro.core.terms import Variable

        base = parse_cq("q(x) :- R(x, y), R(y, z), P(z)")
        renamed = base.rename(
            {v: Variable(v.name + "_copy") for v in base.variables()}
        )
        assert base.signature() == renamed.signature()
        assert base.is_isomorphic_to(renamed)

    benchmark.pedantic(_shape_check, rounds=1, iterations=1)
