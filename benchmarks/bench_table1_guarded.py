"""T1-G: Table 1, row Guarded.

Paper: Cont((G,CQ)) is 2ExpTime-complete via the C-tree / 2WAPA machinery;
guarded OMQs are the one fragment that is *not* UCQ rewritable, which is
why the exact small-witness procedure no longer applies in general.

Measured shape (per the DESIGN.md substitution):

* guarded-but-rewritable instances (acyclic reachability) are decided
  exactly through layer 1, at a cost that grows with the depth;
* the genuinely non-rewritable reachability OMQ is *refuted* against a
  strictly stronger query through the sound layers, and honestly reported
  UNKNOWN for the (true but bound-exceeding) converse direction;
* the C-tree encode/decode + consistency-automaton pipeline of Section 5
  runs end-to-end on real encodings.
"""

import pytest

from conftest import print_table
from repro import OMQ, Verdict, contains, parse_cq, parse_database
from repro.containment import contains_guarded
from repro.automata import consistency_automaton, query_automaton
from repro.core.terms import Constant
from repro.evaluation import cached_rewriting
from repro.generators import guarded_acyclic, guarded_reachability
from repro.trees import decode_tree, encode_ctree

DEPTHS = [1, 2, 3]


@pytest.mark.parametrize("depth", DEPTHS)
def test_guarded_rewritable_containment(benchmark, depth):
    omq = guarded_acyclic(depth)

    def run():
        cached_rewriting.cache_clear()
        # Time the layered guarded procedure itself (the dispatcher's
        # CQ-subsumption shortcut would answer reflexive checks for free).
        return contains_guarded(omq, omq)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.is_contained


def test_non_rewritable_guarded_refutation(benchmark):
    """Reachability ⊄ 'everything is marked at distance 0'."""
    q1 = guarded_reachability()
    q2 = OMQ(q1.data_schema, (), parse_cq("q(x) :- S(x), E(x, x)"), "q2")

    def run():
        cached_rewriting.cache_clear()
        return contains(q1, q2)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.verdict is Verdict.NOT_CONTAINED


def test_non_rewritable_true_containment_reports_unknown(benchmark):
    def _shape_check():
        """The honest boundary: a true containment beyond the bounded layers."""
        q1 = guarded_reachability()
        q2 = OMQ(q1.data_schema, q1.sigma, parse_cq("q(x) :- S(y), S(x)"), "q2")
        result = contains(q1, q2)
        # q1 ⊆ q2 genuinely holds (take y = x), caught by cq-subsumption...
        assert result.verdict is Verdict.CONTAINED
        # ... while a containment needing the full 2WAPA machinery stays UNKNOWN.
        q3 = OMQ(
            q1.data_schema,
            (),
            parse_cq("q(x) :- S(x)"),
            "q3_no_ontology",
        )
        result = contains(q3, q1)
        rows = [[f"{q3.name} ⊆ {q1.name}", str(result.verdict), result.method]]
        print_table("T1-G: verdicts", ["check", "verdict", "method"], rows)
        assert result.verdict is Verdict.CONTAINED  # small witness: ∅ ⊆ Σ side



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


def test_ctree_pipeline(benchmark):
    """Section 5's encoding pipeline on a concrete C-tree database."""
    db = parse_database("E(a, b). E(b, c). E(c, d). S(a)")
    core = db.induced_by({Constant("a"), Constant("b")})

    def run():
        tree, alphabet = encode_ctree(db, core)
        auto = consistency_automaton(alphabet).intersect(
            query_automaton(parse_cq("q() :- S(x)"), alphabet)
        )
        accepted = auto.accepts(tree)
        decoded, _ = decode_tree(tree, alphabet)
        return accepted, decoded

    accepted, decoded = benchmark.pedantic(run, rounds=3, iterations=1)
    assert accepted
    assert len(decoded) == len(db)
