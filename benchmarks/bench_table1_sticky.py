"""T1-S: Table 1, row Sticky.

Paper: Cont((S,CQ)) is coNExpTime-complete, Π2p-complete for fixed arity;
the applicability discussion stresses that the runtime is
double-exponential *only in the maximum arity of the data schema*
(Proposition 17's bound ``|S| · (|T(q)| + |C(Σ)| + 1)^{ar(S)}``).

Measured shape: the f_S witness-space bound grows exponentially in the
arity sweep while staying polynomial in the ontology-size sweep; actual
containment checks on the arity family remain decidable and exact.
"""

import pytest

from conftest import is_roughly_doubling, is_roughly_flat, print_table
from repro import contains
from repro.containment import contains_via_small_witness
from repro.evaluation import cached_rewriting
from repro.generators import sticky_arity_family
from repro.core.parser import parse_cq, parse_tgds
from repro.core.omq import OMQ
from repro.core.schema import Schema
from repro.rewriting import f_sticky

ARITIES = [2, 3, 4, 5]


@pytest.mark.parametrize("arity", ARITIES)
def test_containment_by_arity(benchmark, arity):
    omq = sticky_arity_family(arity)

    def run():
        cached_rewriting.cache_clear()
        return contains_via_small_witness(omq, omq)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.is_contained


def _sticky_ontology_size_family(n_rules: int) -> OMQ:
    """Sticky family where the *ontology* grows but the arity is fixed."""
    lines = ["R(x, y) -> S_0(x, y, w)"]
    for i in range(n_rules):
        lines.append(f"S_{i}(x, y, z) -> S_{i+1}(x, y, z)")
    sigma = parse_tgds("\n".join(lines))
    query = parse_cq(f"q() :- S_{n_rules}(x, y, z)")
    return OMQ(Schema.of(R=2), sigma, query, f"sticky_rules_{n_rules}")


def test_bound_exponential_in_arity_only(benchmark):
    def _shape_check():
        """Prop 17 shape: f_S doubles per arity step, flat per ontology step."""
        arity_bounds = []
        rows = []
        for arity in ARITIES:
            omq = sticky_arity_family(arity)
            bound = f_sticky(omq)
            measured = cached_rewriting(omq, 20_000).rewriting.max_disjunct_size()
            arity_bounds.append(bound)
            rows.append([f"ar={arity}", measured, bound])
            assert measured <= bound
        print_table(
            "T1-S: witness bound vs data arity (paper: double-exp in ar(S) only)",
            ["sweep", "max disjunct", "f_S bound"],
            rows,
        )
        assert is_roughly_doubling(arity_bounds)

        size_bounds = []
        rows = []
        for n_rules in (1, 2, 4, 8):
            omq = _sticky_ontology_size_family(n_rules)
            bound = f_sticky(omq)
            measured = cached_rewriting(omq, 20_000).rewriting.max_disjunct_size()
            size_bounds.append(bound)
            rows.append([f"rules={n_rules}", measured, bound])
            assert measured <= bound
        print_table(
            "T1-S: witness bound vs ontology size (paper: polynomial)",
            ["sweep", "max disjunct", "f_S bound"],
            rows,
        )
        assert is_roughly_flat(size_bounds)



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


def test_sticky_containment_is_exact(benchmark):
    def _shape_check():
        """Sanity: the small-witness procedure decides the sticky family."""
        left = sticky_arity_family(3)
        result = contains(left, left)
        assert result.decided and result.is_contained

    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


