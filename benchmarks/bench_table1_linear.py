"""T1-L: Table 1, row Linear.

Paper: Cont((L,CQ)) is PSpace-complete (Π2p for fixed arity) and — the
applicability discussion — the runtime is single-exponential only in the
size of the UCQs and the arity, *not* in the ontology.  Eval(L,CQ) has the
same complexity: linear is the one row where containment is no harder than
evaluation.

Measured shape:

* witness databases stay bounded by |q| (Proposition 12) as the *ontology*
  grows — the witness series is flat in the chain length;
* containment time grows modestly with ontology size (polynomial-looking),
  in contrast to the doubling series of the NR/sticky benches.
"""

import pytest

from conftest import is_roughly_flat, print_table
from repro.containment import contains_via_small_witness
from repro.evaluation import cached_rewriting
from repro.generators import linear_chain, linear_witness_family
from repro.rewriting import f_linear

CHAIN_LENGTHS = [2, 4, 8, 16]
QUERY_SIZES = [1, 2, 3, 4]


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_containment_scales_with_ontology(benchmark, length):
    """Self-containment of a linear chain OMQ as the ontology grows."""
    omq = linear_chain(length)

    def run():
        cached_rewriting.cache_clear()
        # Call the small-witness procedure directly so the timing reflects
        # Theorem 11's algorithm, not the CQ-subsumption shortcut.
        return contains_via_small_witness(omq, omq)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.is_contained


@pytest.mark.parametrize("size", QUERY_SIZES)
def test_rewriting_scales_with_query(benchmark, size):
    """XRewrite of a path query of growing size (the PSpace driver)."""
    omq = linear_witness_family(size)

    def run():
        cached_rewriting.cache_clear()
        return cached_rewriting(omq, 20_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.complete


def test_witness_size_flat_in_ontology(benchmark):
    def _shape_check():
        """Prop 12 shape: witnesses track |q|, not the ontology size."""
        rows = []
        witness_sizes = []
        for length in CHAIN_LENGTHS:
            omq = linear_chain(length)
            rewriting = cached_rewriting(omq, 20_000)
            measured = rewriting.rewriting.max_disjunct_size()
            bound = f_linear(omq)
            witness_sizes.append(measured)
            rows.append([length, measured, bound])
            assert measured <= bound
        print_table(
            "T1-L: witness size vs ontology size (paper: bounded by |q|)",
            ["chain length", "max disjunct", "f_L bound"],
            rows,
        )
        assert is_roughly_flat(witness_sizes)



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


def test_witness_size_tracks_query(benchmark):
    def _shape_check():
        """Prop 12: witnesses grow (at most linearly) with the query."""
        rows = []
        sizes = []
        for size in QUERY_SIZES:
            omq = linear_witness_family(size)
            rewriting = cached_rewriting(omq, 20_000)
            measured = rewriting.rewriting.max_disjunct_size()
            sizes.append(measured)
            rows.append([size, measured, f_linear(omq)])
            assert measured <= f_linear(omq)
        print_table(
            "T1-L: witness size vs query size",
            ["|q|", "max disjunct", "f_L bound"],
            rows,
        )
        assert sizes == QUERY_SIZES  # exactly |q| for the path family

    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


