"""SEC6: Section 6 — containment across different OMQ languages.

Paper: when the LHS is UCQ-rewritable, the small-witness algorithm decides
Cont(O1, O2) for every decidable-evaluation O2 (Theorem 11); when the LHS
is guarded the automata machinery takes over (Theorem 26: 2ExpTime for
RHS ∈ {L, S}, 3ExpTime for NR).

Measured: the dispatcher decides every LHS-rewritable pair exactly; the
guarded-LHS pairs are decided by the layered procedure where its bounded
layers reach, with verdicts cross-checked per pair.
"""

import pytest

from conftest import print_table
from repro import OMQ, Verdict, contains, parse_cq, parse_tgds
from repro.core.schema import Schema
from repro.evaluation import cached_rewriting
from repro.fragments import best_class

SCHEMA = Schema.of(E=2, P=1)

#: One representative ontology per language, all over the same data schema.
LANGS = {
    "L": parse_tgds("E(x, y) -> P(y)\nP(x) -> Q(x)"),
    "NR": parse_tgds("E(x, y), P(x) -> M(y)\nM(x) -> Q(x)"),
    "S": parse_tgds("E(x, y), P(y) -> J(x, y)\nJ(x, y) -> Q(x)"),
    "G": parse_tgds("E(x, y), Q(x) -> Q(y)\nP(x) -> Q(x)"),
}

QUERY = "q(x) :- Q(x)"


def _omq(lang):
    return OMQ(SCHEMA, LANGS[lang], parse_cq(QUERY), name=f"Q_{lang}")


PAIRS = [(a, b) for a in LANGS for b in LANGS if a != b]


def test_cross_language_matrix(benchmark):
    def _shape_check():
        rows = []
        for left, right in PAIRS:
            q1, q2 = _omq(left), _omq(right)
            result = contains(q1, q2)
            rows.append([f"{left} ⊆ {right}", str(result.verdict), result.method])
            if left != "G":
                # Rewritable LHS must always be decided (Theorem 11).
                assert result.decided, (left, right)
        print_table(
            "SEC6: cross-language containment matrix",
            ["pair", "verdict", "method"],
            rows,
        )



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


@pytest.mark.parametrize(
    "left,right", PAIRS, ids=[f"{a}_in_{b}" for a, b in PAIRS]
)
def test_pair_timing(benchmark, left, right):
    q1, q2 = _omq(left), _omq(right)

    def run():
        cached_rewriting.cache_clear()
        return contains(q1, q2)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    if left != "G":
        assert result.decided


def test_known_verdicts(benchmark):
    def _shape_check():
        """Hand-checked entries of the matrix."""
        # Q_S answers E-sources with P-targets; Q_L answers P-holders and
        # E-targets — an E-source need be neither: not contained.
        assert contains(_omq("S"), _omq("L")).verdict is Verdict.NOT_CONTAINED
        # Q_NR answers are always E-targets, and every E-target is a Q_L
        # answer (E(x,y) → P(y) → Q(y)): contained.
        assert contains(_omq("NR"), _omq("L")).verdict is Verdict.CONTAINED
        # Q_L answers P-holders, which Q_NR need not answer: not contained.
        assert contains(_omq("L"), _omq("NR")).verdict is Verdict.NOT_CONTAINED

    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


