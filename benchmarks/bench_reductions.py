"""RED-TILING: the appendix reductions, exercised end to end.

Paper: Theorem 34 compiles exponential tiling into
Cont((FNR,CQ), (L,UCQ)); Theorem 16 compiles the Extended Tiling Problem
into Cont((NR,CQ)); Proposition 35 lifts full 0-1 OMQs into sticky ones.

Measured: on instances small enough for the brute-force tiling solvers,
the reduction verdicts match the solvers exactly (the bi-implications that
prove the constructions correct), and the construction + decision times
are recorded.
"""

import pytest

from conftest import print_table
from repro import contains
from repro.evaluation import cached_rewriting
from repro.fragments import is_sticky
from repro.reductions import (
    ETPInstance,
    TilingInstance,
    all_pairs,
    equal_pairs,
    etp_to_containment,
    full_to_sticky,
    has_solution,
    solve_etp,
    tiling_to_containment,
)

TILINGS = {
    "solvable": TilingInstance(1, 2, all_pairs(2), all_pairs(2), (1,)),
    "unsolvable": TilingInstance(1, 2, frozenset(), all_pairs(2), ()),
    "diagonal": TilingInstance(1, 2, equal_pairs(2), equal_pairs(2), (2,)),
}

ETPS = {
    "yes": ETPInstance(1, 1, 2, all_pairs(2), all_pairs(2), all_pairs(2), all_pairs(2)),
    "no": ETPInstance(1, 1, 2, all_pairs(2), all_pairs(2), frozenset(), frozenset()),
}


@pytest.mark.parametrize("name", list(TILINGS))
def test_theorem34_decision(benchmark, name):
    instance = TILINGS[name]
    q_t, q_t_prime = tiling_to_containment(instance)

    def run():
        cached_rewriting.cache_clear()
        return contains(q_t, q_t_prime)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.is_contained is (not has_solution(instance))


@pytest.mark.parametrize("name", list(ETPS))
def test_theorem16_decision(benchmark, name):
    instance = ETPS[name]
    q1, q2 = etp_to_containment(instance)

    def run():
        cached_rewriting.cache_clear()
        return contains(q1, q2)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.is_contained is solve_etp(instance)


def test_bi_implication_table(benchmark):
    def _shape_check():
        rows = []
        for name, instance in TILINGS.items():
            q_t, q_t_prime = tiling_to_containment(instance)
            verdict = contains(q_t, q_t_prime)
            rows.append(
                ["T34 " + name, has_solution(instance),
                 str(verdict.verdict), verdict.is_contained is not has_solution(instance)]
            )
        for name, instance in ETPS.items():
            q1, q2 = etp_to_containment(instance)
            verdict = contains(q1, q2)
            rows.append(
                ["T16 " + name, solve_etp(instance),
                 str(verdict.verdict), verdict.is_contained is solve_etp(instance)]
            )
        print_table(
            "RED-TILING: reduction verdicts vs brute-force solvers",
            ["instance", "solver", "containment", "agrees"],
            rows,
        )
        assert all(row[-1] for row in rows)



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


def test_prop35_lift(benchmark):
    instance = TILINGS["solvable"]
    q_t, _ = tiling_to_containment(instance)

    def run():
        lifted = full_to_sticky(q_t)
        return lifted, is_sticky(lifted.sigma)

    lifted, sticky = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sticky
