"""P12/14/17: the f_O disjunct-size bounds.

Paper: Propositions 12, 14 and 17 bound the maximal disjunct of UCQ
rewritings per fragment; these bounds drive the small-witness algorithm's
complexity for each Table 1 row.

Measured: for every family and parameter, the measured maximal disjunct of
the actual XRewrite output respects the stated bound; the table printed
records both, giving the paper-vs-measured trace for EXPERIMENTS.md.
"""

import pytest

from conftest import print_table
from repro.evaluation import cached_rewriting
from repro.generators import (
    linear_witness_family,
    non_recursive_doubling,
    sticky_arity_family,
)
from repro.rewriting import f_linear, f_non_recursive, f_sticky


def _measure(omq, budget=50_000):
    result = cached_rewriting(omq, budget)
    assert result.complete
    return result.rewriting.max_disjunct_size()


def test_prop12_linear_bound(benchmark):
    def _shape_check():
        rows = []
        for size in (1, 2, 3, 4):
            omq = linear_witness_family(size)
            measured, bound = _measure(omq), f_linear(omq)
            rows.append([size, measured, bound, measured <= bound])
            assert measured <= bound
        print_table(
            "P12: f_L(Q) ≤ |q|",
            ["|q|", "measured", "bound", "ok"],
            rows,
        )



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


def test_prop14_non_recursive_bound(benchmark):
    def _shape_check():
        rows = []
        for layers in (1, 2, 3):
            omq = non_recursive_doubling(layers)
            measured, bound = _measure(omq), f_non_recursive(omq)
            rows.append([layers, measured, bound, measured <= bound])
            assert measured <= bound
        print_table(
            "P14: f_NR(Q) ≤ |q|·(max body)^|sch(Σ)|",
            ["layers", "measured", "bound", "ok"],
            rows,
        )



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


def test_prop17_sticky_bound(benchmark):
    def _shape_check():
        rows = []
        for arity in (2, 3, 4):
            omq = sticky_arity_family(arity)
            measured, bound = _measure(omq), f_sticky(omq)
            rows.append([arity, measured, bound, measured <= bound])
            assert measured <= bound
        print_table(
            "P17: f_S(Q) ≤ |S|·(|T(q)|+|C(Σ)|+1)^ar(S)",
            ["arity", "measured", "bound", "ok"],
            rows,
        )



    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


@pytest.mark.parametrize(
    "family, param",
    [("linear", 3), ("nr", 3), ("sticky", 3)],
)
def test_rewriting_time(benchmark, family, param):
    omq = {
        "linear": linear_witness_family,
        "nr": non_recursive_doubling,
        "sticky": sticky_arity_family,
    }[family](param)

    def run():
        cached_rewriting.cache_clear()
        return cached_rewriting(omq, 50_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.complete
