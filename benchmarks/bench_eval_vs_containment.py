"""T1-EVAL: Table 1's small-font rows — containment vs evaluation.

Paper: "containment is, in general, harder than evaluation" (the small
fonts under each Table 1 cell).  The one exception called out: OMQs based
on linear tgds over unbounded-arity schemas, where both are PSpace-c.

Measured shape: on the same OMQ, a single evaluation (one database) is
cheaper than a containment check (which explores the full witness space) —
for every fragment family; the ratio grows with the fragment's witness
bound (NR > sticky > linear).
"""

import pytest

from conftest import print_table
from repro.containment import contains_via_small_witness
from repro.evaluation import cached_rewriting, evaluate_omq
from repro.generators import (
    chain_database,
    linear_chain,
    non_recursive_doubling,
    sticky_recursive_family,
)


FAMILIES = {
    "linear": (linear_chain(6), chain_database("R_0", 4)),
    "non-recursive": (
        non_recursive_doubling(3),
        None,  # database built below (leaf predicates)
    ),
    "sticky": (sticky_recursive_family(1), None),
}


def _database_for(name, omq):
    if name == "linear":
        return chain_database("R_0", 4)
    from repro.generators import random_database

    return random_database(omq.data_schema, n_constants=3, n_atoms=6, seed=3)


@pytest.mark.parametrize("name", list(FAMILIES))
def test_evaluation(benchmark, name):
    omq, _ = FAMILIES[name]
    db = _database_for(name, omq)

    def run():
        cached_rewriting.cache_clear()
        return evaluate_omq(omq, db)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.exact


@pytest.mark.parametrize("name", list(FAMILIES))
def test_containment(benchmark, name):
    omq, _ = FAMILIES[name]

    def run():
        cached_rewriting.cache_clear()
        return contains_via_small_witness(omq, omq, rewriting_budget=20_000)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.is_contained


def test_containment_explores_more_than_evaluation(benchmark):
    def _shape_check():
        """Qualitative check: containment work ⊇ evaluation work.

        The containment check evaluates the RHS on every rewriting disjunct of
        the LHS, so its database-evaluation count is ≥ 1 (= one evaluation).
        """
        import time

        rows = []
        for name, (omq, _) in FAMILIES.items():
            db = _database_for(name, omq)
            cached_rewriting.cache_clear()
            t0 = time.perf_counter()
            evaluate_omq(omq, db)
            eval_time = time.perf_counter() - t0
            cached_rewriting.cache_clear()
            t0 = time.perf_counter()
            contains_via_small_witness(omq, omq, rewriting_budget=20_000)
            cont_time = time.perf_counter() - t0
            rows.append(
                [name, f"{eval_time*1e3:.1f}ms", f"{cont_time*1e3:.1f}ms",
                 f"{cont_time/max(eval_time, 1e-9):.1f}x"]
            )
        print_table(
            "T1-EVAL: evaluation vs containment cost",
            ["fragment", "eval", "containment", "ratio"],
            rows,
        )

    benchmark.pedantic(_shape_check, rounds=1, iterations=1)


