#!/usr/bin/env python3
"""OBDA query optimization via OMQ containment.

The classical application from the introduction: a mediator exposes a
university ontology over heterogeneous sources; the user's query arrives as
a union of alternatives, and the optimizer uses *containment under the
ontology* to drop redundant disjuncts and to recognize when an expensive
query can be answered by a cheaper, already-cached one.

Run:  python examples/query_optimization.py
"""

from repro import (
    OMQ,
    Schema,
    Verdict,
    contains,
    evaluate_omq,
    parse_cq,
    parse_database,
    parse_tgds,
)
from repro.fragments import best_class

# A small university ontology (linear tgds = inclusion dependencies).
sigma = parse_tgds(
    """
    % Every professor and every lecturer is teaching staff.
    Professor(x) -> Staff(x)
    Lecturer(x)  -> Staff(x)
    % Teaching staff teach something.
    Staff(x) -> Teaches(x, w)
    % Whoever teaches something is employed by some department.
    Teaches(x, y) -> WorksFor(x, w)
    % Course assignments record the course too.
    Assigned(x, c) -> Teaches(x, c)
    """
)
schema = Schema.of(Professor=1, Lecturer=1, Assigned=2)
print("ontology class:", best_class(sigma))

def omq(text, name):
    return OMQ(schema, sigma, parse_cq(text), name=name)

# The user asks: "who works for some department?"  Several formulations
# arrive from different client tools.
candidates = [
    omq("q(x) :- WorksFor(x, d)", "q_direct"),
    omq("q(x) :- Teaches(x, c), WorksFor(x, d)", "q_joined"),
    omq("q(x) :- Professor(x), WorksFor(x, d)", "q_prof_only"),
]

# Optimization 1: drop candidates subsumed by a kept one (they can never
# return more answers, so evaluating them is wasted work).
kept = []
for candidate in candidates:
    subsumed_by = None
    for other in kept:
        if contains(candidate, other).verdict is Verdict.CONTAINED:
            subsumed_by = other
            break
    if subsumed_by is None:
        kept = [
            k for k in kept
            if contains(k, candidate).verdict is not Verdict.CONTAINED
        ]
        kept.append(candidate)
    else:
        print(f"dropping {candidate.name}: contained in {subsumed_by.name}")
print("kept queries:", [q.name for q in kept])

# Optimization 2: the ontology makes the join redundant —
# q_joined ≡ q_direct because Teaches is implied by WorksFor's provenance.
direct, joined = candidates[0], candidates[1]
fwd = contains(joined, direct)
bwd = contains(direct, joined)
print(f"\n{joined.name} ⊆ {direct.name}: {fwd.verdict}")
print(f"{direct.name} ⊆ {joined.name}: {bwd.verdict}")

# Evaluate the surviving query over a concrete source.
database = parse_database(
    """
    Professor(turing)
    Lecturer(hopper)
    Assigned(wilkes, edsac101)
    """
)
answers = evaluate_omq(direct, database)
print(f"\nanswers to {direct.name} (via {answers.method}):")
for tup in sorted(answers.answers, key=str):
    print("  ", tup[0].name)
assert len(answers.answers) == 3  # everyone works for some department

# Optimization 3: containment-powered atom pruning inside one query.
from repro import minimize_query

bloated = omq(
    "q(x) :- WorksFor(x, d), Teaches(x, c), Staff(x)", "q_bloated"
)
minimized, report = minimize_query(bloated)
print(f"\nminimizing {bloated.name}: {report}")
print("  before:", bloated.query)
print("  after: ", minimized.query)

# And explain a certain answer end to end (terminating-chase ontology).
from repro import explain_answer, format_explanation
from repro.core.terms import Constant

explanation = explain_answer(direct, database, (Constant("wilkes"),))
print("\nwhy is wilkes an answer?")
print(format_explanation(explanation))
