#!/usr/bin/env python3
"""The lower-bound machinery: tiling reductions and witness families.

Walks through the appendix constructions:

1. Theorem 34 — a tiling problem compiled into a containment question
   between a full non-recursive OMQ and a linear UCQ-OMQ; the tiling is
   solvable iff containment FAILS, and the counterexample database *is* a
   tiling of the grid.
2. Theorem 16 — an Extended Tiling Problem instance compiled into
   containment of non-recursive OMQs.
3. Proposition 18 — the sticky family whose smallest witness database is
   exponential (2^(n-2) facts).

Run:  python examples/tiling_reductions.py
"""

from repro import contains
from repro.reductions import (
    ETPInstance,
    TilingInstance,
    all_pairs,
    equal_pairs,
    etp_to_containment,
    expected_witness_size,
    full_to_sticky,
    has_solution,
    minimal_satisfying_database,
    prop18_family,
    solve_etp,
    tiling_to_containment,
)
from repro.fragments import is_linear, is_non_recursive, is_sticky

# ---------------------------------------------------------------------------
print("— Theorem 34: tiling → Cont((FNR,CQ),(L,UCQ)) —")
tiling = TilingInstance(
    n=1, m=2,
    horizontal=equal_pairs(2),   # tiles must repeat horizontally
    vertical=equal_pairs(2),     # ... and vertically
    initial=(2,),                # first cell must be tile 2
)
print(f"2x2 grid, diagonal relations, initial {tiling.initial}:",
      "solvable" if has_solution(tiling) else "unsolvable")

q_t, q_t_prime = tiling_to_containment(tiling)
print(f"Q_T: {len(q_t.sigma)} full non-recursive tgds "
      f"(FNR: {is_non_recursive(q_t.sigma)})")
print(f"Q'_T: {len(q_t_prime.sigma)} linear tgds, "
      f"{len(q_t_prime.as_ucq())} violation disjuncts "
      f"(linear: {is_linear(q_t_prime.sigma)})")

result = contains(q_t, q_t_prime)
print("Q_T ⊆ Q'_T?", result.verdict,
      "⇒ tiling", "solvable" if not result.is_contained else "unsolvable")
if result.witness:
    print("the witness database is a tiling of the grid:")
    for atom in sorted(result.witness.database, key=str):
        print("   ", atom)

# The sticky lift (Proposition 35): the same check, sticky LHS.
sticky_q_t = full_to_sticky(q_t)
print("\nProposition 35 lift: sticky?", is_sticky(sticky_q_t.sigma))

# ---------------------------------------------------------------------------
print("\n— Theorem 16: ETP → Cont((NR,CQ)) —")
etp = ETPInstance(
    k=1, n=1, m=2,
    h1=all_pairs(2), v1=all_pairs(2),   # T1 always solvable ...
    h2=equal_pairs(2), v2=equal_pairs(2),  # ... T2 needs constant tilings
)
print("ETP answer (brute force):", solve_etp(etp))
q1, q2 = etp_to_containment(etp)
verdict = contains(q1, q2)
print("Q1 ⊆ Q2?", verdict.verdict, "— matches" if
      verdict.is_contained == solve_etp(etp) else "— MISMATCH")

# ---------------------------------------------------------------------------
print("\n— Proposition 18: exponential witnesses —")
for n in range(2, 6):  # n = 6 works too but takes minutes (2^4-atom disjuncts)
    family = prop18_family(n)
    witness = minimal_satisfying_database(family)
    print(f"  n={n}: smallest database with Q^n ≠ ∅ has "
          f"{len(witness)} facts (expected 2^(n-2) = "
          f"{expected_witness_size(n)})")
