#!/usr/bin/env python3
"""The Section 5 machinery: C-trees, encodings, and tree automata.

Guarded OMQ containment is decided in the paper over *C-tree* databases —
a cyclic core with tree-shaped attachments — encoded as labeled trees and
processed by two-way alternating parity automata (2WAPA).  This example
walks the pipeline on a concrete database:

1. build a C-tree decomposition (GYO join-tree construction),
2. encode it into a Γ_{S,l}-labeled tree and check the five consistency
   conditions (Lemma 41),
3. run the consistency automaton C_{S,l} (Lemma 23) and a query automaton
   A_{q,l} (Lemma 48) — and intersect them as in Proposition 25,
4. decode the tree back and cross-validate against direct evaluation.

Run:  python examples/guarded_machinery.py
"""

from repro import parse_cq, parse_database
from repro.automata import (
    consistency_automaton,
    find_accepted_tree,
    query_automaton,
)
from repro.core.terms import Constant
from repro.trees import (
    consistency_violations,
    decode_tree,
    encode_ctree,
    try_build_ctree_decomposition,
)
from repro.trees.ctree import TreeLabel

# A database with a 3-cycle core and a tree hanging off it.
database = parse_database(
    """
    R(a, b). R(b, c). R(c, a)       % the cyclic core
    R(a, d). R(d, e). P(e)          % a tree-shaped tail
    """
)
core = database.induced_by({Constant(n) for n in "abc"})
print(f"database: {len(database)} atoms; core: {len(core)} atoms")

# 1. The witnessing decomposition (Definition 2).
decomposition = try_build_ctree_decomposition(database, core)
print("\nC-tree decomposition bags:")
for node in decomposition.tree.nodes():
    bag = ", ".join(sorted(str(t) for t in decomposition.bag(node)))
    print(f"  node {node or 'ε'}: {{{bag}}}")

# 2. Encode into a Γ_{S,l}-labeled tree.
tree, alphabet = encode_ctree(database, core, decomposition)
print(f"\nencoded: {len(tree)} nodes over Γ_(S,{alphabet.core_size})")
print(f"  core names: {alphabet.core_names}")
print(f"  transient names: {alphabet.transient_names}")
assert not consistency_violations(tree, alphabet)
print("  consistency: all five conditions hold")

# 3. Automata: consistency ∩ query (the Proposition 25 shape).
c_automaton = consistency_automaton(alphabet)
q_automaton = query_automaton(parse_cq("q() :- P(x)"), alphabet)
product = c_automaton.intersect(q_automaton)
print(f"\nC_(S,l) accepts the encoding: {c_automaton.accepts(tree)}")
print(f"A_(q,l) accepts (∃x P(x) holds): {q_automaton.accepts(tree)}")
print(f"product accepts: {product.accepts(tree)}")

# Tamper with the encoding: the consistency automaton must reject.
tampered = tree.relabel(
    lambda node, label: TreeLabel(label.names, frozenset(), label.atoms)
)
print(f"C_(S,l) accepts a tampered encoding: {c_automaton.accepts(tampered)}")

# 4. Decode and cross-validate.
decoded, decoded_core = decode_tree(tree, alphabet)
print(f"\ndecoded back: {len(decoded)} atoms, core {len(decoded_core)}")
query = parse_cq("q() :- R(x, y), P(y)")
print(
    "direct evaluation of R(x,y) ∧ P(y) on the decoding:",
    bool(query.evaluate(decoded)),
)

# Bonus: bounded emptiness — search the (tiny) label space for a tree the
# product automaton accepts, as the paper's emptiness check would.
labels = [tree.label(n) for n in tree.nodes()]
witness = find_accepted_tree(product, labels, max_depth=1, max_branching=1)
print(
    "\nbounded-emptiness probe found an accepted tree:",
    witness is not None and f"{len(witness)} nodes",
)
