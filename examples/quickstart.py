#!/usr/bin/env python3
"""Quickstart: Example 1 of the paper, end to end.

Builds the linear ontology of Example 1, UCQ-rewrites it with XRewrite,
evaluates certain answers two ways, and decides a containment — the whole
public API in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro import (
    OMQ,
    Schema,
    contains,
    equivalent,
    evaluate_omq,
    parse_cq,
    parse_database,
    parse_tgds,
    xrewrite,
)

# The ontology of Example 1: P ⊑ ∃R, R-range ⊑ P, T ⊑ P.
sigma = parse_tgds(
    """
    P(x) -> R(x, w)
    R(x, y) -> P(y)
    T(x) -> P(x)
    """
)
schema = Schema.of(P=1, T=1)  # databases only store P and T facts

# An OMQ: "which x have an R-successor that is a P?"
q1 = OMQ(schema, sigma, parse_cq("q(x) :- R(x, y), P(y)"), name="Q1")

# 1. UCQ-rewrite it: the paper's Example 1 derives P(x) ∨ T(x).
rewriting = xrewrite(q1)
print("UCQ rewriting of Q1:", rewriting.rewriting)
print(
    f"  ({rewriting.stats.rewriting_steps} rewriting steps, "
    f"{rewriting.stats.factorization_steps} factorization steps)"
)

# 2. Evaluate certain answers over a database (two strategies, same answer).
database = parse_database("T(alice). P(bob).")
via_rewriting = evaluate_omq(q1, database, method="rewriting")
print("\nQ1 over {T(alice), P(bob)}:")
for answer in sorted(via_rewriting.answers, key=str):
    print("  certain answer:", ", ".join(t.name for t in answer))

# 3. Containment: under this ontology, Q1 is equivalent to simply P(x).
q2 = OMQ(schema, sigma, parse_cq("q(x) :- P(x)"), name="Q2")
print("\nQ1 ⊆ Q2?", contains(q1, q2))
print("Q2 ⊆ Q1?", contains(q2, q1))
print("Q1 ≡ Q2?", equivalent(q1, q2))

# 4. A non-containment, with its machine-checkable witness database.
q3 = OMQ(schema, sigma, parse_cq("q(x) :- T(x)"), name="Q3")
result = contains(q2, q3)
print("\nQ2 ⊆ Q3?", result)
print("  witness database:", result.witness.database)
