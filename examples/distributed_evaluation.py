#!/usr/bin/env python3
"""Distribution over components (Section 7.1).

A monitoring OMQ is to be evaluated over a network database that naturally
splits into connected components (one per data center).  If the OMQ
*distributes over components*, each site can answer locally with zero
coordination; the static analysis of Proposition 27 decides this ahead of
deployment.

Run:  python examples/distributed_evaluation.py
"""

from repro import OMQ, Schema, parse_cq, parse_tgds
from repro.applications import (
    distributes_over_components,
    evaluate_distributed,
)
from repro.evaluation import evaluate_omq
from repro.generators import chain_database, disjoint_union, star_database

schema = Schema.of(Link=2, Alert=1)
sigma = parse_tgds(
    """
    % Alerts propagate along links (guarded).
    Link(x, y), Alert(x) -> Alert(y)
    """
)

# The network: a link-only data center and an isolated alerting sensor.
from repro.core.atoms import fact
from repro.core.instance import Instance

dc_links = disjoint_union([chain_database("Link", 3), star_database("Link", 3)])
sensor = Instance.of([fact("Alert", "sensor7")])
network = dc_links | sensor
print(f"network: {len(network)} facts, {len(network.components())} components")


def report(query_text: str, name: str) -> None:
    omq = OMQ(schema, sigma, parse_cq(query_text), name=name)
    verdict = distributes_over_components(omq)
    print(f"\n{name}: {query_text}")
    print(f"  distributes over components? {verdict.distributes}")
    print(f"  reason: {verdict.reason}")
    central = evaluate_omq(omq, network).answers
    local = evaluate_distributed(omq, network)
    print(f"  centralized answers: {len(central)}, federated answers: {len(local)}")
    if verdict.distributes:
        assert central == local, "distribution verdict must guarantee agreement"
    return None


# Connected query: distributes (q̂ = q works trivially).
report("q(x) :- Alert(x)", "alerted_nodes")

# Disconnected query: "is there an alert AND a link anywhere?" — needs both
# pieces of information, which may live on different sites: does NOT
# distribute, and the federated evaluation indeed loses answers.
report("q() :- Alert(x), Link(y, z)", "alert_and_link")

# Disconnected but redundant: one component subsumes the whole query under
# containment, so it still distributes.
report("q() :- Alert(x), Alert(y)", "two_alerts")
