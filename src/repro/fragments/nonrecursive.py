"""Non-recursive (acyclic) sets of tgds (Section 2 and appendix Lemma 32).

A set Σ is *non-recursive* iff its predicate graph — the directed graph with
an edge R → P whenever some tgd has R in its body and P in its head — is
acyclic.  Equivalently (Lemma 32, for single-head tgds) Σ admits a
*stratification*: a partition Σ1, ..., Σn with a level function
µ : sch(Σ) → {0, ..., n} such that all tgds with head predicate R live in
Σ_{µ(R)} and µ(body predicate) < µ(head predicate) for every tgd.

Non-recursiveness guarantees chase termination and therefore decidability of
evaluation (Proposition 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.tgd import TGD, predicate_graph


def is_non_recursive(sigma: Sequence[TGD]) -> bool:
    """True iff the predicate graph of Σ is acyclic (the class NR)."""
    return find_predicate_cycle(sigma) is None


def find_predicate_cycle(sigma: Sequence[TGD]) -> Optional[List[str]]:
    """A cycle in the predicate graph as a list of predicates, or None."""
    graph = predicate_graph(sigma)
    WHITE, GRAY, BLACK = 0, 1, 2
    colour: Dict[str, int] = {p: WHITE for p in graph}
    stack_path: List[str] = []

    def visit(node: str) -> Optional[List[str]]:
        colour[node] = GRAY
        stack_path.append(node)
        for succ in sorted(graph[node]):
            if colour[succ] == GRAY:
                i = stack_path.index(succ)
                return stack_path[i:] + [succ]
            if colour[succ] == WHITE:
                found = visit(succ)
                if found is not None:
                    return found
        colour[node] = BLACK
        stack_path.pop()
        return None

    for start in sorted(graph):
        if colour[start] == WHITE:
            found = visit(start)
            if found is not None:
                return found
    return None


def predicate_levels(sigma: Sequence[TGD]) -> Dict[str, int]:
    """The canonical stratification function µ (longest-path levels).

    µ(P) is 0 if nothing derives P, else 1 + max µ over body predicates of
    tgds deriving P.  Head predicates sharing a tgd are merged onto the same
    level (needed for multi-head tgds to honour Definition 3's condition 1).
    Raises ValueError if Σ is recursive.
    """
    if not is_non_recursive(sigma):
        raise ValueError("predicate levels undefined: Σ is recursive")
    predicates: Set[str] = set()
    for t in sigma:
        predicates.update(t.predicates())
    # Merge head predicates of the same tgd (union-find).
    parent: Dict[str, str] = {p: p for p in predicates}

    def find(p: str) -> str:
        while parent[p] != p:
            parent[p] = parent[parent[p]]
            p = parent[p]
        return p

    def union(p: str, q: str) -> None:
        rp, rq = find(p), find(q)
        if rp != rq:
            parent[max(rp, rq)] = min(rp, rq)

    for t in sigma:
        heads = sorted(t.head_predicates())
        for h in heads[1:]:
            union(heads[0], h)

    # Quotient graph on representatives.
    edges: Dict[str, Set[str]] = {find(p): set() for p in predicates}
    for t in sigma:
        for b in t.body_predicates():
            for h in t.head_predicates():
                edges[find(b)].add(find(h))

    levels: Dict[str, int] = {}

    def level(rep: str, trail: Tuple[str, ...] = ()) -> int:
        if rep in levels:
            return levels[rep]
        if rep in trail:
            raise ValueError(
                "head-merged predicate graph is cyclic; Σ is not stratifiable"
            )
        incoming = [
            r for r, succs in edges.items() if rep in succs and r != rep
        ]
        if rep in edges.get(rep, ()):  # self-loop
            raise ValueError("self-recursive predicate; Σ is not stratifiable")
        value = (
            0
            if not incoming
            else 1 + max(level(r, trail + (rep,)) for r in incoming)
        )
        levels[rep] = value
        return value

    for rep in sorted(edges):
        level(rep)
    return {p: levels[find(p)] for p in predicates}


def stratification(sigma: Sequence[TGD]) -> List[List[TGD]]:
    """A stratification Σ1, ..., Σn of Σ (Definition 3 / Lemma 32).

    Stratum i contains the tgds whose head predicates sit at level i of µ.
    Fact tgds (no body) land at the level of their head predicate.
    """
    mu = predicate_levels(sigma)
    max_level = max(mu.values(), default=0)
    strata: List[List[TGD]] = [[] for _ in range(max_level + 1)]
    for t in sigma:
        head_levels = {mu[p] for p in t.head_predicates()}
        if len(head_levels) != 1:  # pragma: no cover - prevented by merging
            raise ValueError(f"tgd heads span several strata: {t}")
        strata[head_levels.pop()].append(t)
    return [s for s in strata if s]


def predicate_depth(sigma: Sequence[TGD]) -> int:
    """The depth of the predicate graph (longest derivation chain).

    This is the ``n ≤ |sch(Σ)|`` that exponentiates in the f_NR bound of
    Proposition 14.
    """
    mu = predicate_levels(sigma)
    return max(mu.values(), default=0)
