"""Guardedness and linearity (Section 2).

A tgd is *guarded* if its body contains an atom — the guard — mentioning all
body variables; it is *linear* if the body is a single atom (so linear ⊆
guarded).  Fact tgds (empty body) are vacuously guarded and linear, matching
the paper's assumption that every reasonable class is closed under fact-tgd
extension (Section 3.1).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core.atoms import Atom
from ..core.tgd import TGD


def guard_of(rule: TGD) -> Optional[Atom]:
    """The (deterministically chosen) guard of a tgd, or None.

    Among all body atoms containing every body variable we return the
    lexicographically least, so repeated calls agree.
    """
    candidates = rule.guard_candidates()
    if not candidates:
        return None
    return min(candidates, key=str)


def is_guarded_tgd(rule: TGD) -> bool:
    """True iff the tgd has a guard (fact tgds are vacuously guarded)."""
    return not rule.body or guard_of(rule) is not None


def is_guarded(sigma: Iterable[TGD]) -> bool:
    """True iff every tgd in Σ is guarded (the class G)."""
    return all(is_guarded_tgd(t) for t in sigma)


def is_linear_tgd(rule: TGD) -> bool:
    """True iff the body consists of at most one atom."""
    return len(rule.body) <= 1


def is_linear(sigma: Iterable[TGD]) -> bool:
    """True iff every tgd in Σ is linear (the class L ⊆ G)."""
    return all(is_linear_tgd(t) for t in sigma)


def unguarded_tgds(sigma: Sequence[TGD]) -> list:
    """The tgds of Σ without a guard (diagnostics for error messages)."""
    return [t for t in sigma if not is_guarded_tgd(t)]


def uses_only_low_arity(sigma: Sequence[TGD], max_arity: int = 2) -> bool:
    """True iff all predicates of Σ have arity ≤ *max_arity*.

    The class G₂ of Section 7.2 is guarded tgds over unary and binary
    relations; this predicate checks the arity side of that definition.
    """
    return all(
        a.arity <= max_arity for t in sigma for a in t.body + t.head
    )
