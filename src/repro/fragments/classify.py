"""Automatic fragment classification of tgd sets and OMQs.

``classify`` reports *every* class of Table 1 a set of tgds belongs to;
``best_class`` picks the most favourable one for containment purposes, in
the order the paper's procedures prefer them: empty < linear <
non-recursive < sticky < guarded < full < arbitrary (UCQ-rewritable classes
first, since their containment procedures are exact).
"""

from __future__ import annotations

from typing import Sequence, Set

from ..core.omq import OMQ, TGDClass
from ..core.tgd import TGD
from .full import is_full, is_full_non_recursive
from .guarded import is_guarded, is_linear
from .nonrecursive import is_non_recursive
from .sticky import is_sticky


def classify(sigma: Sequence[TGD]) -> Set[TGDClass]:
    """All classes of the paper that Σ belongs to."""
    classes: Set[TGDClass] = {TGDClass.ARBITRARY}
    if not sigma:
        classes.add(TGDClass.EMPTY)
    if is_linear(sigma):
        classes.add(TGDClass.LINEAR)
    if is_guarded(sigma):
        classes.add(TGDClass.GUARDED)
    if is_non_recursive(sigma):
        classes.add(TGDClass.NON_RECURSIVE)
    if is_sticky(sigma):
        classes.add(TGDClass.STICKY)
    if is_full(sigma):
        classes.add(TGDClass.FULL)
    if is_full_non_recursive(sigma):
        classes.add(TGDClass.FULL_NON_RECURSIVE)
    return classes


#: Preference order for choosing a decision procedure: exact (UCQ-rewritable)
#: classes first, cheapest witness bounds first.
_PREFERENCE = (
    TGDClass.EMPTY,
    TGDClass.LINEAR,
    TGDClass.FULL_NON_RECURSIVE,
    TGDClass.NON_RECURSIVE,
    TGDClass.STICKY,
    TGDClass.GUARDED,
    TGDClass.FULL,
    TGDClass.ARBITRARY,
)


def best_class(sigma: Sequence[TGD]) -> TGDClass:
    """The most favourable class of Σ for containment checking."""
    classes = classify(sigma)
    for candidate in _PREFERENCE:
        if candidate in classes:
            return candidate
    return TGDClass.ARBITRARY  # pragma: no cover - ARBITRARY always present


def classify_omq(q: OMQ) -> Set[TGDClass]:
    """All classes the OMQ's ontology belongs to."""
    return classify(q.sigma)


def is_in_language(q: OMQ, cls: TGDClass) -> bool:
    """Does the OMQ fall in the language (cls, (U)CQ)?"""
    return cls in classify(q.sigma)
