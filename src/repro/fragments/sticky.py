"""Sticky sets of tgds: the marking procedure (appendix, Definitions 4–5).

Stickiness captures joins that guarded tgds cannot express, without forcing
chase termination.  The definition marks body variables that may violate the
semantic "stick to every inferred atom" property:

* **Base step** — a body variable of τ is marked if some head atom of τ
  omits it.
* **Inductive step** — marking propagates from head to body: if a head atom
  α of τ contains x, and some tgd τ' has a body atom β over the same
  predicate whose variables at the positions ``pos(α, x)`` are all marked,
  then x is marked.

Σ is *sticky* iff no tgd contains two occurrences of a marked variable in
its body.  Figure 1 of the paper illustrates the procedure; the test suite
reproduces it literally.

The definition assumes tgds do not share variables; we rename apart
internally, so callers may pass any set.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..core.terms import Variable
from ..core.tgd import TGD, rename_set_apart


#: A marked occurrence: (index of the tgd in Σ, the body variable).
MarkedVariable = Tuple[int, Variable]


def marked_variables(sigma: Sequence[TGD]) -> Set[MarkedVariable]:
    """Run the marking fixpoint and return the marked (tgd, variable) pairs.

    Indices refer to positions in *sigma* as given.
    """
    renamed = rename_set_apart(sigma)
    marked: Set[Tuple[int, Variable]] = set()

    # Base step: variable in body of τ missing from some head atom of τ.
    for i, rule in enumerate(renamed):
        for x in rule.body_variables():
            if any(x not in a.variables() for a in rule.head):
                marked.add((i, x))

    # Inductive step, to fixpoint.
    changed = True
    while changed:
        changed = False
        for i, rule in enumerate(renamed):
            for x in rule.body_variables():
                if (i, x) in marked:
                    continue
                if _propagates(renamed, i, x, marked):
                    marked.add((i, x))
                    changed = True
    return marked


def _propagates(
    sigma: Sequence[TGD],
    i: int,
    x: Variable,
    marked: Set[Tuple[int, Variable]],
) -> bool:
    """Does Definition 4's inductive condition mark x (a body var of σ_i)?

    Convention on constants: a constant occurring in β at a position of
    ``pos(α, x)`` *blocks* the propagation through β.  This is the reading
    required for Proposition 35 ("lossless sets of tgds are sticky") to
    hold — lossless rules never drop a value, so nothing may end up
    marked; the vacuous reading would mark join variables through
    constant-padded atoms and falsely reject lossless sets.
    """
    rule = sigma[i]
    for alpha in rule.head:
        positions = alpha.positions_of(x)
        if not positions:
            continue
        for j, other in enumerate(sigma):
            for beta in other.body:
                if beta.predicate != alpha.predicate:
                    continue
                if beta.arity != alpha.arity:
                    continue
                if all(
                    isinstance(beta.args[p], Variable)
                    and (j, beta.args[p]) in marked
                    for p in positions
                ):
                    return True
    return False


def sticky_violations(sigma: Sequence[TGD]) -> List[Tuple[int, Variable]]:
    """The (tgd index, variable) pairs witnessing non-stickiness.

    A violation is a *marked* body variable occurring more than once in the
    body of its tgd (Definition 5).  Variables are reported under their
    renamed-apart identity's original name where possible.
    """
    renamed = rename_set_apart(sigma)
    marked = marked_variables(sigma)
    violations: List[Tuple[int, Variable]] = []
    for i, rule in enumerate(renamed):
        counts: Dict[Variable, int] = {}
        for a in rule.body:
            for t in a.args:
                if isinstance(t, Variable):
                    counts[t] = counts.get(t, 0) + 1
        for x, c in counts.items():
            if c > 1 and (i, x) in marked:
                violations.append((i, x))
    return violations


def is_sticky(sigma: Sequence[TGD]) -> bool:
    """True iff Σ is sticky (the class S)."""
    return not sticky_violations(sigma)


def is_lossless(sigma: Sequence[TGD]) -> bool:
    """True iff every tgd is lossless (all body variables occur in the head).

    The appendix (proof of Theorem 19, step 2) uses that sets of lossless
    tgds are sticky; Proposition 35 produces exactly such sets.
    """
    return all(t.is_lossless() for t in sigma)
