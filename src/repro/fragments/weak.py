"""Weakly acyclic sets of tgds (Fagin et al. [35]).

The paper mentions the *weak* relaxations (weakly guarded, weakly acyclic,
weakly sticky) only to rule their containment problems out via Proposition 8
— they all extend full tgds.  We still implement weak acyclicity because it
is the standard chase-termination guarantee and lets the library decide,
ahead of time, whether an arbitrary ontology admits a terminating chase.

The dependency graph has a node for every *position* ``R[i]`` of ``sch(Σ)``.
For every tgd and every frontier variable x occurring at body position p:

* a **regular edge** p → q for every head position q where x occurs,
* a **special edge** p ⇒ q for every head position q holding an
  existential variable of the same tgd's head atom.

Σ is weakly acyclic iff no cycle goes through a special edge; the chase then
terminates on every database.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..core.terms import Variable
from ..core.tgd import TGD

Position = Tuple[str, int]


def dependency_graph(
    sigma: Sequence[TGD],
) -> Tuple[Set[Tuple[Position, Position]], Set[Tuple[Position, Position]]]:
    """The (regular, special) edge sets of the dependency graph of Σ."""
    regular: Set[Tuple[Position, Position]] = set()
    special: Set[Tuple[Position, Position]] = set()
    for rule in sigma:
        existentials = rule.existential_variables()
        body_positions: Dict[Variable, List[Position]] = {}
        for a in rule.body:
            for i, t in enumerate(a.args):
                if isinstance(t, Variable):
                    body_positions.setdefault(t, []).append((a.predicate, i))
        for x, sources in body_positions.items():
            if x not in rule.head_variables():
                continue
            for a in rule.head:
                for i, t in enumerate(a.args):
                    target = (a.predicate, i)
                    if t == x:
                        for p in sources:
                            regular.add((p, target))
                    elif isinstance(t, Variable) and t in existentials:
                        if x in a.variables() or any(
                            x in h.variables() for h in rule.head
                        ):
                            for p in sources:
                                special.add((p, target))
    return regular, special


def affected_positions(sigma: Sequence[TGD]) -> Set[Position]:
    """The *affected* positions of Σ (Calì–Gottlob–Kifer [24]).

    A position may host labeled nulls during the chase iff it is affected:
    either an existential variable occurs there in some head, or a frontier
    variable occurs there in some head while *all* of its body occurrences
    sit at affected positions.  Computed as a least fixpoint.
    """
    affected: Set[Position] = set()
    for rule in sigma:
        existentials = rule.existential_variables()
        for a in rule.head:
            for i, t in enumerate(a.args):
                if isinstance(t, Variable) and t in existentials:
                    affected.add((a.predicate, i))
    changed = True
    while changed:
        changed = False
        for rule in sigma:
            body_positions: Dict[Variable, List[Position]] = {}
            for a in rule.body:
                for i, t in enumerate(a.args):
                    if isinstance(t, Variable):
                        body_positions.setdefault(t, []).append(
                            (a.predicate, i)
                        )
            for a in rule.head:
                for i, t in enumerate(a.args):
                    if not isinstance(t, Variable):
                        continue
                    target = (a.predicate, i)
                    if target in affected:
                        continue
                    occurrences = body_positions.get(t)
                    if occurrences and all(
                        p in affected for p in occurrences
                    ):
                        affected.add(target)
                        changed = True
    return affected


def is_weakly_guarded(sigma: Sequence[TGD]) -> bool:
    """Weak guardedness [24]: guard only the *harmful* body variables.

    A body variable is harmful if all of its body occurrences are at
    affected positions (so it may be bound to a null); a tgd is weakly
    guarded if some body atom contains all its harmful variables.  Every
    guarded set is weakly guarded; weakly guarded sets extend full tgds,
    which is why their containment problem is undecidable (Prop 8).
    """
    affected = affected_positions(sigma)
    for rule in sigma:
        if not rule.body:
            continue
        harmful: Set[Variable] = set()
        positions_of: Dict[Variable, List[Position]] = {}
        for a in rule.body:
            for i, t in enumerate(a.args):
                if isinstance(t, Variable):
                    positions_of.setdefault(t, []).append((a.predicate, i))
        for v, occurrences in positions_of.items():
            if all(p in affected for p in occurrences):
                harmful.add(v)
        if not harmful:
            continue
        if not any(harmful <= a.variables() for a in rule.body):
            return False
    return True


def infinite_rank_positions(sigma: Sequence[TGD]) -> Set[Position]:
    """Positions of infinite rank in the dependency graph.

    A position has infinite rank iff it is reachable from a cycle that
    traverses a special edge — the positions where unboundedly many nulls
    may accumulate.  Weak acyclicity ⟺ no such position exists.
    """
    regular, special = dependency_graph(sigma)
    edges = regular | special
    nodes: Set[Position] = set()
    adjacency: Dict[Position, Set[Position]] = {}
    for p, q in edges:
        nodes.update((p, q))
        adjacency.setdefault(p, set()).add(q)

    def reachable_from(start: Position) -> Set[Position]:
        seen: Set[Position] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        return seen

    infinite: Set[Position] = set()
    for p, q in special:
        # The special edge p ⇒ q lies on a cycle iff q reaches p; then
        # everything reachable from q has infinite rank.
        descendants = reachable_from(q)
        if p in descendants:
            infinite.update(descendants)
    return infinite


def is_weakly_sticky(sigma: Sequence[TGD]) -> bool:
    """Weak stickiness [27]: marked repeated variables need a finite-rank spot.

    Σ is weakly sticky if for every tgd and every variable occurring more
    than once in its body, the variable is non-marked, or at least one of
    its occurrences is at a position of finite rank.  Extends both sticky
    and weakly acyclic sets (and full tgds — hence undecidable containment,
    Prop 8).
    """
    from .sticky import marked_variables

    infinite = infinite_rank_positions(sigma)
    from ..core.tgd import rename_set_apart

    renamed = rename_set_apart(sigma)
    marked = marked_variables(sigma)
    for i, rule in enumerate(renamed):
        positions_of: Dict[Variable, List[Position]] = {}
        counts: Dict[Variable, int] = {}
        for a in rule.body:
            for j, t in enumerate(a.args):
                if isinstance(t, Variable):
                    counts[t] = counts.get(t, 0) + 1
                    positions_of.setdefault(t, []).append((a.predicate, j))
        for v, c in counts.items():
            if c <= 1 or (i, v) not in marked:
                continue
            if all(p in infinite for p in positions_of[v]):
                return False
    return True


def is_weakly_acyclic(sigma: Sequence[TGD]) -> bool:
    """True iff no cycle of the dependency graph uses a special edge."""
    regular, special = dependency_graph(sigma)
    nodes: Set[Position] = set()
    for p, q in regular | special:
        nodes.update((p, q))
    adjacency: Dict[Position, Set[Position]] = {n: set() for n in nodes}
    for p, q in regular | special:
        adjacency[p].add(q)

    # A special edge p ⇒ q lies on a cycle iff q can reach p.
    def reaches(src: Position, dst: Position) -> bool:
        seen: Set[Position] = set()
        stack = [src]
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency.get(node, ()))
        return False

    return not any(reaches(q, p) for p, q in special)
