"""Full tgds (the class F) and full non-recursive tgds (FNR).

Full tgds have no existential variables; they are exactly Datalog rules.
The paper uses F for the undecidability boundary (Proposition 8: containment
of Datalog is undecidable) and FNR inside the coNExpTime-hardness proof of
Theorem 19 (via Theorem 34).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.tgd import TGD
from .nonrecursive import is_non_recursive


def is_full(sigma: Iterable[TGD]) -> bool:
    """True iff no tgd has existential variables (the class F / Datalog)."""
    return all(t.is_full() for t in sigma)


def is_full_non_recursive(sigma: Sequence[TGD]) -> bool:
    """True iff Σ is full and non-recursive (the class FNR)."""
    return is_full(sigma) and is_non_recursive(sigma)
