"""Syntactic classifiers for the decidable tgd fragments of the paper."""

from .classify import best_class, classify, classify_omq, is_in_language
from .full import is_full, is_full_non_recursive
from .guarded import (
    guard_of,
    is_guarded,
    is_guarded_tgd,
    is_linear,
    is_linear_tgd,
    unguarded_tgds,
    uses_only_low_arity,
)
from .nonrecursive import (
    find_predicate_cycle,
    is_non_recursive,
    predicate_depth,
    predicate_levels,
    stratification,
)
from .sticky import (
    is_lossless,
    is_sticky,
    marked_variables,
    sticky_violations,
)
from .weak import (
    affected_positions,
    dependency_graph,
    infinite_rank_positions,
    is_weakly_acyclic,
    is_weakly_guarded,
    is_weakly_sticky,
)

__all__ = [
    "best_class",
    "classify",
    "classify_omq",
    "dependency_graph",
    "find_predicate_cycle",
    "guard_of",
    "is_full",
    "is_full_non_recursive",
    "is_guarded",
    "is_guarded_tgd",
    "is_in_language",
    "is_linear",
    "is_linear_tgd",
    "is_lossless",
    "is_non_recursive",
    "is_sticky",
    "affected_positions",
    "infinite_rank_positions",
    "is_weakly_acyclic",
    "is_weakly_guarded",
    "is_weakly_sticky",
    "marked_variables",
    "predicate_depth",
    "predicate_levels",
    "stratification",
    "sticky_violations",
    "unguarded_tgds",
    "uses_only_low_arity",
]
