"""OMQ containment: exact procedures for UCQ-rewritable LHS, layered guarded."""

from .cq import (
    cq_contained_in,
    cq_contained_in_ucq,
    cq_core,
    cq_equivalent,
    ucq_contained_in,
)
from .dispatch import contains, equivalent, is_contained
from .guarded import (
    contains_guarded,
    critical_database,
    enumerate_databases,
    is_satisfiable,
)
from .result import (
    ContainmentResult,
    Verdict,
    Witness,
    contained,
    not_contained,
    unknown,
)
from .small_witness import (
    contains_via_small_witness,
    refute_via_partial_rewriting,
)

__all__ = [
    "ContainmentResult",
    "Verdict",
    "Witness",
    "contained",
    "contains",
    "contains_guarded",
    "contains_via_small_witness",
    "cq_contained_in",
    "cq_contained_in_ucq",
    "cq_core",
    "cq_equivalent",
    "critical_database",
    "enumerate_databases",
    "equivalent",
    "is_contained",
    "is_satisfiable",
    "not_contained",
    "refute_via_partial_rewriting",
    "ucq_contained_in",
    "unknown",
]
