"""Exact containment over propositional data schemas.

When every data predicate is 0-ary there are only ``2^|S|`` S-databases, so
``Q1 ⊆ Q2`` can be decided by exhaustive evaluation — exact whenever both
evaluations are exact (e.g. the non-recursive tiling OMQs of Theorem 16,
whose data schema is exactly such a set of propositions ``C_i^j``).
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.omq import OMQ
from ..evaluation import evaluate_omq
from .. import obs
from .result import ContainmentResult, contained, not_contained, unknown
from .small_witness import check_same_data_schema

#: Enumerating beyond this many propositions is left to other procedures.
MAX_PROPOSITIONS = 16


def is_propositional(omq: OMQ) -> bool:
    """True iff every data predicate is 0-ary."""
    return omq.data_schema.max_arity == 0 and len(omq.data_schema) > 0


def contains_propositional(
    q1: OMQ,
    q2: OMQ,
    *,
    chase_max_steps: int = 200_000,
) -> ContainmentResult:
    """Decide containment by enumerating all propositional S-databases."""
    check_same_data_schema(q1, q2)
    predicates = q1.data_schema.predicates()
    if len(predicates) > MAX_PROPOSITIONS:
        return unknown(
            "propositional",
            f"{len(predicates)} propositions exceed the enumeration cap",
        )
    method = "propositional-enumeration"
    inexact = 0
    with obs.span(
        "propositional.enumerate", propositions=len(predicates)
    ) as scan:
        for bits in itertools.product((False, True), repeat=len(predicates)):
            db = Instance.of(
                Atom(p, ()) for p, keep in zip(predicates, bits) if keep
            )
            scan.add("prop.databases")
            left = evaluate_omq(q1, db, chase_max_steps=chase_max_steps)
            if not left.answers:
                continue
            right = evaluate_omq(q2, db, chase_max_steps=chase_max_steps)
            missing = left.answers - right.answers
            if missing:
                if right.exact:
                    return not_contained(
                        method, db, sorted(missing, key=str)[0]
                    )
                inexact += 1
    if inexact:
        return unknown(method, f"{inexact} databases had inexact RHS evaluation")
    return contained(method, f"all {2 ** len(predicates)} databases pass")
