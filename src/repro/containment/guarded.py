"""Containment for guarded OMQs (Section 5) — the layered procedure.

The paper decides ``Cont((G,CQ))`` in 2ExpTime through two-way alternating
parity automata over encodings of C-tree databases (Propositions 21–25).
Per the substitution documented in DESIGN.md, this module layers practical
procedures that agree with the paper's characterization:

1. **Exact small-witness** — if XRewrite happens to converge on the LHS
   (guarded OMQs are not UCQ-rewritable in general, but many concrete ones
   are), Theorem 11's algorithm decides containment exactly.
2. **Partial-rewriting refutation** — disjuncts of a partial rewriting are
   sound consequences of Q1; a canonical database on which Q2 exactly fails
   refutes containment.
3. **Bounded witness search** — enumerate small S-databases (the paper's
   Prop 21 says a counterexample can be found among C-tree databases with a
   small core; every database our enumerator emits is checked directly), in
   increasing size.  Sound refutations; UNKNOWN past the bound.

Satisfiability is decided through the *critical database* (all S-facts over
a single constant): because OMQs are closed under homomorphisms, an OMQ is
satisfiable iff its all-star tuple is an answer over the critical database.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.omq import OMQ
from ..core.terms import Constant, Term
from ..evaluation import evaluate_omq
from ..kernel import KERNEL_METRICS, trusted_instance
from .. import obs
from .result import ContainmentResult, Verdict, not_contained, unknown
from .small_witness import (
    check_same_data_schema,
    contains_via_small_witness,
    refute_via_partial_rewriting,
)


def critical_database(omq: OMQ, star: str = "*") -> Instance:
    """The critical database: every S-fact over {*} ∪ constants(Σ, q).

    OMQs are closed under homomorphisms *fixing constants*, so any
    satisfying database maps into this one (non-constants go to *) — which
    makes it the universal satisfiability probe.
    """
    domain = {Constant(star)}
    for rule in omq.sigma:
        domain.update(rule.constants())
    for d in omq.as_ucq().disjuncts:
        domain.update(d.constants())
    ordered = sorted(domain, key=str)
    atoms = [
        Atom(p, combo)
        for p in omq.data_schema.predicates()
        for combo in itertools.product(ordered, repeat=omq.data_schema.arity(p))
    ]
    return Instance.of(atoms)


def is_satisfiable(omq: OMQ, **eval_kwargs) -> Optional[bool]:
    """Is there an S-database with a non-empty answer?

    Returns True / False when conclusive, None when the (bounded) evaluation
    could not decide.  Exactness argument: any satisfying database D with
    answer c̄ maps into the critical database D* by a constant-fixing
    homomorphism, and the image of c̄ is an answer over D*; conversely D*
    itself witnesses satisfiability.  So Q is satisfiable iff Q(D*) ≠ ∅.
    """
    db = critical_database(omq)
    evaluation = evaluate_omq(omq, db, **eval_kwargs)
    if evaluation.answers:
        return True
    if evaluation.exact:
        return False
    return None


def enumerate_databases(
    omq: OMQ, max_constants: int, max_atoms: int
) -> Iterator[Instance]:
    """All S-databases over ≤ *max_constants* constants with ≤ *max_atoms* atoms.

    Enumerated in increasing atom count so the first counterexample found is
    minimal in size.  Deterministic order.
    """
    constants = [Constant(f"w{i}") for i in range(max_constants)]
    possible: List[Atom] = []
    for p in omq.data_schema.predicates():
        arity = omq.data_schema.arity(p)
        for combo in itertools.product(constants, repeat=arity):
            possible.append(Atom(p, combo))
    possible.sort(key=str)
    for size in range(1, max_atoms + 1):
        for subset in itertools.combinations(possible, size):
            # Atoms are built over constants only — skip the per-database
            # groundness re-validation on this very hot path.
            yield trusted_instance(subset)


def contains_guarded(
    q1: OMQ,
    q2: OMQ,
    *,
    rewriting_budget: int = 2_000,
    refutation_budget: int = 500,
    search_max_constants: int = 2,
    search_max_atoms: int = 3,
    search_max_databases: int = 5_000,
    chase_max_steps: int = 100_000,
    chase_max_depth: Optional[int] = None,
) -> ContainmentResult:
    """Decide (or boundedly attempt) ``Q1 ⊆ Q2`` for guarded/arbitrary OMQs."""
    check_same_data_schema(q1, q2)
    with obs.span("containment.guarded") as layered:
        # Layer 1: exact small-witness if the LHS happens to be rewritable.
        attempt = contains_via_small_witness(
            q1,
            q2,
            rewriting_budget=rewriting_budget,
            chase_max_steps=chase_max_steps,
            chase_max_depth=chase_max_depth,
        )
        if attempt.decided:
            layered.set("layer", "small-witness")
            return attempt
        # Layer 2: sound refutation from the partial rewriting.
        with obs.span("guarded.refutation"):
            refutation = refute_via_partial_rewriting(
                q1,
                q2,
                rewriting_budget=refutation_budget,
                chase_max_steps=chase_max_steps,
                chase_max_depth=chase_max_depth,
            )
        if refutation is not None:
            layered.set("layer", "partial-rewriting")
            return refutation
        # Layer 3: bounded enumeration of small witness databases.
        layered.set("layer", "bounded-search")
        tried = 0
        inexact_seen = False
        scanned = KERNEL_METRICS.counter("kernel.witness_search.databases")
        with obs.span(
            "witness.search",
            max_constants=search_max_constants,
            max_atoms=search_max_atoms,
        ) as search_span:
            for db in enumerate_databases(
                q1, search_max_constants, search_max_atoms
            ):
                tried += 1
                if tried > search_max_databases:
                    break
                scanned.inc()
                search_span.add("witness.databases")
                left = evaluate_omq(
                    q1,
                    db,
                    chase_max_steps=chase_max_steps,
                    chase_max_depth=chase_max_depth,
                )
                if not left.answers:
                    continue
                right = evaluate_omq(
                    q2,
                    db,
                    chase_max_steps=chase_max_steps,
                    chase_max_depth=chase_max_depth,
                )
                missing = left.answers - right.answers
                if missing:
                    if right.exact:
                        answer = sorted(missing, key=str)[0]
                        return not_contained(
                            "bounded-witness-search",
                            db,
                            answer,
                            f"found after {tried} candidate databases",
                        )
                    inexact_seen = True
        detail = (
            f"no counterexample among {min(tried, search_max_databases)} "
            f"databases "
            f"(≤{search_max_constants} constants, ≤{search_max_atoms} atoms)"
        )
        if inexact_seen:
            detail += "; some RHS evaluations were inexact"
        return unknown("guarded-layered", detail)
