"""Containment of plain (U)CQs — the Chandra–Merlin / Sagiv–Yannakakis base.

``q1 ⊆ q2`` iff the canonical answer of q1 is an answer of q2 over the
frozen canonical database of q1 [29]; for unions, ``⋁ q_i ⊆ Q`` iff every
``q_i ⊆ Q``, and a CQ is contained in a union iff the union answers on the
CQ's canonical database [54].  These checks also power CQ minimization
(cores), used by UCQ deduplication.
"""

from __future__ import annotations

from typing import Union

from ..core.queries import CQ, UCQ


def cq_contained_in(q1: CQ, q2: CQ) -> bool:
    """Chandra–Merlin: q1 ⊆ q2 via the canonical database of q1."""
    if q1.arity != q2.arity:
        raise ValueError("containment requires equal arities")
    db, canonical = q1.canonical_database()
    return q2.holds_in(db, canonical)


def cq_contained_in_ucq(q1: CQ, q2: UCQ) -> bool:
    """Sagiv–Yannakakis: q1 ⊆ ⋁ q2_i iff some disjunct answers on D_{q1}."""
    if q1.arity != q2.arity:
        raise ValueError("containment requires equal arities")
    db, canonical = q1.canonical_database()
    return q2.holds_in(db, canonical)


def ucq_contained_in(q1: Union[CQ, UCQ], q2: Union[CQ, UCQ]) -> bool:
    """(U)CQ containment: every disjunct of q1 is contained in q2."""
    left = q1 if isinstance(q1, UCQ) else UCQ.from_cq(q1)
    right = q2 if isinstance(q2, UCQ) else UCQ.from_cq(q2)
    return all(cq_contained_in_ucq(d, right) for d in left.disjuncts)


def cq_equivalent(q1: Union[CQ, UCQ], q2: Union[CQ, UCQ]) -> bool:
    """Mutual containment."""
    return ucq_contained_in(q1, q2) and ucq_contained_in(q2, q1)


def cq_core(q: CQ) -> CQ:
    """A core of the CQ (delegates to :meth:`repro.core.queries.CQ.core`)."""
    return q.core()
