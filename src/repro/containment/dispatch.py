"""The front door: ``contains(Q1, Q2)`` with automatic procedure selection.

Following the paper's plan of attack (Section 3.3 and Section 6):

* LHS in a UCQ-rewritable language (∅, L, NR, FNR, S) — the small-witness
  algorithm (Theorem 11), *exact* for any RHS whose evaluation is exact.
* LHS guarded — the layered guarded procedure (Section 5 substitution).
* LHS full / arbitrary — containment is undecidable in general
  (Proposition 8), so we attempt the same layered procedure, which answers
  when a complete rewriting or a counterexample happens to exist and
  honestly reports UNKNOWN otherwise.
"""

from __future__ import annotations

from typing import Optional

from ..core.omq import OMQ, TGDClass, UCQ_REWRITABLE_CLASSES
from ..fragments.classify import best_class
from .. import obs
from .guarded import contains_guarded
from .cq import ucq_contained_in
from .propositional import contains_propositional, is_propositional
from .result import ContainmentResult, Verdict, contained
from .small_witness import check_same_data_schema, contains_via_small_witness


def cq_subsumption(q1: OMQ, q2: OMQ) -> Optional[ContainmentResult]:
    """A cheap sound shortcut: Σ1 ⊆ Σ2 and q1 ⊆ q2 as plain (U)CQs.

    Soundness: ``c̄ ∈ Q1(D) = q1(chase(D, Σ1)) ⊆ q2(chase(D, Σ1))`` and,
    because chase(D, Σ1) maps homomorphically into the model chase(D, Σ2)
    whenever Σ1 ⊆ Σ2, also ``c̄ ∈ q2(chase(D, Σ2)) = Q2(D)``.  Returns None
    when the shortcut does not apply (which proves nothing).
    """
    check_same_data_schema(q1, q2)
    if not set(q1.sigma) <= set(q2.sigma):
        return None
    if ucq_contained_in(q1.as_ucq(), q2.as_ucq()):
        return contained(
            "cq-subsumption", "q1 ⊆ q2 as plain queries and Σ1 ⊆ Σ2"
        )
    return None


def contains(
    q1: OMQ,
    q2: OMQ,
    *,
    rewriting_budget: int | None = None,
    chase_max_steps: int = 200_000,
    chase_max_depth: int | None = None,
    **guarded_kwargs,
) -> ContainmentResult:
    """Decide ``Q1 ⊆ Q2`` (both over the same data schema).

    ``rewriting_budget`` defaults per procedure: a generous budget for the
    exact small-witness path (whose rewriting is guaranteed finite), a
    small speculative one for the guarded layers.  Keyword arguments beyond
    the budgets are forwarded to the guarded layered procedure when it is
    selected.
    """
    with obs.span(
        "containment.decide", lhs_rules=len(q1.sigma), rhs_rules=len(q2.sigma)
    ) as decision:
        with obs.span("containment.subsumption"):
            subsumption = cq_subsumption(q1, q2)
        if subsumption is not None:
            decision.set("method", subsumption.method)
            decision.set("verdict", subsumption.verdict.name)
            return subsumption
        if is_propositional(q1) and len(q1.data_schema) <= 16:
            with obs.span("containment.propositional"):
                result = contains_propositional(
                    q1, q2, chase_max_steps=chase_max_steps
                )
            if result.decided:
                decision.set("method", result.method)
                decision.set("verdict", result.verdict.name)
                return result
        with obs.span("containment.classify"):
            cls1 = best_class(q1.sigma)
        decision.set("fragment", cls1.value)
        if cls1 in UCQ_REWRITABLE_CLASSES:
            result = contains_via_small_witness(
                q1,
                q2,
                rewriting_budget=rewriting_budget or 20_000,
                chase_max_steps=chase_max_steps,
                chase_max_depth=chase_max_depth,
            )
        else:
            result = contains_guarded(
                q1,
                q2,
                rewriting_budget=rewriting_budget or 2_000,
                chase_max_steps=chase_max_steps,
                chase_max_depth=chase_max_depth,
                **guarded_kwargs,
            )
        decision.set("method", result.method)
        decision.set("verdict", result.verdict.name)
        return result


def is_contained(q1: OMQ, q2: OMQ, **kwargs) -> bool:
    """Boolean convenience; raises ValueError if the check is undecided."""
    return contains(q1, q2, **kwargs).is_contained


def equivalent(q1: OMQ, q2: OMQ, **kwargs) -> ContainmentResult:
    """Check ``Q1 ≡ Q2`` (mutual containment).

    Returns the first non-CONTAINED direction's result (so the witness shows
    which side fails), or a CONTAINED result when both directions hold.
    """
    forward = contains(q1, q2, **kwargs)
    if forward.verdict is not Verdict.CONTAINED:
        return forward
    backward = contains(q2, q1, **kwargs)
    if backward.verdict is not Verdict.CONTAINED:
        return backward
    return ContainmentResult(
        Verdict.CONTAINED, f"{forward.method}+{backward.method}", None,
        "both directions contained",
    )
