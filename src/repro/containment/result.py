"""Verdicts for containment checks.

Exact procedures answer CONTAINED / NOT_CONTAINED; the bounded guarded
procedure may answer UNKNOWN (the honest encoding of the 2WAPA machinery's
substitution, see DESIGN.md).  NOT_CONTAINED verdicts always carry a
machine-checkable witness: an S-database ``D`` and a tuple ``c̄`` with
``c̄ ∈ Q1(D) \\ Q2(D)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from ..core.instance import Instance
from ..core.terms import Term


class Verdict(Enum):
    """Outcome of a containment check."""

    CONTAINED = "contained"
    NOT_CONTAINED = "not-contained"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Witness:
    """A counterexample to containment: ``c̄ ∈ Q1(D)`` but ``c̄ ∉ Q2(D)``."""

    database: Instance
    answer: Tuple[Term, ...]

    def __str__(self) -> str:
        tup = ", ".join(str(t) for t in self.answer)
        return f"witness D = {self.database}, c̄ = ({tup})"


@dataclass(frozen=True)
class ContainmentResult:
    """The result of a containment check, with provenance."""

    verdict: Verdict
    method: str
    witness: Optional[Witness] = None
    detail: str = ""

    @property
    def is_contained(self) -> bool:
        """True/False for decided checks; raises on UNKNOWN."""
        if self.verdict is Verdict.UNKNOWN:
            raise ValueError(
                f"containment undecided by {self.method}: {self.detail}"
            )
        return self.verdict is Verdict.CONTAINED

    @property
    def decided(self) -> bool:
        return self.verdict is not Verdict.UNKNOWN

    def __bool__(self) -> bool:
        return self.is_contained

    def __str__(self) -> str:
        suffix = f" ({self.witness})" if self.witness else ""
        info = f" [{self.detail}]" if self.detail else ""
        return f"{self.verdict} via {self.method}{suffix}{info}"


def contained(method: str, detail: str = "") -> ContainmentResult:
    """A CONTAINED result."""
    return ContainmentResult(Verdict.CONTAINED, method, None, detail)


def not_contained(
    method: str, database: Instance, answer: Tuple[Term, ...], detail: str = ""
) -> ContainmentResult:
    """A NOT_CONTAINED result with its witness."""
    return ContainmentResult(
        Verdict.NOT_CONTAINED, method, Witness(database, answer), detail
    )


def unknown(method: str, detail: str = "") -> ContainmentResult:
    """An UNKNOWN result (bounded procedures only)."""
    return ContainmentResult(Verdict.UNKNOWN, method, None, detail)
