"""The small-witness containment algorithm (Proposition 10 / Theorem 11).

For a UCQ-rewritable left-hand side ``Q1``, non-containment is witnessed by
a database of size at most ``f_O(Q1)`` — in fact, by the proof of
Proposition 10, by the *canonical database of some disjunct* of a UCQ
rewriting of Q1.  This yields the decision procedure:

    Q1 ⊆ Q2  ⟺  for every disjunct q_i of XRewrite(Q1):
                 c(x̄) ∈ Q2(D_{q_i})

where D_{q_i} freezes the disjunct's variables into constants and c(x̄) is
the frozen head.  (⇐ is Lemma 33 plus the homomorphism extension argument;
⇒ is immediate because c(x̄) ∈ Q1(D_{q_i}).)

The procedure is exact whenever the rewriting of Q1 is complete (always for
linear/non-recursive/sticky ontologies) and the evaluation of Q2 on each
canonical database is exact.  Inexact right-hand evaluations degrade the
verdict to UNKNOWN rather than producing unsound answers.
"""

from __future__ import annotations

from typing import Optional

from ..core.omq import OMQ
from ..core.queries import UCQ
from ..evaluation import cached_rewriting, evaluate_omq
from ..kernel import KERNEL_METRICS
from .. import obs
from .result import ContainmentResult, contained, not_contained, unknown


def check_same_data_schema(q1: OMQ, q2: OMQ) -> None:
    """Containment is only defined for OMQs over the same data schema."""
    if q1.data_schema != q2.data_schema:
        raise ValueError(
            f"OMQs have different data schemas: {q1.data_schema} vs "
            f"{q2.data_schema}"
        )
    if q1.arity != q2.arity:
        raise ValueError(
            f"OMQs have different arities: {q1.arity} vs {q2.arity}"
        )


def contains_via_small_witness(
    q1: OMQ,
    q2: OMQ,
    *,
    rewriting_budget: int = 20_000,
    precomputed_rewriting: Optional[UCQ] = None,
    chase_max_steps: int = 200_000,
    chase_max_depth: Optional[int] = None,
) -> ContainmentResult:
    """Decide ``Q1 ⊆ Q2`` through the small-witness property.

    ``precomputed_rewriting`` lets callers reuse an XRewrite result (the
    benchmarks do, to time the phases separately); it must be a *complete*
    rewriting of Q1 over the shared data schema.
    """
    check_same_data_schema(q1, q2)
    method = "small-witness"
    with obs.span("containment.small_witness") as sw:
        if precomputed_rewriting is not None:
            rewriting = precomputed_rewriting
        else:
            result = cached_rewriting(q1, rewriting_budget)
            if not result.complete:
                return unknown(
                    method,
                    f"LHS rewriting exceeded budget "
                    f"({result.stats.queries_generated} queries); "
                    "the LHS ontology may not be UCQ-rewritable",
                )
            rewriting = result.rewriting

        if rewriting.is_empty():
            return contained(method, "Q1 is unsatisfiable")

        inconclusive = 0
        q2_plain = q2.as_ucq()
        shortcut_counter = KERNEL_METRICS.counter(
            "kernel.small_witness.shortcuts"
        )
        with obs.span(
            "witness.scan", disjuncts=len(rewriting.disjuncts)
        ) as scan:
            for disjunct in rewriting.disjuncts:
                db, canonical = disjunct.canonical_database()
                # Cheap sound pre-check: D_q ⊆ chase(D_q, Σ2) and CQ
                # evaluation is monotone, so q2 already holding on the bare
                # canonical database settles this disjunct without chasing
                # or rewriting Q2.
                if q2_plain.holds_in(db, canonical):
                    shortcut_counter.inc()
                    scan.add("witness.shortcuts")
                    continue
                scan.add("witness.evaluations")
                evaluation = evaluate_omq(
                    q2,
                    db,
                    chase_max_steps=chase_max_steps,
                    chase_max_depth=chase_max_depth,
                )
                if canonical in evaluation.answers:
                    continue
                if evaluation.exact:
                    sw.set("counterexample", str(disjunct.name))
                    return not_contained(
                        method,
                        db,
                        canonical,
                        f"canonical database of disjunct {disjunct}",
                    )
                inconclusive += 1
        if inconclusive:
            return unknown(
                method,
                f"{inconclusive} disjunct(s) had inexact negative RHS "
                f"evaluation",
            )
        return contained(method, f"all {len(rewriting)} disjuncts pass")


def refute_via_partial_rewriting(
    q1: OMQ,
    q2: OMQ,
    *,
    rewriting_budget: int = 2_000,
    chase_max_steps: int = 200_000,
    chase_max_depth: Optional[int] = None,
) -> Optional[ContainmentResult]:
    """Try to *refute* containment from a partial rewriting of Q1.

    Every disjunct of a partial XRewrite run is sound (it is entailed by
    Q1), so a canonical database on which Q2 exactly fails is a genuine
    counterexample even when the full rewriting does not exist.  Returns a
    NOT_CONTAINED result, or None if no refutation was found (which proves
    nothing).
    """
    check_same_data_schema(q1, q2)
    rewriting = cached_rewriting(q1, rewriting_budget).rewriting
    for disjunct in rewriting.disjuncts:
        db, canonical = disjunct.canonical_database()
        evaluation = evaluate_omq(
            q2,
            db,
            chase_max_steps=chase_max_steps,
            chase_max_depth=chase_max_depth,
        )
        if canonical not in evaluation.answers and evaluation.exact:
            return not_contained(
                "partial-rewriting-refutation",
                db,
                canonical,
                f"canonical database of sound disjunct {disjunct}",
            )
    return None
