"""The span tree: one node per traced phase of a decision.

A :class:`Span` is a named interval with attributes, counter rollups,
point-in-time events, and children.  Trees are built by the tracer
(:mod:`repro.obs.tracer`) through ``contextvars`` propagation, finish
bottom-up, and are serialized to plain nested dicts — the only form that
crosses process boundaries (worker pools return ``to_dict()`` output, not
live spans) and the form every exporter consumes.

Timing model: durations come from ``time.perf_counter()`` (monotonic,
high resolution); absolute timestamps are anchored once per tree — the
root records ``time.time()`` at birth and every descendant's wall-clock
start is the root anchor plus its perf-counter offset.  Within a tree
timestamps are therefore strictly consistent with durations, and across
processes trees align on the wall clock (good enough for one machine,
which is the pool's scope).
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Dict, List, Optional

#: Process-local span-id sequence; ids embed the pid so ids from pool
#: workers never collide with the parent process's.
_ids = itertools.count(1)


def new_span_id() -> str:
    """A process-unique span id, ``<pid hex>-<seq hex>``."""
    return f"{os.getpid():x}-{next(_ids):x}"


class Span:
    """One traced interval; ``to_dict()`` is the wire/export format."""

    __slots__ = (
        "span_id",
        "name",
        "attrs",
        "counters",
        "events",
        "children",
        "parent",
        "root",
        "pid",
        "tid",
        "start_wall",
        "start_perf",
        "end_perf",
        "n_spans",
        "dropped",
    )

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        parent: Optional["Span"] = None,
    ) -> None:
        self.span_id = new_span_id()
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.counters: Dict[str, float] = {}
        self.events: List[Dict[str, Any]] = []
        self.children: List["Span"] = []
        self.parent = parent
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.start_perf = time.perf_counter()
        self.end_perf: Optional[float] = None
        if parent is None:
            self.root = self
            self.start_wall = time.time()
            self.n_spans = 1
            self.dropped = 0
        else:
            self.root = parent.root
            self.start_wall = parent.root.start_wall + (
                self.start_perf - parent.root.start_perf
            )
            self.n_spans = 0  # tracked on the root only
            self.dropped = 0

    # -- recording --------------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) an attribute."""
        self.attrs[key] = value

    def add(self, counter: str, amount: float = 1) -> None:
        """Add to a per-span rollup counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time structured event on this span."""
        ts = self.root.start_wall + (
            time.perf_counter() - self.root.start_perf
        )
        self.events.append({"name": name, "ts": ts, "attrs": attrs})

    def finish(self) -> None:
        if self.end_perf is None:
            self.end_perf = time.perf_counter()

    # -- derived ----------------------------------------------------------

    @property
    def duration(self) -> float:
        """Cumulative seconds (0.0 while the span is still open)."""
        if self.end_perf is None:
            return 0.0
        return self.end_perf - self.start_perf

    @property
    def self_time(self) -> float:
        """Seconds spent in this span excluding (finished) children."""
        return max(
            0.0, self.duration - sum(c.duration for c in self.children)
        )

    def to_dict(self) -> Dict[str, Any]:
        """The serialized span tree (plain dicts — picklable, JSON-ready)."""
        out: Dict[str, Any] = {
            "id": self.span_id,
            "name": self.name,
            "pid": self.pid,
            "tid": self.tid,
            "start": self.start_wall,
            "dur_s": self.duration,
            "self_s": self.self_time,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.events:
            out["events"] = list(self.events)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        if self.parent is None and self.dropped:
            out["dropped_spans"] = self.dropped
        return out


def walk(root: Dict[str, Any]):
    """Yield every span dict of a serialized tree, depth-first, parents first."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.get("children", ())))


def rollup_counters(root: Dict[str, Any]) -> Dict[str, float]:
    """Recursive counter totals over a serialized tree."""
    totals: Dict[str, float] = {}
    for node in walk(root):
        for name, value in node.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + value
    return totals
