"""repro.obs — hierarchical decision tracing for containment runs.

The subsystem has four parts:

* :mod:`repro.obs.span` — the span tree (intervals, attrs, counters,
  events) and its serialized-dict form;
* :mod:`repro.obs.tracer` — the contextvars-propagated tracer:
  :func:`span` / :func:`event` / :func:`add` instrumentation API,
  sampling policy (:class:`TraceConfig`), and the cross-process
  :class:`TracedTask` wrapper the batch engine uses;
* :mod:`repro.obs.export` — JSONL and Chrome ``trace_event`` exporters
  plus loaders and a Chrome-schema validator;
* :mod:`repro.obs.format` — the ``repro trace`` pretty-printer.

Import-graph note: obs sits *below* the kernel/chase/containment layers
(they import it for instrumentation), so it may only depend on the leaf
modules ``engine.metrics`` and ``engine.registry``.
"""

from .span import Span, new_span_id, rollup_counters, walk
from .tracer import (
    NULL_HANDLE,
    OBS_METRICS,
    TraceConfig,
    TracedOutcome,
    TracedTask,
    add,
    add_many,
    apply_config,
    configure,
    current_decision_id,
    current_span,
    drain,
    event,
    get_config,
    growth_stride,
    is_active,
    is_enabled,
    obs_snapshot,
    span,
    tracing,
)
from .export import (
    chrome_trace,
    load_jsonl,
    load_trace,
    roots_from_chrome,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from .format import format_trace
from .profile import (
    PROFILE_VERSION,
    ProfileAccumulator,
    build_profile,
    diff_regressions,
    format_diff,
    format_profile,
    inflate_phase,
    load_profile,
    profile_diff,
    resolve_noise_floor,
)

__all__ = [
    "NULL_HANDLE",
    "OBS_METRICS",
    "PROFILE_VERSION",
    "ProfileAccumulator",
    "Span",
    "TraceConfig",
    "TracedOutcome",
    "TracedTask",
    "add",
    "add_many",
    "apply_config",
    "build_profile",
    "chrome_trace",
    "configure",
    "diff_regressions",
    "current_decision_id",
    "current_span",
    "drain",
    "event",
    "format_diff",
    "format_profile",
    "format_trace",
    "get_config",
    "growth_stride",
    "inflate_phase",
    "is_active",
    "is_enabled",
    "load_jsonl",
    "load_profile",
    "load_trace",
    "new_span_id",
    "obs_snapshot",
    "profile_diff",
    "resolve_noise_floor",
    "rollup_counters",
    "roots_from_chrome",
    "span",
    "tracing",
    "validate_chrome_trace",
    "walk",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
