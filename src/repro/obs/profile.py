"""The profile ledger: statistical per-phase profiles of span traces.

A *profile* turns one or many decision traces (the serialized span trees
of :mod:`repro.obs.span`) into a versioned summary document: per
span-name call counts, total- and self-time distributions (mean, min,
max, p50/p95/p99), each phase's share of all self time, rolled-up
counters, and per-fragment/per-verdict/per-method breakdowns keyed by
the attributes the instrumentation already stamps
(``containment.decide`` carries ``fragment``/``verdict``/``method``).

:func:`profile_diff` compares two profiles phase by phase and labels
each one ``improved`` / ``regressed`` / ``unchanged`` — *noise-gated*:
a change only counts when it exceeds a significance threshold derived
from the measured machine noise floor (the ``noise_floor_pct``
methodology of ``benchmarks/bench_obs_overhead.py``, which times
identical runs back to back and records their spread).  The default
comparison metric is each phase's **share of total self time**, which is
invariant under uniform machine-speed differences — the property that
lets CI diff a fresh run against a baseline committed from another
machine.  Wall-clock metrics (``self_mean``, ``total_mean``) are there
for same-machine A/B comparisons.

The consumers:

* ``repro profile TRACE... [--out P]`` — aggregate trace files into a
  profile document;
* ``repro profile diff OLD NEW [--fail-on-regression X]`` — the CI gate
  (``BENCH_profile_baseline.json`` is the committed baseline);
* the serve tier's ``GET /v1/debug/profile`` — a live
  :class:`ProfileAccumulator` fed by per-job traces.

Aggregation is streaming and bounded: per-phase duration samples are
kept in a deterministic decimating reservoir (once past the cap, every
other sample is dropped and the acceptance stride doubles), so
percentiles stay accurate on small runs and memory stays fixed on
month-long serving windows.  Counts, sums, min and max are always exact.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .span import walk

#: Version stamp on every profile and diff document.  Bump on breaking
#: changes to the document shape.
PROFILE_VERSION = 1

#: Fallback machine noise floor (per cent) when neither the caller nor a
#: profile's ``meta.noise_floor_pct`` provides a measured one.  Matches
#: the order of magnitude ``bench_obs_overhead.py`` records on shared CI
#: runners.
DEFAULT_NOISE_FLOOR_PCT = 5.0

#: A change smaller than this (per cent) is never significant, however
#: quiet the machine claims to be.
DEFAULT_MIN_CHANGE_PCT = 10.0

#: Phases whose self time stays under this (seconds) on both sides are
#: labelled ``negligible`` and never gate: timer resolution and
#: scheduling jitter dominate real signal down there.
DEFAULT_MIN_TIME_S = 0.002

#: The span attributes that feed the breakdown tables.
BREAKDOWN_ATTRS = ("fragment", "verdict", "method")

#: Diff metrics: profile field + aggregation the ratio is computed over.
DIFF_METRICS = ("self_share", "self_mean", "total_mean")

_QS = (0.5, 0.95, 0.99)


def _percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(0, min(len(sorted_samples) - 1,
                      int(round(q * len(sorted_samples) + 0.5)) - 1))
    return sorted_samples[rank]


class _Reservoir:
    """Bounded duration samples: exact until *cap*, then deterministic
    stride decimation (keep every other kept sample, double the stride).
    """

    __slots__ = ("cap", "stride", "seen", "samples")

    def __init__(self, cap: int) -> None:
        self.cap = max(2, cap)
        self.stride = 1
        self.seen = 0
        self.samples: List[float] = []

    def add(self, value: float) -> None:
        if self.seen % self.stride == 0:
            self.samples.append(value)
            if len(self.samples) >= self.cap:
                self.samples = self.samples[::2]
                self.stride *= 2
        self.seen += 1


class _PhaseStats:
    """Streaming per-span-name statistics."""

    __slots__ = (
        "count", "total_sum", "total_min", "total_max",
        "self_sum", "self_min", "self_max", "total_samples", "self_samples",
    )

    def __init__(self, sample_cap: int) -> None:
        self.count = 0
        self.total_sum = 0.0
        self.total_min = float("inf")
        self.total_max = 0.0
        self.self_sum = 0.0
        self.self_min = float("inf")
        self.self_max = 0.0
        self.total_samples = _Reservoir(sample_cap)
        self.self_samples = _Reservoir(sample_cap)

    def add(self, total: float, self_time: float) -> None:
        self.count += 1
        self.total_sum += total
        self.total_min = min(self.total_min, total)
        self.total_max = max(self.total_max, total)
        self.self_sum += self_time
        self.self_min = min(self.self_min, self_time)
        self.self_max = max(self.self_max, self_time)
        self.total_samples.add(total)
        self.self_samples.add(self_time)

    @staticmethod
    def _block(count, sum_s, min_s, max_s, reservoir) -> Dict[str, float]:
        samples = sorted(reservoir.samples)
        return {
            "sum_s": sum_s,
            "mean_s": sum_s / count if count else 0.0,
            "min_s": 0.0 if min_s == float("inf") else min_s,
            "max_s": max_s,
            "p50_s": _percentile(samples, 0.50),
            "p95_s": _percentile(samples, 0.95),
            "p99_s": _percentile(samples, 0.99),
        }

    def to_json(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self._block(
                self.count, self.total_sum, self.total_min, self.total_max,
                self.total_samples,
            ),
            "self": self._block(
                self.count, self.self_sum, self.self_min, self.self_max,
                self.self_samples,
            ),
        }


class ProfileAccumulator:
    """Aggregate span trees into a profile document, incrementally.

    Feed it serialized root-span dicts (:func:`add_root` /
    :func:`add_roots`); read :func:`profile` at any time.  Not
    thread-safe — callers that feed it from completion callbacks (the
    serve tier) hold their own lock.
    """

    def __init__(self, max_samples_per_name: int = 4096) -> None:
        self._cap = max_samples_per_name
        self._phases: Dict[str, _PhaseStats] = {}
        self._counters: Dict[str, float] = {}
        self._breakdowns: Dict[str, Dict[str, Dict[str, float]]] = {}
        self._decisions = _PhaseStats(max_samples_per_name)
        self._trees = 0

    @property
    def decisions(self) -> int:
        return self._trees

    def add_root(self, root: Dict[str, Any]) -> None:
        """Fold one serialized span tree into the profile."""
        self._trees += 1
        self._decisions.add(
            float(root.get("dur_s", 0.0)), float(root.get("self_s", 0.0))
        )
        for node in walk(root):
            dur = float(node.get("dur_s", 0.0))
            self_s = float(node.get("self_s", dur))
            stats = self._phases.get(node["name"])
            if stats is None:
                stats = self._phases[node["name"]] = _PhaseStats(self._cap)
            stats.add(dur, self_s)
            for name, value in node.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            attrs = node.get("attrs")
            if attrs:
                for key in BREAKDOWN_ATTRS:
                    value = attrs.get(key)
                    if value is None:
                        continue
                    table = self._breakdowns.setdefault(key, {})
                    cell = table.setdefault(
                        str(value), {"count": 0, "sum_s": 0.0}
                    )
                    cell["count"] += 1
                    cell["sum_s"] += dur

    def add_roots(self, roots: Iterable[Dict[str, Any]]) -> None:
        for root in roots:
            self.add_root(root)

    def profile(self, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The profile document (phases ordered by self-time share)."""
        total_self = sum(p.self_sum for p in self._phases.values()) or 1.0
        ordered = sorted(
            self._phases.items(), key=lambda kv: -kv[1].self_sum
        )
        spans: Dict[str, Any] = {}
        for name, stats in ordered:
            doc = stats.to_json()
            doc["self_share"] = stats.self_sum / total_self
            spans[name] = doc
        out: Dict[str, Any] = {
            "profile_version": PROFILE_VERSION,
            "decisions": self._trees,
            "total_self_s": sum(p.self_sum for p in self._phases.values()),
            "spans": spans,
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "breakdowns": {
                key: {
                    value: {
                        "count": cell["count"],
                        "sum_s": cell["sum_s"],
                        "mean_s": cell["sum_s"] / cell["count"],
                    }
                    for value, cell in sorted(table.items())
                }
                for key, table in sorted(self._breakdowns.items())
            },
        }
        if self._trees:
            out["decision"] = self._decisions.to_json()
        if meta:
            out["meta"] = dict(meta)
        return out


def build_profile(
    roots: Iterable[Dict[str, Any]], meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """One-shot :class:`ProfileAccumulator` over *roots*."""
    acc = ProfileAccumulator()
    acc.add_roots(roots)
    return acc.profile(meta=meta)


def load_profile(path: str) -> Dict[str, Any]:
    """Load *path* as a profile document, building one if it is a trace.

    Accepts an already-built profile (a JSON object carrying
    ``profile_version``) or any trace format
    :func:`repro.obs.export.load_trace` understands (JSONL span trees,
    Chrome ``traceEvents``); raises ``ValueError`` for neither.
    """
    import json
    from pathlib import Path

    from .export import load_trace

    text = Path(path).read_text(encoding="utf-8").strip()
    if text.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict) and "profile_version" in doc:
            version = doc["profile_version"]
            if version != PROFILE_VERSION:
                raise ValueError(
                    f"{path}: profile version {version} "
                    f"(this build reads {PROFILE_VERSION})"
                )
            return doc
    return build_profile(
        load_trace(path), meta={"source": str(path)}
    )


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------


def _phase_metric(doc: Dict[str, Any], metric: str) -> float:
    if metric == "self_share":
        return float(doc.get("self_share", 0.0))
    if metric == "self_mean":
        return float(doc["self"]["mean_s"])
    if metric == "total_mean":
        return float(doc["total"]["mean_s"])
    raise ValueError(f"unknown diff metric {metric!r} (use {DIFF_METRICS})")


def resolve_noise_floor(
    old: Dict[str, Any],
    new: Dict[str, Any],
    noise_floor_pct: Optional[float] = None,
) -> float:
    """The noise floor to gate with: explicit > profile meta > default.

    When both profiles carry a measured floor the *larger* one wins — a
    diff is only as trustworthy as its noisiest side.
    """
    if noise_floor_pct is not None:
        return float(noise_floor_pct)
    measured = [
        p.get("meta", {}).get("noise_floor_pct")
        for p in (old, new)
        if isinstance(p.get("meta"), dict)
    ]
    measured = [float(m) for m in measured if m is not None]
    if measured:
        return max(measured)
    return DEFAULT_NOISE_FLOOR_PCT


def profile_diff(
    old: Dict[str, Any],
    new: Dict[str, Any],
    *,
    metric: str = "self_share",
    noise_floor_pct: Optional[float] = None,
    min_change_pct: float = DEFAULT_MIN_CHANGE_PCT,
    min_time_s: float = DEFAULT_MIN_TIME_S,
) -> Dict[str, Any]:
    """Compare two profiles; label every phase with a noise-gated verdict.

    Verdicts: ``regressed`` / ``improved`` (ratio beyond the significance
    threshold), ``unchanged`` (within it), ``negligible`` (too little
    self time on both sides to measure), ``added`` / ``removed`` (phase
    present on one side only).  The significance threshold is
    ``max(2 × noise floor, min_change_pct)`` — twice the floor because
    the floor itself is the spread of *identical* runs, so a real change
    must clear it with margin.
    """
    if metric not in DIFF_METRICS:
        raise ValueError(f"unknown diff metric {metric!r} (use {DIFF_METRICS})")
    floor = resolve_noise_floor(old, new, noise_floor_pct)
    threshold = max(2.0 * floor, min_change_pct)
    old_spans: Dict[str, Any] = old.get("spans", {})
    new_spans: Dict[str, Any] = new.get("spans", {})
    phases: Dict[str, Any] = {}
    summary: Dict[str, List[str]] = {
        "regressed": [], "improved": [], "added": [], "removed": [],
    }
    unchanged = negligible = 0
    for name in sorted(set(old_spans) | set(new_spans)):
        o, n = old_spans.get(name), new_spans.get(name)
        entry: Dict[str, Any] = {}
        if o is not None:
            entry["old"] = {
                "count": o["count"],
                "self_mean_s": o["self"]["mean_s"],
                "self_sum_s": o["self"]["sum_s"],
                "self_share": o.get("self_share", 0.0),
            }
        if n is not None:
            entry["new"] = {
                "count": n["count"],
                "self_mean_s": n["self"]["mean_s"],
                "self_sum_s": n["self"]["sum_s"],
                "self_share": n.get("self_share", 0.0),
            }
        if o is None:
            entry["verdict"] = "added"
            summary["added"].append(name)
        elif n is None:
            entry["verdict"] = "removed"
            summary["removed"].append(name)
        else:
            entry["count_ratio"] = (
                n["count"] / o["count"] if o["count"] else float("inf")
            )
            for m in DIFF_METRICS:
                ov, nv = _phase_metric(o, m), _phase_metric(n, m)
                entry[f"{m}_ratio"] = nv / ov if ov else (
                    float("inf") if nv else 1.0
                )
            ratio = entry[f"{metric}_ratio"]
            change_pct = (ratio - 1.0) * 100.0
            entry["change_pct"] = round(change_pct, 2)
            if (
                o["self"]["sum_s"] < min_time_s
                and n["self"]["sum_s"] < min_time_s
            ):
                entry["verdict"] = "negligible"
                negligible += 1
            elif abs(change_pct) <= threshold:
                entry["verdict"] = "unchanged"
                unchanged += 1
            elif change_pct > 0:
                entry["verdict"] = "regressed"
                summary["regressed"].append(name)
            else:
                entry["verdict"] = "improved"
                summary["improved"].append(name)
        phases[name] = entry
    old_counters: Dict[str, float] = old.get("counters", {})
    new_counters: Dict[str, float] = new.get("counters", {})
    counters: Dict[str, Any] = {}
    for name in sorted(set(old_counters) | set(new_counters)):
        ov = old_counters.get(name, 0)
        nv = new_counters.get(name, 0)
        ratio = nv / ov if ov else (float("inf") if nv else 1.0)
        counters[name] = {
            "old": ov,
            "new": nv,
            "ratio": round(ratio, 4) if ratio != float("inf") else "inf",
            # Counters are (near-)deterministic — tolerance is 1%, not
            # the timing noise floor.
            "verdict": "unchanged" if abs(ratio - 1.0) <= 0.01 else "changed",
        }
    regress_pcts = [
        phases[name]["change_pct"] for name in summary["regressed"]
    ]
    return {
        "profile_version": PROFILE_VERSION,
        "metric": metric,
        "noise_floor_pct": floor,
        "threshold_pct": threshold,
        "min_time_s": min_time_s,
        "decisions": {
            "old": old.get("decisions", 0),
            "new": new.get("decisions", 0),
        },
        "phases": phases,
        "counters": counters,
        "summary": {
            **summary,
            "unchanged": unchanged,
            "negligible": negligible,
            "max_regression_pct": max(regress_pcts) if regress_pcts else 0.0,
        },
    }


def diff_regressions(
    diff: Dict[str, Any], fail_threshold_pct: Optional[float] = None
) -> List[Tuple[str, float]]:
    """The ``(phase, change_pct)`` pairs that should fail a CI gate.

    A phase gates when its verdict is ``regressed`` and its change
    exceeds *fail_threshold_pct* (``None``: any significant regression).
    """
    out: List[Tuple[str, float]] = []
    for name in diff["summary"]["regressed"]:
        change = diff["phases"][name]["change_pct"]
        if fail_threshold_pct is None or change >= fail_threshold_pct:
            out.append((name, change))
    return out


def inflate_phase(
    profile: Dict[str, Any], name: str, factor: float
) -> Dict[str, Any]:
    """A copy of *profile* with phase *name* slowed down *factor*-fold.

    The synthetic-regression helper: CI inflates one phase of the freshly
    measured profile and asserts the diff gate trips on it — proving the
    gate fails for real regressions, not just on the happy path.  All
    ``self_share`` values are recomputed, so the injected regression
    shows up under every diff metric.
    """
    import copy

    if name not in profile.get("spans", {}):
        raise ValueError(f"profile has no phase named {name!r}")
    out = copy.deepcopy(profile)
    span = out["spans"][name]
    for block in ("total", "self"):
        for key in span[block]:
            span[block][key] *= factor
    total_self = sum(s["self"]["sum_s"] for s in out["spans"].values()) or 1.0
    for s in out["spans"].values():
        s["self_share"] = s["self"]["sum_s"] / total_self
    out["total_self_s"] = total_self
    meta = dict(out.get("meta") or {})
    meta["synthetic_regression"] = {"phase": name, "factor": factor}
    out["meta"] = meta
    return out


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _ms(seconds: float) -> str:
    ms = seconds * 1e3
    if ms >= 100:
        return f"{ms:.0f}ms"
    if ms >= 1:
        return f"{ms:.2f}ms"
    return f"{ms:.3f}ms"


def format_profile(profile: Dict[str, Any], top: int = 0) -> str:
    """A per-phase table: count, self sum/mean/p95, share of self time."""
    lines: List[str] = []
    lines.append(
        f"profile v{profile['profile_version']}: "
        f"{profile.get('decisions', 0)} decision(s), "
        f"{_ms(profile.get('total_self_s', 0.0))} total self time"
    )
    spans = list(profile.get("spans", {}).items())
    if top:
        spans = spans[:top]
    if spans:
        width = max(len(name) for name, _ in spans)
        lines.append(
            f"  {'phase'.ljust(width)}  {'count':>7}  {'self sum':>10}  "
            f"{'self mean':>10}  {'self p95':>10}  {'share':>6}"
        )
        for name, doc in spans:
            lines.append(
                f"  {name.ljust(width)}  {doc['count']:>7}  "
                f"{_ms(doc['self']['sum_s']):>10}  "
                f"{_ms(doc['self']['mean_s']):>10}  "
                f"{_ms(doc['self']['p95_s']):>10}  "
                f"{doc['self_share']:>6.1%}"
            )
    for key, table in profile.get("breakdowns", {}).items():
        cells = ", ".join(
            f"{value}={cell['count']}×{_ms(cell['mean_s'])}"
            for value, cell in table.items()
        )
        lines.append(f"  by {key}: {cells}")
    return "\n".join(lines)


def format_diff(diff: Dict[str, Any]) -> str:
    """Human-readable diff: one line per phase, significant first."""
    order = {"regressed": 0, "improved": 1, "added": 2, "removed": 3,
             "unchanged": 4, "negligible": 5}
    marks = {"regressed": "▲", "improved": "▼", "added": "+",
             "removed": "-", "unchanged": "=", "negligible": "·"}
    lines = [
        f"profile diff ({diff['metric']}; noise floor "
        f"{diff['noise_floor_pct']:g}% → significance threshold "
        f"±{diff['threshold_pct']:g}%)"
    ]
    phases = sorted(
        diff["phases"].items(),
        key=lambda kv: (
            order[kv[1]["verdict"]], -abs(kv[1].get("change_pct", 0.0))
        ),
    )
    for name, entry in phases:
        verdict = entry["verdict"]
        if verdict in ("added", "removed"):
            side = entry.get("new") or entry.get("old") or {}
            lines.append(
                f"  {marks[verdict]} {name}: {verdict} "
                f"({side.get('count', 0)} call(s), "
                f"{_ms(side.get('self_sum_s', 0.0))} self)"
            )
            continue
        lines.append(
            f"  {marks[verdict]} {name}: {verdict} "
            f"{entry['change_pct']:+.1f}% "
            f"(self {_ms(entry['old']['self_mean_s'])} → "
            f"{_ms(entry['new']['self_mean_s'])}, "
            f"share {entry['old']['self_share']:.1%} → "
            f"{entry['new']['self_share']:.1%}, "
            f"×{entry['count_ratio']:.2f} calls)"
        )
    changed = [
        (name, c) for name, c in diff.get("counters", {}).items()
        if c["verdict"] == "changed"
    ]
    if changed:
        lines.append("  counters:")
        for name, c in changed:
            lines.append(f"    {name}: {c['old']:g} → {c['new']:g}")
    s = diff["summary"]
    lines.append(
        f"  summary: {len(s['regressed'])} regressed, "
        f"{len(s['improved'])} improved, {s['unchanged']} unchanged, "
        f"{s['negligible']} negligible, {len(s['added'])} added, "
        f"{len(s['removed'])} removed"
    )
    return "\n".join(lines)
