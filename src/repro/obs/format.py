"""Human-readable rendering of serialized span trees (``repro trace``)."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .span import rollup_counters


def _fmt_ms(seconds: float) -> str:
    ms = seconds * 1e3
    if ms >= 100:
        return f"{ms:.0f}ms"
    if ms >= 1:
        return f"{ms:.1f}ms"
    return f"{ms:.3f}ms"


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _render(
    node: Dict[str, Any],
    depth: int,
    lines: List[str],
    show_attrs: bool,
) -> None:
    indent = "  " * depth
    dur = node.get("dur_s", 0.0)
    self_s = node.get("self_s", dur)
    parts = [f"{indent}{node['name']}"]
    parts.append(f"  {_fmt_ms(dur)}")
    if node.get("children"):
        parts.append(f"(self {_fmt_ms(self_s)})")
    detail: List[str] = []
    if show_attrs:
        for key, value in node.get("attrs", {}).items():
            detail.append(f"{key}={_fmt_value(value)}")
    for key, value in node.get("counters", {}).items():
        detail.append(f"{key}={_fmt_value(value)}")
    if detail:
        parts.append("[" + " ".join(detail) + "]")
    lines.append(" ".join(parts))
    for ev in node.get("events", ()):
        ev_attrs = " ".join(
            f"{k}={_fmt_value(v)}" for k, v in ev.get("attrs", {}).items()
        )
        lines.append(
            f"{indent}  · {ev['name']}" + (f" [{ev_attrs}]" if ev_attrs else "")
        )
    for child in node.get("children", ()):
        _render(child, depth + 1, lines, show_attrs)


def format_trace(
    roots: Sequence[Dict[str, Any]],
    *,
    show_attrs: bool = True,
    show_rollup: bool = True,
) -> str:
    """An indented phase tree with self/cumulative times per decision.

    One block per root decision: header (decision id, pid, total time),
    the span tree, point events as ``·`` lines, and — when counters were
    recorded anywhere in the tree — a recursive rollup footer.
    """
    blocks: List[str] = []
    for root in roots:
        lines: List[str] = []
        lines.append(
            f"decision {root['id']}  pid={root['pid']}  "
            f"total={_fmt_ms(root.get('dur_s', 0.0))}"
        )
        if root.get("dropped_spans"):
            lines.append(
                f"  (!) {root['dropped_spans']} span(s) dropped "
                f"(max_spans budget)"
            )
        _render(root, 1, lines, show_attrs)
        if show_rollup:
            totals = rollup_counters(root)
            if totals:
                lines.append("  rollup:")
                for name in sorted(totals):
                    lines.append(f"    {name} = {_fmt_value(totals[name])}")
        blocks.append("\n".join(lines))
    if not blocks:
        return "(no decisions recorded)"
    return "\n\n".join(blocks)
