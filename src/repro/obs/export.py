"""Trace exporters and loaders: JSONL span trees and Chrome trace_event.

Two on-disk formats, chosen by file extension in the CLI:

* ``*.jsonl`` — one serialized root-span tree per line (the
  :meth:`repro.obs.span.Span.to_dict` format verbatim).  Lossless; the
  format ``repro trace`` and programmatic consumers prefer.
* anything else (conventionally ``*.json``) — the Chrome ``trace_event``
  format (a ``{"traceEvents": [...]}`` document of complete ``"X"`` events
  plus instant ``"i"`` events), which loads directly in
  ``chrome://tracing`` and https://ui.perfetto.dev.  Span attributes and
  counter rollups ride in ``args``; timestamps are wall-clock microseconds
  so trees captured in different pool workers land on one aligned
  timeline.

Both directions are supported: :func:`roots_from_chrome` rebuilds span
trees from a Chrome document (nesting by containment per ``(pid, tid)``
track), so ``repro trace`` pretty-prints either format.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from .span import walk

#: Event phases the validator accepts (we only emit X, i, and M).
_KNOWN_PHASES = {"X", "i", "I", "B", "E", "M"}


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------


def _span_events(node: Dict[str, Any], out: List[Dict[str, Any]]) -> None:
    # attrs and counters ride in separate args sub-dicts so
    # roots_from_chrome can tell them apart on the way back (a flat
    # merge can't distinguish an attr from a counter, which made the
    # round trip lossy; the loader still accepts the old flat layout).
    args: Dict[str, Any] = {"span_id": node["id"]}
    if node.get("attrs"):
        args["attrs"] = dict(node["attrs"])
    if node.get("counters"):
        args["counters"] = dict(node["counters"])
    ts = int(node["start"] * 1e6)
    out.append(
        {
            "name": node["name"],
            "cat": node["name"].split(".", 1)[0],
            "ph": "X",
            "ts": ts,
            # Perfetto ignores zero-width slices; clamp to 1 µs.
            "dur": max(1, int(node["dur_s"] * 1e6)),
            "pid": node["pid"],
            "tid": node["tid"],
            "args": args,
        }
    )
    for ev in node.get("events", ()):
        out.append(
            {
                "name": ev["name"],
                "cat": "event",
                "ph": "i",
                "s": "t",
                "ts": int(ev["ts"] * 1e6),
                "pid": node["pid"],
                "tid": node["tid"],
                "args": dict(ev.get("attrs", {})),
            }
        )
    for child in node.get("children", ()):
        _span_events(child, out)


def chrome_trace(roots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The Chrome trace_event document for a list of root span trees."""
    events: List[Dict[str, Any]] = []
    pids = set()
    for root in roots:
        _span_events(root, events)
        pids.add(root["pid"])
    # DFS emission order is not ts order (a parent's instant events can
    # postdate an earlier-starting child); sort so ts is monotonic per
    # track, which the validator and some viewers require.
    events.sort(key=lambda e: (e["ts"], -e.get("dur", 0), e["ph"] != "X"))
    for pid in sorted(pids):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs"},
    }


def write_chrome_trace(roots: Sequence[Dict[str, Any]], path: str) -> None:
    Path(path).write_text(
        json.dumps(chrome_trace(roots)), encoding="utf-8"
    )


def validate_chrome_trace(doc: Any) -> List[str]:
    """Schema errors of a Chrome trace document; empty list means valid.

    Checks the invariants the CI smoke step (and Perfetto) relies on:
    events carry name/ph/pid/tid; ``ts`` values are finite, non-negative,
    and non-decreasing per ``(pid, tid)`` track; complete ``X`` events
    have a non-negative ``dur`` and nest properly (no partial overlap);
    ``B``/``E`` pairs, if present, are balanced.
    """
    errors: List[str] = []
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        return ["document must be a dict with a 'traceEvents' list"]
    tracks: Dict[Tuple[Any, Any], List[Dict[str, Any]]] = {}
    begin_depth: Dict[Tuple[Any, Any], int] = {}
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        if "name" not in ev or "pid" not in ev or "tid" not in ev:
            errors.append(f"{where}: missing name/pid/tid")
            continue
        if ph == "M":
            continue  # metadata events carry no ts
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue
        key = (ev["pid"], ev["tid"])
        track = tracks.setdefault(key, [])
        if track and ts < track[-1]["ts"]:
            errors.append(
                f"{where}: ts {ts} not monotonic on track {key} "
                f"(previous {track[-1]['ts']})"
            )
        track.append(ev)
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event with bad dur {dur!r}")
        elif ph == "B":
            begin_depth[key] = begin_depth.get(key, 0) + 1
        elif ph == "E":
            depth = begin_depth.get(key, 0) - 1
            if depth < 0:
                errors.append(f"{where}: E without matching B on {key}")
            begin_depth[key] = max(0, depth)
    for key, depth in begin_depth.items():
        if depth:
            errors.append(f"track {key}: {depth} unmatched B event(s)")
    # X nesting: per track, spans must be properly nested or disjoint.
    for key, track in tracks.items():
        stack: List[Tuple[float, float]] = []  # (start, end)
        xs = sorted(
            (e for e in track if e["ph"] == "X"),
            key=lambda e: (e["ts"], -e.get("dur", 0)),
        )
        for ev in xs:
            start, end = ev["ts"], ev["ts"] + ev.get("dur", 0)
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1] + 1:  # 1 µs rounding slack
                errors.append(
                    f"track {key}: span {ev['name']!r} [{start},{end}] "
                    f"partially overlaps its enclosing span "
                    f"[{stack[-1][0]},{stack[-1][1]}]"
                )
            stack.append((start, end))
    return errors


def roots_from_chrome(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Rebuild span trees from a Chrome trace document.

    Nesting is inferred per ``(pid, tid)`` track by interval containment —
    exactly how the document was flattened, so a round trip through
    :func:`chrome_trace` reproduces the tree shape.
    """
    by_track: Dict[Tuple[Any, Any], List[Dict[str, Any]]] = {}
    for ev in doc.get("traceEvents", ()):
        if ev.get("ph") in ("X", "i", "I"):
            by_track.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    roots: List[Dict[str, Any]] = []
    for (pid, tid), events in sorted(by_track.items(), key=str):
        # X before instants at equal ts so a span opens before the
        # instant events it emitted at its own start attach to it.
        events.sort(
            key=lambda e: (e["ts"], -e.get("dur", 0), e["ph"] != "X")
        )
        stack: List[Dict[str, Any]] = []  # open span nodes
        for ev in events:
            args = dict(ev.get("args", {}))
            if ev["ph"] != "X":
                # Instant event: reattach to the innermost open span.
                # Strictly-greater comparison gives 1 µs of slack — ts
                # and dur truncate independently to µs, so an event at
                # the very end of its span can land on the boundary.
                while stack and ev["ts"] > stack[-1]["_end"]:
                    stack.pop()
                if stack:
                    stack[-1].setdefault("events", []).append(
                        {
                            "name": ev["name"],
                            "ts": ev["ts"] / 1e6,
                            "attrs": args,
                        }
                    )
                continue
            span_id = args.pop("span_id", None)
            if "attrs" in args or "counters" in args:
                attrs = dict(args.get("attrs") or {})
                counters = dict(args.get("counters") or {})
            else:
                # Legacy flat args: attrs and counters merged; treat
                # everything as attrs (counters are unrecoverable).
                attrs, counters = args, {}
            node: Dict[str, Any] = {
                "id": span_id or f"{pid:x}-?",
                "name": ev["name"],
                "pid": pid,
                "tid": tid,
                "start": ev["ts"] / 1e6,
                "dur_s": ev.get("dur", 0) / 1e6,
            }
            if attrs:
                node["attrs"] = attrs
            if counters:
                node["counters"] = counters
            node["_end"] = ev["ts"] + ev.get("dur", 0)
            while stack and ev["ts"] >= stack[-1]["_end"]:
                stack.pop()
            if stack:
                stack[-1].setdefault("children", []).append(node)
            else:
                roots.append(node)
            stack.append(node)
    for root in roots:
        for node in walk(root):
            node.pop("_end", None)
            node["self_s"] = max(
                0.0,
                node["dur_s"]
                - sum(c["dur_s"] for c in node.get("children", ())),
            )
    return roots


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def write_jsonl(roots: Sequence[Dict[str, Any]], path: str) -> None:
    """One serialized root-span tree per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for root in roots:
            fh.write(json.dumps(root) + "\n")


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    roots: List[Dict[str, Any]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            roots.append(json.loads(line))
    return roots


# ---------------------------------------------------------------------------
# Unified entry points
# ---------------------------------------------------------------------------


def write_trace(roots: Sequence[Dict[str, Any]], path: str) -> str:
    """Write *roots* to *path*; format by extension.  Returns the format."""
    if str(path).endswith(".jsonl"):
        write_jsonl(roots, path)
        return "jsonl"
    write_chrome_trace(roots, path)
    return "chrome"


def _looks_like_span(doc: Any) -> bool:
    return isinstance(doc, dict) and "name" in doc and (
        "dur_s" in doc or "children" in doc
    )


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Load root span trees from *path*, sniffing the format from content.

    Accepted layouts, regardless of file extension:

    * JSONL — one span tree per line (each line a span dict);
    * a Chrome ``{"traceEvents": [...]}`` document (pretty-printed or
      compact), rebuilt via :func:`roots_from_chrome`;
    * a single span-tree dict, or a JSON array of span trees (what some
      callers dump with plain ``json.dump``).

    Anything else raises ``ValueError`` naming what was found.
    """
    text = Path(path).read_text(encoding="utf-8").strip()
    if not text:
        return []
    lines = [line for line in text.splitlines() if line.strip()]
    try:
        head = json.loads(lines[0])
    except json.JSONDecodeError:
        head = None
    if _looks_like_span(head) and "traceEvents" not in head:
        return [json.loads(line) for line in lines]
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path}: neither JSONL span trees nor a JSON document "
            f"({exc})"
        ) from None
    if isinstance(doc, dict) and "traceEvents" in doc:
        return roots_from_chrome(doc)
    if _looks_like_span(doc):
        return [doc]
    if isinstance(doc, list) and all(_looks_like_span(r) for r in doc):
        return doc
    found = type(doc).__name__
    if isinstance(doc, dict):
        found = f"object with keys {sorted(doc)[:5]}"
    raise ValueError(
        f"{path}: not a repro trace (expected JSONL span trees, a Chrome "
        f"traceEvents document, or span-tree JSON; found {found})"
    )
