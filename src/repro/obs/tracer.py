"""The tracer: contextvars-propagated hierarchical decision tracing.

Design constraints, in priority order:

1. **Near-zero cost when off.**  Every instrumentation site calls
   :func:`span` / :func:`event` / :func:`add`; with tracing off each call
   is one module-level bool test and (for ``span``) the reuse of a shared
   no-op handle.  There is no allocation, no lock, no contextvar access.
2. **No argument threading.**  The active span lives in a ``ContextVar``,
   so a chase round started five frames below ``contains()`` attaches to
   the decision tree without any API change to the layers between.
3. **Bounded.**  Sampling is configurable (``always`` / ``per-job`` /
   ``off``) and each tree carries a span budget (``max_spans``); once
   exhausted, further descendants are dropped and counted on the root —
   a pathological containment check degrades its own trace, never the
   process.

Completed root spans are appended to a bounded in-process sink
(:func:`drain` empties it — the CLI's ``--trace`` path), and span/decision
statistics land in :data:`OBS_METRICS`, the registry merged into
``BatchEngine.stats()``.
"""

from __future__ import annotations

import itertools
import time
from contextvars import ContextVar
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..engine.metrics import MetricsRegistry
from ..engine.registry import register_cache
from .span import Span

#: Bucket bounds (seconds) for the decision-duration histogram.
_DECISION_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)

#: The observability subsystem's own registry (span/decision accounting);
#: merged into the unified ``BatchEngine.stats()["metrics"]`` snapshot.
OBS_METRICS = MetricsRegistry()


@dataclass(frozen=True)
class TraceConfig:
    """Tracing policy — picklable, so it ships to pool workers.

    ``mode``:

    * ``"off"`` — every call site is a no-op bool test;
    * ``"always"`` — every root decision is traced;
    * ``"per-job"`` — every ``sample_every``-th root decision is traced
      (non-sampled decisions cost one counter bump at the root site and
      nothing below it).
    """

    mode: str = "always"
    sample_every: int = 1
    max_spans: int = 50_000
    #: XRewrite emits one growth event per this many generated queries.
    growth_stride: int = 100

    def __post_init__(self) -> None:
        if self.mode not in ("off", "always", "per-job"):
            raise ValueError(f"unknown tracing mode: {self.mode}")
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")


_OFF = TraceConfig(mode="off")

_config: TraceConfig = _OFF
#: The fast-path flag: instrumentation sites test only this.
_enabled: bool = False

_current: ContextVar[Optional[Span]] = ContextVar(
    "repro_obs_current", default=None
)

_root_seq = itertools.count(1)

#: Completed root-span trees (serialized), oldest dropped past the cap.
_sink: "deque[Dict[str, Any]]" = deque(maxlen=1024)


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


def configure(
    mode: str = "always",
    *,
    sample_every: int = 1,
    max_spans: int = 50_000,
    growth_stride: int = 100,
) -> TraceConfig:
    """Set the process-wide tracing policy; returns the active config."""
    return apply_config(
        TraceConfig(
            mode=mode,
            sample_every=sample_every,
            max_spans=max_spans,
            growth_stride=growth_stride,
        )
    )


def apply_config(config: TraceConfig) -> TraceConfig:
    """Install *config* (e.g. one shipped to a pool worker)."""
    global _config, _enabled
    _config = config
    _enabled = config.mode != "off"
    return config


def get_config() -> TraceConfig:
    return _config


def is_enabled() -> bool:
    """True iff tracing is globally on (mode != off)."""
    return _enabled


def is_active() -> bool:
    """True iff tracing is on *and* a span is currently open here."""
    if not _enabled:
        return False
    current = _current.get()
    return current is not None and current is not _UNSAMPLED


class tracing:
    """Context manager: install a config, restore the previous one after.

    ``with tracing("always"): ...`` — the test- and CLI-friendly wrapper.
    """

    def __init__(self, mode_or_config: "str | TraceConfig" = "always", **kw):
        if isinstance(mode_or_config, TraceConfig):
            self._config = (
                replace(mode_or_config, **kw) if kw else mode_or_config
            )
        else:
            self._config = TraceConfig(mode=mode_or_config, **kw)
        self._saved: Optional[TraceConfig] = None

    def __enter__(self) -> TraceConfig:
        self._saved = _config
        return apply_config(self._config)

    def __exit__(self, *exc_info) -> None:
        assert self._saved is not None
        apply_config(self._saved)


# ---------------------------------------------------------------------------
# Span handles
# ---------------------------------------------------------------------------


class _NullHandle:
    """The shared no-op handle returned whenever a span is not recorded."""

    __slots__ = ()
    active = False
    span = None

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def add(self, counter: str, amount: float = 1) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass


NULL_HANDLE = _NullHandle()

#: Context marker installed while an *unsampled* decision runs.  Descendant
#: ``span()``/``add()``/``event()`` calls see it and no-op — a skipped root
#: skips its whole tree instead of letting each descendant pose as a fresh
#: root (which would consume sampling slots and fabricate decisions).
_UNSAMPLED: Any = object()


class _UnsampledHandle:
    """Handle for a skipped root: marks the context so descendants no-op."""

    __slots__ = ("_token",)
    active = False
    span = None

    def __enter__(self) -> "_UnsampledHandle":
        self._token = _current.set(_UNSAMPLED)
        return self

    def __exit__(self, *exc_info) -> bool:
        _current.reset(self._token)
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def add(self, counter: str, amount: float = 1) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass


class SpanHandle:
    """A live span plus the contextvar token that makes it current."""

    __slots__ = ("span", "_token")
    active = True

    def __init__(self, span: Span) -> None:
        self.span = span
        self._token = None

    def __enter__(self) -> "SpanHandle":
        self._token = _current.set(self.span)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        span.finish()
        if exc_type is not None and "error" not in span.attrs:
            span.attrs["error"] = f"{exc_type.__name__}: {exc}"
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        if span.parent is None:
            _finish_root(span)
        return False

    # Delegation — the instrumentation sites hold handles, not spans.

    def set(self, key: str, value: Any) -> None:
        self.span.set(key, value)

    def add(self, counter: str, amount: float = 1) -> None:
        self.span.add(counter, amount)

    def event(self, name: str, **attrs: Any) -> None:
        self.span.event(name, **attrs)


def _finish_root(span: Span) -> None:
    OBS_METRICS.counter("obs.decisions").inc()
    OBS_METRICS.counter("obs.spans").inc(span.n_spans)
    if span.dropped:
        OBS_METRICS.counter("obs.dropped_spans").inc(span.dropped)
    OBS_METRICS.histogram(
        "obs.decision.seconds", buckets=_DECISION_BUCKETS
    ).observe(span.duration)
    _sink.append(span.to_dict())


# ---------------------------------------------------------------------------
# The instrumentation API
# ---------------------------------------------------------------------------


def span(name: str, **attrs: Any):
    """Open a span named *name*; returns a context-manager handle.

    With tracing off (or the decision unsampled, or the tree's span budget
    exhausted) the returned handle is the shared no-op — usable
    identically, recording nothing.
    """
    if not _enabled:
        return NULL_HANDLE
    parent = _current.get()
    if parent is None:
        cfg = _config
        if cfg.mode == "per-job":
            if (next(_root_seq) - 1) % cfg.sample_every != 0:
                OBS_METRICS.counter("obs.unsampled_decisions").inc()
                return _UnsampledHandle()
        return SpanHandle(Span(name, attrs, None))
    if parent is _UNSAMPLED:
        return NULL_HANDLE
    root = parent.root
    if root.n_spans >= _config.max_spans:
        root.dropped += 1
        return NULL_HANDLE
    root.n_spans += 1
    child = Span(name, attrs, parent)
    parent.children.append(child)
    return SpanHandle(child)


def event(name: str, **attrs: Any) -> None:
    """Record an event on the current span (no-op when inactive)."""
    if not _enabled:
        return
    current = _current.get()
    if current is not None and current is not _UNSAMPLED:
        current.event(name, **attrs)


def add(counter: str, amount: float = 1) -> None:
    """Add to a rollup counter on the current span (no-op when inactive)."""
    if not _enabled:
        return
    current = _current.get()
    if current is not None and current is not _UNSAMPLED:
        current.add(counter, amount)


def add_many(pairs: Iterable[Tuple[str, float]]) -> None:
    """Batch-add rollup counters to the current span (one lookup)."""
    if not _enabled:
        return
    current = _current.get()
    if current is None or current is _UNSAMPLED:
        return
    counters = current.counters
    for name, amount in pairs:
        counters[name] = counters.get(name, 0) + amount


def current_span() -> Optional[Span]:
    if not _enabled:
        return None
    current = _current.get()
    return None if current is _UNSAMPLED else current


def current_decision_id() -> Optional[str]:
    """The root span id of the active trace, or None.

    This is the *decision id* that cross-links artifacts: explanation
    objects, ``JobResult.trace`` trees, and exporter output all carry it.
    """
    if not _enabled:
        return None
    current = _current.get()
    if current is None or current is _UNSAMPLED:
        return None
    return current.root.span_id


def growth_stride() -> int:
    """The configured event-sampling stride for iterative growth loops."""
    return _config.growth_stride


def drain() -> List[Dict[str, Any]]:
    """Pop every completed root-span tree collected so far."""
    out: List[Dict[str, Any]] = []
    while _sink:
        out.append(_sink.popleft())
    return out


def obs_snapshot() -> Dict[str, Any]:
    """A plain-dict snapshot of the obs registry."""
    return OBS_METRICS.snapshot()


def _reset() -> None:
    """Back to defaults: tracing off, sink empty (test isolation)."""
    apply_config(_OFF)
    _sink.clear()


register_cache("obs.tracer", _reset)
register_cache("obs.metrics", OBS_METRICS.reset)


# ---------------------------------------------------------------------------
# Cross-process capture
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TracedOutcome:
    """A task value bundled with its serialized span tree (or None)."""

    value: Any
    trace: Optional[Dict[str, Any]]


@dataclass(frozen=True)
class TracedTask:
    """Wrap a pool task so its decision trace rides back with the value.

    The wrapper is picklable and self-contained: it carries the tracing
    config to the worker process, opens the root *job span* around
    ``task.run()`` (so every instrumented layer below attaches to it),
    and returns a :class:`TracedOutcome` whose ``trace`` is the serialized
    tree — populated even for crash-isolated workers, because the tree is
    part of the result payload, not process-global state.  The previous
    config is restored afterwards so the in-process serial path does not
    leak the engine's policy into the host.
    """

    task: Any
    config: TraceConfig
    submitted_wall: float

    def run(self) -> TracedOutcome:
        saved = _config
        apply_config(self.config)
        kind = getattr(self.task, "kind", type(self.task).__name__)
        attrs = {}
        trace_attrs = getattr(self.task, "trace_attrs", None)
        if trace_attrs is not None:
            attrs = trace_attrs()
        attrs["queue_wait_s"] = max(0.0, time.time() - self.submitted_wall)
        try:
            handle = span(f"job.{kind}", **attrs)
            with handle:
                value = self.task.run()
            trace = handle.span.to_dict() if handle.active else None
        finally:
            apply_config(saved)
        return TracedOutcome(value, trace)
