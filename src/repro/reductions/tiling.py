"""Tiling problems (appendix, proofs of Theorems 16 and 34).

* The **Exponential Tiling Problem**: an instance ``(n, m, H, V, s)`` asks
  for a tiling ``f : 2ⁿ×2ⁿ → {1..m}`` honouring the horizontal/vertical
  compatibility relations and an initial-row constraint ``s``
  (NExpTime-hard in general).
* The **Extended Tiling Problem (ETP)** of [34]: ``(k, n, m, H1, V1, H2,
  V2)`` asks whether *every* initial condition of length k makes T1
  unsolvable or T2 solvable (PNEXP-hard).

Both come with brute-force solvers that are exact for the tiny instances
the tests and benches use (n ≤ 2 — the reductions' correctness is
instance-size independent, see DESIGN.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

Tile = int
Cell = Tuple[int, int]


@dataclass(frozen=True)
class TilingInstance:
    """An Exponential Tiling Problem instance ``(n, m, H, V, s)``.

    The grid is ``2ⁿ × 2ⁿ``; tiles are ``1..m``; ``horizontal`` holds the
    allowed pairs ``(f(i,j), f(i+1,j))``, ``vertical`` the allowed
    ``(f(i,j), f(i,j+1))``; ``initial`` constrains ``f(i,0)`` for
    ``i < len(initial)``.
    """

    n: int
    m: int
    horizontal: FrozenSet[Tuple[Tile, Tile]]
    vertical: FrozenSet[Tuple[Tile, Tile]]
    initial: Tuple[Tile, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "horizontal", frozenset(self.horizontal))
        object.__setattr__(self, "vertical", frozenset(self.vertical))
        object.__setattr__(self, "initial", tuple(self.initial))
        side = 2**self.n
        if len(self.initial) > side:
            raise ValueError("initial condition longer than the grid side")
        for t in self.initial:
            if not 1 <= t <= self.m:
                raise ValueError(f"initial tile {t} outside 1..{self.m}")

    @property
    def side(self) -> int:
        return 2**self.n

    def with_initial(self, initial: Sequence[Tile]) -> "TilingInstance":
        return TilingInstance(
            self.n, self.m, self.horizontal, self.vertical, tuple(initial)
        )


def solve_tiling(instance: TilingInstance) -> Optional[Dict[Cell, Tile]]:
    """Brute-force solver: a satisfying tiling or None.

    Backtracks cell by cell in row-major order, checking the left and
    below neighbours; exact, intended for ``n ≤ 2``.
    """
    side = instance.side
    tiles = range(1, instance.m + 1)
    assignment: Dict[Cell, Tile] = {}
    order: List[Cell] = [(i, j) for j in range(side) for i in range(side)]

    def candidates(cell: Cell) -> Iterable[Tile]:
        i, j = cell
        if j == 0 and i < len(instance.initial):
            return (instance.initial[i],)
        return tiles

    def consistent(cell: Cell, tile: Tile) -> bool:
        i, j = cell
        if i > 0 and (assignment[(i - 1, j)], tile) not in instance.horizontal:
            return False
        if j > 0 and (assignment[(i, j - 1)], tile) not in instance.vertical:
            return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        cell = order[index]
        for tile in candidates(cell):
            if consistent(cell, tile):
                assignment[cell] = tile
                if backtrack(index + 1):
                    return True
                del assignment[cell]
        return False

    return dict(assignment) if backtrack(0) else None


def has_solution(instance: TilingInstance) -> bool:
    """True iff the instance admits a tiling."""
    return solve_tiling(instance) is not None


@dataclass(frozen=True)
class ETPInstance:
    """An Extended Tiling Problem instance ``(k, n, m, H1, V1, H2, V2)``."""

    k: int
    n: int
    m: int
    h1: FrozenSet[Tuple[Tile, Tile]]
    v1: FrozenSet[Tuple[Tile, Tile]]
    h2: FrozenSet[Tuple[Tile, Tile]]
    v2: FrozenSet[Tuple[Tile, Tile]]

    def __post_init__(self) -> None:
        for name in ("h1", "v1", "h2", "v2"):
            object.__setattr__(self, name, frozenset(getattr(self, name)))
        if self.k > 2**self.n:
            raise ValueError("initial length k exceeds the grid side")

    def t1(self, initial: Sequence[Tile]) -> TilingInstance:
        return TilingInstance(self.n, self.m, self.h1, self.v1, tuple(initial))

    def t2(self, initial: Sequence[Tile]) -> TilingInstance:
        return TilingInstance(self.n, self.m, self.h2, self.v2, tuple(initial))

    def initial_conditions(self) -> Iterable[Tuple[Tile, ...]]:
        return itertools.product(range(1, self.m + 1), repeat=self.k)


def solve_etp(instance: ETPInstance) -> bool:
    """Brute force the ETP question.

    YES iff for every initial condition w of length k: T1 has no solution
    with w, or T2 has some solution with w.
    """
    for w in instance.initial_conditions():
        if has_solution(instance.t1(w)) and not has_solution(instance.t2(w)):
            return False
    return True


def all_pairs(m: int) -> FrozenSet[Tuple[Tile, Tile]]:
    """The full compatibility relation over 1..m (everything allowed)."""
    return frozenset(itertools.product(range(1, m + 1), repeat=2))


def equal_pairs(m: int) -> FrozenSet[Tuple[Tile, Tile]]:
    """The diagonal relation (tiles only match themselves)."""
    return frozenset((t, t) for t in range(1, m + 1))
