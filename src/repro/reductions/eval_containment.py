"""The evaluation ⇄ containment reductions (Propositions 5 and 6).

Proposition 5: ``c̄ ∈ Q(D)`` iff ``(sch(Σ), ∅, q_{D,c̄}) ⊆ (sch(Σ), Σ, q)``
where ``q_{D,c̄}`` turns the database into a canonical CQ (constants become
variables, the answer tuple becomes the head).

Proposition 6: ``c̄ ∈ Q(D)`` iff ``(S, Σ*_D, q*_c̄) ⊄ (S, ∅, ∃x P(x))``
where Σ*_D renames Σ's predicates to starred copies and adds one fact tgd
per database atom, and P is fresh — the right-hand query is unsatisfiable
over S, so the containment fails exactly when the left-hand query is
satisfiable, i.e., when the answer holds.

Both reductions are used by the test-suite as *cross-validation oracles*:
evaluation answers computed directly must agree with the containment
verdicts of the reduced instances, tying the two engines together.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.omq import OMQ
from ..core.queries import CQ
from ..core.schema import Schema
from ..core.terms import Constant, Term, Variable
from ..core.tgd import TGD, sch


def canonical_query_of_database(
    database: Instance, answer: Sequence[Term] = (), name: str = "qD"
) -> CQ:
    """``q_{D,c̄}``: the database as a CQ, with c̄'s variables as the head."""
    mapping: Dict[Term, Variable] = {}
    for t in sorted(database.domain(), key=str):
        if isinstance(t, Constant):
            mapping[t] = Variable(f"x_{t.name}")
    body = tuple(
        a.substitute(mapping) for a in sorted(database.atoms, key=str)
    )
    head = tuple(mapping[t] for t in answer)
    return CQ(head, body, name)


def eval_to_containment(
    omq: OMQ, database: Instance, answer: Sequence[Term] = ()
) -> Tuple[OMQ, OMQ]:
    """Proposition 5: build (Q1, Q2) with ``c̄ ∈ Q(D) ⟺ Q1 ⊆ Q2``."""
    data_schema = omq.data_schema | omq.ontology_schema() | database.schema()
    q1 = OMQ(
        data_schema,
        (),
        canonical_query_of_database(database, answer),
        name="Q1_prop5",
    )
    q2 = OMQ(data_schema, omq.sigma, omq.query, name="Q2_prop5")
    return q1, q2


def _star(predicate: str) -> str:
    return predicate + "_star"


def eval_to_non_containment(
    omq: OMQ, database: Instance, answer: Sequence[Term] = ()
) -> Tuple[OMQ, OMQ]:
    """Proposition 6: build (Q1, Q2) with ``c̄ ∈ Q(D) ⟺ Q1 ⊄ Q2``."""
    query = omq.as_cq()
    answer = tuple(answer)
    if len(answer) != query.arity:
        raise ValueError("answer arity mismatch")
    # Σ*_D: starred copy of Σ plus one fact tgd per database atom.
    star_sigma = []
    for rule in omq.sigma:
        star_sigma.append(
            TGD(
                tuple(Atom(_star(a.predicate), a.args) for a in rule.body),
                tuple(Atom(_star(a.predicate), a.args) for a in rule.head),
                rule.name + "_star",
            )
        )
    for a in sorted(database.atoms, key=str):
        star_sigma.append(TGD((), (Atom(_star(a.predicate), a.args),), "fact"))
    # q*_c̄: q with the head instantiated by c̄ and predicates starred.
    binding: Dict[Term, Term] = {}
    for head_term, value in zip(query.head, answer):
        if isinstance(head_term, Variable):
            binding[head_term] = value
        elif head_term != value:
            raise ValueError(f"head constant {head_term} incompatible with {value}")
    starred_body = tuple(
        Atom(_star(a.predicate), a.substitute(binding).args)
        for a in query.body
    )
    q_star = CQ((), starred_body, query.name + "_star")
    q1 = OMQ(omq.data_schema, tuple(star_sigma), q_star, name="Q1_prop6")
    fresh = "P_fresh"
    if fresh in omq.data_schema:  # pragma: no cover - defensive
        fresh = fresh + "_0"
    x = Variable("x")
    q2 = OMQ(
        omq.data_schema,
        (),
        CQ((), (Atom(fresh, (x,)),), "q_unsat"),
        name="Q2_prop6",
    )
    return q1, q2
