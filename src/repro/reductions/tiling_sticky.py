"""Theorem 34: the Exponential Tiling Problem → Cont((FNR, CQ), (L, UCQ)).

Given a tiling instance ``T = (n, m, H, V, s)``, the construction produces

* ``Q_T`` — a *full non-recursive* 0-1 OMQ over the data schema
  ``{TiledBy_i / 2n}`` (cell coordinates are n-bit binary numbers) whose
  Goal fires iff the database tiles the *entire* ``2ⁿ×2ⁿ`` grid, ignoring
  compatibility: the ``TiledAboveCol``/``TiledAboveRow`` ladders perform a
  divide-and-conquer totality check;
* ``Q'_T`` — a *linear* OMQ with a UCQ of violation patterns (two tiles on
  one cell, incompatible horizontal/vertical neighbours via the ``Succ``
  bit-incrementer ladder, or a wrong initial tile),

such that ``T`` has a solution iff ``Q_T ⊄ Q'_T``.  (The paper's sketch
writes ``TiledBy_i`` twice in the compatibility violations; the second
occurrence is the j-indexed one, fixed here.)
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.atoms import Atom
from ..core.omq import OMQ
from ..core.queries import CQ, UCQ
from ..core.schema import Schema
from ..core.terms import Constant, Term, Variable
from ..core.tgd import TGD
from .tiling import TilingInstance

ZERO = Constant("0")
ONE = Constant("1")


def _v(name: str, index: int) -> Variable:
    return Variable(f"{name}{index}")


def tiling_data_schema(instance: TilingInstance) -> Schema:
    return Schema(
        {f"TiledBy_{i}": 2 * instance.n for i in range(1, instance.m + 1)}
    )


def build_q_t(instance: TilingInstance) -> OMQ:
    """``Q_T``: the full non-recursive totality checker."""
    n, m = instance.n, instance.m
    rules: List[TGD] = [
        TGD((), (Atom("Bit", (ZERO,)),), "bit0"),
        TGD((), (Atom("Bit", (ONE,)),), "bit1"),
    ]
    xs = [_v("x", i) for i in range(1, n)]  # x1..x(n-1)
    ys = [_v("y", i) for i in range(1, n + 1)]
    w = Variable("w")
    # Column base: both column extensions of x1..x(n-1) are tiled in row ȳ.
    for j in range(1, m + 1):
        for k in range(1, m + 1):
            body = [
                Atom(f"TiledBy_{j}", tuple(xs) + (ONE,) + tuple(ys)),
                Atom(f"TiledBy_{k}", tuple(xs) + (ZERO,) + tuple(ys)),
            ]
            body += [Atom("Bit", (x,)) for x in xs]
            body += [Atom("Bit", (y,)) for y in ys]
            body.append(Atom("Bit", (w,)))
            rules.append(
                TGD(
                    tuple(body),
                    (Atom(f"TiledAboveCol_{n}", tuple(xs) + (w,) + tuple(ys)),),
                    f"col_base_{j}_{k}",
                )
            )
    # Column induction downwards.
    for i in range(n, 1, -1):
        prefix = [_v("x", p) for p in range(1, i - 1 + 1)][: i - 1]
        suffix_a = [_v("a", p) for p in range(i + 1, n + 1)]
        suffix_b = [_v("b", p) for p in range(i + 1, n + 1)]
        ws = [_v("w", p) for p in range(i, n + 1)]
        body = [
            Atom(
                f"TiledAboveCol_{i}",
                tuple(prefix) + (ONE,) + tuple(suffix_a) + tuple(ys),
            ),
            Atom(
                f"TiledAboveCol_{i}",
                tuple(prefix) + (ZERO,) + tuple(suffix_b) + tuple(ys),
            ),
        ]
        body += [Atom("Bit", (wv,)) for wv in ws]
        rules.append(
            TGD(
                tuple(body),
                (
                    Atom(
                        f"TiledAboveCol_{i-1}",
                        tuple(prefix) + tuple(ws) + tuple(ys),
                    ),
                ),
                f"col_ind_{i}",
            )
        )
    # A fully tiled row.
    all_x = [_v("x", i) for i in range(1, n + 1)]
    rules.append(
        TGD(
            (Atom("TiledAboveCol_1", tuple(all_x) + tuple(ys)),),
            (Atom("RowTiled", tuple(ys)),),
            "row_tiled",
        )
    )
    # Row base and induction.
    y_prefix = [_v("y", i) for i in range(1, n)]
    rules.append(
        TGD(
            (
                Atom("RowTiled", tuple(y_prefix) + (ONE,)),
                Atom("RowTiled", tuple(y_prefix) + (ZERO,)),
                Atom("Bit", (w,)),
            ),
            (Atom(f"TiledAboveRow_{n}", tuple(y_prefix) + (w,)),),
            "row_base",
        )
    )
    for i in range(n, 1, -1):
        prefix = [_v("y", p) for p in range(1, i)]
        suffix_a = [_v("c", p) for p in range(i + 1, n + 1)]
        suffix_b = [_v("d", p) for p in range(i + 1, n + 1)]
        ws = [_v("w", p) for p in range(i, n + 1)]
        body = [
            Atom(
                f"TiledAboveRow_{i}",
                tuple(prefix) + (ONE,) + tuple(suffix_a),
            ),
            Atom(
                f"TiledAboveRow_{i}",
                tuple(prefix) + (ZERO,) + tuple(suffix_b),
            ),
        ]
        body += [Atom("Bit", (wv,)) for wv in ws]
        rules.append(
            TGD(
                tuple(body),
                (Atom(f"TiledAboveRow_{i-1}", tuple(prefix) + tuple(ws)),),
                f"row_ind_{i}",
            )
        )
    rules.append(
        TGD(
            (Atom("TiledAboveRow_1", tuple(all_x)),),
            (Atom("AllTiled", ()),),
            "all_tiled",
        )
    )
    rules.append(TGD((Atom("AllTiled", ()),), (Atom("Goal", ()),), "goal"))
    return OMQ(
        tiling_data_schema(instance),
        tuple(rules),
        CQ((), (Atom("Goal", ()),), "goal"),
        "Q_T",
    )


def build_q_t_prime(instance: TilingInstance) -> OMQ:
    """``Q'_T``: the linear violation detector with its UCQ of patterns."""
    n, m = instance.n, instance.m
    rules: List[TGD] = [
        TGD((), (Atom("Bit", (ZERO,)),), "bit0"),
        TGD((), (Atom("Bit", (ONE,)),), "bit1"),
        TGD((), (Atom("Succ_1", (ZERO, ONE)),), "succ1"),
        TGD((), (Atom("LastFirst_1", (ONE, ZERO)),), "lastfirst1"),
    ]
    for i in range(1, n):
        xs = [_v("x", p) for p in range(1, i + 1)]
        ys = [_v("y", p) for p in range(1, i + 1)]
        succ = Atom(f"Succ_{i}", tuple(xs) + tuple(ys))
        last = Atom(f"LastFirst_{i}", tuple(xs) + tuple(ys))
        rules.append(
            TGD((succ,),
                (Atom(f"Succ_{i+1}", (ZERO,) + tuple(xs) + (ZERO,) + tuple(ys)),),
                f"succ0_{i}")
        )
        rules.append(
            TGD((succ,),
                (Atom(f"Succ_{i+1}", (ONE,) + tuple(xs) + (ONE,) + tuple(ys)),),
                f"succ1_{i}")
        )
        rules.append(
            TGD((last,),
                (Atom(f"Succ_{i+1}", (ZERO,) + tuple(xs) + (ONE,) + tuple(ys)),),
                f"succ_carry_{i}")
        )
        rules.append(
            TGD((last,),
                (Atom(f"LastFirst_{i+1}", (ONE,) + tuple(xs) + (ZERO,) + tuple(ys)),),
                f"lastfirst_{i}")
        )

    disjuncts: List[CQ] = []
    xs = [_v("x", p) for p in range(1, n + 1)]
    ys = [_v("y", p) for p in range(1, n + 1)]
    ws = [_v("w", p) for p in range(1, n + 1)]
    bits_xy = [Atom("Bit", (v,)) for v in xs + ys]
    # (a) two tiles on one cell.
    for i in range(1, m + 1):
        for j in range(1, m + 1):
            if i == j:
                continue
            disjuncts.append(
                CQ(
                    (),
                    (
                        Atom(f"TiledBy_{i}", tuple(xs) + tuple(ys)),
                        Atom(f"TiledBy_{j}", tuple(xs) + tuple(ys)),
                    )
                    + tuple(bits_xy),
                    f"consistency_{i}_{j}",
                )
            )
    bits_w = [Atom("Bit", (v,)) for v in ws]
    # (b) vertical incompatibility: rows ȳ = x̄+1 in column w̄.
    for i in range(1, m + 1):
        for j in range(1, m + 1):
            if (i, j) in instance.vertical:
                continue
            disjuncts.append(
                CQ(
                    (),
                    (
                        Atom(f"Succ_{n}", tuple(xs) + tuple(ys)),
                        Atom(f"TiledBy_{i}", tuple(ws) + tuple(xs)),
                        Atom(f"TiledBy_{j}", tuple(ws) + tuple(ys)),
                    )
                    + tuple(bits_w),
                    f"vertical_{i}_{j}",
                )
            )
    # (c) horizontal incompatibility: columns ȳ = x̄+1 in row w̄.
    for i in range(1, m + 1):
        for j in range(1, m + 1):
            if (i, j) in instance.horizontal:
                continue
            disjuncts.append(
                CQ(
                    (),
                    (
                        Atom(f"Succ_{n}", tuple(xs) + tuple(ys)),
                        Atom(f"TiledBy_{i}", tuple(xs) + tuple(ws)),
                        Atom(f"TiledBy_{j}", tuple(ys) + tuple(ws)),
                    )
                    + tuple(bits_w),
                    f"horizontal_{i}_{j}",
                )
            )
    # (d) wrong initial tile at position p of the first row.
    z, o = Variable("z"), Variable("o")
    for p, required in enumerate(instance.initial):
        bits = [(p >> (n - 1 - b)) & 1 for b in range(n)]
        coords: Tuple[Term, ...] = tuple(o if b else z for b in bits)
        for wrong in range(1, m + 1):
            if wrong == required:
                continue
            disjuncts.append(
                CQ(
                    (),
                    (
                        Atom(f"TiledBy_{wrong}", coords + (z,) * n),
                        Atom("Succ_1", (z, o)),
                    ),
                    f"initial_{p}_{wrong}",
                )
            )
    return OMQ(
        tiling_data_schema(instance),
        tuple(rules),
        UCQ(tuple(disjuncts), "violations"),
        "Q_T_prime",
    )


def tiling_to_containment(instance: TilingInstance) -> Tuple[OMQ, OMQ]:
    """Theorem 34: (Q_T, Q'_T) with ``T solvable ⟺ Q_T ⊄ Q'_T``."""
    return build_q_t(instance), build_q_t_prime(instance)
