"""From UCQs to CQs: the Or-gadget translation (Proposition 9).

Given a Boolean OMQ ``Q = (S, Σ, q1 ∨ ... ∨ qn) ∈ (C, UCQ)`` with
C ∈ {G, L, NR, S}, the translation builds ``Q' = (S, Σ', q') ∈ (C, CQ)``
with ``Q ≡ Q'`` by encoding disjunction through a truth-table relation:

* every S-fact is copied into an annotated predicate ``R'`` carrying the
  truth constant 1, and ``True(1)`` is derived;
* one fact-style tgd spawns an all-false "phantom copy" of the atoms of q
  annotated by a null f, together with the truth table of ``Or`` and the
  constant ``False(f)``;
* each original tgd is replicated on the annotated predicates, threading
  the truth annotation through;
* the CQ q' matches every disjunct (phantom matches always exist) and
  chains their annotations through ``Or``, requiring the final accumulator
  to be 1 — so some disjunct must be matched by *really true* atoms.

Scope note (documented in DESIGN.md): the phantom copy fixes one witness
for the query's variables, so the translation is implemented for *Boolean*
UCQs — which is exactly the case the paper's complexity arguments use it
for (Section 5 reduces to BCQs first).  ``False(f)`` is included in the
phantom tgd's head; the paper's sketch omits it but q' references it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.atoms import Atom
from ..core.omq import OMQ
from ..core.queries import CQ, UCQ
from ..core.schema import Schema
from ..core.terms import Constant, Term, Variable
from ..core.tgd import TGD

TRUE = Constant("1")


def _annotated(predicate: str) -> str:
    return predicate + "_ann"


def _copy_pred(predicate: str) -> str:
    return predicate + "_cp"


def ucq_omq_to_cq_omq(omq: OMQ) -> OMQ:
    """Proposition 9: an equivalent CQ-based OMQ for a Boolean UCQ-based one."""
    query = omq.as_ucq()
    if not query.is_boolean():
        raise ValueError(
            "the Or-gadget translation is implemented for Boolean UCQs "
            "(the paper's containment analysis reduces to BCQs first)"
        )
    if not query.disjuncts:
        raise ValueError("empty UCQ has no CQ equivalent")

    data_predicates = list(omq.data_schema.predicates())
    # Step 0: make sure S-predicates never appear in rule heads by copying
    # every data predicate into a _cp twin used by Σ and q (copying
    # unconditionally keeps the construction uniform).
    rename: Dict[str, str] = {p: _copy_pred(p) for p in data_predicates}
    copy_rules: List[TGD] = []
    for p in data_predicates:
        arity = omq.data_schema.arity(p)
        args = tuple(Variable(f"u{i}") for i in range(arity))
        copy_rules.append(
            TGD((Atom(p, args),), (Atom(rename[p], args),), f"copy_{p}")
        )

    def renamed(a: Atom) -> Atom:
        return Atom(rename.get(a.predicate, a.predicate), a.args)

    sigma = [
        TGD(
            tuple(renamed(a) for a in rule.body),
            tuple(renamed(a) for a in rule.head),
            rule.name,
        )
        for rule in omq.sigma
    ]
    disjuncts = [
        CQ((), tuple(renamed(a) for a in d.body), d.name) for d in query.disjuncts
    ]

    new_sigma: List[TGD] = list(copy_rules)
    # Step 1: annotate copied data atoms with the truth constant 1.
    annotated_preds: Dict[str, int] = {}
    for rule in sigma:
        for a in rule.body + rule.head:
            annotated_preds[a.predicate] = a.arity
    for d in disjuncts:
        for a in d.body:
            annotated_preds[a.predicate] = a.arity
    for p in sorted(set(rename.values())):
        arity = annotated_preds.get(p)
        if arity is None:
            continue
        args = tuple(Variable(f"u{i}") for i in range(arity))
        new_sigma.append(
            TGD(
                (Atom(p, args),),
                (Atom(_annotated(p), args + (TRUE,)), Atom("True", (TRUE,))),
                f"annotate_{p}",
            )
        )

    # Step 2: the phantom copy of all query atoms, annotated by a null f,
    # plus the Or truth table and False(f).
    t = Variable("t")
    f = Variable("f")
    phantom_atoms: List[Atom] = []
    used_vars: Dict[Variable, Variable] = {}
    for i, d in enumerate(disjuncts):
        for a in d.body:
            fresh_args: List[Term] = []
            for term in a.args:
                if isinstance(term, Variable):
                    key = Variable(f"{term.name}~ph")
                    used_vars[term] = key
                    fresh_args.append(key)
                else:
                    fresh_args.append(term)
            phantom_atoms.append(
                Atom(_annotated(a.predicate), tuple(fresh_args) + (f,))
            )
    truth_table = [
        Atom("Or", (t, t, t)),
        Atom("Or", (t, f, t)),
        Atom("Or", (f, t, t)),
        Atom("Or", (f, f, f)),
        Atom("False", (f,)),
    ]
    new_sigma.append(
        TGD(
            (Atom("True", (t,)),),
            tuple(phantom_atoms) + tuple(truth_table),
            "phantom",
        )
    )

    # Step 3: annotated replicas of the original tgds, threading w.
    w = Variable("w_ann")
    for rule in sigma:
        body = tuple(
            Atom(_annotated(a.predicate), a.args + (w,)) for a in rule.body
        )
        head = tuple(
            Atom(_annotated(a.predicate), a.args + (w,)) for a in rule.head
        )
        if not body:
            # Fact tgds are unconditionally true: annotate with 1.
            body = ()
            head = tuple(
                Atom(_annotated(a.predicate), a.args + (TRUE,))
                for a in rule.head
            ) + (Atom("True", (TRUE,)),)
        new_sigma.append(TGD(body, head, rule.name + "_ann"))

    # The CQ q': chain the disjunct annotations through Or.
    n = len(disjuncts)
    xs = [Variable(f"or_x{i}") for i in range(n)]
    ys = [Variable(f"or_y{i}") for i in range(n + 1)]
    body: List[Atom] = [Atom("False", (ys[0],))]
    for i, d in enumerate(disjuncts):
        renamed_d = d.rename_apart(
            {v for dd in disjuncts[:i] for v in dd.variables()}, suffix=f"_d{i}"
        )
        for a in renamed_d.body:
            body.append(Atom(_annotated(a.predicate), a.args + (xs[i],)))
        body.append(Atom("Or", (ys[i], xs[i], ys[i + 1])))
    body.append(Atom("True", (ys[n],)))
    q_prime = CQ((), tuple(body), query.name + "_cq")
    return OMQ(omq.data_schema, tuple(new_sigma), q_prime, omq.name + "_cq")
