"""Proposition 35: rewriting full 0-1 OMQs into sticky (lossless) OMQs.

A *0-1 query* satisfies ``Q(D) = Q(D01)`` where ``D01`` keeps only facts
over the binary domain {0, 1} (the tiling queries of Theorem 34 are 0-1 by
construction: every rule guards its variables with ``Bit``).  For such a
query ``Q = (S, Σ, q)`` with full Σ, the transformation pads every
predicate with n = max-body-variables extra positions and keeps *all* body
variables in rule heads — making every tgd lossless, hence sticky — and
adds finalization rules that flip the 1-padding back to the canonical
all-0 padding the query asks for.

Together with Theorem 34 this lifts the coNExpTime-hardness of
``Cont((FNR,CQ), (L,UCQ))`` to ``Cont((S,CQ), (L,UCQ))`` (step 2 of the
proof of Theorem 19).
"""

from __future__ import annotations

from typing import List

from ..core.atoms import Atom
from ..core.omq import OMQ
from ..core.queries import CQ
from ..core.terms import Constant, Term, Variable
from ..core.tgd import TGD

ZERO = Constant("0")
ONE = Constant("1")


def _primed(predicate: str) -> str:
    return predicate + "_pr"


def full_to_sticky(omq: OMQ) -> OMQ:
    """Proposition 35: an equivalent sticky OMQ for a full 0-1 OMQ.

    Raises ValueError if Σ is not full.  Equivalence holds on 0-1
    databases, which by the 0-1 property is all that matters.
    """
    query = omq.as_cq()
    if any(not rule.is_full() for rule in omq.sigma):
        raise ValueError("Proposition 35 applies to full tgds only")
    n = max(
        (len(rule.body_variables()) for rule in omq.sigma if rule.body),
        default=1,
    )
    n = max(n, 1)
    rules: List[TGD] = [
        TGD((), (Atom("BitAux", (ZERO,)),), "bit0"),
        TGD((), (Atom("BitAux", (ONE,)),), "bit1"),
    ]
    # Initialization: copy 0-1 data atoms into primed, 0-padded atoms.
    for p in omq.data_schema.predicates():
        arity = omq.data_schema.arity(p)
        args = tuple(Variable(f"u{i}") for i in range(arity))
        body = (Atom(p, args),) + tuple(Atom("BitAux", (a,)) for a in args)
        rules.append(
            TGD(
                body,
                (Atom(_primed(p), args + (ZERO,) * n),),
                f"init_{p}",
            )
        )
    # Transformation: pad every rule, exporting all body variables.
    padded_predicates = {p for p in omq.data_schema.predicates()}
    for rule in omq.sigma:
        body_atoms = []
        for a in rule.body:
            body_atoms.append(Atom(_primed(a.predicate), a.args + (ZERO,) * n))
            padded_predicates.add(a.predicate)
        body_vars = sorted(rule.body_variables(), key=lambda v: v.name)
        if rule.body:
            padding: List[Term] = list(body_vars)
            filler = body_vars[0] if body_vars else ZERO
            while len(padding) < n:
                padding.append(filler)
            padding = padding[:n]
        else:
            padding = [ZERO] * n
        for a in rule.head:
            padded_predicates.add(a.predicate)
            rules.append(
                TGD(
                    tuple(body_atoms),
                    (Atom(_primed(a.predicate), a.args + tuple(padding)),),
                    rule.name + "_pr",
                )
            )
    # Finalization: flip 1-padding down to the canonical all-0 padding.
    head_preds = {a.predicate for rule in omq.sigma for a in rule.head}
    for p in sorted(head_preds):
        arity = None
        for rule in omq.sigma:
            for a in rule.head:
                if a.predicate == p:
                    arity = a.arity
        assert arity is not None
        args = tuple(Variable(f"u{i}") for i in range(arity))
        pad = tuple(Variable(f"p{i}") for i in range(n))
        for i in range(n):
            before = pad[:i] + (ONE,) + pad[i + 1:]
            after = pad[:i] + (ZERO,) + pad[i + 1:]
            rules.append(
                TGD(
                    (Atom(_primed(p), args + before),),
                    (Atom(_primed(p), args + after),),
                    f"final_{p}_{i}",
                )
            )
    body = tuple(
        Atom(_primed(a.predicate), a.args + (ZERO,) * n) for a in query.body
    )
    q_prime = CQ(query.head, body, query.name + "_pr")
    return OMQ(omq.data_schema, tuple(rules), q_prime, omq.name + "_sticky")
