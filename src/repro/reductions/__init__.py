"""The appendix constructions: reductions, gadgets, and lower-bound families."""

from .eval_containment import (
    canonical_query_of_database,
    eval_to_containment,
    eval_to_non_containment,
)
from .full_to_sticky import full_to_sticky
from .lower_bounds import (
    expected_witness_size,
    minimal_satisfying_database,
    prop18_family,
)
from .tiling import (
    ETPInstance,
    TilingInstance,
    all_pairs,
    equal_pairs,
    has_solution,
    solve_etp,
    solve_tiling,
)
from .tiling_nr import etp_to_containment
from .tiling_sticky import build_q_t, build_q_t_prime, tiling_to_containment
from .ucq_to_cq import ucq_omq_to_cq_omq

__all__ = [
    "ETPInstance",
    "TilingInstance",
    "all_pairs",
    "build_q_t",
    "build_q_t_prime",
    "canonical_query_of_database",
    "equal_pairs",
    "etp_to_containment",
    "eval_to_containment",
    "eval_to_non_containment",
    "expected_witness_size",
    "full_to_sticky",
    "has_solution",
    "minimal_satisfying_database",
    "prop18_family",
    "solve_etp",
    "solve_tiling",
    "tiling_to_containment",
    "ucq_omq_to_cq_omq",
]
