"""Theorem 16: reducing the Extended Tiling Problem to Cont((NR, CQ)).

Given an ETP instance ``(k, n, m, H1, V1, H2, V2)`` the construction emits
two non-recursive OMQs ``Q1, Q2`` over the propositional data schema
``S = {C_i^j | i < k, j ≤ m}`` (atom ``C_i^j`` says "the i-th initial tile
is j") such that the ETP answer is YES iff ``Q1 ⊆ Q2``:

* ``Q1`` derives Goal iff the database declares at least one tile per
  initial position (*existence*) and ``T1 = (n, m, H1, V1, s)`` has a
  solution compatible with the declared tiles;
* ``Q2`` derives Goal iff some position declares two tiles (*uniqueness*
  violation — such databases are never proper initial conditions) or
  ``T2`` has a compatible solution.

The tiling machinery builds ``2^i × 2^i`` tilings inductively from nine
overlapping quadrants (Figure 2) and extracts the first k top-row tiles
through the ``Top`` ladder.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.atoms import Atom
from ..core.omq import OMQ
from ..core.queries import CQ
from ..core.schema import Schema
from ..core.terms import Variable
from ..core.tgd import TGD
from .tiling import ETPInstance


def initial_predicate(position: int, tile: int) -> str:
    """The data predicate ``C_i^j`` (0-ary)."""
    return f"C_{position}_{tile}"


def etp_data_schema(instance: ETPInstance) -> Schema:
    return Schema(
        {
            initial_predicate(i, j): 0
            for i in range(instance.k)
            for j in range(1, instance.m + 1)
        }
    )


def _v(name: str) -> Variable:
    return Variable(name)


def _tiling_rules(
    instance: ETPInstance,
    horizontal,
    vertical,
) -> List[TGD]:
    """The shared tiling machinery for one (H, V) pair."""
    k, n, m = instance.k, instance.n, instance.m
    rules: List[TGD] = []

    # Generate the m tiles (one fact tgd with m existentials).
    tiles = [_v(f"t{j}") for j in range(1, m + 1)]
    rules.append(
        TGD((), tuple(Atom(f"Tile_{j}", (tiles[j - 1],)) for j in range(1, m + 1)),
            "tiles")
    )
    # Compatibility relations.
    x, y = _v("x"), _v("y")
    for (i, j) in sorted(horizontal):
        rules.append(
            TGD(
                (Atom(f"Tile_{i}", (x,)), Atom(f"Tile_{j}", (y,))),
                (Atom("H", (x, y)),),
                f"h_{i}_{j}",
            )
        )
    for (i, j) in sorted(vertical):
        rules.append(
            TGD(
                (Atom(f"Tile_{i}", (x,)), Atom(f"Tile_{j}", (y,))),
                (Atom("V", (x, y)),),
                f"v_{i}_{j}",
            )
        )
    # Base: 2×2 tilings.  Quadrant order: (top-left, top-right,
    # bottom-left, bottom-right); the "top" row is row 0 where the initial
    # condition lives.
    x1, x2, x3, x4 = (_v(f"x{i}") for i in range(1, 5))
    t = _v("t")
    rules.append(
        TGD(
            (
                Atom("H", (x1, x2)),
                Atom("H", (x3, x4)),
                Atom("V", (x1, x3)),
                Atom("V", (x2, x4)),
            ),
            (Atom("T_1", (t, x1, x2, x3, x4)),),
            "t1",
        )
    )
    # Induction: a 2^i tiling from nine overlapping 2^(i-1) blocks over a
    # 4×4 grid of 2^(i-2) pieces (Figure 2).
    for i in range(2, n + 1):
        grid = {(r, c): _v(f"g{r}{c}") for r in range(1, 5) for c in range(1, 5)}
        blocks = []
        names = []
        for br in range(3):
            for bc in range(3):
                name = _v(f"b{br}{bc}")
                names.append((br, bc, name))
                blocks.append(
                    Atom(
                        f"T_{i-1}",
                        (
                            name,
                            grid[(br + 1, bc + 1)],
                            grid[(br + 1, bc + 2)],
                            grid[(br + 2, bc + 1)],
                            grid[(br + 2, bc + 2)],
                        ),
                    )
                )
        corner = {
            (br, bc): nm for br, bc, nm in names if br in (0, 2) and bc in (0, 2)
        }
        rules.append(
            TGD(
                tuple(blocks),
                (
                    Atom(
                        f"T_{i}",
                        (t, corner[(0, 0)], corner[(0, 2)],
                         corner[(2, 0)], corner[(2, 2)]),
                    ),
                ),
                f"t{i}",
            )
        )
    # Top-row extraction: Top_i_p(x, y) = "in the 2^i tiling x, the tile at
    # position (p, 0) is y", for the p < min(k, 2^i) positions we need.
    rules.append(
        TGD(
            (Atom("T_1", (t, x1, x2, x3, x4)),),
            tuple(
                Atom(f"Top_1_{p}", (t, (x1, x2)[p]))
                for p in range(min(k, 2))
            ),
            "top1",
        )
    )
    for i in range(2, n + 1):
        half = 2 ** (i - 1)
        q1v, q2v, q3v, q4v = (_v(f"q{j}") for j in range(1, 5))
        t_atom = Atom(f"T_{i}", (t, q1v, q2v, q3v, q4v))
        # Positions 0 .. min(k, half)-1 from the top-left quadrant.
        p_left = min(k, half)
        ys = [_v(f"y{p}") for p in range(p_left)]
        rules.append(
            TGD(
                (t_atom,)
                + tuple(
                    Atom(f"Top_{i-1}_{p}", (q1v, ys[p])) for p in range(p_left)
                ),
                tuple(Atom(f"Top_{i}_{p}", (t, ys[p])) for p in range(p_left)),
                f"top{i}_left",
            )
        )
        # Positions half .. min(k, 2^i)-1 from the top-right quadrant.
        if k > half:
            p_right = min(k, 2**i) - half
            ys2 = [_v(f"z{p}") for p in range(p_right)]
            rules.append(
                TGD(
                    (t_atom,)
                    + tuple(
                        Atom(f"Top_{i-1}_{p}", (q2v, ys2[p]))
                        for p in range(p_right)
                    ),
                    tuple(
                        Atom(f"Top_{i}_{half + p}", (t, ys2[p]))
                        for p in range(p_right)
                    ),
                    f"top{i}_right",
                )
            )
    # Initial-condition compatibility and the Tiling flag.
    for i in range(k):
        for j in range(1, m + 1):
            rules.append(
                TGD(
                    (Atom(initial_predicate(i, j), ()), Atom(f"Tile_{j}", (x,))),
                    (Atom(f"Initial_{i}", (x,)),),
                    f"init_{i}_{j}",
                )
            )
    body: List[Atom] = []
    for i in range(k):
        yi = _v(f"w{i}")
        body.append(Atom(f"Top_{n}_{i}", (t, yi)))
        body.append(Atom(f"Initial_{i}", (yi,)))
    rules.append(TGD(tuple(body), (Atom("Tiling", ()),), "tiling"))
    return rules


def etp_to_containment(instance: ETPInstance) -> Tuple[OMQ, OMQ]:
    """Theorem 16: build (Q1, Q2) ∈ (NR, CQ)² with ETP-YES ⟺ Q1 ⊆ Q2."""
    schema = etp_data_schema(instance)
    k, m = instance.k, instance.m

    # --- Q1: existence + T1-solvability ---------------------------------
    sigma1: List[TGD] = []
    for i in range(k):
        for j in range(1, m + 1):
            sigma1.append(
                TGD(
                    (Atom(initial_predicate(i, j), ()),),
                    (Atom(f"C_{i}", ()),),
                    f"c_{i}_{j}",
                )
            )
    sigma1.append(
        TGD(
            tuple(Atom(f"C_{i}", ()) for i in range(k)),
            (Atom("Existence", ()),),
            "existence",
        )
    )
    sigma1.extend(_tiling_rules(instance, instance.h1, instance.v1))
    sigma1.append(
        TGD(
            (Atom("Existence", ()), Atom("Tiling", ())),
            (Atom("Goal", ()),),
            "goal",
        )
    )
    q1 = OMQ(schema, tuple(sigma1), CQ((), (Atom("Goal", ()),), "goal"), "Q1_etp")

    # --- Q2: uniqueness violation ∨ T2-solvability -----------------------
    sigma2: List[TGD] = []
    for i in range(k):
        for j in range(1, m + 1):
            for l in range(j + 1, m + 1):
                sigma2.append(
                    TGD(
                        (
                            Atom(initial_predicate(i, j), ()),
                            Atom(initial_predicate(i, l), ()),
                        ),
                        (Atom("Goal", ()),),
                        f"uniq_{i}_{j}_{l}",
                    )
                )
    sigma2.extend(_tiling_rules(instance, instance.h2, instance.v2))
    sigma2.append(
        TGD((Atom("Tiling", ()),), (Atom("Goal", ()),), "goal2")
    )
    q2 = OMQ(schema, tuple(sigma2), CQ((), (Atom("Goal", ()),), "goal"), "Q2_etp")
    return q1, q2
