"""Exponential witness-size lower-bound families (Propositions 15 and 18).

Proposition 18's family ``{Q^n}`` (implemented here): a sticky — in fact
lossless, and also non-recursive, so it doubles as the Proposition-15-style
family — ontology over a single n-ary data predicate ``S`` such that any
database on which ``Q^n`` is non-empty must contain all ``2^(n-2)`` facts
``S(b̄, 0, 1)`` for ``b̄ ∈ {0,1}^(n-2)``:

    S(x̄)                                     → P_{n-2}(x̄)
    P_i(x₁..x_{i-1}, z, x_{i+1}.., z, o),
    P_i(x₁..x_{i-1}, o, x_{i+1}.., z, o)      → P_{i-1}(x₁.., z, x.., z, o)
    P_0(z, ..., z, o)                         → Ans(z, o)

with query ``Ans(0, 1)``.  Deriving ``P_{i-1}`` with a z at position i
needs *both* the z- and the o-variant of ``P_i`` at that position, so
unfolding down to ``S`` enumerates the full Boolean cube on the n-2 data
positions.  (The paper indexes the P-chain up to n; we index up to n-2,
which is the count that type-checks against the stated ``2^(n-2)``
witness bound — see DESIGN.md.)

Consequently, for *any* right-hand OMQ Q over {S}: if ``Q^n ⊄ Q`` then the
witness database has at least ``2^(n-2)`` atoms — measured in the bench by
the minimal disjunct size of the UCQ rewriting.
"""

from __future__ import annotations

from typing import List

from ..core.atoms import Atom
from ..core.omq import OMQ
from ..core.queries import CQ
from ..core.schema import Schema
from ..core.terms import Constant, Variable
from ..core.tgd import TGD

ZERO = Constant("0")
ONE = Constant("1")


def prop18_family(n: int) -> OMQ:
    """The OMQ ``Q^n = ({S/n}, Σ^n, Ans(0,1))`` of Proposition 18 (n ≥ 2)."""
    if n < 2:
        raise ValueError("the family is defined for n ≥ 2")
    data = n - 2  # number of cube positions
    xs = [Variable(f"x{i}") for i in range(1, data + 1)]
    z, o = Variable("z"), Variable("o")
    rules: List[TGD] = [
        TGD(
            (Atom("S", tuple(xs) + (z, o)),),
            (Atom(f"P_{data}", tuple(xs) + (z, o)),),
            "load",
        )
    ]
    for i in range(data, 0, -1):
        pre = xs[: i - 1]
        post = xs[i:]
        body = (
            Atom(f"P_{i}", tuple(pre) + (z,) + tuple(post) + (z, o)),
            Atom(f"P_{i}", tuple(pre) + (o,) + tuple(post) + (z, o)),
        )
        head = (Atom(f"P_{i-1}", tuple(pre) + (z,) + tuple(post) + (z, o)),)
        rules.append(TGD(body, head, f"fold_{i}"))
    rules.append(
        TGD(
            (Atom("P_0", (z,) * (data + 1) + (o,)),),
            (Atom("Ans", (z, o)),),
            "answer",
        )
    )
    query = CQ((), (Atom("Ans", (ZERO, ONE)),), "q18")
    return OMQ(Schema.of(S=n), tuple(rules), query, f"Q18_{n}")


def expected_witness_size(n: int) -> int:
    """``2^(n-2)``: the stated minimal witness size for Q^n."""
    return 2 ** (n - 2)


def minimal_satisfying_database(omq: OMQ):
    """The smallest canonical database on which the OMQ is non-empty.

    Computed from the UCQ rewriting: the minimal disjunct's frozen body.
    Exact for UCQ-rewritable OMQs (each disjunct's canonical database
    satisfies the OMQ; any satisfying database contains a homomorphic image
    of some disjunct).
    """
    from ..evaluation import cached_rewriting

    result = cached_rewriting(omq, 100_000)
    if not result.complete:
        raise RuntimeError("rewriting did not converge; cannot measure")
    best = None
    for d in result.rewriting.disjuncts:
        db, _ = d.canonical_database()
        if best is None or len(db) < len(best):
            best = db
    return best
