"""Instances and databases.

An *instance* over a schema ``S`` is a (here: finite, since we compute with
it) set of atoms over constants and nulls; a *database* is a finite set of
facts, i.e., an instance without nulls (Section 2).  The class below also
provides the pieces of structure the paper needs later:

* the active domain ``dom(I)``,
* a predicate index for fast homomorphism search,
* the Gaifman graph and its (maximally connected) components, used for
  distribution over components (Section 7.1),
* freezing of query bodies into canonical databases (used in the
  Chandra–Merlin argument and the small-witness containment algorithm).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Set, Tuple

from .atoms import Atom
from .schema import Schema
from .terms import Constant, Null, Term, Variable


@dataclass(frozen=True)
class Instance:
    """An immutable set of ground atoms (constants and nulls, no variables).

    Instances are hashable and support the subset/union algebra used by the
    chase and by containment procedures.
    """

    atoms: FrozenSet[Atom] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "atoms", frozenset(self.atoms))
        for a in self.atoms:
            if not a.is_ground():
                raise ValueError(f"instance atom contains a variable: {a}")

    # -- construction ----------------------------------------------------

    @classmethod
    def of(cls, atoms: Iterable[Atom]) -> "Instance":
        """Build an instance from any iterable of ground atoms."""
        return cls(frozenset(atoms))

    @classmethod
    def empty(cls) -> "Instance":
        """The empty instance."""
        return cls(frozenset())

    # -- basic structure -------------------------------------------------

    def domain(self) -> Set[Term]:
        """``dom(I)``: all terms occurring in the instance."""
        out: Set[Term] = set()
        for a in self.atoms:
            out.update(a.args)
        return out

    def constants(self) -> Set[Constant]:
        """All constants occurring in the instance."""
        return {t for t in self.domain() if isinstance(t, Constant)}

    def nulls(self) -> Set[Null]:
        """All labeled nulls occurring in the instance."""
        return {t for t in self.domain() if isinstance(t, Null)}

    def is_database(self) -> bool:
        """True iff the instance is a database (facts only, no nulls)."""
        return all(a.is_fact() for a in self.atoms)

    def schema(self) -> Schema:
        """The schema inferred from the atoms present."""
        return Schema.from_atoms(self.atoms)

    def predicates(self) -> Set[str]:
        """The predicate names occurring in the instance."""
        return {a.predicate for a in self.atoms}

    # -- indexing --------------------------------------------------------

    def by_predicate(self) -> Mapping[str, Tuple[Atom, ...]]:
        """Atoms grouped by predicate, in deterministic sorted order.

        Built once on first use and memoized on the (frozen) instance —
        repeated homomorphism searches against the same instance share the
        index instead of rebuilding it per call.
        """
        cached = self.__dict__.get("_by_predicate_memo")
        if cached is None:
            index: Dict[str, List[Atom]] = defaultdict(list)
            for a in self.atoms:
                index[a.predicate].append(a)
            cached = {
                p: tuple(sorted(atoms, key=_atom_sort_key))
                for p, atoms in index.items()
            }
            object.__setattr__(self, "_by_predicate_memo", cached)
        return cached

    def by_position(self) -> Mapping[Tuple[str, int, Term], Tuple[Atom, ...]]:
        """Atoms keyed by (predicate, position, term), memoized.

        The positional index behind the kernel's candidate selection: the
        atoms whose argument at *position* is *term*.  Each value preserves
        the deterministic :meth:`by_predicate` order, so index-filtered
        searches enumerate in the same relative order as full scans.
        """
        cached = self.__dict__.get("_by_position_memo")
        if cached is None:
            index: Dict[Tuple[str, int, Term], List[Atom]] = defaultdict(list)
            for atoms in self.by_predicate().values():
                for a in atoms:
                    for pos, t in enumerate(a.args):
                        index[(a.predicate, pos, t)].append(a)
            cached = {k: tuple(v) for k, v in index.items()}
            object.__setattr__(self, "_by_position_memo", cached)
        return cached

    # -- algebra ---------------------------------------------------------

    def union(self, other: "Instance") -> "Instance":
        """Set union of two instances."""
        return Instance(self.atoms | other.atoms)

    def restrict_to_predicates(self, predicates: Iterable[str]) -> "Instance":
        """The sub-instance on atoms whose predicate is in *predicates*."""
        keep = set(predicates)
        return Instance(frozenset(a for a in self.atoms if a.predicate in keep))

    def induced_by(self, terms: Iterable[Term]) -> "Instance":
        """The sub-instance induced by a set of domain elements.

        Keeps exactly the atoms all of whose arguments lie in *terms* (this is
        the paper's ``D_T(v)`` / ``D ↾ G`` notation).
        """
        allowed = set(terms)
        return Instance(
            frozenset(a for a in self.atoms if set(a.args) <= allowed)
        )

    def rename(self, mapping: Mapping[Term, Term]) -> "Instance":
        """Apply a term mapping to every atom."""
        return Instance(frozenset(a.substitute(mapping) for a in self.atoms))

    def freeze_nulls(self, prefix: str = "c_n") -> "Instance":
        """Replace every null with a distinct fresh constant.

        Used to turn a C-tree *instance* into a C-tree *database* as in the
        proof of Proposition 21.
        """
        mapping: Dict[Term, Term] = {
            n: Constant(f"{prefix}{n.ident}") for n in sorted(
                self.nulls(), key=lambda n: n.ident
            )
        }
        return self.rename(mapping)

    # -- Gaifman graph & components (Section 7.1) ------------------------

    def gaifman_adjacency(self) -> Mapping[Term, Set[Term]]:
        """Adjacency of the Gaifman graph: terms co-occurring in an atom."""
        adj: Dict[Term, Set[Term]] = defaultdict(set)
        for a in self.atoms:
            terms = set(a.args)
            for t in terms:
                adj[t].update(terms - {t})
                adj[t]  # ensure key exists even for isolated terms
        for t in self.domain():
            adj.setdefault(t, set())
        return adj

    def components(self) -> List["Instance"]:
        """The maximally connected components of the instance.

        Following the paper (Section 7.1) the notion is defined only for
        atoms with at least one argument; 0-ary atoms are excluded and raise
        if present, matching footnote 5.
        """
        if any(a.arity == 0 for a in self.atoms):
            raise ValueError(
                "components are undefined for instances with 0-ary atoms"
            )
        adj = self.gaifman_adjacency()
        seen: Set[Term] = set()
        components: List[Instance] = []
        atom_of_term: Dict[Term, List[Atom]] = defaultdict(list)
        for a in self.atoms:
            for t in set(a.args):
                atom_of_term[t].append(a)
        for start in sorted(adj, key=str):
            if start in seen:
                continue
            stack = [start]
            members: Set[Term] = set()
            while stack:
                node = stack.pop()
                if node in members:
                    continue
                members.add(node)
                stack.extend(adj[node] - members)
            seen.update(members)
            atoms: Set[Atom] = set()
            for t in members:
                atoms.update(atom_of_term[t])
            components.append(Instance(frozenset(atoms)))
        return components

    def is_connected(self) -> bool:
        """True iff the instance has at most one connected component."""
        if not self.atoms:
            return True
        return len(self.components()) <= 1

    # -- dunder ----------------------------------------------------------

    def __reduce__(self):
        # Pickle only the atoms: the index memos are cheap to rebuild and
        # would otherwise bloat every job payload shipped to worker
        # processes.
        return (Instance, (self.atoms,))

    def __contains__(self, a: Atom) -> bool:
        return a in self.atoms

    def __iter__(self) -> Iterator[Atom]:
        return iter(sorted(self.atoms, key=_atom_sort_key))

    def __len__(self) -> int:
        return len(self.atoms)

    def __le__(self, other: "Instance") -> bool:
        return self.atoms <= other.atoms

    def __or__(self, other: "Instance") -> "Instance":
        return self.union(other)

    def __str__(self) -> str:
        return "{" + ", ".join(str(a) for a in self) + "}"

    def __repr__(self) -> str:
        return f"Instance({sorted(map(str, self.atoms))!r})"


# A database is an instance of facts; we keep a type alias for readability.
Database = Instance


def _atom_sort_key(a: Atom) -> Tuple:
    return (a.predicate, tuple(_term_sort_key(t) for t in a.args))


def _term_sort_key(t: Term) -> Tuple:
    if isinstance(t, Constant):
        return (0, t.name)
    if isinstance(t, Null):
        return (1, str(t.ident))
    return (2, str(t))  # variables / wrapper tokens used by iso search


def freeze_atoms(
    atoms: Iterable[Atom], prefix: str = "c_"
) -> Tuple[Instance, Dict[Variable, Constant]]:
    """Freeze a set of atoms with variables into a canonical database.

    Every variable ``x`` is replaced by the constant ``c(x)`` (named
    ``prefix + x.name``); constants stay put.  Returns the database and the
    variable→constant mapping (the ``c`` of Proposition 10's proof).
    """
    mapping: Dict[Variable, Constant] = {}
    frozen: List[Atom] = []
    for a in atoms:
        for t in a.args:
            if isinstance(t, Variable) and t not in mapping:
                mapping[t] = Constant(f"{prefix}{t.name}")
        frozen.append(a.substitute(mapping))
    return Instance.of(frozen), mapping
