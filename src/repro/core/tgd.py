"""Tuple-generating dependencies (tgds), a.k.a. existential rules.

A tgd (Section 2, eq. (2)) is a sentence
``∀x̄∀ȳ (φ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄))`` with φ, ψ conjunctions of atoms.  The
body may be empty (*fact tgd*, written ``⊤ → ∃z̄ ψ``).  Frontier variables x̄
are those shared between body and head; z̄ are the existential variables.

The module also provides:

* normalization to single-head-atom form (splitting a multi-atom head
  through an auxiliary predicate, the standard transformation cited around
  Section 5 of the paper),
* the predicate graph of a set of tgds (used by non-recursiveness),
* structural measures (``sch(Σ)``, ``||Σ||``, max body size) used by the
  complexity bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from .atoms import Atom, variables_of_atoms
from .schema import Schema
from .terms import Constant, Term, Variable


class TGDError(ValueError):
    """Raised on malformed tgds (e.g., variables out of thin air)."""


@dataclass(frozen=True)
class TGD:
    """An immutable tgd ``body → ∃(existential vars) head``."""

    body: Tuple[Atom, ...]
    head: Tuple[Atom, ...]
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "head", tuple(self.head))
        if not self.head:
            raise TGDError("tgd must have a non-empty head")

    # -- variable structure ------------------------------------------------

    def body_variables(self) -> Set[Variable]:
        """Variables occurring in the body."""
        return variables_of_atoms(self.body)

    def head_variables(self) -> Set[Variable]:
        """Variables occurring in the head."""
        return variables_of_atoms(self.head)

    def frontier(self) -> Set[Variable]:
        """x̄: variables shared between body and head."""
        return self.body_variables() & self.head_variables()

    def existential_variables(self) -> Set[Variable]:
        """z̄: head variables that do not occur in the body."""
        return self.head_variables() - self.body_variables()

    def variables(self) -> Set[Variable]:
        """All variables of the tgd."""
        return self.body_variables() | self.head_variables()

    def constants(self) -> Set[Constant]:
        """All constants of the tgd."""
        out: Set[Constant] = set()
        for a in self.body + self.head:
            out.update(a.constants())
        return out

    # -- classification helpers --------------------------------------------

    def is_fact_tgd(self) -> bool:
        """True iff the body is empty (``⊤ → ...``)."""
        return not self.body

    def is_full(self) -> bool:
        """True iff there are no existential variables."""
        return not self.existential_variables()

    def is_lossless(self) -> bool:
        """True iff every body variable also occurs in the head.

        Lossless tgds are trivially sticky (used by Proposition 35).
        """
        return self.body_variables() <= self.head_variables()

    def guard_candidates(self) -> Tuple[Atom, ...]:
        """Body atoms containing *all* body variables (possible guards)."""
        body_vars = self.body_variables()
        return tuple(a for a in self.body if body_vars <= a.variables())

    # -- measures ------------------------------------------------------------

    def predicates(self) -> Set[str]:
        """Predicates occurring anywhere in the tgd."""
        return {a.predicate for a in self.body + self.head}

    def body_predicates(self) -> Set[str]:
        return {a.predicate for a in self.body}

    def head_predicates(self) -> Set[str]:
        return {a.predicate for a in self.head}

    def size(self) -> int:
        """``||τ||``: number of symbols (predicates + argument slots)."""
        return sum(1 + a.arity for a in self.body + self.head)

    # -- hygiene ----------------------------------------------------------

    def rename(self, mapping: Mapping[Variable, Term]) -> "TGD":
        """Apply a variable substitution to body and head."""
        return TGD(
            tuple(a.substitute(mapping) for a in self.body),
            tuple(a.substitute(mapping) for a in self.head),
            self.name,
        )

    def rename_apart(self, taken: Iterable[Variable], suffix: str = "_t") -> "TGD":
        """Rename this tgd's variables away from *taken*."""
        taken_names = {v.name for v in taken}
        mapping: Dict[Variable, Variable] = {}
        for v in sorted(self.variables(), key=lambda v: v.name):
            if v.name in taken_names:
                fresh = v.name + suffix
                k = 0
                while fresh in taken_names:
                    k += 1
                    fresh = f"{v.name}{suffix}{k}"
                mapping[v] = Variable(fresh)
                taken_names.add(fresh)
        return self.rename(mapping) if mapping else self

    def with_indexed_variables(self, index: int) -> "TGD":
        """σ^i of the appendix: every variable x becomes x^i (fresh copy)."""
        mapping = {
            v: Variable(f"{v.name}#{index}")
            for v in self.variables()
        }
        return self.rename(mapping)

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body) if self.body else "⊤"
        head = ", ".join(str(a) for a in self.head)
        ex = self.existential_variables()
        prefix = (
            "∃" + ",".join(sorted(v.name for v in ex)) + " " if ex else ""
        )
        return f"{body} → {prefix}{head}"

    def __repr__(self) -> str:
        return f"TGD(body={self.body!r}, head={self.head!r})"


def tgd(body: Sequence[Atom], head: Sequence[Atom], name: str = "") -> TGD:
    """Convenience constructor."""
    return TGD(tuple(body), tuple(head), name)


# ---------------------------------------------------------------------------
# Sets of tgds
# ---------------------------------------------------------------------------


def sch(sigma: Iterable[TGD]) -> Schema:
    """``sch(Σ)``: the schema of all predicates occurring in Σ."""
    atoms: List[Atom] = []
    for t in sigma:
        atoms.extend(t.body)
        atoms.extend(t.head)
    return Schema.from_atoms(atoms)


def total_size(sigma: Iterable[TGD]) -> int:
    """``||Σ||``: the number of symbols occurring in Σ."""
    return sum(t.size() for t in sigma)


def max_body_size(sigma: Iterable[TGD]) -> int:
    """``max_τ |body(τ)|`` over Σ (0 for an empty set)."""
    return max((len(t.body) for t in sigma), default=0)


def constants_of_tgds(sigma: Iterable[TGD]) -> Set[Constant]:
    """``C(Σ)``: the constants occurring in Σ."""
    out: Set[Constant] = set()
    for t in sigma:
        out.update(t.constants())
    return out


def predicate_graph(sigma: Sequence[TGD]) -> Dict[str, Set[str]]:
    """The predicate graph of Σ.

    There is an edge R → P iff some tgd has R in its body and P in its head
    (this is the graph whose acyclicity defines non-recursiveness).  Fact
    tgds contribute no edges.
    """
    edges: Dict[str, Set[str]] = {p: set() for t in sigma for p in t.predicates()}
    for t in sigma:
        for r in t.body_predicates():
            edges[r].update(t.head_predicates())
    return edges


def normalize_single_head(
    sigma: Sequence[TGD], aux_prefix: str = "AuxH"
) -> List[TGD]:
    """Rewrite Σ so every tgd has exactly one head atom.

    A tgd ``φ → ∃z̄ (α1 ∧ ... ∧ αk)`` with k ≥ 2 becomes::

        φ → ∃z̄ Aux(w̄)          where w̄ lists frontier ∪ z̄
        Aux(w̄) → αi             for each i

    The transformation preserves certain answers over the original schema
    (the auxiliary predicate is fresh) and preserves guardedness and
    linearity of the *relevant* fragments: the first rule's head is a single
    atom, and each continuation rule is linear with the Aux atom as guard.
    """
    out: List[TGD] = []
    counter = 0
    for t in sigma:
        if len(t.head) == 1:
            out.append(t)
            continue
        shared = sorted(t.frontier() | t.existential_variables(), key=lambda v: v.name)
        constants = sorted(
            {c for a in t.head for c in a.constants()}, key=lambda c: c.name
        )
        aux_args: Tuple[Term, ...] = tuple(shared) + tuple(constants)
        aux_name = f"{aux_prefix}{counter}"
        counter += 1
        aux = Atom(aux_name, aux_args)
        out.append(TGD(t.body, (aux,), f"{t.name}:split"))
        for i, head_atom in enumerate(t.head):
            out.append(TGD((aux,), (head_atom,), f"{t.name}:head{i}"))
    return out


def rename_set_apart(sigma: Sequence[TGD]) -> List[TGD]:
    """Give every tgd in Σ pairwise-disjoint variables.

    The sticky marking procedure (appendix, Definition 4) assumes tgds do
    not share variables; this normalization enforces that.
    """
    out: List[TGD] = []
    for i, t in enumerate(sigma):
        mapping = {v: Variable(f"{v.name}@{i}") for v in t.variables()}
        out.append(t.rename(mapping))
    return out
