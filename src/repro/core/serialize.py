"""Text emitters that round-trip through :mod:`repro.core.parser`.

The parser's conventions (lowercase identifiers are variables in rule/query
context, bare identifiers are constants in database context, quoted strings
are always constants) mean emission must be context-aware:

* variables are renamed to a canonical ``v0, v1, ...`` scheme when their
  names contain characters the tokenizer would reject (internal fresh
  variables carry ``#``/``@``/``~`` markers), so round-trips are exact up
  to variable renaming (isomorphism);
* constants are emitted quoted unless they are numerals (which parse as
  constants anywhere).

``omq_to_document`` emits the sectioned OMQ file format consumed by
``parse_omq`` and the CLI.

The ``*_to_json`` / ``*_from_json`` family is the *structured* (lossless)
serialization used by the batch CLI and the ``repro.serve`` wire
protocol: terms, atoms, instances, witnesses, and full
:class:`~repro.containment.result.ContainmentResult` values round-trip
exactly — including labeled nulls, which the text format cannot carry
through rule/query context.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List

from .atoms import Atom
from .instance import Instance
from .omq import OMQ
from .queries import CQ, UCQ
from .terms import Constant, Null, Term, Variable
from .tgd import TGD

_SAFE_VARIABLE = re.compile(r"[a-z][A-Za-z0-9_]*$")
_NUMERAL = re.compile(r"[0-9]+$")


def term_to_text(t: Term, renaming: Dict[Variable, str]) -> str:
    if isinstance(t, Constant):
        if _NUMERAL.match(t.name):
            return t.name
        return f"'{t.name}'"
    if isinstance(t, Variable):
        return renaming.get(t, t.name)
    raise ValueError(f"cannot serialize nulls into rule/query text: {t}")


def _renaming_for(variables: Iterable[Variable]) -> Dict[Variable, str]:
    """Keep safe names, canonicalize unsafe ones to fresh v<i>."""
    ordered = sorted(set(variables), key=lambda v: v.name)
    taken = {
        v.name for v in ordered if _SAFE_VARIABLE.match(v.name)
    }
    renaming: Dict[Variable, str] = {}
    counter = 0
    for v in ordered:
        if _SAFE_VARIABLE.match(v.name):
            renaming[v] = v.name
            continue
        fresh = f"v{counter}"
        while fresh in taken:
            counter += 1
            fresh = f"v{counter}"
        counter += 1
        taken.add(fresh)
        renaming[v] = fresh
    return renaming


def atom_to_text(a: Atom, renaming: Dict[Variable, str]) -> str:
    if not a.args:
        return f"{a.predicate}()"
    inner = ", ".join(term_to_text(t, renaming) for t in a.args)
    return f"{a.predicate}({inner})"


def tgd_to_text(rule: TGD) -> str:
    """``body -> head`` text that re-parses to a variable-renamed copy."""
    renaming = _renaming_for(rule.variables())
    body = ", ".join(atom_to_text(a, renaming) for a in rule.body)
    head = ", ".join(atom_to_text(a, renaming) for a in rule.head)
    return f"{body or 'true'} -> {head}"


def tgds_to_text(sigma: Iterable[TGD]) -> str:
    return "\n".join(tgd_to_text(t) for t in sigma)


def cq_to_text(q: CQ, name: str = None) -> str:
    """``q(x) :- body`` text re-parsing to an isomorphic query."""
    if not q.body:
        raise ValueError(
            "the text syntax has no form for empty-body (tautological) CQs"
        )
    renaming = _renaming_for(q.variables())
    head_terms = ", ".join(term_to_text(t, renaming) for t in q.head)
    body = ", ".join(atom_to_text(a, renaming) for a in sorted(q.body, key=str))
    head_name = name or (q.name if re.match(r"[A-Za-z_]\w*$", q.name) else "q")
    return f"{head_name}({head_terms}) :- {body}"


def ucq_to_text(q: UCQ) -> str:
    return "\n".join(cq_to_text(d, name="q") for d in q.disjuncts)


def database_to_text(db: Instance) -> str:
    """Fact-per-line text for :func:`repro.core.parser.parse_database`.

    Database context treats bare identifiers as constants, so names are
    emitted unquoted when they are plain identifiers.
    """
    lines: List[str] = []
    for a in db:
        args = []
        for t in a.args:
            if not isinstance(t, Constant):
                raise ValueError(f"cannot serialize non-database atom {a}")
            if re.match(r"[A-Za-z0-9_*][A-Za-z0-9_]*$", t.name):
                args.append(t.name)
            else:
                args.append(f"'{t.name}'")
        lines.append(f"{a.predicate}({', '.join(args)})" if args else f"{a.predicate}()")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Structured (lossless) JSON round-trips
# ---------------------------------------------------------------------------


def _term_order(t: Term) -> tuple:
    """A total order on ground terms that never conflates distinct terms.

    Sorting atoms by ``str`` is ambiguous: ``Null(1)`` renders as
    ``_:n1``, which a :class:`Constant` named ``"_:n1"`` matches exactly,
    so two distinct atoms can compare equal and the listing order then
    depends on set iteration order (nondeterministic across processes).
    The type tag keeps constants, nulls, and (defensively) variables in
    disjoint bands, and within a band the term's own identity decides.
    """
    if isinstance(t, Constant):
        return (0, t.name)
    if isinstance(t, Null):
        return (1, t.ident)
    return (2, getattr(t, "name", str(t)))


def _atom_order(a: Atom) -> tuple:
    """Canonical sort key for ground atoms (see :func:`_term_order`)."""
    return (a.predicate, len(a.args), tuple(_term_order(t) for t in a.args))


def term_to_json(t: Term) -> Dict[str, Any]:
    """A lossless JSON form for a ground term (constant or null)."""
    if isinstance(t, Constant):
        return {"const": t.name}
    if isinstance(t, Null):
        return {"null": t.ident}
    raise ValueError(f"cannot serialize a variable as a ground term: {t}")


def term_from_json(doc: Dict[str, Any]) -> Term:
    if "const" in doc:
        return Constant(str(doc["const"]))
    if "null" in doc:
        return Null(int(doc["null"]))
    raise ValueError(f"not a term document: {doc!r}")


def atom_to_json(a: Atom) -> Dict[str, Any]:
    return {
        "predicate": a.predicate,
        "args": [term_to_json(t) for t in a.args],
    }


def atom_from_json(doc: Dict[str, Any]) -> Atom:
    return Atom(
        str(doc["predicate"]),
        tuple(term_from_json(t) for t in doc.get("args", ())),
    )


def instance_to_json(instance: Instance) -> List[Dict[str, Any]]:
    """A deterministic (sorted) atom list; nulls survive the round-trip."""
    return [atom_to_json(a) for a in sorted(instance, key=_atom_order)]


def instance_from_json(doc: Iterable[Dict[str, Any]]) -> Instance:
    return Instance.of(atom_from_json(a) for a in doc)


def witness_to_json(witness) -> Dict[str, Any]:
    """JSON for a :class:`~repro.containment.result.Witness`.

    ``database``/``answer`` carry the structured terms; ``database_text``
    is a readable rendering for humans and for consumers of the old
    stringly CLI shape.  Both listings use the same canonical atom order
    (:func:`_atom_order`), so line *i* of the text always describes entry
    *i* of the structured list, even in null-heavy databases whose string
    renderings collide.
    """
    return {
        "database": instance_to_json(witness.database),
        "database_text": [
            str(a) for a in sorted(witness.database, key=_atom_order)
        ],
        "answer": [term_to_json(t) for t in witness.answer],
    }


def witness_from_json(doc: Dict[str, Any]):
    from ..containment.result import Witness

    return Witness(
        database=instance_from_json(doc.get("database", ())),
        answer=tuple(term_from_json(t) for t in doc.get("answer", ())),
    )


def containment_result_to_json(result) -> Dict[str, Any]:
    """The one canonical JSON form for a containment verdict.

    Shared by ``repro contains --json``, ``repro batch --json``, and the
    ``repro.serve`` wire protocol; :func:`containment_result_from_json`
    inverts it exactly (witness database included).
    """
    return {
        "verdict": str(result.verdict),
        "method": result.method,
        "detail": result.detail,
        "witness": (
            witness_to_json(result.witness)
            if result.witness is not None
            else None
        ),
    }


def containment_result_from_json(doc: Dict[str, Any]):
    from ..containment.result import ContainmentResult, Verdict

    witness = doc.get("witness")
    return ContainmentResult(
        verdict=Verdict(doc["verdict"]),
        method=str(doc.get("method", "")),
        witness=witness_from_json(witness) if witness else None,
        detail=str(doc.get("detail", "")),
    )


def omq_to_document(omq: OMQ) -> str:
    """The sectioned OMQ file format (``parse_omq`` inverse)."""
    schema = ", ".join(
        f"{p}/{omq.data_schema.arity(p)}" for p in omq.data_schema.predicates()
    )
    parts = [f"schema: {schema}"]
    if omq.sigma:
        parts.append("rules:")
        for rule in omq.sigma:
            parts.append(f"    {tgd_to_text(rule)}")
    for d in omq.as_ucq().disjuncts:
        parts.append(f"query: {cq_to_text(d, name='q')}")
    return "\n".join(parts) + "\n"
