"""Ontology-mediated queries.

An OMQ (Section 2) is a triple ``Q = (S, Σ, q)`` where ``S`` is the data
schema, ``Σ`` a finite set of tgds, and ``q`` a (U)CQ over ``S ∪ sch(Σ)``.
The OMQ is evaluated over S-databases; its semantics are the certain
answers, i.e., ``Q(D) = q(chase(D, Σ))``.

The :class:`OMQLanguage` enum names the languages ``(C, Q)`` of the paper;
fragment membership itself is decided by :mod:`repro.fragments`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Set, Tuple, Union

from .queries import CQ, UCQ
from .schema import Schema, SchemaError
from .tgd import TGD, sch, total_size


class TGDClass(Enum):
    """The classes of tgds studied in the paper."""

    EMPTY = "∅"          # no tgds at all (the language O_∅ of Section 3.1)
    LINEAR = "L"
    GUARDED = "G"
    NON_RECURSIVE = "NR"
    STICKY = "S"
    FULL = "F"
    FULL_NON_RECURSIVE = "FNR"
    ARBITRARY = "TGD"

    def __str__(self) -> str:
        return self.value


#: The UCQ-rewritable classes of Section 4.
UCQ_REWRITABLE_CLASSES = frozenset(
    {TGDClass.EMPTY, TGDClass.LINEAR, TGDClass.NON_RECURSIVE,
     TGDClass.STICKY, TGDClass.FULL_NON_RECURSIVE}
)


class OMQError(ValueError):
    """Raised on ill-formed OMQs."""


@dataclass(frozen=True)
class OMQ:
    """An ontology-mediated query ``(S, Σ, q)``.

    ``query`` may be a CQ or a UCQ; :meth:`as_ucq` gives a uniform view.
    """

    data_schema: Schema
    sigma: Tuple[TGD, ...]
    query: Union[CQ, UCQ]
    name: str = "Q"

    def __post_init__(self) -> None:
        object.__setattr__(self, "sigma", tuple(self.sigma))
        # The query must range over S ∪ sch(Σ) ∪ (extra predicates are allowed
        # by the paper's definition "and possibly other predicates" — but any
        # extra predicate can never be satisfied, so we accept them).
        try:
            self.full_schema()
        except SchemaError as exc:
            raise OMQError(f"inconsistent arities in OMQ: {exc}") from exc

    # -- structure ----------------------------------------------------------

    def as_ucq(self) -> UCQ:
        """The query as a UCQ (a singleton union for a CQ)."""
        if isinstance(self.query, UCQ):
            return self.query
        return UCQ.from_cq(self.query)

    def as_cq(self) -> CQ:
        """The query as a CQ; raises if it is a proper union."""
        if isinstance(self.query, CQ):
            return self.query
        if len(self.query.disjuncts) == 1:
            return self.query.disjuncts[0]
        raise OMQError("query is a proper UCQ; use Proposition 9 to convert")

    @property
    def arity(self) -> int:
        """The output arity of the query."""
        return self.as_ucq().arity if isinstance(self.query, UCQ) else self.query.arity

    def is_boolean(self) -> bool:
        return self.arity == 0

    def ontology_schema(self) -> Schema:
        """``sch(Σ)``."""
        return sch(self.sigma)

    def full_schema(self) -> Schema:
        """``S ∪ sch(Σ)`` ∪ the query's predicates."""
        return self.data_schema | self.ontology_schema() | self.as_ucq().schema()

    def size(self) -> int:
        """``||Q||``: symbols in Σ plus atoms of the query."""
        query_size = sum(
            1 + a.arity for d in self.as_ucq().disjuncts for a in d.body
        )
        return total_size(self.sigma) + query_size

    def data_predicates(self) -> Set[str]:
        return set(self.data_schema.predicates())

    def validate_database(self, db) -> None:
        """Check that a database is over the data schema S."""
        from .schema import SchemaError

        for a in db:
            if a.predicate not in self.data_schema:
                raise OMQError(
                    f"database atom {a} uses predicate outside data schema "
                    f"{self.data_schema}"
                )
            try:
                self.data_schema.validate_atom(a)
            except SchemaError as exc:
                raise OMQError(str(exc)) from exc

    def __str__(self) -> str:
        rules = "; ".join(str(t) for t in self.sigma)
        return f"{self.name} = ({self.data_schema}, [{rules}], {self.query})"
