"""Homomorphism search — the stable public API.

Homomorphisms are the single semantic primitive of the paper: CQ evaluation,
CQ containment (Chandra–Merlin), chase applicability, and the universality of
the chase are all phrased through them.  A homomorphism from a set of atoms
``A`` into an instance ``I`` maps variables and nulls of ``A`` to terms of
``I`` and is the identity on constants, such that the image of every atom of
``A`` is an atom of ``I``.

The search itself lives in :mod:`repro.kernel` (compiled per-body plans,
positional candidate indexes, instrumentation); this module is the thin
compatibility shim that preserves the original call signatures.  Answer
sets and the deterministic enumeration order are identical to the
pre-kernel implementation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..kernel.search import (
    find_homomorphism as _kernel_find,
    homomorphisms as _kernel_homomorphisms,
    is_mappable as _is_mappable,
)
from .atoms import Atom
from .instance import Instance
from .terms import Term


def _order_atoms(atoms: Sequence[Atom], bound: Iterable[Term]) -> List[Atom]:
    """Greedy join order: repeatedly pick the atom with fewest unbound terms.

    Ties are broken deterministically by the atom's string form; the string
    keys are computed once up front rather than inside every ``min`` key
    evaluation.
    """
    strs = {a: str(a) for a in atoms}
    remaining = sorted(atoms, key=strs.__getitem__)
    bound_terms = set(bound)
    ordered: List[Atom] = []
    while remaining:
        best = min(
            remaining,
            key=lambda a: (
                sum(1 for t in set(a.args) if _is_mappable(t) and t not in bound_terms),
                strs[a],
            ),
        )
        remaining.remove(best)
        ordered.append(best)
        bound_terms.update(t for t in best.args if _is_mappable(t))
    return ordered


def _match_atom(
    source: Atom, target: Atom, assignment: Dict[Term, Term]
) -> Optional[Dict[Term, Term]]:
    """Try to extend *assignment* so that source maps onto target.

    Returns the extension (a new dict) or None if the atoms clash.
    """
    if source.predicate != target.predicate or source.arity != target.arity:
        return None
    extension = dict(assignment)
    for s, t in zip(source.args, target.args):
        if _is_mappable(s):
            current = extension.get(s)
            if current is None:
                extension[s] = t
            elif current != t:
                return None
        elif s != t:
            return None
    return extension


def homomorphisms(
    source: Sequence[Atom],
    target: Instance,
    fixed: Optional[Mapping[Term, Term]] = None,
) -> Iterator[Dict[Term, Term]]:
    """Yield every homomorphism from *source* into *target*.

    *fixed* pre-binds some source terms (used to check a specific answer
    tuple, or to hold a trigger fixed during the chase).  Yielded dicts map
    every mappable term of *source*; constants are implicitly identity.
    """
    return _kernel_homomorphisms(tuple(source), target, fixed)


def find_homomorphism(
    source: Sequence[Atom],
    target: Instance,
    fixed: Optional[Mapping[Term, Term]] = None,
) -> Optional[Dict[Term, Term]]:
    """The first homomorphism from *source* into *target*, or None."""
    return _kernel_find(tuple(source), target, fixed)


def has_homomorphism(
    source: Sequence[Atom],
    target: Instance,
    fixed: Optional[Mapping[Term, Term]] = None,
) -> bool:
    """True iff some homomorphism from *source* into *target* exists."""
    return find_homomorphism(source, target, fixed) is not None


def instance_homomorphism(
    source: Instance, target: Instance
) -> Optional[Dict[Term, Term]]:
    """A homomorphism between instances (nulls mapped, constants fixed)."""
    return find_homomorphism(tuple(source), target)


def is_hom_equivalent(left: Instance, right: Instance) -> bool:
    """True iff the two instances are homomorphically equivalent."""
    return (
        instance_homomorphism(left, right) is not None
        and instance_homomorphism(right, left) is not None
    )


def apply_assignment(
    atoms: Iterable[Atom], assignment: Mapping[Term, Term]
) -> Tuple[Atom, ...]:
    """Apply an assignment to a collection of atoms."""
    return tuple(a.substitute(assignment) for a in atoms)
