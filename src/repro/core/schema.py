"""Relational schemas.

A schema is a finite set of relation symbols with associated arities
(written ``R/n`` in the paper).  Schemas validate atoms, compute the maximum
arity ``ar(S)`` used throughout the complexity bounds, and support the
set-algebraic operations (union, restriction) the paper performs on
``S ∪ sch(Σ)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Tuple

from .atoms import Atom


class SchemaError(ValueError):
    """Raised on arity clashes or atoms over unknown predicates."""


@dataclass(frozen=True)
class Schema:
    """An immutable map from predicate names to arities."""

    relations: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "relations", dict(self.relations))
        for name, arity in self.relations.items():
            if arity < 0:
                raise SchemaError(f"negative arity for {name}: {arity}")

    @classmethod
    def of(cls, **relations: int) -> "Schema":
        """``Schema.of(R=2, P=1)`` builds ``{R/2, P/1}``."""
        return cls(relations)

    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom]) -> "Schema":
        """Infer a schema from atoms, rejecting inconsistent arities."""
        relations: Dict[str, int] = {}
        for a in atoms:
            seen = relations.get(a.predicate)
            if seen is None:
                relations[a.predicate] = a.arity
            elif seen != a.arity:
                raise SchemaError(
                    f"predicate {a.predicate} used with arities {seen} and {a.arity}"
                )
        return cls(relations)

    def arity(self, predicate: str) -> int:
        """The arity of *predicate*; raises :class:`SchemaError` if unknown."""
        try:
            return self.relations[predicate]
        except KeyError:
            raise SchemaError(f"unknown predicate: {predicate}") from None

    @property
    def max_arity(self) -> int:
        """``ar(S)``: the maximum arity over all predicates (0 if empty)."""
        return max(self.relations.values(), default=0)

    def predicates(self) -> Tuple[str, ...]:
        """Predicate names in sorted order (deterministic iteration)."""
        return tuple(sorted(self.relations))

    def validate_atom(self, a: Atom) -> None:
        """Raise :class:`SchemaError` unless *a* is well-typed over this schema."""
        if self.arity(a.predicate) != a.arity:
            raise SchemaError(
                f"atom {a} has arity {a.arity}, schema says "
                f"{self.relations[a.predicate]}"
            )

    def union(self, other: "Schema") -> "Schema":
        """``S1 ∪ S2``; arity clashes raise :class:`SchemaError`."""
        merged = dict(self.relations)
        for name, arity in other.relations.items():
            if merged.get(name, arity) != arity:
                raise SchemaError(
                    f"arity clash on {name}: {merged[name]} vs {arity}"
                )
            merged[name] = arity
        return Schema(merged)

    def restrict(self, predicates: Iterable[str]) -> "Schema":
        """The sub-schema on the given predicate names."""
        keep = set(predicates)
        return Schema({n: a for n, a in self.relations.items() if n in keep})

    def __contains__(self, predicate: str) -> bool:
        return predicate in self.relations

    def __iter__(self) -> Iterator[str]:
        return iter(self.predicates())

    def __len__(self) -> int:
        return len(self.relations)

    def __or__(self, other: "Schema") -> "Schema":
        return self.union(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return dict(self.relations) == dict(other.relations)

    def __hash__(self) -> int:
        return hash(frozenset(self.relations.items()))

    def __str__(self) -> str:
        inner = ", ".join(f"{n}/{a}" for n, a in sorted(self.relations.items()))
        return "{" + inner + "}"

    def __repr__(self) -> str:
        return f"Schema({dict(sorted(self.relations.items()))!r})"
