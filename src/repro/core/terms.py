"""Terms: constants, labeled nulls, and variables.

The paper (Section 2) fixes three disjoint countably infinite sets: constants
``C``, labeled nulls ``N``, and regular variables ``V``.  Constants are the
values stored in databases; nulls are the fresh witnesses invented by the
chase; variables occur in queries and dependencies.

All three term kinds are immutable and hashable so they can live in sets,
dict keys, and frozen atoms.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Constant:
    """A database constant (an element of the set ``C``)."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Constant({self.name!r})"


@dataclass(frozen=True, slots=True)
class Variable:
    """A query/dependency variable (an element of the set ``V``)."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, slots=True)
class Null:
    """A labeled null (an element of the set ``N``).

    Nulls are created by the chase as fresh witnesses for existential
    variables.  They are identified by an integer id; use :class:`NullFactory`
    to mint fresh ones deterministically.
    """

    ident: int

    def __str__(self) -> str:
        return f"_:n{self.ident}"

    def __repr__(self) -> str:
        return f"Null({self.ident})"


Term = Union[Constant, Variable, Null]


class NullFactory:
    """Deterministic supplier of fresh labeled nulls.

    Each chase run owns its own factory so that independent runs produce
    identical null ids, keeping chase output reproducible bit-for-bit.
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)

    def fresh(self) -> Null:
        """Return a null that has not been handed out by this factory."""
        return Null(next(self._counter))


def is_constant(term: Term) -> bool:
    """Return True iff *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def is_variable(term: Term) -> bool:
    """Return True iff *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_null(term: Term) -> bool:
    """Return True iff *term* is a :class:`Null`."""
    return isinstance(term, Null)


def variables_of(terms) -> set:
    """Collect the :class:`Variable` terms occurring in an iterable."""
    return {t for t in terms if isinstance(t, Variable)}


def constants_of(terms) -> set:
    """Collect the :class:`Constant` terms occurring in an iterable."""
    return {t for t in terms if isinstance(t, Constant)}
