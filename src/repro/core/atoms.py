"""Relational atoms and facts.

An atom over a schema ``S`` is an expression ``R(v1, ..., vn)`` where ``R`` is
an n-ary predicate of ``S`` and each ``vi`` is a term.  A *fact* is an atom
whose arguments are all constants (Section 2 of the paper).  Zero-ary atoms
(``R()``) are supported because the tiling reductions in the appendix use
propositional predicates such as ``Goal`` and ``Existence``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Tuple

from .terms import Constant, Null, Term, Variable


@dataclass(frozen=True, slots=True)
class Atom:
    """An atom ``predicate(args)``.

    Atoms are immutable; substitution returns a new atom.
    """

    predicate: str
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        """The number of argument positions."""
        return len(self.args)

    @property
    def terms(self) -> Tuple[Term, ...]:
        """Alias for :attr:`args`."""
        return self.args

    def variables(self) -> set:
        """The set of variables occurring in this atom."""
        return {t for t in self.args if isinstance(t, Variable)}

    def constants(self) -> set:
        """The set of constants occurring in this atom."""
        return {t for t in self.args if isinstance(t, Constant)}

    def nulls(self) -> set:
        """The set of labeled nulls occurring in this atom."""
        return {t for t in self.args if isinstance(t, Null)}

    def is_fact(self) -> bool:
        """True iff every argument is a constant."""
        return all(isinstance(t, Constant) for t in self.args)

    def is_ground(self) -> bool:
        """True iff no argument is a variable (constants and nulls only)."""
        return not any(isinstance(t, Variable) for t in self.args)

    def substitute(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Apply *mapping* to every argument, leaving unmapped terms alone."""
        return Atom(self.predicate, tuple(mapping.get(t, t) for t in self.args))

    def positions_of(self, term: Term) -> Tuple[int, ...]:
        """The 0-based positions at which *term* occurs in this atom."""
        return tuple(i for i, t in enumerate(self.args) if t == term)

    def __str__(self) -> str:
        if not self.args:
            return f"{self.predicate}()"
        return f"{self.predicate}({', '.join(str(t) for t in self.args)})"

    def __repr__(self) -> str:
        return f"Atom({self.predicate!r}, {self.args!r})"


def atom(predicate: str, *args: Term) -> Atom:
    """Convenience constructor: ``atom('R', x, y)`` instead of ``Atom('R', (x, y))``."""
    return Atom(predicate, tuple(args))


def fact(predicate: str, *names: str) -> Atom:
    """Build a fact from constant names: ``fact('R', 'a', 'b')``."""
    return Atom(predicate, tuple(Constant(n) for n in names))


def terms_of(atoms: Iterable[Atom]) -> set:
    """All terms occurring in a collection of atoms."""
    out: set = set()
    for a in atoms:
        out.update(a.args)
    return out


def variables_of_atoms(atoms: Iterable[Atom]) -> set:
    """All variables occurring in a collection of atoms."""
    out: set = set()
    for a in atoms:
        out.update(a.variables())
    return out
