"""Core data model: terms, atoms, schemas, instances, queries, tgds, OMQs."""

from .atoms import Atom, atom, fact
from .homomorphism import (
    find_homomorphism,
    has_homomorphism,
    homomorphisms,
    instance_homomorphism,
    is_hom_equivalent,
)
from .instance import Database, Instance, freeze_atoms
from .omq import OMQ, OMQError, TGDClass, UCQ_REWRITABLE_CLASSES
from .parser import (
    ParseError,
    parse_atom,
    parse_cq,
    parse_database,
    parse_tgd,
    parse_tgds,
    parse_ucq,
)
from .queries import CQ, UCQ, QueryError, boolean_cq
from .schema import Schema, SchemaError
from .terms import Constant, Null, NullFactory, Term, Variable
from .tgd import (
    TGD,
    TGDError,
    constants_of_tgds,
    max_body_size,
    normalize_single_head,
    predicate_graph,
    rename_set_apart,
    sch,
    tgd,
    total_size,
)

__all__ = [
    "Atom",
    "CQ",
    "Constant",
    "Database",
    "Instance",
    "Null",
    "NullFactory",
    "OMQ",
    "OMQError",
    "ParseError",
    "QueryError",
    "Schema",
    "SchemaError",
    "TGD",
    "TGDClass",
    "TGDError",
    "Term",
    "UCQ",
    "UCQ_REWRITABLE_CLASSES",
    "Variable",
    "atom",
    "boolean_cq",
    "constants_of_tgds",
    "fact",
    "find_homomorphism",
    "freeze_atoms",
    "has_homomorphism",
    "homomorphisms",
    "instance_homomorphism",
    "is_hom_equivalent",
    "max_body_size",
    "normalize_single_head",
    "parse_atom",
    "parse_cq",
    "parse_database",
    "parse_tgd",
    "parse_tgds",
    "parse_ucq",
    "predicate_graph",
    "rename_set_apart",
    "sch",
    "tgd",
    "total_size",
]
