"""A small text syntax for tgds, queries, and databases.

The syntax mirrors how the paper writes things:

* **Atoms** — ``R(x, y)``; predicates are identifiers starting with an
  uppercase letter, variables start lowercase, constants are integers or
  quoted strings (``'a'`` / ``"a"``).  0-ary atoms are written ``Goal()``
  or just ``Goal``.
* **Tgds** — ``R(x,y), P(y,z) -> T(x,y,w)``; variables appearing only in
  the head (here ``w``) are existentially quantified, matching the paper's
  convention.  Fact tgds use an empty or ``true`` body:
  ``true -> Bit(0)``.
* **CQs** — ``q(x) :- R(x,y), P(y)``; Boolean queries use ``q() :- ...``.
* **UCQs** — disjuncts separated by `` | `` or given on separate lines.
* **Databases** — ``R(a, b). P(b).``; in database context *all* bare
  identifiers are constants.

Lines starting with ``%`` or ``#`` are comments; statements are separated
by newlines or periods.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Sequence, Tuple

from .atoms import Atom
from .instance import Instance
from .queries import CQ, UCQ
from .terms import Constant, Term, Variable
from .tgd import TGD


class ParseError(ValueError):
    """Raised on malformed input text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>[%#][^\n]*)
  | (?P<arrow>->|→)
  | (?P<entails>:-)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<pipe>\||∨)
  | (?P<period>\.)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_'@\#]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = m.lastgroup
        value = m.group()
        pos = m.end()
        if kind in ("ws", "comment"):
            continue
        tokens.append((kind, value))
    return tokens


class _TokenStream:
    def __init__(self, tokens: Sequence[Tuple[str, str]]) -> None:
        self._tokens = list(tokens)
        self._i = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self._i < len(self._tokens):
            return self._tokens[self._i]
        return None

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self._i += 1
        return tok

    def expect(self, kind: str) -> str:
        tok = self.next()
        if tok[0] != kind:
            raise ParseError(f"expected {kind}, got {tok[1]!r}")
        return tok[1]

    def accept(self, kind: str) -> Optional[str]:
        tok = self.peek()
        if tok is not None and tok[0] == kind:
            self._i += 1
            return tok[1]
        return None

    def at_end(self) -> bool:
        return self._i >= len(self._tokens)


def _parse_term(stream: _TokenStream, constants_mode: bool) -> Term:
    kind, value = stream.next()
    if kind == "number":
        return Constant(value)
    if kind == "string":
        return Constant(value[1:-1])
    if kind == "ident":
        if constants_mode or value[0].isupper():
            return Constant(value)
        return Variable(value)
    raise ParseError(f"expected a term, got {value!r}")


def _parse_atom(stream: _TokenStream, constants_mode: bool) -> Atom:
    name = stream.expect("ident")
    args: List[Term] = []
    if stream.accept("lpar"):
        if not stream.accept("rpar"):
            args.append(_parse_term(stream, constants_mode))
            while stream.accept("comma"):
                args.append(_parse_term(stream, constants_mode))
            stream.expect("rpar")
    return Atom(name, tuple(args))


def _parse_atom_list(stream: _TokenStream, constants_mode: bool) -> List[Atom]:
    atoms = [_parse_atom(stream, constants_mode)]
    while stream.accept("comma"):
        atoms.append(_parse_atom(stream, constants_mode))
    return atoms


def _statements(text: str) -> Iterator[str]:
    """Split text into statements on newlines and periods (outside quotes)."""
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith(("%", "#")):
            continue
        for stmt in re.split(r"\.(?=\s|$)", line):
            stmt = stmt.strip().rstrip(".")
            if stmt:
                yield stmt


def parse_atom(text: str, constants_mode: bool = False) -> Atom:
    """Parse a single atom."""
    stream = _TokenStream(_tokenize(text))
    a = _parse_atom(stream, constants_mode)
    if not stream.at_end():
        raise ParseError(f"trailing input after atom: {text!r}")
    return a


def parse_tgd(text: str, name: str = "") -> TGD:
    """Parse a single tgd ``body -> head`` (``true ->`` for fact tgds)."""
    stream = _TokenStream(_tokenize(text))
    body: List[Atom] = []
    tok = stream.peek()
    if tok is not None and tok[0] == "ident" and tok[1] in ("true", "top"):
        stream.next()
    elif tok is not None and tok[0] != "arrow":
        body = _parse_atom_list(stream, constants_mode=False)
    stream.expect("arrow")
    head = _parse_atom_list(stream, constants_mode=False)
    if not stream.at_end():
        raise ParseError(f"trailing input after tgd: {text!r}")
    return TGD(tuple(body), tuple(head), name)


def parse_tgds(text: str) -> List[TGD]:
    """Parse a program of tgds, one per line (or period-separated)."""
    return [
        parse_tgd(stmt, name=f"r{i}") for i, stmt in enumerate(_statements(text))
    ]


def parse_cq(text: str, name: Optional[str] = None) -> CQ:
    """Parse ``q(x, y) :- R(x,z), P(z,y)`` (or a bare body for Boolean CQs)."""
    stream = _TokenStream(_tokenize(text))
    tokens_copy = _tokenize(text)
    has_head = any(kind == "entails" for kind, _ in tokens_copy)
    if has_head:
        head_atom = _parse_atom(stream, constants_mode=False)
        stream.expect("entails")
        body = _parse_atom_list(stream, constants_mode=False)
        if not stream.at_end():
            raise ParseError(f"trailing input after CQ: {text!r}")
        return CQ(head_atom.args, tuple(body), name or head_atom.predicate)
    body = _parse_atom_list(stream, constants_mode=False)
    if not stream.at_end():
        raise ParseError(f"trailing input after CQ body: {text!r}")
    return CQ((), tuple(body), name or "q")


def parse_ucq(text: str, name: Optional[str] = None) -> UCQ:
    """Parse a UCQ: disjuncts separated by `` | `` or on separate lines."""
    pieces: List[str] = []
    for stmt in _statements(text):
        pieces.extend(p.strip() for p in re.split(r"\||∨", stmt) if p.strip())
    disjuncts = [parse_cq(p) for p in pieces]
    if not disjuncts:
        raise ParseError("empty UCQ")
    return UCQ(tuple(disjuncts), name or disjuncts[0].name)


def parse_omq(text: str, name: str = "Q"):
    """Parse a sectioned OMQ document into an :class:`repro.core.omq.OMQ`.

    Format (sections may appear in any order; ``rules`` is optional)::

        schema: P/1, T/1
        rules:
            P(x) -> R(x, w)
            R(x, y) -> P(y)
        query: q(x) :- R(x, y), P(y)

    A UCQ query uses `` | ``-separated disjuncts or several ``query:``
    lines.
    """
    from .omq import OMQ
    from .schema import Schema

    schema_decl: Optional[str] = None
    rule_lines: List[str] = []
    query_lines: List[str] = []
    section: Optional[str] = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith(("%", "#")):
            continue
        lowered = line.lower()
        if lowered.startswith("schema:"):
            schema_decl = line.split(":", 1)[1].strip()
            section = None
            continue
        if lowered.startswith("rules:"):
            rest = line.split(":", 1)[1].strip()
            if rest:
                rule_lines.append(rest)
            section = "rules"
            continue
        if lowered.startswith("query:"):
            query_lines.append(line.split(":", 1)[1].strip())
            section = "query"
            continue
        if section == "rules":
            rule_lines.append(line)
        elif section == "query":
            query_lines.append(line)
        else:
            raise ParseError(f"line outside any section: {line!r}")
    if schema_decl is None:
        raise ParseError("missing 'schema:' section")
    if not query_lines:
        raise ParseError("missing 'query:' section")
    relations = {}
    for piece in schema_decl.split(","):
        piece = piece.strip()
        if not piece:
            continue
        if "/" not in piece:
            raise ParseError(f"schema entries look like Name/arity: {piece!r}")
        pred, _, arity = piece.partition("/")
        relations[pred.strip()] = int(arity)
    sigma = parse_tgds("\n".join(rule_lines))
    query_text = "\n".join(query_lines)
    ucq = parse_ucq(query_text)
    query = ucq.disjuncts[0] if len(ucq.disjuncts) == 1 else ucq
    return OMQ(Schema(relations), tuple(sigma), query, name)


def parse_database(text: str) -> Instance:
    """Parse a database; every bare identifier is a constant."""
    atoms: List[Atom] = []
    for stmt in _statements(text):
        stream = _TokenStream(_tokenize(stmt))
        atoms.extend(_parse_atom_list(stream, constants_mode=True))
        if not stream.at_end():
            raise ParseError(f"trailing input in database statement: {stmt!r}")
    return Instance.of(atoms)
