"""Conjunctive queries and unions of conjunctive queries.

A CQ (Section 2, eq. (1)) is ``q(x̄) :- ∃ȳ (R1(v̄1) ∧ ... ∧ Rm(v̄m))``; its
evaluation over an instance is defined through homomorphisms.  A UCQ is a
finite disjunction of CQs of the same arity.  This module provides:

* evaluation (all answers / membership of a specific tuple),
* canonical ("frozen") databases — the Chandra–Merlin device,
* variable hygiene (renaming apart), isomorphism and equivalence tests,
* the connected components ``co(q)`` of a CQ (used by Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..kernel.search import compiled_search
from .atoms import Atom, variables_of_atoms
from .instance import Instance, freeze_atoms
from .schema import Schema
from .terms import Constant, Term, Variable


class QueryError(ValueError):
    """Raised on malformed queries (unsafe head, arity mismatches, ...)."""


@dataclass(frozen=True)
class CQ:
    """A conjunctive query with head ``head`` and body ``body``.

    ``head`` is the tuple of output terms x̄ (variables, or constants for
    partially instantiated queries); all other body variables are implicitly
    existentially quantified.  ``name`` is cosmetic.
    """

    head: Tuple[Term, ...]
    body: Tuple[Atom, ...]
    name: str = "q"

    def __post_init__(self) -> None:
        object.__setattr__(self, "head", tuple(self.head))
        object.__setattr__(self, "body", tuple(self.body))
        body_vars = variables_of_atoms(self.body)
        for t in self.head:
            if isinstance(t, Variable) and t not in body_vars:
                raise QueryError(f"unsafe head variable {t} in {self.name}")

    # -- structure -------------------------------------------------------

    @property
    def arity(self) -> int:
        """The number of output positions."""
        return len(self.head)

    def is_boolean(self) -> bool:
        """True iff the query has no output positions."""
        return not self.head

    def variables(self) -> Set[Variable]:
        """All variables occurring in the query."""
        out = variables_of_atoms(self.body)
        out.update(t for t in self.head if isinstance(t, Variable))
        return out

    def free_variables(self) -> Tuple[Variable, ...]:
        """The head variables, in head order, without duplicates."""
        seen: List[Variable] = []
        for t in self.head:
            if isinstance(t, Variable) and t not in seen:
                seen.append(t)
        return tuple(seen)

    def existential_variables(self) -> Set[Variable]:
        """Body variables that are not free."""
        return self.variables() - set(self.free_variables())

    def constants(self) -> Set[Constant]:
        """All constants occurring in head or body."""
        out: Set[Constant] = {t for t in self.head if isinstance(t, Constant)}
        for a in self.body:
            out.update(a.constants())
        return out

    def predicates(self) -> Set[str]:
        """Predicate names used in the body."""
        return {a.predicate for a in self.body}

    def schema(self) -> Schema:
        """Schema inferred from the body atoms."""
        return Schema.from_atoms(self.body)

    def size(self) -> int:
        """``|q|``: the number of body atoms (the paper's measure)."""
        return len(self.body)

    def shared_variables(self) -> Set[Variable]:
        """Variables that are free or occur in more than one body atom.

        This is the paper's notion of *shared* variable used in the
        applicability condition of XRewrite (appendix, Definition 6): shared
        means free in ``q`` or occurring more than once in ``q`` (counting
        multiple occurrences inside one atom).
        """
        counts: Dict[Variable, int] = {}
        for a in self.body:
            for t in a.args:
                if isinstance(t, Variable):
                    counts[t] = counts.get(t, 0) + 1
        shared = {v for v, c in counts.items() if c > 1}
        shared.update(self.free_variables())
        return shared

    def variables_in_multiple_atoms(self) -> Set[Variable]:
        """``var≥2(q)``: variables appearing in more than one body atom."""
        seen: Dict[Variable, int] = {}
        for a in self.body:
            for v in a.variables():
                seen[v] = seen.get(v, 0) + 1
        return {v for v, c in seen.items() if c > 1}

    # -- semantics -------------------------------------------------------

    def evaluate(
        self, instance: Instance, constants_only: bool = True
    ) -> Set[Tuple[Term, ...]]:
        """``q(I)``: the set of answer tuples.

        With ``constants_only`` (the paper's definition) only tuples made
        entirely of constants are reported; set it to False to also see
        answers containing nulls (useful when inspecting chase internals).
        """
        answers: Set[Tuple[Term, ...]] = set()
        for h in compiled_search(self.body).search(instance):
            tup = tuple(h.get(t, t) for t in self.head)
            if constants_only and not all(isinstance(t, Constant) for t in tup):
                continue
            answers.add(tup)
        return answers

    def holds_in(self, instance: Instance, answer: Sequence[Term] = ()) -> bool:
        """True iff *answer* ∈ q(I) (for Boolean queries: q(I) ≠ ∅)."""
        answer = tuple(answer)
        if len(answer) != self.arity:
            raise QueryError(
                f"answer arity {len(answer)} != query arity {self.arity}"
            )
        fixed: Dict[Term, Term] = {}
        for t, value in zip(self.head, answer):
            if isinstance(t, Variable):
                if fixed.get(t, value) != value:
                    return False
                fixed[t] = value
            elif t != value:
                return False
        return compiled_search(self.body).find(instance, fixed) is not None

    # -- canonical database ----------------------------------------------

    def canonical_database(
        self, prefix: str = "c_"
    ) -> Tuple[Instance, Tuple[Term, ...]]:
        """Freeze the body into a database D_q and the canonical answer c(x̄).

        Every variable becomes a fresh constant; the returned tuple is the
        image of the head under the freezing.
        """
        db, mapping = freeze_atoms(self.body, prefix)
        canonical = tuple(
            mapping.get(t, t) if isinstance(t, Variable) else t for t in self.head
        )
        return db, canonical

    # -- hygiene ----------------------------------------------------------

    def rename(self, mapping: Mapping[Variable, Term]) -> "CQ":
        """Apply a variable substitution to head and body."""
        head = tuple(
            mapping.get(t, t) if isinstance(t, Variable) else t for t in self.head
        )
        body = tuple(a.substitute(mapping) for a in self.body)
        return CQ(head, body, self.name)

    def rename_apart(self, taken: Iterable[Variable], suffix: str = "_r") -> "CQ":
        """Rename this query's variables away from *taken*."""
        taken_names = {v.name for v in taken}
        mapping: Dict[Variable, Variable] = {}
        for v in sorted(self.variables(), key=lambda v: v.name):
            if v.name in taken_names:
                fresh_name = v.name + suffix
                k = 0
                while fresh_name in taken_names:
                    k += 1
                    fresh_name = f"{v.name}{suffix}{k}"
                mapping[v] = Variable(fresh_name)
                taken_names.add(fresh_name)
        return self.rename(mapping) if mapping else self

    def standardize(self, prefix: str = "v") -> "CQ":
        """Rename variables to a canonical v0, v1, ... order.

        The order is: head variables first (head order), then remaining body
        variables in deterministic atom order.  Two isomorphic queries need
        *not* standardize identically (atom order may differ), so this is a
        normalization, not a canonical form.
        """
        order: List[Variable] = []
        for t in self.head:
            if isinstance(t, Variable) and t not in order:
                order.append(t)
        for a in sorted(self.body, key=str):
            for t in a.args:
                if isinstance(t, Variable) and t not in order:
                    order.append(t)
        mapping = {v: Variable(f"{prefix}{i}") for i, v in enumerate(order)}
        return self.rename(mapping)

    # -- components (Section 7.1) -----------------------------------------

    def components(self) -> List["CQ"]:
        """``co(q)``: the connected components of the body.

        Each component keeps the head terms it mentions; following the
        paper's Proposition 27 usage, a component query retains the full
        head restricted to its own variables.  Atoms of arity 0 are rejected
        (footnote 5 of the paper).
        """
        if any(a.arity == 0 for a in self.body):
            raise QueryError("components undefined for queries with 0-ary atoms")
        if not self.body:
            return [self]
        adjacency: Dict[Variable, Set[Variable]] = {}
        for a in self.body:
            for v in a.variables():
                adjacency.setdefault(v, set()).update(a.variables() - {v})
        seen: Set[Variable] = set()
        groups: List[Set[Variable]] = []
        for v in sorted(adjacency, key=lambda v: v.name):
            if v in seen:
                continue
            stack, members = [v], set()
            while stack:
                node = stack.pop()
                if node in members:
                    continue
                members.add(node)
                stack.extend(adjacency[node] - members)
            seen.update(members)
            groups.append(members)
        out: List[CQ] = []
        used_atoms: Set[Atom] = set()
        for i, group in enumerate(groups):
            atoms = tuple(
                a for a in self.body if a.variables() and a.variables() <= group
            )
            used_atoms.update(atoms)
            head = tuple(t for t in self.head if t in group)
            out.append(CQ(head, atoms, f"{self.name}_c{i}"))
        # Variable-free (ground) atoms each form their own trivial component.
        for a in self.body:
            if a not in used_atoms and not a.variables():
                out.append(CQ((), (a,), f"{self.name}_ground"))
        return out

    def core(self) -> "CQ":
        """A core of the CQ: a minimal equivalent subquery.

        Greedily drops body atoms while the remaining query still entails
        the dropped ones (checked Chandra–Merlin-style on the canonical
        database).  The result is the classical core, unique up to
        isomorphism, and equivalent to the original query.
        """
        body = list(dict.fromkeys(self.body))
        changed = True
        while changed:
            changed = False
            for a in sorted(body, key=str):
                candidate_body = [b for b in body if b != a]
                if not candidate_body and self.free_variables():
                    continue
                try:
                    candidate = CQ(self.head, tuple(candidate_body), self.name)
                except QueryError:
                    continue  # dropping `a` would make the head unsafe
                db, canonical = candidate.canonical_database()
                if self.holds_in(db, canonical):
                    body = candidate_body
                    changed = True
                    break
        return CQ(self.head, tuple(sorted(body, key=str)), self.name)

    # -- comparison -------------------------------------------------------

    def signature(self) -> Tuple:
        """A cheap isomorphism-invariant fingerprint.

        Isomorphic queries always share a signature (variables are
        abstracted to occurrence counts and head membership), so
        isomorphism only needs checking within signature groups.
        """
        counts: Dict[Term, int] = {}
        for a in self.body:
            for t in a.args:
                if isinstance(t, Variable):
                    counts[t] = counts.get(t, 0) + 1
        head_vars = set(self.free_variables())

        def slot(t: Term) -> Tuple:
            if isinstance(t, Variable):
                return ("v", counts.get(t, 0), t in head_vars)
            return ("c", str(t))

        body_sig = tuple(
            sorted(
                (a.predicate, tuple(slot(t) for t in a.args))
                for a in self.body
            )
        )
        return (tuple(slot(t) for t in self.head), body_sig)

    def is_isomorphic_to(self, other: "CQ") -> bool:
        """True iff the queries are equal up to bijective variable renaming.

        This is the ``≃`` relation that XRewrite uses for deduplication.
        """
        if self.arity != other.arity or len(self.body) != len(other.body):
            return False
        return (
            _injective_match(self, other) is not None
            and _injective_match(other, self) is not None
        )

    def __str__(self) -> str:
        head = ", ".join(str(t) for t in self.head)
        body = ", ".join(str(a) for a in sorted(self.body, key=str))
        return f"{self.name}({head}) :- {body or 'true'}"

    def __repr__(self) -> str:
        return f"CQ(head={self.head!r}, body={self.body!r})"


def _injective_match(left: CQ, right: CQ) -> Optional[Dict[Term, Term]]:
    """An injective body hom left→right respecting head positions, or None."""
    fixed: Dict[Term, Term] = {}
    for s, t in zip(left.head, right.head):
        if isinstance(s, Variable):
            if fixed.get(s, t) != t:
                return None
            fixed[s] = t
        elif s != t:
            return None
    target = Instance.of(
        a.substitute({v: _VarToken(v) for v in right.variables()})
        for a in right.body
    )
    wrapped_fixed = {
        s: (_VarToken(t) if isinstance(t, Variable) else t)
        for s, t in fixed.items()
    }
    for h in compiled_search(left.body).search(target, wrapped_fixed):
        values = [v for v in h.values()]
        if len(set(values)) == len(values):
            return {k: _unwrap(v) for k, v in h.items()}
    return None


@dataclass(frozen=True, slots=True)
class _VarToken:
    """Wraps a variable as an opaque ground token for isomorphism search."""

    var: Variable


def _unwrap(t: Term) -> Term:
    return t.var if isinstance(t, _VarToken) else t


@dataclass(frozen=True)
class UCQ:
    """A union of conjunctive queries of equal arity."""

    disjuncts: Tuple[CQ, ...]
    name: str = "q"

    def __post_init__(self) -> None:
        object.__setattr__(self, "disjuncts", tuple(self.disjuncts))
        arities = {d.arity for d in self.disjuncts}
        if len(arities) > 1:
            raise QueryError(f"mixed arities in UCQ: {sorted(arities)}")

    @classmethod
    def of(cls, *disjuncts: CQ, name: str = "q") -> "UCQ":
        return cls(tuple(disjuncts), name)

    @classmethod
    def from_cq(cls, q: CQ) -> "UCQ":
        return cls((q,), q.name)

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity if self.disjuncts else 0

    def is_boolean(self) -> bool:
        return self.arity == 0

    def is_empty(self) -> bool:
        """True iff the union has no disjuncts (the unsatisfiable query)."""
        return not self.disjuncts

    def predicates(self) -> Set[str]:
        out: Set[str] = set()
        for d in self.disjuncts:
            out.update(d.predicates())
        return out

    def schema(self) -> Schema:
        schema = Schema()
        for d in self.disjuncts:
            schema = schema | d.schema()
        return schema

    def evaluate(
        self, instance: Instance, constants_only: bool = True
    ) -> Set[Tuple[Term, ...]]:
        """``q(I) = ⋃ qi(I)``."""
        answers: Set[Tuple[Term, ...]] = set()
        for d in self.disjuncts:
            answers |= d.evaluate(instance, constants_only)
        return answers

    def holds_in(self, instance: Instance, answer: Sequence[Term] = ()) -> bool:
        """True iff some disjunct has *answer* among its answers."""
        return any(d.holds_in(instance, answer) for d in self.disjuncts)

    def max_disjunct_size(self) -> int:
        """max_i |q_i| — the quantity bounded by the f_O functions."""
        return max((d.size() for d in self.disjuncts), default=0)

    def deduplicate(self) -> "UCQ":
        """Drop disjuncts isomorphic to an earlier one (signature-bucketed)."""
        kept: List[CQ] = []
        buckets: Dict[Tuple, List[CQ]] = {}
        for d in self.disjuncts:
            bucket = buckets.setdefault(d.signature(), [])
            if not any(d.is_isomorphic_to(k) for k in bucket):
                bucket.append(d)
                kept.append(d)
        return UCQ(tuple(kept), self.name)

    def minimize(self) -> "UCQ":
        """Drop disjuncts contained in another disjunct (as plain CQs).

        Keeps a ⊆-minimal cover; the result is equivalent as a UCQ.
        """
        from ..containment.cq import cq_contained_in  # local to avoid cycle

        kept: List[CQ] = []
        for d in self.disjuncts:
            if any(cq_contained_in(d, k) for k in kept):
                continue
            kept = [k for k in kept if not cq_contained_in(k, d)]
            kept.append(d)
        return UCQ(tuple(kept), self.name)

    def __iter__(self) -> Iterator[CQ]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __str__(self) -> str:
        return " ∨ ".join(str(d) for d in self.disjuncts) or "⊥"


def boolean_cq(body: Iterable[Atom], name: str = "q") -> CQ:
    """Build a Boolean CQ from body atoms."""
    return CQ((), tuple(body), name)
