"""UCQ rewriting: MGUs, XRewrite, and the f_O size bounds."""

from .bounds import f_linear, f_non_recursive, f_sticky, witness_size_bound
from .unification import apply_substitution, mgu, unifies
from .xrewrite import (
    RewritingBudgetExceeded,
    RewritingResult,
    RewritingStats,
    xrewrite,
    xrewrite_cq,
)

__all__ = [
    "RewritingBudgetExceeded",
    "RewritingResult",
    "RewritingStats",
    "apply_substitution",
    "f_linear",
    "f_non_recursive",
    "f_sticky",
    "mgu",
    "unifies",
    "witness_size_bound",
    "xrewrite",
    "xrewrite_cq",
]
