"""XRewrite: UCQ rewriting of OMQs (appendix Algorithm 1, after [40]).

Given an OMQ ``Q = (S, Σ, q)``, XRewrite exhaustively applies two steps,
starting from ``q``:

* **Rewriting step** — resolve a subset ``S ⊆ body(q)`` with a tgd whose
  head unifies with ``S`` (subject to the *applicability* condition of
  Definition 6, which protects constants and shared variables from landing
  on existential positions), replacing ``S`` by the tgd's body.
* **Factorization step** — unify atoms of the query that must have been
  produced by the same chase step (Definition 7), turning shared variables
  into non-shared ones so that further rewriting steps become applicable.

The final rewriting keeps the queries labeled ``r`` (the factorization
outputs are auxiliary) that mention only data-schema predicates.  For OMQs
based on linear, non-recursive or sticky tgds the procedure terminates and
the result ``q'`` satisfies ``Q(D) = q'(D)`` for every S-database D
(Definition 1: UCQ rewritability).

Deviations from the paper, both documented in DESIGN.md:

* tgds with several head atoms are first split through an auxiliary
  predicate (:func:`repro.core.tgd.normalize_single_head`);
* tgds may have several existential variables / occurrences — Definition 6
  is applied position-wise to the set of existential positions, which is
  the natural generalization and agrees with the paper on normal-form tgds.

Because XRewrite need not terminate for arbitrary tgds (Proposition 8's
boundary), the engine takes a query budget and raises
:class:`RewritingBudgetExceeded`, carrying the partial rewriting, when the
budget is exhausted.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.omq import OMQ
from ..core.queries import CQ, UCQ
from ..core.terms import Constant, Term, Variable
from ..core.tgd import TGD, normalize_single_head
from ..kernel import KERNEL_METRICS, atom_str
from .. import obs
from .unification import mgu


class RewritingBudgetExceeded(RuntimeError):
    """XRewrite exceeded its query budget (the ontology may not be UCQ-rewritable)."""

    def __init__(self, partial: "RewritingResult") -> None:
        super().__init__(
            f"XRewrite generated more than {partial.stats.budget} queries"
        )
        self.partial = partial


@dataclass
class RewritingStats:
    """Counters describing an XRewrite run."""

    budget: int
    atom_budget: int = 0
    total_atoms: int = 0
    rewriting_steps: int = 0
    factorization_steps: int = 0
    queries_generated: int = 1  # the input query
    queries_final: int = 0


@dataclass
class RewritingResult:
    """The outcome of XRewrite: the rewriting plus run statistics."""

    rewriting: UCQ
    stats: RewritingStats
    complete: bool = True

    def max_disjunct_size(self) -> int:
        """max_i |q_i| — compared against the f_O bounds in the benches."""
        return self.rewriting.max_disjunct_size()


@dataclass
class _Entry:
    query: CQ
    label: str  # "r" or "f"
    explored: bool = False


class _SeenIndex:
    """Signature-bucketed isomorphism dedup for generated queries."""

    def __init__(self) -> None:
        self._buckets: Dict[Tuple, List[_Entry]] = {}

    def add(self, entry: _Entry) -> None:
        self._buckets.setdefault(entry.query.signature(), []).append(entry)

    def seen(self, candidate: CQ, labels: Tuple[str, ...]) -> bool:
        bucket = self._buckets.get(candidate.signature(), ())
        return any(
            e.label in labels and candidate.is_isomorphic_to(e.query)
            for e in bucket
        )


def _existential_positions(rule: TGD) -> Tuple[int, ...]:
    """Positions of the (single) head atom holding existential variables."""
    head = rule.head[0]
    existentials = rule.existential_variables()
    return tuple(
        i for i, t in enumerate(head.args)
        if isinstance(t, Variable) and t in existentials
    )


def _applicable(
    query: CQ, subset: Sequence[Atom], rule: TGD
) -> Optional[Dict[Term, Term]]:
    """Definition 6 (generalized): the MGU if the rule applies to *subset*.

    For each existential variable z of the rule (occurring at head
    positions Π_z), the query terms sitting at Π_z across *subset* would be
    identified with the fresh null z invented by the chase.  That is sound
    iff every such term is a variable that is (i) not free, (ii) absent
    from the rest of the query, (iii) absent from non-Π_z slots within the
    subset, and (iv) not also claimed by a different existential variable.
    (The paper's Definition 6 is the normal-form special case — one
    occurrence of one existential — where this reduces to "not a constant,
    not shared"; the refinement matters for heads like ∃e R(e, e), which
    must resolve the query atom R(x, x).)
    """
    head = rule.head[0]
    ex_positions = _existential_positions(rule)
    existential_of: Dict[int, Variable] = {
        p: head.args[p] for p in ex_positions  # type: ignore[misc]
    }
    free = set(query.free_variables())

    # Occurrences of each variable: total in the query body, and within the
    # subset at each existential variable's positions.  The body is a set
    # of atoms — a CQ tuple may carry value-equal duplicates, and counting
    # them twice would block rewriting steps the set semantics permits
    # (`remaining` below is likewise computed over set(q.body)).
    total_occurrences: Dict[Variable, int] = {}
    for a in set(query.body):
        for t in a.args:
            if isinstance(t, Variable):
                total_occurrences[t] = total_occurrences.get(t, 0) + 1
    claimed_by: Dict[Variable, Variable] = {}  # query var -> existential
    z_occurrences: Dict[Variable, int] = {}
    for a in subset:
        for pos, z in existential_of.items():
            t = a.args[pos]
            if isinstance(t, Constant):
                return None
            if isinstance(t, Variable):
                if t in free:
                    return None
                if claimed_by.setdefault(t, z) != z:
                    return None  # claimed by two distinct existentials
                z_occurrences[t] = z_occurrences.get(t, 0) + 1
    # Multiplicity within the (multi)set of subset atoms: the same atom
    # object can only appear once in `subset` (sets of atoms), so per-atom
    # counting above is exact; the variable must occur nowhere else.
    for t, z_count in z_occurrences.items():
        if total_occurrences.get(t, 0) != z_count:
            return None
    query_vars = query.variables()

    def rank(t: Term) -> Tuple:
        if isinstance(t, Variable):
            if t in free:
                return (0,)
            if t in query_vars:
                return (1,)
            return (2,)
        return (3,)

    return mgu(list(subset) + [head], rank=rank)


def _factorizable(
    query: CQ, subset: Sequence[Atom], rule: TGD
) -> Optional[Dict[Term, Term]]:
    """Definition 7: the MGU of *subset* if factorizable w.r.t. *rule*."""
    if len(subset) < 2:
        return None
    ex_positions = set(_existential_positions(rule))
    if not ex_positions:
        return None
    head = rule.head[0]
    if any(a.predicate != head.predicate or a.arity != head.arity for a in subset):
        return None
    rest_vars: Set[Variable] = set()
    subset_set = set(subset)
    for a in query.body:
        if a not in subset_set:
            rest_vars.update(a.variables())
    candidates: Set[Variable] = set.intersection(
        *(a.variables() for a in subset)
    ) - rest_vars
    witness = None
    for x in sorted(candidates, key=lambda v: v.name):
        if all(
            set(a.positions_of(x)) <= ex_positions and a.positions_of(x)
            for a in subset
        ):
            witness = x
            break
    if witness is None:
        return None
    free = set(query.free_variables())

    def rank(t: Term) -> Tuple:
        if isinstance(t, Variable) and t in free:
            return (0,)
        return (1,)

    return mgu(list(subset), rank=rank)


#: Candidate queries larger than this skip core minimization (the hom
#: checks would dominate); they are still deduplicated by isomorphism.
_CORE_SIZE_LIMIT = 24


def _apply_to_query(
    query: CQ,
    sub: Dict[Term, Term],
    new_body: Sequence[Atom],
    name: str,
    minimize: bool = True,
) -> CQ:
    head = tuple(
        sub.get(t, t) if isinstance(t, Variable) else t for t in query.head
    )
    # atom_str is the kernel's memoized str(a): generated queries re-sort
    # the same (value-equal) atoms thousands of times across candidates.
    body = tuple(sorted({a.substitute(sub) for a in new_body}, key=atom_str))
    candidate = CQ(head, body, name)
    # Core-minimize generated queries — [40]'s "query elimination"
    # optimization.  Without it, recursive sticky sets accumulate
    # homomorphically redundant atoms (fresh once-occurring variables) and
    # the exhaustive rewriting diverges even though the minimized rewriting
    # is finite.  Replacing a disjunct by its core preserves equivalence.
    if minimize and len(body) <= _CORE_SIZE_LIMIT:
        candidate = candidate.core()
    return candidate


def _predicate_subsets(query: CQ, predicate: str, arity: int, max_size: int):
    """Non-empty subsets of body atoms over *predicate* (deterministic order)."""
    atoms = sorted(
        (a for a in set(query.body) if a.predicate == predicate and a.arity == arity),
        key=atom_str,
    )
    for size in range(1, min(len(atoms), max_size) + 1):
        yield from itertools.combinations(atoms, size)


def xrewrite_cq(
    data_schema,
    sigma: Sequence[TGD],
    query: CQ,
    *,
    max_queries: int = 20_000,
    max_total_atoms: int = 400_000,
    max_subset_size: Optional[int] = None,
    partial: bool = False,
    minimize: bool = True,
) -> RewritingResult:
    """Run XRewrite on a single CQ; see :func:`xrewrite` for the OMQ wrapper.

    ``minimize=False`` disables the query-elimination optimization (used by
    the ablation bench to demonstrate why it matters).

    Two budgets guard divergence: ``max_queries`` caps how many distinct
    queries are generated and ``max_total_atoms`` caps the *work* (sum of
    generated query sizes) — ontologies whose rewritings grow unboundedly
    (e.g. recursive Datalog) hit the atom budget quickly instead of
    thrashing on ever-longer queries.
    """
    rules = normalize_single_head(list(sigma))
    stats = RewritingStats(budget=max_queries, atom_budget=max_total_atoms)
    stats.total_atoms = len(query.body)
    start = query
    entries: List[_Entry] = [_Entry(start, "r")]
    counter = itertools.count(1)
    index = _SeenIndex()
    index.add(entries[0])
    seen = index.seen

    frontier = deque([entries[0]])
    run_span = obs.span(
        "rewrite.xrewrite", query=query.name, rules=len(rules)
    )
    stride = obs.growth_stride()

    def note_growth() -> None:
        # One structured event per `growth_stride` generated queries — the
        # disjunct-growth curve of Props. 12/14/17 at bounded trace cost.
        if run_span.active and stats.queries_generated % stride == 0:
            run_span.event(
                "growth",
                generated=stats.queries_generated,
                total_atoms=stats.total_atoms,
                frontier=len(frontier),
            )

    def finish(complete: bool) -> RewritingResult:
        result = _finalize(data_schema, entries, stats, complete)
        run_span.set("generated", stats.queries_generated)
        run_span.set("rewriting_steps", stats.rewriting_steps)
        run_span.set("factorization_steps", stats.factorization_steps)
        run_span.set("final_disjuncts", stats.queries_final)
        run_span.set("complete", complete)
        return result

    # The accumulated wall-clock of rewriting runs lands in the kernel
    # registry next to the hom-search counters (observed on every exit,
    # including budget-exhaustion raises).
    with run_span, KERNEL_METRICS.timer("kernel.xrewrite.seconds").time():
        while frontier:
            entry = frontier.popleft()
            if entry.explored:
                continue
            entry.explored = True
            q = entry.query
            for rule in rules:
                fresh = rule.with_indexed_variables(next(counter)).rename_apart(
                    q.variables()
                )
                max_size = max_subset_size or len(q.body)
                head = fresh.head[0]
                # Rewriting step.
                for subset in _predicate_subsets(q, head.predicate, head.arity, max_size):
                    sub = _applicable(q, subset, fresh)
                    if sub is None:
                        continue
                    remaining = [a for a in set(q.body) if a not in set(subset)]
                    candidate = _apply_to_query(
                        q, sub, remaining + list(fresh.body), f"{query.name}_r",
                        minimize,
                    )
                    if seen(candidate, ("r",)):
                        continue
                    if (
                        stats.queries_generated >= max_queries
                        or stats.total_atoms + len(candidate.body)
                        > max_total_atoms
                    ):
                        result = finish(complete=False)
                        if partial:
                            return result
                        raise RewritingBudgetExceeded(result)
                    stats.rewriting_steps += 1
                    stats.queries_generated += 1
                    stats.total_atoms += len(candidate.body)
                    note_growth()
                    new_entry = _Entry(candidate, "r")
                    entries.append(new_entry)
                    index.add(new_entry)
                    frontier.append(new_entry)
                # Factorization step.
                for subset in _predicate_subsets(q, head.predicate, head.arity, max_size):
                    sub = _factorizable(q, subset, fresh)
                    if sub is None:
                        continue
                    candidate = _apply_to_query(
                        q, sub, q.body, f"{query.name}_f", minimize
                    )
                    if seen(candidate, ("r", "f")):
                        continue
                    if (
                        stats.queries_generated >= max_queries
                        or stats.total_atoms + len(candidate.body)
                        > max_total_atoms
                    ):
                        result = finish(complete=False)
                        if partial:
                            return result
                        raise RewritingBudgetExceeded(result)
                    stats.factorization_steps += 1
                    stats.queries_generated += 1
                    stats.total_atoms += len(candidate.body)
                    note_growth()
                    new_entry = _Entry(candidate, "f")
                    entries.append(new_entry)
                    index.add(new_entry)
                    frontier.append(new_entry)
        return finish(complete=True)


def _finalize(
    data_schema, entries: Sequence[_Entry], stats: RewritingStats, complete: bool
) -> RewritingResult:
    final: List[CQ] = []
    for e in entries:
        if e.label != "r":
            continue
        if all(p in data_schema for p in e.query.predicates()):
            final.append(e.query)
    stats.queries_final = len(final)
    ucq = UCQ(tuple(final)).deduplicate()
    return RewritingResult(ucq, stats, complete)


def xrewrite(
    omq: OMQ,
    *,
    max_queries: int = 20_000,
    max_total_atoms: int = 400_000,
    partial: bool = False,
) -> RewritingResult:
    """UCQ-rewrite an OMQ (CQ- or UCQ-based).

    For a UCQ-based OMQ the disjuncts are rewritten independently and the
    results unioned — sound because rewriting distributes over union.
    """
    stats_total = RewritingStats(budget=max_queries)
    disjuncts: List[CQ] = []
    complete = True
    for d in omq.as_ucq().disjuncts:
        result = xrewrite_cq(
            omq.data_schema,
            omq.sigma,
            d,
            max_queries=max_queries,
            max_total_atoms=max_total_atoms,
            partial=partial,
        )
        disjuncts.extend(result.rewriting.disjuncts)
        stats_total.rewriting_steps += result.stats.rewriting_steps
        stats_total.factorization_steps += result.stats.factorization_steps
        stats_total.queries_generated += result.stats.queries_generated
        complete = complete and result.complete
    ucq = UCQ(tuple(disjuncts), omq.as_ucq().name + "_rw").deduplicate()
    stats_total.queries_final = len(ucq.disjuncts)
    return RewritingResult(ucq, stats_total, complete)
