"""Most general unifiers for sets of atoms (appendix, "The Algorithm XRewrite").

A set of atoms unifies if a substitution maps them all to one atom; the MGU
is the least-committed such substitution, computed here by union-find over
argument positions.  Constants are rigid: two distinct constants in the same
class fail unification.

Representative choice matters for readability of rewritings (and for the
paper's convention that the MGU is the identity on tgd-body-only variables):
classes pick a constant if present, otherwise the highest-priority variable
according to a caller-supplied ranking (XRewrite ranks the query's free
variables first, then other query variables, then tgd variables).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.terms import Constant, Term, Variable


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}

    def find(self, t: Term) -> Term:
        self._parent.setdefault(t, t)
        root = t
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[t] != root:
            self._parent[t], t = root, self._parent[t]
        return root

    def union(self, a: Term, b: Term) -> bool:
        """Merge the classes of a and b; False iff two constants clash."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return True
        if isinstance(ra, Constant) and isinstance(rb, Constant):
            return False
        if isinstance(rb, Constant):
            ra, rb = rb, ra
        self._parent[rb] = ra
        return True

    def classes(self) -> Dict[Term, List[Term]]:
        grouped: Dict[Term, List[Term]] = {}
        for t in self._parent:
            grouped.setdefault(self.find(t), []).append(t)
        return grouped


def mgu(
    atoms: Sequence[Atom],
    rank: Optional[Callable[[Term], Tuple]] = None,
) -> Optional[Dict[Term, Term]]:
    """The most general unifier of *atoms*, or None if they do not unify.

    *rank* orders candidate representatives (smaller rank preferred);
    constants always win.  The returned substitution maps every variable in
    the atoms to its class representative (identity entries included, so
    substitution application is a plain dict lookup with default).
    """
    if not atoms:
        return {}
    first = atoms[0]
    if any(
        a.predicate != first.predicate or a.arity != first.arity for a in atoms
    ):
        return None
    uf = _UnionFind()
    for a in atoms:
        for s, t in zip(first.args, a.args):
            if not uf.union(s, t):
                return None
    if rank is None:
        rank = lambda t: (str(t),)
    substitution: Dict[Term, Term] = {}
    for root, members in uf.classes().items():
        constants = [m for m in members if isinstance(m, Constant)]
        if len(set(constants)) > 1:
            return None
        if constants:
            representative: Term = constants[0]
        else:
            representative = min(members, key=lambda m: (rank(m), str(m)))
        for m in members:
            if isinstance(m, Variable):
                substitution[m] = representative
    return substitution


def unifies(atoms: Sequence[Atom]) -> bool:
    """True iff the atoms admit a unifier."""
    return mgu(atoms) is not None


def apply_substitution(atoms: Iterable[Atom], sub: Dict[Term, Term]) -> Tuple[Atom, ...]:
    """Apply a substitution to a collection of atoms."""
    return tuple(a.substitute(sub) for a in atoms)
