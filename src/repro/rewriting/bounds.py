"""The f_O disjunct-size bounds (Propositions 12, 14, 17).

For a UCQ-rewritable OMQ language O there is a computable ``f_O`` bounding
the number of atoms of any disjunct in a UCQ rewriting.  These bounds drive
the small-witness containment algorithm (Proposition 10 / Theorem 11) and
are the quantities whose growth the paper's complexity discussion tracks:

* linear (Prop 12):       ``f_L(Q) ≤ |q|`` — polynomial;
* non-recursive (Prop 14): ``f_NR(Q) ≤ |q| · (max body size)^{|sch(Σ)|}`` —
  exponential in the number of predicates;
* sticky (Prop 17):       ``f_S(Q) ≤ |S| · (|T(q)| + |C(Σ)| + 1)^{ar(S)}`` —
  exponential in the arity of the data schema only.
"""

from __future__ import annotations

from ..core.omq import OMQ, TGDClass
from ..core.tgd import constants_of_tgds, max_body_size


def f_linear(omq: OMQ) -> int:
    """Proposition 12: disjuncts never exceed the input query's size."""
    return max(d.size() for d in omq.as_ucq().disjuncts)


def f_non_recursive(omq: OMQ) -> int:
    """Proposition 14: |q| · (max_τ |body(τ)|)^{|sch(Σ)|}."""
    q_size = max(d.size() for d in omq.as_ucq().disjuncts)
    base = max(max_body_size(omq.sigma), 1)
    exponent = len(omq.ontology_schema())
    return q_size * base**exponent


def f_sticky(omq: OMQ) -> int:
    """Proposition 17: |S| · (|T(q)| + |C(Σ)| + 1)^{ar(S)}.

    ``T(q)`` is the set of terms of the query, ``C(Σ)`` the constants of the
    ontology, and both |S| and ar(S) refer to the *data* schema.
    """
    query = omq.as_ucq()
    terms = set()
    for d in query.disjuncts:
        terms.update(d.variables())
        terms.update(d.constants())
    n_constants = len(constants_of_tgds(omq.sigma))
    base = len(terms) + n_constants + 1
    return len(omq.data_schema) * base ** omq.data_schema.max_arity


def witness_size_bound(omq: OMQ, cls: TGDClass) -> int:
    """``f_O(Q)`` for the UCQ-rewritable language the OMQ lives in.

    This bounds the size of a smallest non-containment witness database
    (Proposition 10).  Raises ValueError for non-UCQ-rewritable classes.
    """
    if cls in (TGDClass.EMPTY,):
        return max(d.size() for d in omq.as_ucq().disjuncts)
    if cls is TGDClass.LINEAR:
        return f_linear(omq)
    if cls in (TGDClass.NON_RECURSIVE, TGDClass.FULL_NON_RECURSIVE):
        return f_non_recursive(omq)
    if cls is TGDClass.STICKY:
        return f_sticky(omq)
    raise ValueError(f"{cls} is not a UCQ-rewritable class")
