"""Tree decompositions and guarded tree decompositions (Section 5.1).

A tree decomposition of a database ``D`` is a labeled rooted tree whose bags
cover every atom and whose occurrences of each term form a connected
subtree.  It is ``[U]-guarded`` if every bag outside ``U`` is contained in
the argument set of some atom of ``D``.  These notions define C-trees
(Definition 2), the witness class for guarded OMQ containment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.terms import Term
from .labeled_tree import LabeledTree, Node


@dataclass(frozen=True)
class TreeDecomposition:
    """A rooted tree decomposition: a labeled tree whose labels are bags.

    Bags are frozensets of terms of the decomposed instance.
    """

    tree: LabeledTree

    def bag(self, node: Node) -> FrozenSet[Term]:
        return self.tree.label(node)  # type: ignore[return-value]

    def width(self) -> int:
        """max |bag| - 1 (the classical width)."""
        return max((len(self.bag(n)) for n in self.tree), default=1) - 1

    def nodes_containing(self, term: Term) -> List[Node]:
        return [n for n in self.tree if term in self.bag(n)]

    # -- validity ----------------------------------------------------------

    def covers(self, instance: Instance) -> bool:
        """Condition (i): every atom's arguments fit into some bag."""
        bags = [self.bag(n) for n in self.tree]
        return all(
            any(set(a.args) <= bag for bag in bags) for a in instance.atoms
        )

    def is_connected_for(self, term: Term) -> bool:
        """Condition (ii): the nodes holding *term* induce a connected subtree."""
        holding = set(self.nodes_containing(term))
        if not holding:
            return True
        anchor = min(holding, key=lambda n: (len(n), n))
        reached = {anchor}
        frontier = [anchor]
        while frontier:
            node = frontier.pop()
            neighbours = list(self.tree.children(node))
            parent = self.tree.parent(node)
            if parent is not None:
                neighbours.append(parent)
            for nb in neighbours:
                if nb in holding and nb not in reached:
                    reached.add(nb)
                    frontier.append(nb)
        return reached == holding

    def is_valid_for(self, instance: Instance) -> bool:
        """Both tree-decomposition conditions for *instance*."""
        if not self.covers(instance):
            return False
        return all(self.is_connected_for(t) for t in instance.domain())

    def is_guarded_except(
        self, instance: Instance, exempt: Iterable[Node] = ()
    ) -> bool:
        """[U]-guardedness: every non-exempt bag sits inside some atom."""
        exempt_set = set(exempt)
        for node in self.tree:
            if node in exempt_set:
                continue
            bag = self.bag(node)
            if not any(bag <= set(a.args) for a in instance.atoms):
                return False
        return True

    def induced_instance(self, instance: Instance, node: Node) -> Instance:
        """``D_T(v)``: the sub-instance induced by the bag of *node*."""
        return instance.induced_by(self.bag(node))


def decomposition_from_bags(
    bags: Mapping[Node, Iterable[Term]]
) -> TreeDecomposition:
    """Build a decomposition from a node→bag mapping."""
    return TreeDecomposition(
        LabeledTree({n: frozenset(b) for n, b in bags.items()})
    )


def trivial_decomposition(instance: Instance) -> TreeDecomposition:
    """The one-bag decomposition holding the whole domain (always valid)."""
    return decomposition_from_bags({(): instance.domain()})


def star_decomposition(instance: Instance) -> Optional[TreeDecomposition]:
    """A root-plus-leaves decomposition with one leaf bag per atom.

    The root bag is empty and each atom contributes a leaf bag of its own
    arguments.  Valid iff distinct atoms share no terms; returns None
    otherwise.  Used by tests as a simple guarded decomposition source.
    """
    atoms = sorted(instance.atoms, key=str)
    seen: Set[Term] = set()
    for a in atoms:
        if seen & set(a.args):
            return None
        seen.update(a.args)
    bags: Dict[Node, FrozenSet[Term]] = {(): frozenset()}
    for i, a in enumerate(atoms, start=1):
        bags[(i,)] = frozenset(a.args)
    return TreeDecomposition(LabeledTree(bags))
