"""Labeled trees, tree decompositions, C-trees and their encodings."""

from .ctree import (
    Alphabet,
    TreeLabel,
    consistency_violations,
    decode_tree,
    encode_ctree,
    is_consistent,
    is_ctree,
    try_build_ctree_decomposition,
)
from .decomposition import (
    TreeDecomposition,
    decomposition_from_bags,
    star_decomposition,
    trivial_decomposition,
)
from .labeled_tree import LabeledTree, Node

__all__ = [
    "Alphabet",
    "LabeledTree",
    "Node",
    "TreeDecomposition",
    "TreeLabel",
    "consistency_violations",
    "decode_tree",
    "decomposition_from_bags",
    "encode_ctree",
    "is_consistent",
    "is_ctree",
    "star_decomposition",
    "trivial_decomposition",
    "try_build_ctree_decomposition",
]
