"""Finite Γ-labeled trees (Section 5.2).

A Γ-labeled tree is a pair ``(T, λ)`` where ``T ⊆ (ℕ∖{0})*`` is a
prefix-closed set of finite sequences of positive integers (the nodes) and
``λ : T → Γ`` labels each node.  Nodes are represented as tuples of ints;
the root is the empty tuple.

These trees are the common substrate of the C-tree encoding
(:mod:`repro.trees.ctree`) and the 2WAPA automata (:mod:`repro.automata`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple, TypeVar

Node = Tuple[int, ...]
L = TypeVar("L")


@dataclass(frozen=True)
class LabeledTree:
    """An immutable finite labeled tree."""

    labels: Mapping[Node, object]

    def __post_init__(self) -> None:
        labels = dict(self.labels)
        object.__setattr__(self, "labels", labels)
        for node in labels:
            if node and node[:-1] not in labels:
                raise ValueError(f"node {node} has no parent in the tree")
            if any(i < 1 for i in node):
                raise ValueError(f"node {node} uses non-positive indices")
        if labels and () not in labels:
            raise ValueError("non-empty tree must contain the root ()")

    # -- structure ---------------------------------------------------------

    @property
    def root(self) -> Node:
        return ()

    def nodes(self) -> List[Node]:
        """All nodes in deterministic (BFS-ish lexicographic) order."""
        return sorted(self.labels, key=lambda n: (len(n), n))

    def label(self, node: Node) -> object:
        return self.labels[node]

    def children(self, node: Node) -> List[Node]:
        """Direct children, in index order."""
        out = [n for n in self.labels if len(n) == len(node) + 1 and n[: len(node)] == node]
        return sorted(out)

    def parent(self, node: Node) -> Optional[Node]:
        return node[:-1] if node else None

    def is_leaf(self, node: Node) -> bool:
        return not self.children(node)

    def leaves(self) -> List[Node]:
        return [n for n in self.nodes() if self.is_leaf(n)]

    def depth(self) -> int:
        """The length of the longest branch (0 for a root-only tree)."""
        return max((len(n) for n in self.labels), default=0)

    def branching_degree(self) -> int:
        """The maximum number of children over all nodes."""
        return max((len(self.children(n)) for n in self.labels), default=0)

    def subtree(self, node: Node) -> "LabeledTree":
        """The subtree rooted at *node*, re-rooted at ()."""
        k = len(node)
        return LabeledTree(
            {
                n[k:]: lab
                for n, lab in self.labels.items()
                if n[:k] == node
            }
        )

    def path_between(self, a: Node, b: Node) -> List[Node]:
        """The unique shortest path between two nodes (inclusive)."""
        k = 0
        while k < min(len(a), len(b)) and a[k] == b[k]:
            k += 1
        lca = a[:k]
        up = [a[:i] for i in range(len(a), k, -1)]
        down = [b[:i] for i in range(k, len(b) + 1)]
        return up + down

    def relabel(self, f: Callable[[Node, object], object]) -> "LabeledTree":
        """A structurally identical tree with labels mapped by *f*."""
        return LabeledTree({n: f(n, lab) for n, lab in self.labels.items()})

    # -- construction ------------------------------------------------------

    @classmethod
    def single(cls, label: object) -> "LabeledTree":
        """A one-node tree."""
        return cls({(): label})

    def attach(self, node: Node, subtree: "LabeledTree") -> "LabeledTree":
        """Attach *subtree* as a fresh child of *node*."""
        if node not in self.labels:
            raise ValueError(f"no such node: {node}")
        index = len(self.children(node)) + 1
        labels = dict(self.labels)
        for n, lab in subtree.labels.items():
            labels[node + (index,) + n] = lab
        return LabeledTree(labels)

    def __len__(self) -> int:
        return len(self.labels)

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes())

    def __contains__(self, node: Node) -> bool:
        return node in self.labels
