"""C-trees and their Γ_{S,l} encodings (Definitions 2/9, Lemmas 22 and 41).

A database ``D`` is a *C-tree* for ``C ⊆ D`` if it has a tree decomposition
whose root bag induces exactly ``C`` and which is guarded except for the
root: ``C`` is the cyclic core, the rest of ``D`` hangs off it tree-like.
Proposition 21 makes these the witness class for guarded OMQ containment.

This module provides:

* a GYO-style constructor that *finds* a witnessing decomposition when one
  exists (join-tree construction over the atom hypergraph, rooted at the
  core bag),
* the Γ_{S,l} alphabet and the encoding of a C-tree into a labeled tree
  using core names ``c0..c(l-1)`` and 2·ar(S) transient names,
* the five consistency conditions on labeled trees, and
* the decoding ``⟦t⟧`` of a consistent tree back into a C-tree database
  whose elements are the a-connectivity classes ``[v]_a`` (Lemma 41).

Encoding then decoding yields an isomorphic database (tested), which is the
content of Lemma 22's bridge between databases and trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.schema import Schema
from ..core.terms import Constant, Term
from .decomposition import TreeDecomposition, decomposition_from_bags
from .labeled_tree import LabeledTree, Node


# ---------------------------------------------------------------------------
# Finding a witnessing decomposition (GYO / join-tree construction)
# ---------------------------------------------------------------------------


def try_build_ctree_decomposition(
    database: Instance, core: Instance
) -> Optional[TreeDecomposition]:
    """A decomposition witnessing that *database* is a *core*-tree, or None.

    Runs the GYO ear-removal algorithm on the hypergraph whose hyperedges
    are the argument sets of the non-core atoms, with the core's domain as
    an always-present root edge.  Succeeds iff such a witness exists for
    bags chosen among atom argument sets (the natural witness shape; a
    database whose tree part needs bags spanning several atoms is not
    guarded-tree-like anyway).
    """
    if not core.atoms <= database.atoms:
        return None
    core_domain = frozenset(core.domain())
    rest = sorted(
        (a for a in database.atoms if a not in core.atoms), key=str
    )
    # Hyperedges: one per remaining atom (dedup by argument set keeps all
    # atoms since distinct atoms may share arg sets; bags may repeat).
    edges: List[FrozenSet[Term]] = [frozenset(a.args) for a in rest]
    # Every core atom must be induced by the root bag.
    for a in core.atoms:
        if not set(a.args) <= core_domain:  # pragma: no cover - defensive
            return None
    # Non-core atoms over core domain only can live in the root too — but
    # then they belong to C by Definition 2 (the root induces exactly C).
    for a in rest:
        if set(a.args) <= core_domain:
            return None

    remaining = list(range(len(edges)))
    parent_of: Dict[int, Optional[int]] = {}
    changed = True
    while remaining and changed:
        changed = False
        for i in list(remaining):
            others: Set[Term] = set(core_domain)
            for j in remaining:
                if j != i:
                    others |= edges[j]
            boundary = edges[i] & others
            host: Optional[int] = None
            if boundary <= core_domain:
                host = -1  # attach under the root
            else:
                # An ear: everything i shares with the rest sits inside one
                # other bag, which becomes its parent (term connectivity
                # then holds along the parent edge).
                for j in remaining:
                    if j != i and boundary <= edges[j]:
                        host = j
                        break
            if host is not None:
                parent_of[i] = None if host == -1 else host
                remaining.remove(i)
                changed = True
    if remaining:
        return None

    # Assemble the rooted tree: root bag = core domain, children per edge.
    bags: Dict[Node, FrozenSet[Term]] = {(): core_domain}
    node_of: Dict[int, Node] = {}
    children_count: Dict[Node, int] = {(): 0}

    def place(i: int) -> Node:
        if i in node_of:
            return node_of[i]
        p = parent_of[i]
        parent_node = () if p is None else place(p)
        children_count.setdefault(parent_node, 0)
        children_count[parent_node] += 1
        node = parent_node + (children_count[parent_node],)
        node_of[i] = node
        bags[node] = edges[i]
        children_count[node] = 0
        return node

    for i in sorted(parent_of):
        place(i)
    decomposition = decomposition_from_bags(bags)
    if not decomposition.is_valid_for(database):
        return None
    if not decomposition.is_guarded_except(database, exempt=[()]):
        return None
    if decomposition.induced_instance(database, ()) != core:
        return None
    return decomposition


def is_ctree(database: Instance, core: Instance) -> bool:
    """True iff *database* is a *core*-tree witnessed by an atom-bag decomposition."""
    return try_build_ctree_decomposition(database, core) is not None


# ---------------------------------------------------------------------------
# The Γ_{S,l} alphabet
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TreeLabel:
    """One symbol set ρ ∈ Γ_{S,l} = 2^{K_{S,l}}.

    ``names`` are the D_a flags, ``core_names`` the C_a flags, and ``atoms``
    the R_ā flags (predicate plus name tuple).
    """

    names: FrozenSet[str]
    core_names: FrozenSet[str]
    atoms: FrozenSet[Tuple[str, Tuple[str, ...]]]

    def __post_init__(self) -> None:
        object.__setattr__(self, "names", frozenset(self.names))
        object.__setattr__(self, "core_names", frozenset(self.core_names))
        object.__setattr__(self, "atoms", frozenset(self.atoms))

    def __str__(self) -> str:
        atoms = ", ".join(
            f"{p}({', '.join(args)})" for p, args in sorted(self.atoms)
        )
        return f"⟨names={sorted(self.names)}, core={sorted(self.core_names)}, atoms=[{atoms}]⟩"


@dataclass(frozen=True)
class Alphabet:
    """The parameters of Γ_{S,l}: core names C_l and transient names T_S."""

    schema: Schema
    core_size: int

    @property
    def core_names(self) -> Tuple[str, ...]:
        return tuple(f"c{i}" for i in range(self.core_size))

    @property
    def transient_names(self) -> Tuple[str, ...]:
        return tuple(f"t{i}" for i in range(2 * self.schema.max_arity))

    @property
    def all_names(self) -> Tuple[str, ...]:
        return self.core_names + self.transient_names

    def symbol_count(self) -> int:
        """|K_{S,l}|: the number of unary relations in the label schema."""
        total = len(self.all_names) + len(self.core_names)
        n = len(self.all_names)
        for p in self.schema.predicates():
            total += n ** self.schema.arity(p)
        return total


# ---------------------------------------------------------------------------
# Consistency (the five conditions before Lemma 41)
# ---------------------------------------------------------------------------


def _label(tree: LabeledTree, node: Node) -> TreeLabel:
    label = tree.label(node)
    if not isinstance(label, TreeLabel):
        raise TypeError(f"node {node} is not labeled with a TreeLabel")
    return label


def consistency_violations(
    tree: LabeledTree, alphabet: Alphabet
) -> List[str]:
    """Human-readable violations of the five consistency conditions."""
    violations: List[str] = []
    core_set = set(alphabet.core_names)
    all_names = set(alphabet.all_names)
    arity = alphabet.schema.max_arity
    for node in tree.nodes():
        rho = _label(tree, node)
        limit = alphabet.core_size if node == () else arity
        # (1) name budget; root uses only core names.
        if len(rho.names) > limit:
            violations.append(f"(1) node {node} holds {len(rho.names)} names > {limit}")
        if node == () and not rho.names <= core_set:
            violations.append(f"(1) root holds non-core names {rho.names - core_set}")
        if not rho.names <= all_names:
            violations.append(f"(1) node {node} uses unknown names")
        # (2) atoms only over present names.
        for p, args in rho.atoms:
            if not set(args) <= rho.names:
                violations.append(f"(2) node {node}: atom {p}{args} uses absent names")
            if alphabet.schema.arity(p) != len(args):
                violations.append(f"(2) node {node}: atom {p}{args} has wrong arity")
        # (3) core names are flagged as core everywhere they occur.
        for a in rho.names & core_set:
            if a not in rho.core_names:
                violations.append(f"(3) node {node}: core name {a} lacks C-flag")
        for a in rho.core_names:
            if a not in rho.names:
                violations.append(f"(3) node {node}: C-flag without D-flag for {a}")
            if a not in core_set:
                violations.append(f"(3) node {node}: C-flag on transient name {a}")
        # (4) core names persist on the path to the root.
        if node != ():
            parent = tree.parent(node)
            parent_rho = _label(tree, parent)
            for a in rho.core_names:
                if a not in parent_rho.core_names:
                    violations.append(
                        f"(4) node {node}: core name {a} absent from parent"
                    )
    # (5) every non-root node is guarded by some connected atom.
    for node in tree.nodes():
        if node == ():
            continue
        rho = _label(tree, node)
        if not rho.names:
            continue
        if not _find_guard(tree, node, rho):
            violations.append(f"(5) node {node} has no guard for {sorted(rho.names)}")
    return violations


def _find_guard(tree: LabeledTree, node: Node, rho: TreeLabel) -> bool:
    """Is there an atom R_ā at a node w with names(v) ⊆ ā, b-connected for all b?"""
    for w in tree.nodes():
        w_rho = _label(tree, w)
        for p, args in w_rho.atoms:
            if not rho.names <= set(args):
                continue
            path = tree.path_between(node, w)
            if all(
                all(b in _label(tree, u).names for u in path)
                for b in rho.names
            ):
                return True
    return False


def is_consistent(tree: LabeledTree, alphabet: Alphabet) -> bool:
    """True iff the labeled tree satisfies all five consistency conditions."""
    return not consistency_violations(tree, alphabet)


# ---------------------------------------------------------------------------
# Encoding a C-tree into a consistent labeled tree
# ---------------------------------------------------------------------------


def encode_ctree(
    database: Instance,
    core: Instance,
    decomposition: Optional[TreeDecomposition] = None,
) -> Tuple[LabeledTree, Alphabet]:
    """Encode a C-tree database into a Γ_{S,l}-labeled tree.

    Returns the tree together with the alphabet parameters.  Raises
    ValueError if no witnessing decomposition can be found.
    """
    if decomposition is None:
        decomposition = try_build_ctree_decomposition(database, core)
        if decomposition is None:
            raise ValueError("database is not a C-tree for the given core")
    schema = database.schema() if len(database) else core.schema()
    alphabet = Alphabet(schema, core_size=len(core.domain()))

    core_elements = sorted(core.domain(), key=str)
    name_of_core = {
        e: alphabet.core_names[i] for i, e in enumerate(core_elements)
    }
    assignment: Dict[Node, Dict[Term, str]] = {}

    labels: Dict[Node, TreeLabel] = {}
    for node in decomposition.tree.nodes():
        bag = decomposition.bag(node)
        parent = decomposition.tree.parent(node)
        mapping: Dict[Term, str] = {}
        used: Set[str] = set()
        parent_map = assignment.get(parent, {}) if parent is not None else {}
        for e in sorted(bag, key=str):
            if e in name_of_core:
                mapping[e] = name_of_core[e]
            elif e in parent_map:
                mapping[e] = parent_map[e]
            used.add(mapping.get(e, ""))
        # Fresh transient names for new elements: avoid names used in this
        # bag and in the parent's bag (neighboring-bag distinctness).
        forbidden = set(mapping.values()) | set(parent_map.values())
        pool = [n for n in alphabet.transient_names if n not in forbidden]
        for e in sorted(bag, key=str):
            if e not in mapping:
                if not pool:  # pragma: no cover - 2·ar names always suffice
                    raise ValueError("ran out of transient names")
                mapping[e] = pool.pop(0)
        assignment[node] = mapping
        induced = decomposition.induced_instance(database, node)
        atoms = frozenset(
            (a.predicate, tuple(mapping[t] for t in a.args))
            for a in induced.atoms
        )
        names = frozenset(mapping.values())
        core_flags = frozenset(
            mapping[e] for e in bag if e in name_of_core
        )
        labels[node] = TreeLabel(names, core_flags, atoms)
    return LabeledTree(labels), alphabet


# ---------------------------------------------------------------------------
# Decoding a consistent labeled tree (Lemma 41)
# ---------------------------------------------------------------------------


def decode_tree(
    tree: LabeledTree, alphabet: Alphabet, prefix: str = "e"
) -> Tuple[Instance, Instance]:
    """``⟦t⟧``: decode a consistent tree into (database, core).

    Elements are the a-connectivity equivalence classes ``[v]_a``; each is
    rendered as a fresh constant.  The core is the sub-instance induced by
    the root's elements.
    """
    violations = consistency_violations(tree, alphabet)
    if violations:
        raise ValueError(f"tree is not consistent: {violations[0]}")

    # Union-find over (node, name) occurrences; adjacent nodes sharing a
    # name refer to the same element.
    parent: Dict[Tuple[Node, str], Tuple[Node, str]] = {}

    def find(k: Tuple[Node, str]) -> Tuple[Node, str]:
        parent.setdefault(k, k)
        root = k
        while parent[root] != root:
            root = parent[root]
        while parent[k] != root:
            parent[k], k = root, parent[k]
        return root

    def union(a: Tuple[Node, str], b: Tuple[Node, str]) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb, key=str)] = min(ra, rb, key=str)

    for node in tree.nodes():
        rho = _label(tree, node)
        for a in rho.names:
            find((node, a))
        p = tree.parent(node)
        if p is not None:
            p_rho = _label(tree, p)
            for a in rho.names & p_rho.names:
                union((node, a), (p, a))

    representatives = sorted({find(k) for k in parent}, key=str)
    constant_of = {
        rep: Constant(f"{prefix}{i}") for i, rep in enumerate(representatives)
    }

    atoms: Set[Atom] = set()
    for node in tree.nodes():
        rho = _label(tree, node)
        for p, args in rho.atoms:
            atoms.add(
                Atom(p, tuple(constant_of[find((node, a))] for a in args))
            )
    database = Instance.of(atoms)
    root_rho = _label(tree, ()) if () in tree else None
    if root_rho is None:
        return database, Instance.empty()
    root_elements = {constant_of[find(((), a))] for a in root_rho.names}
    core = database.induced_by(root_elements)
    return database, core
