"""Cost-based join-order planning for the homomorphism kernel.

The pre-planner kernel ordered body atoms greedily by *syntax*: fewest
unbound variables first, ties by atom string.  That is cardinality-blind —
a binary atom over a 100k-fact relation beats a 4-ary atom over a 10-fact
relation, and the search then scans the big relation unfiltered.  This
module replaces that ordering with a classic greedy cost-based planner
driven by the live per-(predicate, position) statistics every view
maintains (:meth:`pred_count` / :meth:`distinct_count`):

* the **estimated candidate count** of an atom under a set of bound slots
  is ``count(pred)`` if no position is bound, else the minimum over bound
  positions ``p`` of ``count(pred) / distinct(pred, p)`` — the average
  positional-index bucket size, i.e. what the search's index-driven
  candidate selection will actually scan;
* the plan repeatedly picks the atom with the smallest estimate, then
  marks its slots bound and re-estimates the rest.

Enumeration-order contract
--------------------------
Planning changes the order in which homomorphisms are *enumerated* (the
answer set is order-independent), so the kernel's tie-break is re-pinned
here, once: atoms are ordered by ``(estimated candidates, number of
unbound slots, atom string key)``.  Every component is a deterministic
function of the body and the target's statistics, so enumeration order is
reproducible run-to-run and process-to-process; consumers that need a
*specific* order (the chase) sort the results themselves.

Plans are cached per ``(compiled body, bound-slot set, statistics
fingerprint)`` in a bounded LRU with hit/miss/evict counters
(``kernel.plan.*``).  The fingerprint buckets each statistic by bit
length, so a plan is only re-derived when a relevant cardinality changes
by ~2x — repeated batch jobs over a stable target hit the cache every
time, which is exactly what the CI perf-profile guard asserts.

:func:`use_planner` switches the process default between ``"cost"`` and
``"greedy"`` (the seed ordering, kept as the benchmark baseline and the
parity-test reference).
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from threading import RLock
from typing import Dict, FrozenSet, Iterator, Tuple

from ..engine.registry import register_cache
from .. import obs
from .metrics import KERNEL_METRICS

#: Plan modes.
COST = "cost"
GREEDY = "greedy"

_MODES = (COST, GREEDY)

_default_planner = COST


def default_planner() -> str:
    """The process-wide default plan mode (``"cost"`` unless overridden)."""
    return _default_planner


def set_default_planner(mode: str) -> str:
    """Set the default plan mode; returns the previous one."""
    global _default_planner
    if mode not in _MODES:
        raise ValueError(f"unknown planner {mode!r}; choose from {_MODES}")
    previous = _default_planner
    _default_planner = mode
    return previous


@contextmanager
def use_planner(mode: str) -> Iterator[None]:
    """Context manager: run with *mode* as the default plan mode."""
    previous = set_default_planner(mode)
    try:
        yield
    finally:
        set_default_planner(previous)


class PlanCache:
    """A bounded LRU of computed join orders with hit/miss/evict metrics."""

    def __init__(self, capacity: int = 8192) -> None:
        self.capacity = capacity
        self._plans: "OrderedDict[Tuple, Tuple[int, ...]]" = OrderedDict()
        self._lock = RLock()
        self._hits = KERNEL_METRICS.counter("kernel.plan.hits")
        self._misses = KERNEL_METRICS.counter("kernel.plan.misses")
        self._evictions = KERNEL_METRICS.counter("kernel.plan.evictions")

    def get(self, key: Tuple) -> Tuple[int, ...]:
        with self._lock:
            order = self._plans.get(key)
            if order is not None:
                self._plans.move_to_end(key)
        # Hit/miss counters are incremented by the caller via the search's
        # batched flush, so the registry lock stays off the per-call path.
        return order

    def put(self, key: Tuple, order: Tuple[int, ...]) -> None:
        with self._lock:
            self._plans[key] = order
            if len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self._evictions.inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()


#: The process-wide plan cache (registered with ``repro.clear_caches``).
PLANS = PlanCache()

register_cache("kernel.plan", PLANS.clear)


def _estimate(view, pid: int, codes: Tuple[int, ...], bound) -> float:
    """Estimated candidates the search will scan for this atom.

    *bound* holds the slot indexes already bound by earlier atoms in the
    plan; constant positions (negative codes) are always bound.
    """
    n = view.pred_count(pid)
    if n == 0:
        return 0.0
    best = float(n)
    for pos, code in enumerate(codes):
        if code >= 0 and code not in bound:
            continue
        d = view.distinct_count(pid, pos)
        if d:
            est = n / d
            if est < best:
                best = est
    return best


def cost_order(search, view, bound_slots: FrozenSet[int]) -> Tuple[int, ...]:
    """The cost-based greedy join order for *search* against *view*.

    Deterministic tie-break (the kernel's pinned enumeration contract):
    ``(estimated candidates, unbound slot count, atom string key)``.
    """
    codes = search.codes
    pred_ids = search.pred_ids
    strs = search._strs
    n_atoms = len(codes)
    bound = set(bound_slots)
    remaining = list(range(n_atoms))
    ordered = []
    while remaining:
        best = None
        best_key = None
        for i in remaining:
            unbound = len(
                {c for c in codes[i] if c >= 0 and c not in bound}
            )
            key = (_estimate(view, pred_ids[i], codes[i], bound), unbound, strs[i])
            if best_key is None or key < best_key:
                best, best_key = i, key
        remaining.remove(best)
        ordered.append(best)
        bound.update(c for c in codes[best] if c >= 0)
    return tuple(ordered)


def greedy_order(search, bound_slots: FrozenSet[int]) -> Tuple[int, ...]:
    """The seed kernel's ordering: fewest unbound slots, ties by atom string.

    Kept verbatim as the benchmark baseline and the parity-suite
    reference; it is a pure function of (body, bound set), so it is cached
    on the compiled search itself.
    """
    codes = search.codes
    strs = search._strs
    remaining = sorted(range(len(codes)), key=lambda i: strs[i])
    bound = set(bound_slots)
    ordered = []
    while remaining:
        best = min(
            remaining,
            key=lambda i: (
                len({c for c in codes[i] if c >= 0 and c not in bound}),
                strs[i],
            ),
        )
        remaining.remove(best)
        ordered.append(best)
        bound.update(c for c in codes[best] if c >= 0)
    return tuple(ordered)


def _fingerprint(search, view) -> Tuple:
    """Bit-length-bucketed statistics signature of *view* for this body.

    Two views whose relevant cardinalities agree to within a factor of ~2
    fingerprint identically, so plans survive instance growth between
    rounds while still re-deriving when the size regime shifts.
    """
    out = []
    for i, pid in enumerate(search.pred_ids):
        out.append(
            (
                view.pred_count(pid).bit_length(),
                tuple(
                    view.distinct_count(pid, pos).bit_length()
                    for pos in range(len(search.codes[i]))
                ),
            )
        )
    return tuple(out)


_TRIVIAL_ORDERS = ((), (0,))


def order_for(
    search, view, bound_slots: FrozenSet[int], mode: str
) -> Tuple[Tuple[int, ...], bool]:
    """The join order for one search call: ``(order, cache_hit)``.

    Bodies with at most one atom have exactly one order — no statistics,
    no fingerprint, no cache traffic (they count as hits: compile-free).
    This matters: single-atom rule bodies dominate linear-ontology chases,
    and per-call fingerprinting there is pure overhead.

    ``"greedy"`` plans are pure functions of (body, bound set) and live on
    the compiled search; ``"cost"`` plans additionally depend on the
    view's statistics fingerprint and live in the process-wide
    :data:`PLANS` LRU.
    """
    n_atoms = len(search.codes)
    if n_atoms <= 1:
        return _TRIVIAL_ORDERS[n_atoms], True
    if mode == GREEDY:
        cached = search._orders.get(bound_slots)
        if cached is not None:
            return cached, True
        order = greedy_order(search, bound_slots)
        search._orders[bound_slots] = order
        return order, False
    key = (search.plan_key, tuple(sorted(bound_slots)), _fingerprint(search, view))
    order = PLANS.get(key)
    if order is not None:
        return order, True
    with obs.span("kernel.plan.compile", atoms=len(search.codes)):
        order = cost_order(search, view, bound_slots)
    PLANS.put(key, order)
    return order, False


def plan_cache_stats() -> Dict[str, int]:
    """Live plan-cache size (counters live in ``KERNEL_METRICS``)."""
    return {"size": len(PLANS), "capacity": PLANS.capacity}
