"""The indexed backtracking homomorphism search.

This is the paper's single semantic primitive (CQ evaluation, Chandra–
Merlin containment, chase applicability, the small-witness test) compiled
into one engine.  Compared with the pre-kernel search in
``core/homomorphism.py`` it adds, without changing the answer set or the
deterministic enumeration order:

* **compiled sources** — a :class:`HomSearch` is built once per body
  (atom-string sort keys precomputed, greedy join orders memoized per
  bound-variable set) and reused across targets; :func:`compiled_search`
  memoizes compilation per body tuple, so the chase and repeated CQ
  evaluation never re-derive the plan;
* **positional candidate selection** — when a source atom has a bound
  position (a constant, or a term the partial assignment already maps),
  candidates come from the target's (predicate, position, term) index
  instead of the whole predicate column; the most selective bound position
  wins.  Filtering a candidate list a priori visits the same successful
  candidates in the same relative order as filtering inside the match
  loop, which is why enumeration order is preserved;
* **windows** — per-source-atom ``(lo, hi)`` sequence ranges against a
  :class:`~repro.kernel.instance.WorkingInstance`, the primitive under
  semi-naive (delta) trigger discovery;
* **instrumentation** — candidates scanned / matches / backtracks are
  accumulated locally and flushed to :data:`~repro.kernel.metrics.KERNEL_METRICS`
  once per search (also when a caller abandons the generator early).
"""

from __future__ import annotations

from functools import lru_cache
from time import perf_counter
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.atoms import Atom
from ..core.terms import Null, Term, Variable
from ..engine.registry import register_cache
from .. import obs
from .instance import view_of
from .metrics import flush_search_counts

#: A per-source-atom sequence window; ``None`` means unconstrained.
Ranges = Optional[Sequence[Tuple[int, Optional[int]]]]


def is_mappable(term: Term) -> bool:
    """Variables and nulls are mapped by a homomorphism; constants are fixed."""
    return isinstance(term, (Variable, Null))


@lru_cache(maxsize=65_536)
def atom_str(a: Atom) -> str:
    """``str(a)``, memoized — the deterministic tie-break key used by join
    ordering, the chase's trigger sort, and XRewrite's subset enumeration."""
    return str(a)


class HomSearch:
    """A compiled homomorphism search for a fixed tuple of source atoms."""

    __slots__ = ("source", "_strs", "_orders")

    def __init__(self, source: Sequence[Atom]) -> None:
        self.source: Tuple[Atom, ...] = tuple(source)
        # Precomputed once: the string sort keys (the pre-kernel code
        # recomputed str(a) inside a min() key on every comparison).
        self._strs: Tuple[str, ...] = tuple(atom_str(a) for a in self.source)
        self._orders: Dict[FrozenSet[Term], Tuple[int, ...]] = {}

    # -- join ordering ----------------------------------------------------

    def order(self, bound: Iterable[Term]) -> Tuple[int, ...]:
        """Greedy join order (indexes into ``source``) for a bound-term set.

        Same strategy as the classic search: repeatedly pick the atom with
        the fewest unbound mappable terms, ties broken by the atom's string
        form; memoized per bound set since the order is a pure function of
        it.
        """
        key = frozenset(t for t in bound if is_mappable(t))
        cached = self._orders.get(key)
        if cached is not None:
            return cached
        remaining = sorted(range(len(self.source)), key=lambda i: self._strs[i])
        bound_terms = set(key)
        ordered: List[int] = []
        while remaining:
            best = min(
                remaining,
                key=lambda i: (
                    sum(
                        1
                        for t in set(self.source[i].args)
                        if is_mappable(t) and t not in bound_terms
                    ),
                    self._strs[i],
                ),
            )
            remaining.remove(best)
            ordered.append(best)
            bound_terms.update(
                t for t in self.source[best].args if is_mappable(t)
            )
        result = tuple(ordered)
        self._orders[key] = result
        return result

    # -- the search -------------------------------------------------------

    def search(
        self,
        target,
        fixed: Optional[Mapping[Term, Term]] = None,
        *,
        limit: Optional[int] = None,
        ranges: Ranges = None,
    ) -> Iterator[Dict[Term, Term]]:
        """Yield every homomorphism of ``source`` into *target*.

        *fixed* pre-binds source terms.  *limit* restricts every candidate
        to sequence numbers below it (a :class:`WorkingInstance` watermark:
        "the instance as of mark m").  *ranges*, aligned with ``source``,
        gives each source atom its own ``(lo, hi)`` window — the delta
        chase's semi-naive pivots.  Windows other than the full index
        require a WorkingInstance target.
        """
        initial: Dict[Term, Term] = dict(fixed) if fixed else {}
        view = view_of(target)
        order = self.order(initial.keys())
        source = self.source
        n = len(order)
        # Per-search instrumentation, flushed once (see finally below).
        counts = [0, 0, 0]  # candidates, matches, backtracks

        def window_for(src_index: int, assignment: Dict[Term, Term]):
            src = source[src_index]
            if ranges is not None:
                lo, hi = ranges[src_index]
            else:
                lo, hi = 0, None
            if limit is not None:
                hi = limit if hi is None else min(hi, limit)
            # Most selective bound position, if any.
            best = None
            best_size = None
            for pos, t in enumerate(src.args):
                if is_mappable(t):
                    value = assignment.get(t)
                    if value is None:
                        continue
                else:
                    value = t
                w = view.pos_candidates(src.predicate, pos, value, lo, hi)
                if w is None:
                    return None  # value never occurs there: no candidates
                size = w[2] - w[1]
                if best_size is None or size < best_size:
                    best, best_size = w, size
                    if size == 0:
                        return best
            if best is not None:
                return best
            return view.pred_candidates(src.predicate, lo, hi)

        def extend(k: int, assignment: Dict[Term, Term]):
            if k == n:
                yield dict(assignment)
                return
            src_index = order[k]
            src = source[src_index]
            window = window_for(src_index, assignment)
            produced = False
            if window is not None:
                atoms, start, end = window
                src_args = src.args
                arity = len(src_args)
                counts[0] += end - start
                for ci in range(start, end):
                    candidate = atoms[ci]
                    if len(candidate.args) != arity:
                        continue
                    # Inlined atom match: extend assignment or skip.
                    extension = None
                    for s, t in zip(src_args, candidate.args):
                        if is_mappable(s):
                            if extension is None:
                                current = assignment.get(s)
                            else:
                                current = extension.get(s)
                            if current is None:
                                if extension is None:
                                    extension = dict(assignment)
                                extension[s] = t
                            elif current != t:
                                extension = False
                                break
                        elif s != t:
                            extension = False
                            break
                    if extension is False:
                        continue
                    counts[1] += 1
                    produced = True
                    yield from extend(
                        k + 1, assignment if extension is None else extension
                    )
            if not produced:
                counts[2] += 1

        # Trace rollup is per-search and sampled by is_active(): with no
        # open span this costs one bool test, and the per-candidate inner
        # loop above is never touched either way.
        timed = obs.is_active()
        if timed:
            t0 = perf_counter()
        try:
            yield from extend(0, initial)
        finally:
            if timed:
                obs.add("hom.seconds", perf_counter() - t0)
            flush_search_counts(1, counts[0], counts[1], counts[2])

    def find(
        self,
        target,
        fixed: Optional[Mapping[Term, Term]] = None,
        *,
        limit: Optional[int] = None,
        ranges: Ranges = None,
    ) -> Optional[Dict[Term, Term]]:
        """The first homomorphism, or None."""
        return next(self.search(target, fixed, limit=limit, ranges=ranges), None)


@lru_cache(maxsize=4096)
def compiled_search(source: Tuple[Atom, ...]) -> HomSearch:
    """The memoized compiled search for a body tuple.

    Chase rules, CQ bodies, and tgd heads recur across thousands of
    searches; compiling once per distinct tuple makes the join-order cache
    and the precomputed sort keys shared state.
    """
    return HomSearch(source)


register_cache("kernel.compiled_search", compiled_search.cache_clear)
register_cache("kernel.atom_str", atom_str.cache_clear)


# ---------------------------------------------------------------------------
# Module-level conveniences (the shim in core/homomorphism.py calls these)
# ---------------------------------------------------------------------------


def homomorphisms(
    source: Sequence[Atom],
    target,
    fixed: Optional[Mapping[Term, Term]] = None,
    *,
    limit: Optional[int] = None,
) -> Iterator[Dict[Term, Term]]:
    """Yield every homomorphism from *source* into *target*."""
    return compiled_search(tuple(source)).search(target, fixed, limit=limit)


def find_homomorphism(
    source: Sequence[Atom],
    target,
    fixed: Optional[Mapping[Term, Term]] = None,
    *,
    limit: Optional[int] = None,
) -> Optional[Dict[Term, Term]]:
    """The first homomorphism from *source* into *target*, or None."""
    return compiled_search(tuple(source)).find(target, fixed, limit=limit)


def has_homomorphism(
    source: Sequence[Atom],
    target,
    fixed: Optional[Mapping[Term, Term]] = None,
    *,
    limit: Optional[int] = None,
) -> bool:
    """True iff some homomorphism from *source* into *target* exists."""
    return find_homomorphism(source, target, fixed, limit=limit) is not None
