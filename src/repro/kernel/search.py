"""The interned, planned backtracking homomorphism search.

This is the paper's single semantic primitive (CQ evaluation, Chandra–
Merlin containment, chase applicability, the small-witness test) compiled
into one engine.  Compared with the pre-kernel search in
``core/homomorphism.py`` it adds, without changing the answer set:

* **interned compilation** — a :class:`HomSearch` is compiled once per
  body into integer codes against the process intern table
  (:mod:`repro.kernel.intern`): each source atom becomes a predicate id
  plus a tuple of argument codes, where ``code >= 0`` is a *slot* (a
  mappable variable/null, numbered by first occurrence across the body)
  and ``code < 0`` encodes a fixed constant (``-term_id - 1``).  The
  match loop then compares machine ints against the target's int-tuple
  facts, and the partial assignment is a flat slot array with an undo
  trail instead of per-candidate dict copies;
* **cost-based join orders** — the per-call atom order comes from the
  planner (:mod:`repro.kernel.plan`): estimated candidate counts from the
  target's live cardinality statistics, cached per (body, bound set,
  stats fingerprint), with the seed's greedy ordering kept behind
  ``planner="greedy"`` as the baseline.  Enumeration order follows the
  plan (see the contract pinned in :mod:`repro.kernel.plan`); within an
  atom, candidates are always visited in the target's deterministic index
  order;
* **positional candidate selection** — when a source atom has a bound
  position (a constant, or a slot the partial assignment already binds),
  candidates come from the target's (predicate, position, term) index
  instead of the whole predicate column; the most selective bound position
  wins at runtime;
* **windows** — per-source-atom ``(lo, hi)`` sequence ranges against a
  :class:`~repro.kernel.instance.WorkingInstance`, the primitive under
  semi-naive (delta) trigger discovery;
* **instrumentation** — candidates scanned / matches / backtracks and
  plan-cache hits/misses are accumulated locally and flushed to
  :data:`~repro.kernel.metrics.KERNEL_METRICS` once per search (also when
  a caller abandons the generator early).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import count as _counter
from time import perf_counter
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.atoms import Atom
from ..core.terms import Null, Term, Variable
from ..engine.registry import register_cache
from .. import obs
from .instance import view_of
from .intern import INTERN
from .metrics import flush_search_counts
from . import plan as _plan

#: A per-source-atom sequence window; ``None`` means unconstrained.
Ranges = Optional[Sequence[Tuple[int, Optional[int]]]]

#: Monotonic source of plan-cache keys: every (re)compile gets a fresh
#: one, so plans for a stale compilation are simply never hit again.
_PLAN_KEYS = _counter()


def is_mappable(term: Term) -> bool:
    """Variables and nulls are mapped by a homomorphism; constants are fixed."""
    return isinstance(term, (Variable, Null))


@lru_cache(maxsize=65_536)
def atom_str(a: Atom) -> str:
    """``str(a)``, memoized — the deterministic tie-break key used by join
    ordering, the chase's trigger sort, and XRewrite's subset enumeration."""
    return str(a)


class HomSearch:
    """A compiled homomorphism search for a fixed tuple of source atoms."""

    __slots__ = (
        "source",
        "_strs",
        "_orders",
        "_gen",
        "pred_ids",
        "codes",
        "slot_terms",
        "slot_of",
        "plan_key",
    )

    def __init__(self, source: Sequence[Atom]) -> None:
        self.source: Tuple[Atom, ...] = tuple(source)
        # Precomputed once: the string sort keys (the pre-kernel code
        # recomputed str(a) inside a min() key on every comparison).
        self._strs: Tuple[str, ...] = tuple(atom_str(a) for a in self.source)
        self._gen = -1
        self._compile()

    # -- compilation -------------------------------------------------------

    def _compile(self) -> None:
        """Intern the body against the current table generation."""
        slot_of: Dict[Term, int] = {}
        pred_ids = []
        codes = []
        for a in self.source:
            pred_ids.append(INTERN.pred_id(a.predicate))
            atom_codes = []
            for t in a.args:
                if is_mappable(t):
                    s = slot_of.get(t)
                    if s is None:
                        s = slot_of[t] = len(slot_of)
                    atom_codes.append(s)
                else:
                    atom_codes.append(-INTERN.term_id(t) - 1)
            codes.append(tuple(atom_codes))
        self.pred_ids: Tuple[int, ...] = tuple(pred_ids)
        self.codes: Tuple[Tuple[int, ...], ...] = tuple(codes)
        self.slot_of = slot_of
        self.slot_terms: Tuple[Term, ...] = tuple(slot_of)
        self._orders: Dict[FrozenSet[int], Tuple[int, ...]] = {}
        self.plan_key = next(_PLAN_KEYS)
        self._gen = INTERN.generation

    def ensure_compiled(self) -> None:
        """Recompile if the intern table was cleared since the last compile."""
        if self._gen != INTERN.generation:
            self._compile()

    # -- join ordering ----------------------------------------------------

    def order(self, bound: Iterable[Term]) -> Tuple[int, ...]:
        """The seed greedy join order (indexes into ``source``).

        Kept as the stats-free baseline: repeatedly pick the atom with the
        fewest unbound mappable terms, ties broken by the atom's string
        form; memoized per bound set since the order is a pure function of
        it.  The cost-based planner supersedes this on the search path.
        """
        self.ensure_compiled()
        key = frozenset(
            s for t, s in self.slot_of.items() if t in set(bound)
        )
        order, _ = _plan.order_for(self, None, key, _plan.GREEDY)
        return order

    # -- the search -------------------------------------------------------

    def search(
        self,
        target,
        fixed: Optional[Mapping[Term, Term]] = None,
        *,
        limit: Optional[int] = None,
        ranges: Ranges = None,
        planner: Optional[str] = None,
    ) -> Iterator[Dict[Term, Term]]:
        """Yield every homomorphism of ``source`` into *target*.

        *fixed* pre-binds source terms (bindings for terms not in the body
        pass through to every yielded assignment unchanged, matching the
        pre-interned behaviour).  *limit* restricts every candidate to
        sequence numbers below it (a :class:`WorkingInstance` watermark:
        "the instance as of mark m").  *ranges*, aligned with ``source``,
        gives each source atom its own ``(lo, hi)`` window — the delta
        chase's semi-naive pivots.  Windows other than the full index
        require a WorkingInstance target.  *planner* overrides the process
        default plan mode for this call (``"cost"`` or ``"greedy"``).
        """
        view = view_of(target)
        self.ensure_compiled()
        source_codes = self.codes
        pred_ids = self.pred_ids
        slot_terms = self.slot_terms
        n_slots = len(slot_terms)
        assign = [-1] * n_slots
        passthrough: Dict[Term, Term] = {}
        if fixed:
            slot_of = self.slot_of
            for k, v in fixed.items():
                s = slot_of.get(k)
                if s is None or not is_mappable(k):
                    passthrough[k] = v
                else:
                    assign[s] = INTERN.term_id(v)
        bound_key = frozenset(s for s in range(n_slots) if assign[s] >= 0)
        mode = planner or _plan.default_planner()
        order, plan_hit = _plan.order_for(self, view, bound_key, mode)
        n = len(order)
        term_of = INTERN.term
        # Per-search instrumentation, flushed once (see finally below).
        counts = [0, 0, 0]  # candidates, matches, backtracks

        def window_for(src_index: int):
            codes = source_codes[src_index]
            if ranges is not None:
                lo, hi = ranges[src_index]
            else:
                lo, hi = 0, None
            if limit is not None:
                hi = limit if hi is None else min(hi, limit)
            pid = pred_ids[src_index]
            # Most selective bound position, if any.
            best = None
            best_size = None
            for pos, code in enumerate(codes):
                if code >= 0:
                    tid = assign[code]
                    if tid < 0:
                        continue
                else:
                    tid = -code - 1
                w = view.pos_candidates(pid, pos, tid, lo, hi)
                if w is None:
                    return None  # value never occurs there: no candidates
                size = w[2] - w[1]
                if best_size is None or size < best_size:
                    best, best_size = w, size
                    if size == 0:
                        return best
            if best is not None:
                return best
            return view.pred_candidates(pid, lo, hi)

        def emit() -> Dict[Term, Term]:
            out = dict(passthrough)
            for s in range(n_slots):
                out[slot_terms[s]] = term_of(assign[s])
            return out

        def extend(k: int):
            if k == n:
                yield emit()
                return
            src_index = order[k]
            codes = source_codes[src_index]
            arity = len(codes)
            window = window_for(src_index)
            produced = False
            if window is not None:
                facts, start, end = window
                counts[0] += end - start
                for ci in range(start, end):
                    candidate = facts[ci]
                    if len(candidate) != arity:
                        continue
                    # Inlined interned match: bind slots or skip, undoing
                    # via the trail instead of copying the assignment.
                    trail = None
                    matched = True
                    for pos in range(arity):
                        code = codes[pos]
                        tid = candidate[pos]
                        if code >= 0:
                            current = assign[code]
                            if current < 0:
                                assign[code] = tid
                                if trail is None:
                                    trail = [code]
                                else:
                                    trail.append(code)
                            elif current != tid:
                                matched = False
                                break
                        elif code != -tid - 1:
                            matched = False
                            break
                    if matched:
                        counts[1] += 1
                        produced = True
                        yield from extend(k + 1)
                    if trail:
                        for s in trail:
                            assign[s] = -1
            if not produced:
                counts[2] += 1

        # Trace rollup is per-search and sampled by is_active(): with no
        # open span this costs one bool test, and the per-candidate inner
        # loop above is never touched either way.
        timed = obs.is_active()
        if timed:
            t0 = perf_counter()
        try:
            yield from extend(0)
        finally:
            if timed:
                obs.add("hom.seconds", perf_counter() - t0)
            flush_search_counts(
                1,
                counts[0],
                counts[1],
                counts[2],
                1 if plan_hit else 0,
                0 if plan_hit else 1,
            )

    def find(
        self,
        target,
        fixed: Optional[Mapping[Term, Term]] = None,
        *,
        limit: Optional[int] = None,
        ranges: Ranges = None,
        planner: Optional[str] = None,
    ) -> Optional[Dict[Term, Term]]:
        """The first homomorphism, or None."""
        return next(
            self.search(target, fixed, limit=limit, ranges=ranges, planner=planner),
            None,
        )


@lru_cache(maxsize=4096)
def compiled_search(source: Tuple[Atom, ...]) -> HomSearch:
    """The memoized compiled search for a body tuple.

    Chase rules, CQ bodies, and tgd heads recur across thousands of
    searches; compiling once per distinct tuple makes the interned codes,
    the join-order caches, and the precomputed sort keys shared state.
    """
    return HomSearch(source)


register_cache("kernel.compiled_search", compiled_search.cache_clear)
register_cache("kernel.atom_str", atom_str.cache_clear)


# ---------------------------------------------------------------------------
# Module-level conveniences (the shim in core/homomorphism.py calls these)
# ---------------------------------------------------------------------------


def homomorphisms(
    source: Sequence[Atom],
    target,
    fixed: Optional[Mapping[Term, Term]] = None,
    *,
    limit: Optional[int] = None,
) -> Iterator[Dict[Term, Term]]:
    """Yield every homomorphism from *source* into *target*."""
    return compiled_search(tuple(source)).search(target, fixed, limit=limit)


def find_homomorphism(
    source: Sequence[Atom],
    target,
    fixed: Optional[Mapping[Term, Term]] = None,
    *,
    limit: Optional[int] = None,
) -> Optional[Dict[Term, Term]]:
    """The first homomorphism from *source* into *target*, or None."""
    return compiled_search(tuple(source)).find(target, fixed, limit=limit)


def has_homomorphism(
    source: Sequence[Atom],
    target,
    fixed: Optional[Mapping[Term, Term]] = None,
    *,
    limit: Optional[int] = None,
) -> bool:
    """True iff some homomorphism from *source* into *target* exists."""
    return find_homomorphism(source, target, fixed, limit=limit) is not None
