"""repro.kernel — the indexed homomorphism kernel.

Every decision procedure in the reproduction (CQ evaluation, Chandra–
Merlin containment, chase applicability, the small-witness test, XRewrite
factorisation) reduces to homomorphism search.  This package is that
search, built once and shared:

* :mod:`repro.kernel.intern` — the process-wide symbol table mapping
  predicates and terms to dense integer ids (:data:`INTERN`);
* :mod:`repro.kernel.instance` — :class:`WorkingInstance` (mutable,
  append-only, incrementally indexed over int-tuple facts, with live
  per-(predicate, position) cardinality statistics) and the
  frozen-instance adapter;
* :mod:`repro.kernel.plan` — the cost-based join-order planner and its
  bounded plan cache (:func:`use_planner` switches cost/greedy modes);
* :mod:`repro.kernel.search` — the compiled, index-driven backtracking
  :class:`HomSearch` plus the memoizing :func:`compiled_search` factory;
* :mod:`repro.kernel.delta` — semi-naive (delta-driven) trigger discovery
  for the chase;
* :mod:`repro.kernel.metrics` — process-wide instrumentation counters.

``core/homomorphism.py`` remains the stable public API as a thin shim over
this package.
"""

from .delta import delta_triggers
from .instance import (
    WorkingInstance,
    instance_signature,
    trusted_instance,
    view_of,
)
from .intern import INTERN, InternTable
from .metrics import KERNEL_METRICS, flush_cardinality, kernel_snapshot
from .plan import (
    COST,
    GREEDY,
    PLANS,
    default_planner,
    plan_cache_stats,
    set_default_planner,
    use_planner,
)
from .search import (
    HomSearch,
    atom_str,
    compiled_search,
    find_homomorphism,
    has_homomorphism,
    homomorphisms,
    is_mappable,
)

__all__ = [
    "WorkingInstance",
    "instance_signature",
    "trusted_instance",
    "view_of",
    "INTERN",
    "InternTable",
    "HomSearch",
    "compiled_search",
    "homomorphisms",
    "find_homomorphism",
    "has_homomorphism",
    "atom_str",
    "is_mappable",
    "delta_triggers",
    "KERNEL_METRICS",
    "kernel_snapshot",
    "flush_cardinality",
    "COST",
    "GREEDY",
    "PLANS",
    "default_planner",
    "set_default_planner",
    "use_planner",
    "plan_cache_stats",
]
