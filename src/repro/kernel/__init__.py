"""repro.kernel — the indexed homomorphism kernel.

Every decision procedure in the reproduction (CQ evaluation, Chandra–
Merlin containment, chase applicability, the small-witness test, XRewrite
factorisation) reduces to homomorphism search.  This package is that
search, built once and shared:

* :mod:`repro.kernel.instance` — :class:`WorkingInstance` (mutable,
  append-only, incrementally indexed) and the frozen-instance adapter;
* :mod:`repro.kernel.search` — the compiled, index-driven backtracking
  :class:`HomSearch` plus the memoizing :func:`compiled_search` factory;
* :mod:`repro.kernel.delta` — semi-naive (delta-driven) trigger discovery
  for the chase;
* :mod:`repro.kernel.metrics` — process-wide instrumentation counters.

``core/homomorphism.py`` remains the stable public API as a thin shim over
this package.
"""

from .delta import delta_triggers
from .instance import WorkingInstance, trusted_instance, view_of
from .metrics import KERNEL_METRICS, kernel_snapshot
from .search import (
    HomSearch,
    atom_str,
    compiled_search,
    find_homomorphism,
    has_homomorphism,
    homomorphisms,
    is_mappable,
)

__all__ = [
    "WorkingInstance",
    "trusted_instance",
    "view_of",
    "HomSearch",
    "compiled_search",
    "homomorphisms",
    "find_homomorphism",
    "has_homomorphism",
    "atom_str",
    "is_mappable",
    "delta_triggers",
    "KERNEL_METRICS",
    "kernel_snapshot",
]
