"""The kernel's symbol table: dense integer ids for predicates and terms.

Every hot loop in the kernel — candidate matching in
:class:`~repro.kernel.search.HomSearch`, pivot matching in
:func:`~repro.kernel.delta.delta_triggers`, index maintenance in
:class:`~repro.kernel.instance.WorkingInstance` — used to compare
:class:`~repro.core.terms.Term` dataclasses, which means string compares
behind dataclass ``__eq__`` and tuple hashing behind every dict probe.
This module interns predicates and terms into dense non-negative ints so
those loops compare machine ints instead, and so instances can store
facts as flat tuples of ints.

One process-wide table (:data:`INTERN`) is shared by every instance,
compiled search, and plan: ids are only meaningful relative to the table
that minted them, and sharing is what lets a compiled body be matched
against any target without translation.

Invalidation contract
---------------------
``clear()`` (registered with :func:`repro.clear_caches`) resets the maps
and bumps :attr:`InternTable.generation`.  Everything that stores interned
ids — working instances, frozen-view memos, compiled searches, cached
plans — records the generation it was built under and lazily rebuilds
when it observes a newer one, so clearing any subset of the kernel caches
can never make stale ids alias fresh ones.

Ids are *never* used for ordering anything user-visible: deterministic
enumeration order always comes from seq order / the frozen instance's
sorted order, and planner tie-breaks use atom string keys.  Interning
order (and therefore the ids themselves) may differ between processes
without affecting any result.
"""

from __future__ import annotations

from threading import RLock
from typing import Dict, List, Tuple

from ..core.terms import Null, Term, Variable
from ..engine.registry import register_cache


class InternTable:
    """A bidirectional predicate/term ↔ dense-int mapping."""

    __slots__ = (
        "_term_ids",
        "_terms",
        "_mappable",
        "_pred_ids",
        "_preds",
        "generation",
        "_lock",
    )

    def __init__(self) -> None:
        self._term_ids: Dict[Term, int] = {}
        self._terms: List[Term] = []
        self._mappable: List[bool] = []
        self._pred_ids: Dict[str, int] = {}
        self._preds: List[str] = []
        self.generation = 0
        self._lock = RLock()

    # -- terms -----------------------------------------------------------

    def term_id(self, term: Term) -> int:
        """The dense id of *term*, interning it on first sight."""
        tid = self._term_ids.get(term)
        if tid is not None:
            return tid
        with self._lock:
            tid = self._term_ids.get(term)
            if tid is None:
                tid = len(self._terms)
                self._terms.append(term)
                self._mappable.append(isinstance(term, (Variable, Null)))
                self._term_ids[term] = tid
            return tid

    def term_ids(self, terms: Tuple[Term, ...]) -> Tuple[int, ...]:
        """Intern a tuple of terms (one fact / one atom's args)."""
        get = self._term_ids.get
        out = []
        for t in terms:
            tid = get(t)
            out.append(self.term_id(t) if tid is None else tid)
        return tuple(out)

    def term(self, tid: int) -> Term:
        """The term behind a dense id."""
        return self._terms[tid]

    def is_mappable_id(self, tid: int) -> bool:
        """True iff the id belongs to a variable or null (hom-mappable)."""
        return self._mappable[tid]

    # -- predicates ------------------------------------------------------

    def pred_id(self, predicate: str) -> int:
        """The dense id of a predicate name, interning on first sight."""
        pid = self._pred_ids.get(predicate)
        if pid is not None:
            return pid
        with self._lock:
            pid = self._pred_ids.get(predicate)
            if pid is None:
                pid = len(self._preds)
                self._preds.append(predicate)
                self._pred_ids[predicate] = pid
            return pid

    def pred(self, pid: int) -> str:
        """The predicate name behind a dense id."""
        return self._preds[pid]

    # -- lifecycle -------------------------------------------------------

    def sizes(self) -> Dict[str, int]:
        """Current table sizes (for ``kernel_snapshot`` / ``/metrics``)."""
        return {"terms": len(self._terms), "predicates": len(self._preds)}

    def clear(self) -> None:
        """Reset the table and advance the generation.

        Holders of interned ids (instances, views, compiled searches)
        compare their recorded generation against :attr:`generation` and
        rebuild lazily, so a clear can never cause stale ids to alias.
        """
        with self._lock:
            self._term_ids = {}
            self._terms = []
            self._mappable = []
            self._pred_ids = {}
            self._preds = []
            self.generation += 1

    def __len__(self) -> int:
        return len(self._terms)

    def __repr__(self) -> str:
        return (
            f"InternTable({len(self._terms)} terms, "
            f"{len(self._preds)} predicates, gen {self.generation})"
        )


#: The process-wide table every kernel structure shares.
INTERN = InternTable()

register_cache("kernel.intern", INTERN.clear)
