"""Process-wide instrumentation for the homomorphism kernel.

The kernel is the hot path under every decision procedure, so its counters
live in one module-level :class:`~repro.engine.metrics.MetricsRegistry`
(the same registry type the batch engine uses) rather than being threaded
through every call site.  ``BatchEngine.stats()`` and ``repro batch
--json`` surface a snapshot of this registry, and ``repro.clear_caches()``
resets it (registered below), which is what keeps tests isolated.

Counter names:

* ``kernel.hom.searches``    — hom-search invocations;
* ``kernel.hom.candidates``  — target facts scanned as join candidates;
* ``kernel.hom.matches``     — candidates that extended the assignment;
* ``kernel.hom.backtracks``  — search-tree retreats (a candidate list was
  exhausted without completing the embedding);
* ``kernel.plan.hits`` / ``kernel.plan.misses`` / ``kernel.plan.evictions``
  — the cost-based join-plan cache (:mod:`repro.kernel.plan`);
* ``kernel.chase.rounds``    — delta-chase rounds;
* ``kernel.chase.delta_triggers`` — triggers discovered via the delta
  (semi-naive) path rather than full re-enumeration;
* ``kernel.cardinality.<predicate>`` — facts materialized per predicate by
  completed delta chases (flushed once per run, capped name space);
* ``kernel.witness_search.databases`` — candidate databases scanned by the
  guarded bounded-witness layer.

:func:`kernel_snapshot` additionally reports the live sizes of the
kernel's caches (``kernel.cache.*.size``, ``kernel.intern.*``) so
long-lived serve processes can watch them from ``/metrics``; zero sizes
are omitted, matching the registry's snapshot convention.

Searches batch their increments (one ``inc`` per counter per search), so
the registry's lock is not on the per-candidate path.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..engine.metrics import MetricsRegistry
from ..engine.registry import register_cache
from .. import obs

#: The kernel's shared registry.  Module-level on purpose: every consumer
#: (chase, evaluation, containment, rewriting) reports here.
KERNEL_METRICS = MetricsRegistry()

register_cache("kernel.metrics", KERNEL_METRICS.reset)

#: Bound on distinct ``kernel.cardinality.<predicate>`` counter names; the
#: overflow bucket keeps adversarial schemas from growing the registry
#: without bound.
_CARDINALITY_NAME_CAP = 256
_cardinality_names: set = set()


def kernel_snapshot() -> Dict[str, object]:
    """A plain-dict snapshot of every kernel counter/timer plus cache sizes.

    Cache sizes are read live (they are not registry metrics — a size is
    state, not an event stream) and omitted when zero so that a freshly
    cleared process still snapshots as ``{}``.
    """
    out: Dict[str, object] = dict(KERNEL_METRICS.snapshot())
    from .intern import INTERN
    from .plan import PLANS
    from .search import atom_str, compiled_search

    sizes = {
        "kernel.cache.atom_str.size": atom_str.cache_info().currsize,
        "kernel.cache.compiled_search.size": compiled_search.cache_info().currsize,
        "kernel.plan.cache.size": len(PLANS),
    }
    for name, value in INTERN.sizes().items():
        sizes[f"kernel.intern.{name}"] = value
    for name, value in sizes.items():
        if value:
            out[name] = value
    return out


def flush_search_counts(
    searches: int,
    candidates: int,
    matches: int,
    backtracks: int,
    plan_hits: int = 0,
    plan_misses: int = 0,
) -> None:
    """Batch-add one search's locally accumulated counts to the registry.

    When a decision trace is active, the same batch also rolls up onto the
    current span — one ``add_many`` per search, never per candidate, so the
    tracer stays off the kernel's inner loop.
    """
    if searches:
        KERNEL_METRICS.counter("kernel.hom.searches").inc(searches)
    if candidates:
        KERNEL_METRICS.counter("kernel.hom.candidates").inc(candidates)
    if matches:
        KERNEL_METRICS.counter("kernel.hom.matches").inc(matches)
    if backtracks:
        KERNEL_METRICS.counter("kernel.hom.backtracks").inc(backtracks)
    if plan_hits:
        KERNEL_METRICS.counter("kernel.plan.hits").inc(plan_hits)
    if plan_misses:
        KERNEL_METRICS.counter("kernel.plan.misses").inc(plan_misses)
    if obs.is_active():
        obs.add_many(
            (name, count)
            for name, count in (
                ("hom.searches", searches),
                ("hom.candidates", candidates),
                ("hom.matches", matches),
                ("hom.backtracks", backtracks),
                ("plan.hits", plan_hits),
                ("plan.misses", plan_misses),
            )
            if count
        )


def flush_cardinality(stats: Mapping[str, Mapping[str, object]]) -> None:
    """Fold a working instance's per-predicate fact counts into the registry.

    Called once per completed delta chase (cheap: one counter per
    predicate), so ``/metrics`` exposes the cardinality regime the planner
    saw — ``kernel.cardinality.<predicate>`` accumulates facts materialized
    per predicate across runs.  Names beyond the cap fold into
    ``kernel.cardinality.other``.
    """
    for predicate, stat in stats.items():
        if (
            predicate in _cardinality_names
            or len(_cardinality_names) < _CARDINALITY_NAME_CAP
        ):
            _cardinality_names.add(predicate)
            name = f"kernel.cardinality.{predicate}"
        else:
            name = "kernel.cardinality.other"
        KERNEL_METRICS.counter(name).inc(int(stat["count"]))
