"""Process-wide instrumentation for the homomorphism kernel.

The kernel is the hot path under every decision procedure, so its counters
live in one module-level :class:`~repro.engine.metrics.MetricsRegistry`
(the same registry type the batch engine uses) rather than being threaded
through every call site.  ``BatchEngine.stats()`` and ``repro batch
--json`` surface a snapshot of this registry, and ``repro.clear_caches()``
resets it (registered below), which is what keeps tests isolated.

Counter names:

* ``kernel.hom.searches``    — hom-search invocations;
* ``kernel.hom.candidates``  — target atoms scanned as join candidates;
* ``kernel.hom.matches``     — candidates that extended the assignment;
* ``kernel.hom.backtracks``  — search-tree retreats (a candidate list was
  exhausted without completing the embedding);
* ``kernel.chase.rounds``    — delta-chase rounds;
* ``kernel.chase.delta_triggers`` — triggers discovered via the delta
  (semi-naive) path rather than full re-enumeration;
* ``kernel.witness_search.databases`` — candidate databases scanned by the
  guarded bounded-witness layer.

Searches batch their increments (one ``inc`` per counter per search), so
the registry's lock is not on the per-candidate path.
"""

from __future__ import annotations

from typing import Dict

from ..engine.metrics import MetricsRegistry
from ..engine.registry import register_cache
from .. import obs

#: The kernel's shared registry.  Module-level on purpose: every consumer
#: (chase, evaluation, containment, rewriting) reports here.
KERNEL_METRICS = MetricsRegistry()

register_cache("kernel.metrics", KERNEL_METRICS.reset)


def kernel_snapshot() -> Dict[str, object]:
    """A plain-dict snapshot of every kernel counter/timer."""
    return KERNEL_METRICS.snapshot()


def flush_search_counts(
    searches: int, candidates: int, matches: int, backtracks: int
) -> None:
    """Batch-add one search's locally accumulated counts to the registry.

    When a decision trace is active, the same batch also rolls up onto the
    current span — one ``add_many`` per search, never per candidate, so the
    tracer stays off the kernel's inner loop.
    """
    if searches:
        KERNEL_METRICS.counter("kernel.hom.searches").inc(searches)
    if candidates:
        KERNEL_METRICS.counter("kernel.hom.candidates").inc(candidates)
    if matches:
        KERNEL_METRICS.counter("kernel.hom.matches").inc(matches)
    if backtracks:
        KERNEL_METRICS.counter("kernel.hom.backtracks").inc(backtracks)
    if obs.is_active():
        obs.add_many(
            (name, count)
            for name, count in (
                ("hom.searches", searches),
                ("hom.candidates", candidates),
                ("hom.matches", matches),
                ("hom.backtracks", backtracks),
            )
            if count
        )
