"""The kernel's instance representations and their indexes.

Two views back every homomorphism search:

* :class:`WorkingInstance` — a *mutable, append-only* instance whose
  per-predicate and (predicate, position, term) indexes are maintained
  incrementally on :meth:`~WorkingInstance.add`.  Atoms carry monotonically
  increasing sequence numbers, which is what makes the delta-driven chase
  possible: "the atoms added since watermark ``m``" is the contiguous
  suffix ``seq >= m``, and every index list is seq-sorted, so restricting a
  search to a watermark (or to a delta window) is a binary search, not a
  filter.
* frozen :class:`~repro.core.instance.Instance` — adapted through the
  one-shot cached indexes :meth:`Instance.by_predicate` /
  :meth:`Instance.by_position` (see :mod:`repro.core.instance`).

Both are wrapped by :func:`view_of` into the small duck-typed interface
(`pred_candidates` / `pos_candidates`) the search consumes.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance, _atom_sort_key
from ..core.terms import Term

#: A candidate window: (atoms, start, end) — iterate atoms[start:end]
#: without copying the (potentially large) index list.
Window = Tuple[Sequence[Atom], int, int]

_EMPTY_WINDOW: Window = ((), 0, 0)


def trusted_instance(atoms: Iterable[Atom]) -> Instance:
    """Build a frozen :class:`Instance` from atoms known to be ground.

    ``Instance.__post_init__`` re-validates groundness atom by atom; the
    kernel's structures already guarantee it (``WorkingInstance.add``
    checks on the way in), so snapshots skip the redundant pass.  Never
    hand this non-ground atoms — it would forge an invalid instance.
    """
    inst = object.__new__(Instance)
    object.__setattr__(inst, "atoms", frozenset(atoms))
    return inst


class _IndexList:
    """A seq-sorted candidate list: parallel (seqs, atoms) arrays."""

    __slots__ = ("seqs", "atoms")

    def __init__(self) -> None:
        self.seqs: List[int] = []
        self.atoms: List[Atom] = []

    def append(self, seq: int, atom: Atom) -> None:
        self.seqs.append(seq)
        self.atoms.append(atom)

    def window(self, lo: int, hi: Optional[int]) -> Window:
        """The sub-window of atoms with ``lo <= seq < hi``."""
        start = bisect_left(self.seqs, lo) if lo > 0 else 0
        end = len(self.seqs) if hi is None else bisect_right(self.seqs, hi - 1)
        return (self.atoms, start, end)


class WorkingInstance:
    """A mutable, append-only set of ground atoms with live indexes.

    Supports exactly what the kernel's consumers need: O(1) amortized
    :meth:`add` with incremental index maintenance, watermark/delta
    windows for semi-naive evaluation, and cheap conversion to/from the
    frozen :class:`Instance`.
    """

    __slots__ = (
        "_seq_of",
        "_by_predicate",
        "_by_position",
        "_snapshot",
        "_snapshot_len",
    )

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        self._seq_of: Dict[Atom, int] = {}
        self._by_predicate: Dict[str, _IndexList] = {}
        self._by_position: Dict[Tuple[str, int, Term], _IndexList] = {}
        self._snapshot: Optional[Instance] = None
        self._snapshot_len = -1
        for a in atoms:
            self.add(a)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_instance(cls, instance: Instance) -> "WorkingInstance":
        """A working copy of a frozen instance (deterministic atom order)."""
        work = cls()
        for a in sorted(instance.atoms, key=_atom_sort_key):
            work._add_trusted(a)
        return work

    # -- mutation --------------------------------------------------------

    def add(self, atom: Atom) -> bool:
        """Add *atom*; returns True iff it was new.  Atoms must be ground."""
        if atom in self._seq_of:
            return False
        if not atom.is_ground():
            raise ValueError(f"working-instance atom contains a variable: {atom}")
        self._add_trusted(atom)
        return True

    def _add_trusted(self, atom: Atom) -> None:
        seq = len(self._seq_of)
        self._seq_of[atom] = seq
        pred_list = self._by_predicate.get(atom.predicate)
        if pred_list is None:
            pred_list = self._by_predicate[atom.predicate] = _IndexList()
        pred_list.append(seq, atom)
        for pos, term in enumerate(atom.args):
            key = (atom.predicate, pos, term)
            pos_list = self._by_position.get(key)
            if pos_list is None:
                pos_list = self._by_position[key] = _IndexList()
            pos_list.append(seq, atom)
        self._snapshot = None

    # -- windows (the search interface) ----------------------------------

    def pred_candidates(
        self, predicate: str, lo: int = 0, hi: Optional[int] = None
    ) -> Window:
        """Atoms over *predicate* with seq in ``[lo, hi)``."""
        entry = self._by_predicate.get(predicate)
        if entry is None:
            return _EMPTY_WINDOW
        return entry.window(lo, hi)

    def pos_candidates(
        self,
        predicate: str,
        position: int,
        term: Term,
        lo: int = 0,
        hi: Optional[int] = None,
    ) -> Optional[Window]:
        """Atoms with *term* at *position*, seq in ``[lo, hi)``.

        Returns ``None`` (not an empty window) when the key has never been
        indexed — callers treat both as "no candidates", but ``None`` is
        free while a window costs two bisects.
        """
        entry = self._by_position.get((predicate, position, term))
        if entry is None:
            return None
        return entry.window(lo, hi)

    # -- watermarks & snapshots ------------------------------------------

    def watermark(self) -> int:
        """The current sequence high-water mark (== ``len(self)``)."""
        return len(self._seq_of)

    def atoms_since(self, mark: int) -> List[Atom]:
        """The atoms added at or after *mark*, in insertion order."""
        if mark <= 0:
            return list(self._seq_of)
        atoms = list(self._seq_of)
        return atoms[mark:]

    def snapshot(self) -> Instance:
        """A frozen :class:`Instance` of the current atoms (memoized)."""
        if self._snapshot is None or self._snapshot_len != len(self._seq_of):
            self._snapshot = trusted_instance(self._seq_of)
            self._snapshot_len = len(self._seq_of)
        return self._snapshot

    # -- dunder ----------------------------------------------------------

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._seq_of

    def __len__(self) -> int:
        return len(self._seq_of)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._seq_of)

    def __repr__(self) -> str:
        return f"WorkingInstance({len(self._seq_of)} atoms)"


class _FrozenView:
    """Adapts a frozen :class:`Instance` to the search's window interface.

    Candidate order is the instance's deterministic sorted order (the same
    order the pre-kernel search iterated), so search results and their
    enumeration order are unchanged.  Watermarks/deltas are meaningless on
    an immutable instance; windows always span the full index.
    """

    __slots__ = ("_by_predicate", "_by_position")

    def __init__(self, instance: Instance) -> None:
        self._by_predicate = instance.by_predicate()
        self._by_position = instance.by_position()

    def pred_candidates(
        self, predicate: str, lo: int = 0, hi: Optional[int] = None
    ) -> Window:
        if lo or hi is not None:
            raise ValueError(
                "sequence windows require a WorkingInstance target"
            )
        atoms = self._by_predicate.get(predicate)
        if atoms is None:
            return _EMPTY_WINDOW
        return (atoms, 0, len(atoms))

    def pos_candidates(
        self,
        predicate: str,
        position: int,
        term: Term,
        lo: int = 0,
        hi: Optional[int] = None,
    ) -> Optional[Window]:
        if lo or hi is not None:
            raise ValueError(
                "sequence windows require a WorkingInstance target"
            )
        atoms = self._by_position.get((predicate, position, term))
        if atoms is None:
            return None
        return (atoms, 0, len(atoms))


def view_of(target) -> object:
    """The search view of *target* (WorkingInstance or frozen Instance)."""
    if isinstance(target, WorkingInstance):
        return target
    if isinstance(target, Instance):
        return _FrozenView(target)
    raise TypeError(
        f"hom-search target must be an Instance or WorkingInstance, "
        f"got {type(target).__name__}"
    )
