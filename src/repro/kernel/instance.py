"""The kernel's instance representations and their indexes.

Two views back every homomorphism search, both storing facts as
**tuples of interned ints** (see :mod:`repro.kernel.intern`):

* :class:`WorkingInstance` — a *mutable, append-only* instance whose
  per-predicate and (predicate, position, term) indexes are maintained
  incrementally on :meth:`~WorkingInstance.add`.  Atoms carry monotonically
  increasing sequence numbers, which is what makes the delta-driven chase
  possible: "the atoms added since watermark ``m``" is the contiguous
  suffix ``seq >= m``, and every index list is seq-sorted, so restricting a
  search to a watermark (or to a delta window) is a binary search, not a
  filter.  Alongside the indexes it maintains the per-(predicate, position)
  cardinality statistics (fact counts and distinct-value counts) that feed
  the cost-based join planner in :mod:`repro.kernel.plan`.
* frozen :class:`~repro.core.instance.Instance` — adapted through
  :class:`_FrozenView`, which interns the instance's memoized sorted
  indexes once and is itself memoized on the instance, so repeated
  searches against the same frozen target share one interned view.

Both expose the small duck-typed interface the search consumes:
``pred_candidates`` / ``pos_candidates`` (windows of int-tuple facts) plus
``pred_count`` / ``distinct_count`` (the planner's statistics).  Candidate
order is seq order for a :class:`WorkingInstance` and the instance's
deterministic sorted order for a frozen view — interning never changes
which facts are enumerated or in what order, only how they are stored.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.atoms import Atom
from ..core.instance import Instance, _atom_sort_key
from .intern import INTERN

#: A candidate window: (facts, start, end) — iterate facts[start:end]
#: without copying the (potentially large) index list.  Each fact is a
#: tuple of interned term ids.
Window = Tuple[Sequence[Tuple[int, ...]], int, int]

_EMPTY_WINDOW: Window = ((), 0, 0)


def trusted_instance(atoms: Iterable[Atom]) -> Instance:
    """Build a frozen :class:`Instance` from atoms known to be ground.

    ``Instance.__post_init__`` re-validates groundness atom by atom; the
    kernel's structures already guarantee it (``WorkingInstance.add``
    checks on the way in), so snapshots skip the redundant pass.  Never
    hand this non-ground atoms — it would forge an invalid instance.
    """
    inst = object.__new__(Instance)
    object.__setattr__(inst, "atoms", frozenset(atoms))
    return inst


class _IndexList:
    """A seq-sorted candidate list: parallel (seqs, facts) arrays."""

    __slots__ = ("seqs", "facts")

    def __init__(self) -> None:
        self.seqs: List[int] = []
        self.facts: List[Tuple[int, ...]] = []

    def append(self, seq: int, fact: Tuple[int, ...]) -> None:
        self.seqs.append(seq)
        self.facts.append(fact)

    def window(self, lo: int, hi: Optional[int]) -> Window:
        """The sub-window of facts with ``lo <= seq < hi``."""
        start = bisect_left(self.seqs, lo) if lo > 0 else 0
        end = len(self.seqs) if hi is None else bisect_right(self.seqs, hi - 1)
        return (self.facts, start, end)


class WorkingInstance:
    """A mutable, append-only set of ground atoms with live interned indexes.

    Supports exactly what the kernel's consumers need: O(1) amortized
    :meth:`add` with incremental index and statistics maintenance,
    watermark/delta windows for semi-naive evaluation, and cheap
    conversion to/from the frozen :class:`Instance`.
    """

    __slots__ = (
        "_seq_of",
        "_atoms",
        "_facts",
        "_by_predicate",
        "_by_position",
        "_distinct",
        "_snapshot",
        "_snapshot_len",
        "_generation",
    )

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        self._seq_of: Dict[Atom, int] = {}
        self._atoms: List[Atom] = []
        self._facts: List[Tuple[int, ...]] = []
        self._by_predicate: Dict[int, _IndexList] = {}
        self._by_position: Dict[Tuple[int, int, int], _IndexList] = {}
        self._distinct: Dict[Tuple[int, int], int] = {}
        self._snapshot: Optional[Instance] = None
        self._snapshot_len = -1
        self._generation = INTERN.generation
        for a in atoms:
            self.add(a)

    # -- construction ----------------------------------------------------

    @classmethod
    def from_instance(cls, instance: Instance) -> "WorkingInstance":
        """A working copy of a frozen instance (deterministic atom order)."""
        work = cls()
        for a in sorted(instance.atoms, key=_atom_sort_key):
            work._add_trusted(a)
        return work

    # -- mutation --------------------------------------------------------

    def add(self, atom: Atom) -> bool:
        """Add *atom*; returns True iff it was new.  Atoms must be ground."""
        if atom in self._seq_of:
            return False
        if not atom.is_ground():
            raise ValueError(f"working-instance atom contains a variable: {atom}")
        self._add_trusted(atom)
        return True

    def _add_trusted(self, atom: Atom) -> None:
        self._ensure_current()
        seq = len(self._atoms)
        self._seq_of[atom] = seq
        self._atoms.append(atom)
        pid = INTERN.pred_id(atom.predicate)
        fact = INTERN.term_ids(atom.args)
        self._facts.append(fact)
        pred_list = self._by_predicate.get(pid)
        if pred_list is None:
            pred_list = self._by_predicate[pid] = _IndexList()
        pred_list.append(seq, fact)
        for pos, tid in enumerate(fact):
            key = (pid, pos, tid)
            pos_list = self._by_position.get(key)
            if pos_list is None:
                pos_list = self._by_position[key] = _IndexList()
                stat_key = (pid, pos)
                self._distinct[stat_key] = self._distinct.get(stat_key, 0) + 1
            pos_list.append(seq, fact)
        self._snapshot = None

    def _ensure_current(self) -> None:
        """Rebuild interned state if the intern table was cleared under us."""
        if self._generation == INTERN.generation:
            return
        atoms = self._atoms
        self._seq_of = {}
        self._atoms = []
        self._facts = []
        self._by_predicate = {}
        self._by_position = {}
        self._distinct = {}
        self._generation = INTERN.generation
        for a in atoms:
            if a not in self._seq_of:
                self._add_trusted(a)

    # -- windows (the search interface) ----------------------------------

    def pred_candidates(
        self, pid: int, lo: int = 0, hi: Optional[int] = None
    ) -> Window:
        """Facts over predicate id *pid* with seq in ``[lo, hi)``."""
        entry = self._by_predicate.get(pid)
        if entry is None:
            return _EMPTY_WINDOW
        return entry.window(lo, hi)

    def pos_candidates(
        self,
        pid: int,
        position: int,
        tid: int,
        lo: int = 0,
        hi: Optional[int] = None,
    ) -> Optional[Window]:
        """Facts with term id *tid* at *position*, seq in ``[lo, hi)``.

        Returns ``None`` (not an empty window) when the key has never been
        indexed — callers treat both as "no candidates", but ``None`` is
        free while a window costs two bisects.
        """
        entry = self._by_position.get((pid, position, tid))
        if entry is None:
            return None
        return entry.window(lo, hi)

    # -- planner statistics ----------------------------------------------

    def pred_count(self, pid: int) -> int:
        """How many facts the instance holds over predicate id *pid*."""
        entry = self._by_predicate.get(pid)
        return len(entry.seqs) if entry is not None else 0

    def distinct_count(self, pid: int, position: int) -> int:
        """Distinct term count at (predicate id, position) — live stats."""
        return self._distinct.get((pid, position), 0)

    def signature(self) -> FrozenSet[Tuple[str, int]]:
        """The set of (predicate, arity) pairs present in the instance.

        Read straight off the interned per-predicate index — no pass over
        the atoms.  This is the keying primitive of the structural
        counterexample index (:mod:`repro.engine.witness_store`): two
        instances can only be related by a schema-respecting
        homomorphism when the source's signature is a subset of the
        target's.
        """
        self._ensure_current()
        return frozenset(
            (INTERN.pred(pid), len(entry.facts[0]))
            for pid, entry in self._by_predicate.items()
            if entry.facts
        )

    def cardinality_stats(self) -> Dict[str, Dict[str, object]]:
        """Per-predicate-name cardinality statistics (count + distincts).

        For metrics surfacing and debugging; the planner reads the
        id-keyed accessors above directly.
        """
        self._ensure_current()
        out: Dict[str, Dict[str, object]] = {}
        for pid, entry in self._by_predicate.items():
            name = INTERN.pred(pid)
            arity = len(entry.facts[0]) if entry.facts else 0
            out[name] = {
                "count": len(entry.seqs),
                "distinct": [
                    self.distinct_count(pid, pos) for pos in range(arity)
                ],
            }
        return out

    # -- watermarks & snapshots ------------------------------------------

    def watermark(self) -> int:
        """The current sequence high-water mark (== ``len(self)``)."""
        return len(self._atoms)

    def atoms_since(self, mark: int) -> List[Atom]:
        """The atoms added at or after *mark*, in insertion order."""
        if mark <= 0:
            return list(self._atoms)
        return self._atoms[mark:]

    def snapshot(self) -> Instance:
        """A frozen :class:`Instance` of the current atoms (memoized)."""
        if self._snapshot is None or self._snapshot_len != len(self._atoms):
            self._snapshot = trusted_instance(self._atoms)
            self._snapshot_len = len(self._atoms)
        return self._snapshot

    # -- dunder ----------------------------------------------------------

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._seq_of

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __repr__(self) -> str:
        return f"WorkingInstance({len(self._atoms)} atoms)"


class _FrozenView:
    """Adapts a frozen :class:`Instance` to the search's window interface.

    Candidate order is the instance's deterministic sorted order (the same
    order the pre-kernel search iterated), so search results and their
    enumeration order are unchanged.  Watermarks/deltas are meaningless on
    an immutable instance; windows always span the full index.

    The view is built once per (instance, intern generation) and memoized
    on the instance itself (see :func:`view_of`), so repeated searches
    against the same target — the common case for query evaluation over a
    chased instance — pay the interning pass exactly once.
    """

    __slots__ = (
        "_by_predicate",
        "_by_position",
        "_distinct",
        "generation",
    )

    def __init__(self, instance: Instance) -> None:
        self.generation = INTERN.generation
        self._by_predicate: Dict[int, List[Tuple[int, ...]]] = {}
        self._by_position: Dict[Tuple[int, int, int], List[Tuple[int, ...]]] = {}
        self._distinct: Dict[Tuple[int, int], int] = {}
        by_position = self._by_position
        distinct = self._distinct
        for predicate, atoms in instance.by_predicate().items():
            pid = INTERN.pred_id(predicate)
            facts = [INTERN.term_ids(a.args) for a in atoms]
            self._by_predicate[pid] = facts
            for fact in facts:
                for pos, tid in enumerate(fact):
                    key = (pid, pos, tid)
                    bucket = by_position.get(key)
                    if bucket is None:
                        by_position[key] = [fact]
                        stat_key = (pid, pos)
                        distinct[stat_key] = distinct.get(stat_key, 0) + 1
                    else:
                        bucket.append(fact)

    def pred_candidates(
        self, pid: int, lo: int = 0, hi: Optional[int] = None
    ) -> Window:
        if lo or hi is not None:
            raise ValueError(
                "sequence windows require a WorkingInstance target"
            )
        facts = self._by_predicate.get(pid)
        if facts is None:
            return _EMPTY_WINDOW
        return (facts, 0, len(facts))

    def pos_candidates(
        self,
        pid: int,
        position: int,
        tid: int,
        lo: int = 0,
        hi: Optional[int] = None,
    ) -> Optional[Window]:
        if lo or hi is not None:
            raise ValueError(
                "sequence windows require a WorkingInstance target"
            )
        facts = self._by_position.get((pid, position, tid))
        if facts is None:
            return None
        return (facts, 0, len(facts))

    def pred_count(self, pid: int) -> int:
        facts = self._by_predicate.get(pid)
        return len(facts) if facts is not None else 0

    def distinct_count(self, pid: int, position: int) -> int:
        return self._distinct.get((pid, position), 0)

    def signature(self) -> FrozenSet[Tuple[str, int]]:
        """The set of (predicate, arity) pairs present (see
        :meth:`WorkingInstance.signature`)."""
        return frozenset(
            (INTERN.pred(pid), len(facts[0]))
            for pid, facts in self._by_predicate.items()
            if facts
        )


def instance_signature(target) -> FrozenSet[Tuple[str, int]]:
    """The (predicate, arity) signature of *target*, via its interned view.

    Accepts anything :func:`view_of` does — a :class:`WorkingInstance` or
    a frozen :class:`~repro.core.instance.Instance` — and shares the
    memoized view, so asking for the signature of an instance that has
    already been searched is free.
    """
    return view_of(target).signature()


def view_of(target) -> object:
    """The search view of *target* (WorkingInstance or frozen Instance).

    Frozen instances memoize their interned view (keyed by the intern
    generation) the same way they memoize ``by_predicate``; working
    instances are their own view and revalidate their generation inline.
    """
    if isinstance(target, WorkingInstance):
        target._ensure_current()
        return target
    if isinstance(target, Instance):
        view = target.__dict__.get("_kernel_view_memo")
        if view is None or view.generation != INTERN.generation:
            view = _FrozenView(target)
            object.__setattr__(target, "_kernel_view_memo", view)
        return view
    raise TypeError(
        f"hom-search target must be an Instance or WorkingInstance, "
        f"got {type(target).__name__}"
    )
