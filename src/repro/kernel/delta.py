"""Delta-driven (semi-naive) trigger discovery for the chase.

A chase round must find every homomorphism of a rule body into the current
instance that it has not seen before.  The naive engine re-enumerates all
of them each round and skips the already-fired ones; this module
enumerates exactly the *new* ones — the homomorphisms that touch at least
one atom added since the previous round — using the standard semi-naive
partition:

    for each pivot position j in the body:
        body[0..j-1] ↦ old atoms        (seq <  old_mark)
        body[j]      ↦ delta atoms      (old_mark <= seq < new_mark)
        body[j+1..]  ↦ anything visible (seq <  new_mark)

Every new homomorphism has a unique minimal body index mapped into the
delta, so the union over pivots is exact and duplicate-free.  The pivot
atom is matched first against the interned delta window (int-tuple facts
against the pivot's compiled codes — see :mod:`repro.kernel.search`), and
its bindings seed the remaining body's windowed search.

On the first round (``old_mark == 0``) there is no "old" part and the
discovery degenerates to a plain full enumeration bounded by the
watermark — which also covers empty-body (fact) tgds, whose single empty
homomorphism exists only then.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..core.atoms import Atom
from ..core.terms import Term
from .instance import WorkingInstance
from .intern import INTERN
from .metrics import KERNEL_METRICS
from .search import compiled_search


def delta_triggers(
    body: Tuple[Atom, ...],
    target: WorkingInstance,
    old_mark: int,
    new_mark: int,
    fixed: Optional[Dict[Term, Term]] = None,
) -> Iterator[Dict[Term, Term]]:
    """Yield each *new* homomorphism of *body* into ``target[:new_mark]``.

    New means: not a homomorphism into ``target[:old_mark]`` (equivalently,
    at least one body atom maps to an atom with ``old_mark <= seq <
    new_mark``).  Exact and duplicate-free; enumeration order is
    deterministic but unspecified — the chase sorts triggers anyway.
    """
    initial: Dict[Term, Term] = dict(fixed) if fixed else {}
    if old_mark <= 0:
        # Cold start: everything below the watermark is "new".
        yield from compiled_search(body).search(
            target, initial, limit=new_mark
        )
        return
    if old_mark >= new_mark:
        return
    discovered = 0
    term_of = INTERN.term
    for j, pivot in enumerate(body):
        rest = body[:j] + body[j + 1 :]
        rest_search = compiled_search(rest)
        # Windows aligned with `rest`: before-pivot atoms see only the old
        # instance, after-pivot atoms see everything up to the watermark.
        windows = tuple(
            (0, old_mark) if k < j else (0, new_mark)
            for k in range(len(rest))
        )
        # The pivot is matched directly over the interned delta window: the
        # single-atom compiled search supplies its codes, and the base
        # assignment carries any pivot slots *fixed* already binds.
        psearch = compiled_search((pivot,))
        psearch.ensure_compiled()
        codes = psearch.codes[0]
        arity = len(codes)
        slot_terms = psearch.slot_terms
        base = [-1] * len(slot_terms)
        for s, t in enumerate(slot_terms):
            v = initial.get(t)
            if v is not None:
                base[s] = INTERN.term_id(v)
        facts, start, end = target.pred_candidates(
            psearch.pred_ids[0], old_mark, new_mark
        )
        for ci in range(start, end):
            candidate = facts[ci]
            if len(candidate) != arity:
                continue
            assign = base[:]
            matched = True
            for pos in range(arity):
                code = codes[pos]
                tid = candidate[pos]
                if code >= 0:
                    current = assign[code]
                    if current < 0:
                        assign[code] = tid
                    elif current != tid:
                        matched = False
                        break
                elif code != -tid - 1:
                    matched = False
                    break
            if not matched:
                continue
            seeded = dict(initial)
            for s, t in enumerate(slot_terms):
                seeded[t] = term_of(assign[s])
            for h in rest_search.search(target, seeded, ranges=windows):
                discovered += 1
                yield h
    if discovered:
        KERNEL_METRICS.counter("kernel.chase.delta_triggers").inc(discovered)
