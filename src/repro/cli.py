"""Command-line interface: ``python -m repro <command> ...``.

Commands operate on *OMQ files* (see :func:`repro.core.parser.parse_omq`)::

    schema: P/1, T/1
    rules:
        P(x) -> R(x, w)
        R(x, y) -> P(y)
    query: q(x) :- R(x, y), P(y)

and on database files of facts (``R(a, b). P(b).``).

Commands:

* ``classify ONTOLOGY``          — fragment membership of a tgd file
* ``rewrite OMQ``                — UCQ rewriting (XRewrite)
* ``evaluate OMQ DATABASE``      — certain answers
* ``contains OMQ1 OMQ2``         — containment verdict (+ witness)
* ``distributes OMQ``            — distribution over components
* ``rewritable OMQ``             — UCQ rewritability verdict
* ``minimize OMQ``               — containment-powered query minimization
* ``explain OMQ DATABASE ANSWER``— derivation forest for a certain answer
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .applications import distributes_over_components, is_ucq_rewritable
from .containment import Verdict, contains
from .core.parser import parse_database, parse_omq, parse_tgds
from .core.serialize import omq_to_document
from .core.terms import Constant
from .evaluation import evaluate_omq
from .explain import explain_answer, format_explanation
from .fragments import best_class, classify
from .optimize import minimize_query
from .rewriting import RewritingBudgetExceeded, xrewrite


def _read(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


def _cmd_classify(args) -> int:
    sigma = parse_tgds(_read(args.ontology))
    classes = classify(sigma)
    print("classes:", ", ".join(sorted(str(c) for c in classes)))
    print("preferred:", best_class(sigma))
    return 0


def _cmd_rewrite(args) -> int:
    omq = parse_omq(_read(args.omq))
    try:
        result = xrewrite(omq, max_queries=args.budget)
    except RewritingBudgetExceeded as exc:
        print(
            f"rewriting exceeded the budget after "
            f"{exc.partial.stats.queries_generated} queries "
            "(the OMQ may not be UCQ-rewritable)",
            file=sys.stderr,
        )
        return 2
    for disjunct in result.rewriting.disjuncts:
        print(disjunct)
    print(
        f"% {len(result.rewriting)} disjuncts, "
        f"max size {result.rewriting.max_disjunct_size()}, "
        f"{result.stats.rewriting_steps} rewriting steps",
        file=sys.stderr,
    )
    return 0


def _cmd_evaluate(args) -> int:
    omq = parse_omq(_read(args.omq))
    database = parse_database(_read(args.database))
    result = evaluate_omq(omq, database)
    for answer in sorted(result.answers, key=str):
        print("(" + ", ".join(t.name for t in answer) + ")")
    print(
        f"% {len(result.answers)} answers via {result.method}"
        + ("" if result.exact else " (bounded: sound, possibly incomplete)"),
        file=sys.stderr,
    )
    return 0


def _cmd_contains(args) -> int:
    q1 = parse_omq(_read(args.omq1), name="Q1")
    q2 = parse_omq(_read(args.omq2), name="Q2")
    result = contains(q1, q2, rewriting_budget=args.budget)
    print(result)
    if result.verdict is Verdict.NOT_CONTAINED:
        print("witness database:")
        for atom in sorted(result.witness.database, key=str):
            print("  ", atom)
        return 1
    if result.verdict is Verdict.UNKNOWN:
        return 2
    return 0


def _cmd_distributes(args) -> int:
    omq = parse_omq(_read(args.omq))
    result = distributes_over_components(omq)
    print(f"distributes: {result.distributes}")
    print(f"reason: {result.reason}")
    if result.witness_component:
        print(f"witness component: {result.witness_component}")
    return 0 if result.distributes else (1 if result.distributes is False else 2)


def _cmd_rewritable(args) -> int:
    omq = parse_omq(_read(args.omq))
    result = is_ucq_rewritable(omq)
    print(f"UCQ rewritable: {result.rewritable}")
    print(f"reason: {result.reason}")
    if result.rewriting is not None and args.show:
        for disjunct in result.rewriting.disjuncts:
            print(" ", disjunct)
    return 0 if result.rewritable else (1 if result.rewritable is False else 2)


def _cmd_minimize(args) -> int:
    omq = parse_omq(_read(args.omq))
    minimized, report = minimize_query(omq)
    print(omq_to_document(minimized), end="")
    print(f"% {report}", file=sys.stderr)
    return 0


def _cmd_explain(args) -> int:
    from .chase import ChaseBudgetExceeded

    omq = parse_omq(_read(args.omq))
    database = parse_database(_read(args.database))
    answer = tuple(Constant(c) for c in args.answer)
    try:
        explanation = explain_answer(
            omq, database, answer, max_steps=args.budget
        )
    except ChaseBudgetExceeded:
        print(
            "the chase of this ontology does not terminate; explanations "
            "are only available for terminating-chase ontologies",
            file=sys.stderr,
        )
        return 2
    if explanation is None:
        print("not a certain answer", file=sys.stderr)
        return 1
    print(format_explanation(explanation))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Containment for rule-based ontology-mediated queries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classify", help="fragment membership of a tgd file")
    p.add_argument("ontology")
    p.set_defaults(func=_cmd_classify)

    p = sub.add_parser("rewrite", help="UCQ-rewrite an OMQ file")
    p.add_argument("omq")
    p.add_argument("--budget", type=int, default=20_000)
    p.set_defaults(func=_cmd_rewrite)

    p = sub.add_parser("evaluate", help="certain answers over a database")
    p.add_argument("omq")
    p.add_argument("database")
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("contains", help="decide Q1 ⊆ Q2")
    p.add_argument("omq1")
    p.add_argument("omq2")
    p.add_argument("--budget", type=int, default=None)
    p.set_defaults(func=_cmd_contains)

    p = sub.add_parser("distributes", help="distribution over components")
    p.add_argument("omq")
    p.set_defaults(func=_cmd_distributes)

    p = sub.add_parser("rewritable", help="UCQ rewritability of an OMQ")
    p.add_argument("omq")
    p.add_argument("--show", action="store_true", help="print the rewriting")
    p.set_defaults(func=_cmd_rewritable)

    p = sub.add_parser("minimize", help="containment-powered minimization")
    p.add_argument("omq")
    p.set_defaults(func=_cmd_minimize)

    p = sub.add_parser("explain", help="derivation forest for an answer")
    p.add_argument("omq")
    p.add_argument("database")
    p.add_argument("answer", nargs="*", help="answer constants, in order")
    p.add_argument("--budget", type=int, default=10_000)
    p.set_defaults(func=_cmd_explain)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
