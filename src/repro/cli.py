"""Command-line interface: ``python -m repro <command> ...``.

Commands operate on *OMQ files* (see :func:`repro.core.parser.parse_omq`)::

    schema: P/1, T/1
    rules:
        P(x) -> R(x, w)
        R(x, y) -> P(y)
    query: q(x) :- R(x, y), P(y)

and on database files of facts (``R(a, b). P(b).``).

Commands:

* ``classify ONTOLOGY``          — fragment membership of a tgd file
* ``rewrite OMQ``                — UCQ rewriting (XRewrite)
* ``evaluate OMQ DATABASE``      — certain answers
* ``contains OMQ1 OMQ2``         — containment verdict (+ witness)
* ``batch FILE``                 — run a batch of jobs via the engine
* ``distributes OMQ``            — distribution over components
* ``rewritable OMQ``             — UCQ rewritability verdict
* ``minimize OMQ``               — containment-powered query minimization
* ``explain OMQ DATABASE ANSWER``— derivation forest for a certain answer
* ``catalog FILE``               — inspect an OMQ equivalence catalog
* ``witnesses FILE``             — inspect a NOT_CONTAINED witness store
* ``trace FILE``                 — pretty-print a saved decision trace
* ``profile TRACE...``           — aggregate traces into a phase profile
* ``profile diff OLD NEW``       — compare two profiles (noise-gated)
* ``serve``                      — containment-as-a-service HTTP server
* ``submit OMQ1 OMQ2``           — send a containment job to a server

``contains`` and ``rewrite`` accept ``--json`` (the machine-readable
output contract shared with ``batch``) and ``--cache-dir``/``--workers``
to route through the :class:`repro.engine.BatchEngine`.
``--cache-backend {sqlite,sharded,memory}`` picks the disk layer under
``--cache-dir`` (``sharded`` is the lock-free, NFS-safe layout), and
``--catalog PATH`` attaches the persistent equivalence catalog: OMQ
pairs proven equivalent in *any* earlier session answer instantly, even
after the result cache has been evicted or deleted.
``--witness-store PATH`` attaches the catalog's negative dual: every
NOT_CONTAINED verdict persists its counterexample database, and future
sessions replay stored witnesses as single hom-checks ahead of the full
decision procedures (inspect with ``repro witnesses PATH``).

``batch`` also accepts ``--stream``: results are printed the moment each
job finishes (completion order) rather than when the whole batch drains.
Duplicate α-equivalent jobs in a manifest are scheduled once — the
``engine.dedup.coalesced`` counter in ``--json`` ``stats.metrics`` counts
the absorbed copies.

``contains``, ``rewrite`` and ``batch`` accept ``--trace FILE``: every
decision is traced (phase spans, counter rollups — see :mod:`repro.obs`)
and the collected trees are written to FILE on exit.  A ``.jsonl``
extension selects the lossless JSONL tree format; anything else writes
Chrome ``trace_event`` JSON that opens directly in ``chrome://tracing``
or Perfetto.  ``repro trace FILE`` renders either format as an indented
phase tree with self/cumulative times.

``profile`` closes the loop on those trace files: ``repro profile
TRACE...`` aggregates any mix of trace files into one versioned profile
document (per-phase call counts, total/self-time percentiles, counter
rollups, fragment/verdict/method breakdowns — see
:mod:`repro.obs.profile`), and ``repro profile diff OLD NEW`` compares
two profiles with noise-floor-aware significance gating.  ``OLD``/``NEW``
may each be a profile JSON *or* a raw trace file (profiled on the fly).
``--fail-on-regression PCT`` exits 1 when any phase regresses at least
PCT per cent beyond the significance threshold's verdict — the CI gate
against ``BENCH_profile_baseline.json``.

``contains``, ``rewrite`` and ``batch`` accept ``--max-steps`` and
``--max-depth`` chase budgets.  Exhausting a budget never diverges or
errors: evaluation falls back to the truncated chase (sound, possibly
incomplete), so containment degrades to an UNKNOWN verdict carrying the
reason — the same convention the engine uses for pool failures.  XRewrite
itself never runs the chase, so on ``rewrite`` the flags are accepted for
interface uniformity (shared scripts/manifests) and have no effect.

A batch file is one job per line (``%``/``#`` comments, blank lines ok),
with paths resolved relative to the batch file::

    contains q1.omq q2.omq
    rewrite  q1.omq
    classify rules.tgd
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from .applications import distributes_over_components, is_ucq_rewritable
from .containment import ContainmentResult, Verdict, contains
from .core.parser import parse_database, parse_omq, parse_tgds
from .core.serialize import containment_result_to_json, omq_to_document
from .core.terms import Constant
from .evaluation import evaluate_omq
from .explain import explain_answer, format_explanation
from .fragments import best_class, classify
from .optimize import minimize_query
from .rewriting import RewritingBudgetExceeded, RewritingResult, xrewrite
from . import obs


def _read(path: str) -> str:
    return Path(path).read_text(encoding="utf-8")


# ---------------------------------------------------------------------------
# The JSON output contract (shared by contains/rewrite/batch)
# ---------------------------------------------------------------------------


def _containment_to_json(
    result: ContainmentResult, cached: Optional[bool] = None
) -> Dict[str, Any]:
    out = containment_result_to_json(result)
    if cached is not None:
        out["cached"] = cached
    return out


def _rewriting_to_json(
    result: RewritingResult, cached: Optional[bool] = None
) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "disjuncts": [str(d) for d in result.rewriting.disjuncts],
        "count": len(result.rewriting),
        "max_disjunct_size": result.rewriting.max_disjunct_size(),
        "complete": result.complete,
        "rewriting_steps": result.stats.rewriting_steps,
        "factorization_steps": result.stats.factorization_steps,
    }
    if cached is not None:
        out["cached"] = cached
    return out


def _make_engine(args):
    """A BatchEngine honoring --cache-dir/--cache-backend/--catalog/
    --workers/--timeout/--trace."""
    from .engine import BatchEngine

    return BatchEngine(
        cache_dir=getattr(args, "cache_dir", None),
        workers=getattr(args, "workers", 1) or 1,
        task_timeout=getattr(args, "timeout", None),
        trace="always" if getattr(args, "trace", None) else None,
        cache_backend=getattr(args, "cache_backend", "sqlite") or "sqlite",
        catalog=getattr(args, "catalog", None),
        witness_store=getattr(args, "witness_store", None),
        witness_replay=getattr(args, "witness_replay", None),
    )


def _wants_engine(args) -> bool:
    """Whether the flags ask for the BatchEngine rather than a direct call."""
    return (
        getattr(args, "cache_dir", None) is not None
        or (getattr(args, "workers", 1) or 1) > 1
        or getattr(args, "catalog", None) is not None
        or getattr(args, "witness_store", None) is not None
    )


def _write_trace_file(roots: List[dict], path: str) -> None:
    fmt = obs.write_trace(roots, path)
    note = (
        "open in chrome://tracing or https://ui.perfetto.dev"
        if fmt == "chrome"
        else "render with: repro trace " + path
    )
    print(
        f"% wrote {len(roots)} decision trace(s) to {path} ({note})",
        file=sys.stderr,
    )


def _cmd_classify(args) -> int:
    sigma = parse_tgds(_read(args.ontology))
    classes = classify(sigma)
    print("classes:", ", ".join(sorted(str(c) for c in classes)))
    print("preferred:", best_class(sigma))
    return 0


def _cmd_rewrite(args) -> int:
    omq = parse_omq(_read(args.omq))
    cached: Optional[bool] = None
    trace_path = getattr(args, "trace", None)
    if _wants_engine(args):
        from .engine import RewriteJob

        with _make_engine(args) as engine:
            job_result = engine.run_batch([RewriteJob(omq, args.budget)])[0]
            traces = engine.traces()
        result, cached = job_result.value, job_result.cached
        if trace_path:
            _write_trace_file(traces, trace_path)
        if result is None:
            print(f"rewriting failed: {job_result.error}", file=sys.stderr)
            return 2
    else:
        with obs.tracing("always" if trace_path else "off"):
            try:
                result = xrewrite(omq, max_queries=args.budget)
            except RewritingBudgetExceeded as exc:
                result = exc.partial
            if trace_path:
                _write_trace_file(obs.drain(), trace_path)
    if args.json:
        print(json.dumps(_rewriting_to_json(result, cached), indent=2))
        return 0 if result.complete else 2
    if not result.complete:
        print(
            f"rewriting exceeded the budget after "
            f"{result.stats.queries_generated} queries "
            "(the OMQ may not be UCQ-rewritable)",
            file=sys.stderr,
        )
        return 2
    for disjunct in result.rewriting.disjuncts:
        print(disjunct)
    print(
        f"% {len(result.rewriting)} disjuncts, "
        f"max size {result.rewriting.max_disjunct_size()}, "
        f"{result.stats.rewriting_steps} rewriting steps",
        file=sys.stderr,
    )
    return 0


def _cmd_evaluate(args) -> int:
    omq = parse_omq(_read(args.omq))
    database = parse_database(_read(args.database))
    result = evaluate_omq(omq, database)
    for answer in sorted(result.answers, key=str):
        print("(" + ", ".join(t.name for t in answer) + ")")
    print(
        f"% {len(result.answers)} answers via {result.method}"
        + ("" if result.exact else " (bounded: sound, possibly incomplete)"),
        file=sys.stderr,
    )
    return 0


def _cmd_contains(args) -> int:
    q1 = parse_omq(_read(args.omq1), name="Q1")
    q2 = parse_omq(_read(args.omq2), name="Q2")
    cached: Optional[bool] = None
    trace_path = getattr(args, "trace", None)
    if _wants_engine(args):
        from .engine import ContainmentJob

        with _make_engine(args) as engine:
            job_result = engine.run_batch(
                [
                    ContainmentJob(
                        q1,
                        q2,
                        rewriting_budget=args.budget,
                        chase_max_steps=args.max_steps,
                        chase_max_depth=args.max_depth,
                    )
                ]
            )[0]
            traces = engine.traces()
        result, cached = job_result.value, job_result.cached
        if trace_path:
            _write_trace_file(traces, trace_path)
    else:
        with obs.tracing("always" if trace_path else "off"):
            result = contains(
                q1,
                q2,
                rewriting_budget=args.budget,
                chase_max_steps=args.max_steps,
                chase_max_depth=args.max_depth,
            )
            if trace_path:
                _write_trace_file(obs.drain(), trace_path)
    if args.json:
        print(json.dumps(_containment_to_json(result, cached), indent=2))
    else:
        print(result)
        if result.verdict is Verdict.NOT_CONTAINED:
            print("witness database:")
            for atom in sorted(result.witness.database, key=str):
                print("  ", atom)
    if result.verdict is Verdict.NOT_CONTAINED:
        return 1
    if result.verdict is Verdict.UNKNOWN:
        return 2
    return 0


def _parse_batch_file(
    path: str,
    max_steps: int = 200_000,
    max_depth: Optional[int] = None,
):
    """Parse a batch manifest into engine jobs plus display labels."""
    from .engine import ClassifyJob, ContainmentJob, RewriteJob

    base = Path(path).resolve().parent
    jobs: List[Any] = []
    labels: List[str] = []
    for lineno, raw in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), 1
    ):
        line = raw.strip()
        if not line or line.startswith(("%", "#")):
            continue
        parts = line.split()
        kind, operands = parts[0].lower(), parts[1:]
        if kind == "contains" and len(operands) == 2:
            q1 = parse_omq(_read(str(base / operands[0])), name=operands[0])
            q2 = parse_omq(_read(str(base / operands[1])), name=operands[1])
            jobs.append(
                ContainmentJob(
                    q1,
                    q2,
                    chase_max_steps=max_steps,
                    chase_max_depth=max_depth,
                )
            )
            labels.append(f"contains {operands[0]} ⊆ {operands[1]}")
        elif kind == "rewrite" and len(operands) == 1:
            omq = parse_omq(_read(str(base / operands[0])), name=operands[0])
            jobs.append(RewriteJob(omq))
            labels.append(f"rewrite {operands[0]}")
        elif kind == "classify" and len(operands) == 1:
            sigma = parse_tgds(_read(str(base / operands[0])))
            jobs.append(ClassifyJob(tuple(sigma)))
            labels.append(f"classify {operands[0]}")
        else:
            raise ValueError(
                f"{path}:{lineno}: unrecognized batch line: {line!r}"
            )
    return jobs, labels


def _batch_entry_json(job_result, label: str, index: int) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "index": index,
        "job": label,
        "kind": job_result.job.kind,
        "cached": job_result.cached,
        "coalesced": job_result.coalesced,
        "error": job_result.error,
    }
    value = job_result.value
    if job_result.job.kind == "containment":
        entry.update(_containment_to_json(value))
    elif job_result.job.kind == "rewrite" and value is not None:
        entry.update(_rewriting_to_json(value))
    elif job_result.job.kind == "classify" and value is not None:
        entry["classes"] = sorted(str(c) for c in value.classes)
        entry["best"] = str(value.best)
    return entry


def _batch_entry_text(job_result, label: str, index: int) -> str:
    suffix = " (cached)" if job_result.cached else ""
    if job_result.coalesced and not job_result.cached:
        suffix = " (deduplicated)"
    value = job_result.value
    if job_result.job.kind == "containment":
        body = f"{value.verdict} via {value.method}"
        if job_result.error:
            body += f" [{job_result.error}]"
    elif job_result.error is not None:
        body = f"failed: {job_result.error}"
    elif job_result.job.kind == "rewrite":
        body = (
            f"{len(value.rewriting)} disjuncts, "
            f"{'complete' if value.complete else 'partial'}"
        )
    else:
        body = (
            f"classes {','.join(sorted(str(c) for c in value.classes))}, "
            f"preferred {value.best}"
        )
    return f"[{index}] {label}: {body}{suffix}"


def _cmd_batch(args) -> int:
    from .containment.result import Verdict as V

    try:
        jobs, labels = _parse_batch_file(
            args.batch_file, args.max_steps, args.max_depth
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not jobs:
        print("batch file contains no jobs", file=sys.stderr)
        return 2
    stream = getattr(args, "stream", False)
    with _make_engine(args) as engine:
        if stream:
            # Progress lines go out as workers finish, not when the whole
            # batch drains; with --json they go to stderr so stdout stays
            # a single machine-readable document.
            handles = engine.submit_batch(jobs)
            index_of = {id(h): i for i, h in enumerate(handles)}
            progress_out = sys.stderr if args.json else sys.stdout
            for n, handle in enumerate(engine.as_completed(handles), 1):
                i = index_of[id(handle)]
                line = _batch_entry_text(handle.result(), labels[i], i)
                print(f"[{n}/{len(jobs)}] {line}", file=progress_out, flush=True)
            results = [h.result() for h in handles]
        else:
            results = engine.run_batch(jobs)
        stats = engine.stats()
        if getattr(args, "trace", None):
            _write_trace_file(engine.traces(), args.trace)
    degraded = 0
    for r in results:
        if r.error is not None:
            degraded += 1
        elif (
            r.job.kind == "containment" and r.value.verdict is V.UNKNOWN
        ):
            degraded += 1
    if args.json:
        print(
            json.dumps(
                {
                    "jobs": [
                        _batch_entry_json(r, label, i)
                        for i, (r, label) in enumerate(zip(results, labels))
                    ],
                    "stats": stats,
                },
                indent=2,
            )
        )
    else:
        if not stream:  # streamed lines were already printed on arrival
            for i, (r, label) in enumerate(zip(results, labels)):
                print(_batch_entry_text(r, label, i))
        cache = stats["cache"]
        print(
            f"% {len(jobs)} jobs, {args.workers or 1} worker(s), "
            f"hit rate {cache['hit_rate']:.0%}, "
            f"{degraded} degraded",
            file=sys.stderr,
        )
    return 2 if degraded else 0


def _cmd_distributes(args) -> int:
    omq = parse_omq(_read(args.omq))
    result = distributes_over_components(omq)
    print(f"distributes: {result.distributes}")
    print(f"reason: {result.reason}")
    if result.witness_component:
        print(f"witness component: {result.witness_component}")
    return 0 if result.distributes else (1 if result.distributes is False else 2)


def _cmd_rewritable(args) -> int:
    omq = parse_omq(_read(args.omq))
    result = is_ucq_rewritable(omq)
    print(f"UCQ rewritable: {result.rewritable}")
    print(f"reason: {result.reason}")
    if result.rewriting is not None and args.show:
        for disjunct in result.rewriting.disjuncts:
            print(" ", disjunct)
    return 0 if result.rewritable else (1 if result.rewritable is False else 2)


def _cmd_minimize(args) -> int:
    omq = parse_omq(_read(args.omq))
    minimized, report = minimize_query(omq)
    print(omq_to_document(minimized), end="")
    print(f"% {report}", file=sys.stderr)
    return 0


def _cmd_explain(args) -> int:
    from .chase import ChaseBudgetExceeded

    omq = parse_omq(_read(args.omq))
    database = parse_database(_read(args.database))
    answer = tuple(Constant(c) for c in args.answer)
    try:
        explanation = explain_answer(
            omq, database, answer, max_steps=args.budget
        )
    except ChaseBudgetExceeded:
        print(
            "the chase of this ontology does not terminate; explanations "
            "are only available for terminating-chase ontologies",
            file=sys.stderr,
        )
        return 2
    if explanation is None:
        print("not a certain answer", file=sys.stderr)
        return 1
    print(format_explanation(explanation))
    return 0


def _cmd_catalog(args) -> int:
    """Inspect a cross-session OMQ equivalence catalog."""
    from .engine.catalog import OMQCatalog

    if not Path(args.catalog_file).exists():
        print(f"no catalog at {args.catalog_file}", file=sys.stderr)
        return 2
    with OMQCatalog(args.catalog_file) as catalog:
        stats = catalog.stats()
        groups = catalog.groups()
    if args.json:
        print(
            json.dumps(
                {
                    "stats": stats,
                    "groups": {
                        rep: list(members)
                        for rep, members in groups.items()
                    },
                },
                indent=2,
            )
        )
        return 0
    print(
        f"{stats['hashes']} hashes, {stats['edges']} containment edges, "
        f"{stats['groups']} equivalence group(s) covering "
        f"{stats['grouped_hashes']} hashes"
    )
    for rep, members in groups.items():
        print(f"group {rep[:16]}… ({len(members)} members):")
        for member in members:
            marker = "*" if member == rep else " "
            print(f"  {marker} {member}")
    return 0


def _cmd_witnesses(args) -> int:
    """Inspect a cross-session NOT_CONTAINED witness store.

    Streams rows straight off the sqlite file (read-only, bounded by
    ``--limit``): a store with a million rows costs O(limit) memory, and
    a version-mismatched file is listed, not discarded.
    """
    from .engine.witness_store import WitnessStore

    if not Path(args.witness_file).exists():
        print(f"no witness store at {args.witness_file}", file=sys.stderr)
        return 2
    try:
        stats, rows = WitnessStore.scan(args.witness_file, limit=args.limit)
    except ValueError as exc:
        print(
            f"cannot read witness store {args.witness_file}: {exc}",
            file=sys.stderr,
        )
        return 2
    if args.json:
        # Materializes at most --limit rows; the store itself is never
        # loaded wholesale.
        print(
            json.dumps({"stats": stats, "witnesses": list(rows)}, indent=2)
        )
        return 0
    print(
        f"{stats['entries']} stored witness(es) over "
        f"{stats['lhs_keys']} LHS / {stats['rhs_keys']} RHS canonical "
        f"hash(es)"
        + (
            ""
            if stats["current"]
            else f" [stale stamps: schema={stats['schema_version'] or '?'}"
            f" canon={stats['canon_version'] or '?'} — replay would"
            " rebuild this file]"
        )
    )
    shown = 0
    for entry in rows:
        shown += 1
        answer = ", ".join(entry["answer"])
        origin = entry["origin"]
        sig = entry["lhs_sig"] or entry["db_sig"] or "?"
        print(
            f"  {entry['lhs'][:16]}… ⊄ {entry['rhs'][:16]}…  "
            f"D: {entry['atoms']} atom(s), c̄ = ({answer})  "
            f"[{origin}; sig {sig}]"
        )
    if args.limit is not None and stats["entries"] > shown:
        print(f"  … {stats['entries'] - shown} more (raise --limit)")
    return 0


def _cmd_trace(args) -> int:
    try:
        roots = obs.load_trace(args.trace_file)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot load trace {args.trace_file}: {exc}", file=sys.stderr)
        return 2
    print(
        obs.format_trace(
            roots,
            show_attrs=not args.no_attrs,
            show_rollup=not args.no_rollup,
        )
    )
    return 0


def _cmd_profile(args) -> int:
    """``repro profile TRACE...`` / ``repro profile diff OLD NEW``."""
    inputs = list(args.inputs)
    if inputs and inputs[0] == "diff":
        return _profile_diff(args, inputs[1:])
    acc = obs.ProfileAccumulator()
    for path in inputs:
        try:
            acc.add_roots(obs.load_trace(path))
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot load trace {path}: {exc}", file=sys.stderr)
            return 2
    meta: Dict[str, Any] = {"sources": inputs}
    if args.workload:
        meta["workload"] = args.workload
    if args.noise_floor is not None:
        meta["noise_floor_pct"] = args.noise_floor
    profile = acc.profile(meta=meta)
    if args.out:
        Path(args.out).write_text(
            json.dumps(profile, indent=2) + "\n", encoding="utf-8"
        )
        print(f"% wrote profile to {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(profile, indent=2))
    else:
        print(obs.format_profile(profile, top=args.top))
    return 0


def _profile_diff(args, operands: List[str]) -> int:
    if len(operands) != 2:
        print("usage: repro profile diff OLD NEW", file=sys.stderr)
        return 2
    try:
        old = obs.load_profile(operands[0])
        new = obs.load_profile(operands[1])
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"cannot load profile: {exc}", file=sys.stderr)
        return 2
    diff = obs.profile_diff(
        old,
        new,
        metric=args.metric,
        noise_floor_pct=args.noise_floor,
        min_change_pct=args.min_change,
    )
    if args.report:
        Path(args.report).write_text(
            json.dumps(diff, indent=2) + "\n", encoding="utf-8"
        )
        print(f"% wrote diff report to {args.report}", file=sys.stderr)
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(obs.format_diff(diff))
    if args.fail_on_regression is not None:
        failures = obs.diff_regressions(diff, args.fail_on_regression)
        if failures:
            for name, change in failures:
                print(
                    f"FAIL: phase {name!r} regressed {change:+.1f}% "
                    f"(gate: {args.fail_on_regression:g}%)",
                    file=sys.stderr,
                )
            return 1
        print(
            f"% no phase regressed beyond {args.fail_on_regression:g}%",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args) -> int:
    from .serve.server import ServeConfig
    from .serve.server import run as serve_run

    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        task_timeout=args.timeout,
        cache_dir=args.cache_dir,
        cache_backend=args.cache_backend,
        catalog=args.catalog,
        witness_store=args.witness_store,
        witness_replay=args.witness_replay,
        tenants_file=args.tenants,
        deadline_floor_s=args.deadline_floor,
        drain_grace_s=args.drain_grace,
        allow_test_jobs=args.allow_test_jobs,
        trace_mode=args.trace_mode,
        trace_sample=args.trace_sample,
        max_traces=args.max_traces,
    )
    return serve_run(config)


def _cmd_submit(args) -> int:
    from .serve.client import ServeClient, ServeError

    try:
        q1_text = Path(args.omq1).read_text(encoding="utf-8")
        q2_text = Path(args.omq2).read_text(encoding="utf-8")
    except OSError as exc:
        print(f"cannot read OMQ file: {exc}", file=sys.stderr)
        return 2
    doc: dict = {"kind": "containment", "q1": q1_text, "q2": q2_text,
                 "tenant": args.tenant}
    if args.deadline_ms is not None:
        doc["deadline_ms"] = args.deadline_ms
    if args.priority is not None:
        doc["priority"] = args.priority
    if args.budget is not None:
        doc["rewriting_budget"] = args.budget
    try:
        with ServeClient.from_url(args.url) as client:
            if args.no_wait:
                record = client.submit(doc)
            else:
                record = client.run(doc, timeout=args.wait_timeout)
    except (ServeError, OSError, TimeoutError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(record, indent=2))
        return 0
    print(f"job {record['id']} [{record['tenant']}] {record['label']}")
    if record.get("state") != "done":
        print(f"  state: {record['state']} (poll GET /v1/jobs/{record['id']})")
        return 0
    flags = []
    if record.get("cached"):
        flags.append("cached")
    if record.get("coalesced"):
        flags.append("coalesced")
    if record.get("error"):
        flags.append(f"error={record['error']}")
    result = record.get("result") or {}
    verdict = result.get("verdict", "?")
    print(
        f"  {verdict} via {result.get('method', '?')} "
        f"in {record.get('duration_ms', 0.0):.1f}ms"
        + (f"  [{', '.join(flags)}]" if flags else "")
    )
    if result.get("detail"):
        print(f"  {result['detail']}")
    return 0 if not record.get("error") else 1


def _add_trace_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="FILE", default=None,
        help="trace every decision and write the span trees to FILE "
        "(.jsonl = JSONL trees; otherwise Chrome trace_event JSON for "
        "chrome://tracing / Perfetto)",
    )


def _add_engine_backend_flags(p: argparse.ArgumentParser) -> None:
    from .engine.cache import available_backends

    p.add_argument(
        "--cache-backend", default="sqlite", dest="cache_backend",
        choices=available_backends(),
        help="disk layer under --cache-dir: sqlite (WAL, single host), "
        "sharded (one file per entry, lock-free, NFS-safe), or memory",
    )
    p.add_argument(
        "--catalog", metavar="PATH", default=None,
        help="persistent OMQ equivalence catalog; proven-equivalent "
        "queries share cache rows and short-circuit across sessions "
        "(inspect with: repro catalog PATH)",
    )
    p.add_argument(
        "--witness-store", metavar="PATH", default=None,
        dest="witness_store",
        help="persistent NOT_CONTAINED witness store; stored "
        "counterexamples are replayed as cheap hom-checks ahead of the "
        "full decision procedures (inspect with: repro witnesses PATH)",
    )
    p.add_argument(
        "--witness-replay", default="structural", dest="witness_replay",
        choices=("exact", "structural", "off"),
        help="witness replay ladder: exact = hash-equal rungs only, "
        "structural (default) = also replay signature-compatible "
        "witnesses via two fresh hom-checks, off = record but never "
        "replay",
    )


def _add_chase_budget_flags(p: argparse.ArgumentParser, note: str = "") -> None:
    p.add_argument(
        "--max-steps", type=int, default=200_000, dest="max_steps",
        help="chase step budget; exhaustion degrades to UNKNOWN/partial"
        + note,
    )
    p.add_argument(
        "--max-depth", type=int, default=None, dest="max_depth",
        help="chase depth cut-off (bounded guarded strategy)" + note,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Containment for rule-based ontology-mediated queries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classify", help="fragment membership of a tgd file")
    p.add_argument("ontology")
    p.set_defaults(func=_cmd_classify)

    p = sub.add_parser("rewrite", help="UCQ-rewrite an OMQ file")
    p.add_argument("omq")
    p.add_argument("--budget", type=int, default=20_000)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument("--cache-dir", default=None, help="persistent result cache")
    p.add_argument("--workers", type=int, default=1)
    _add_engine_backend_flags(p)
    _add_chase_budget_flags(
        p, " (accepted for interface parity; XRewrite never chases)"
    )
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_rewrite)

    p = sub.add_parser("evaluate", help="certain answers over a database")
    p.add_argument("omq")
    p.add_argument("database")
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("contains", help="decide Q1 ⊆ Q2")
    p.add_argument("omq1")
    p.add_argument("omq2")
    p.add_argument("--budget", type=int, default=None)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument("--cache-dir", default=None, help="persistent result cache")
    p.add_argument("--workers", type=int, default=1)
    _add_engine_backend_flags(p)
    _add_chase_budget_flags(p)
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_contains)

    p = sub.add_parser(
        "batch", help="run a manifest of jobs through the batch engine"
    )
    p.add_argument("batch_file", help="one job per line; see module docs")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--cache-dir", default=None, help="persistent result cache")
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-task seconds (workers > 1 only)",
    )
    _add_engine_backend_flags(p)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--stream", action="store_true",
        help="print each result as it completes instead of waiting for "
        "the whole batch (with --json, progress lines go to stderr)",
    )
    _add_chase_budget_flags(p)
    _add_trace_flag(p)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser("distributes", help="distribution over components")
    p.add_argument("omq")
    p.set_defaults(func=_cmd_distributes)

    p = sub.add_parser("rewritable", help="UCQ rewritability of an OMQ")
    p.add_argument("omq")
    p.add_argument("--show", action="store_true", help="print the rewriting")
    p.set_defaults(func=_cmd_rewritable)

    p = sub.add_parser("minimize", help="containment-powered minimization")
    p.add_argument("omq")
    p.set_defaults(func=_cmd_minimize)

    p = sub.add_parser("explain", help="derivation forest for an answer")
    p.add_argument("omq")
    p.add_argument("database")
    p.add_argument("answer", nargs="*", help="answer constants, in order")
    p.add_argument("--budget", type=int, default=10_000)
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "catalog", help="inspect a cross-session OMQ equivalence catalog"
    )
    p.add_argument("catalog_file", help="a --catalog sqlite file")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_catalog)

    p = sub.add_parser(
        "witnesses",
        help="inspect a cross-session NOT_CONTAINED witness store",
    )
    p.add_argument("witness_file", help="a --witness-store sqlite file")
    p.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="list at most N rows (the stats still cover the whole store)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=_cmd_witnesses)

    p = sub.add_parser(
        "serve",
        help="run the containment-as-a-service HTTP server",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8718,
        help="listen port (0 picks a free port)",
    )
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-task seconds (workers > 1 only)",
    )
    p.add_argument("--cache-dir", default=None, help="persistent result cache")
    _add_engine_backend_flags(p)
    p.add_argument(
        "--tenants", metavar="FILE", default=None,
        help="JSON tenant policies: {name: {weight, priority, "
        "default_deadline_ms}} (editable live via PUT /v1/tenants)",
    )
    p.add_argument(
        "--deadline-floor", type=float, default=0.25, dest="deadline_floor",
        help="seconds below which no fresh decision is attempted — "
        "tighter deadlines degrade to UNKNOWN('deadline') immediately",
    )
    p.add_argument(
        "--drain-grace", type=float, default=5.0, dest="drain_grace",
        help="seconds to wait for in-flight requests on SIGTERM",
    )
    p.add_argument(
        "--allow-test-jobs", action="store_true", dest="allow_test_jobs",
        help="admit kind:'sleep' jobs (load tests and benchmarks only)",
    )
    p.add_argument(
        "--trace-mode", choices=("off", "always", "per-job"),
        default="off", dest="trace_mode",
        help="span-trace served decisions; traced spans feed the live "
        "GET /v1/debug/profile telemetry",
    )
    p.add_argument(
        "--trace-sample", type=int, default=10, dest="trace_sample",
        help="with --trace-mode per-job, trace every Nth submission",
    )
    p.add_argument(
        "--max-traces", type=int, default=512, dest="max_traces",
        help="bound on retained span trees (oldest dropped first)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a containment job to a running server"
    )
    p.add_argument("omq1")
    p.add_argument("omq2")
    p.add_argument(
        "--url", default="http://127.0.0.1:8718",
        help="server base URL (default %(default)s)",
    )
    p.add_argument("--tenant", default="default")
    p.add_argument(
        "--deadline-ms", type=int, default=None, dest="deadline_ms",
        help="latency budget; misses answer UNKNOWN('deadline')",
    )
    p.add_argument(
        "--priority", choices=("high", "normal", "low"), default=None
    )
    p.add_argument("--budget", type=int, default=None)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--no-wait", action="store_true", dest="no_wait",
        help="return the job id immediately instead of polling",
    )
    p.add_argument(
        "--wait-timeout", type=float, default=120.0, dest="wait_timeout",
        help="seconds to poll before giving up",
    )
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "trace", help="pretty-print a saved decision trace file"
    )
    p.add_argument("trace_file", help="a --trace output (.jsonl or Chrome)")
    p.add_argument(
        "--no-attrs", action="store_true", help="hide span attributes"
    )
    p.add_argument(
        "--no-rollup", action="store_true", help="hide the counter rollup"
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "profile",
        help="aggregate span traces into a per-phase profile, or diff "
        "two profiles with noise-gated verdicts",
    )
    p.add_argument(
        "inputs", nargs="+", metavar="TRACE",
        help="trace files (.jsonl or Chrome JSON) to aggregate — or "
        "'diff OLD NEW' where OLD/NEW are profile JSON or trace files",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the profile document to FILE (JSON)",
    )
    p.add_argument(
        "--report", metavar="FILE", default=None,
        help="diff mode: also write the diff report to FILE (JSON)",
    )
    p.add_argument(
        "--top", type=int, default=0,
        help="show only the N phases with the most self time",
    )
    p.add_argument(
        "--workload", default=None,
        help="workload tag recorded in the profile's meta block",
    )
    p.add_argument(
        "--metric", choices=obs.profile.DIFF_METRICS, default="self_share",
        help="diff mode: phase metric to compare — self_share (share of "
        "all self time; machine-portable, the default), self_mean, or "
        "total_mean (wall clock; same-machine A/B only)",
    )
    p.add_argument(
        "--noise-floor", type=float, default=None, dest="noise_floor",
        help="measured machine noise floor in %% (bench_obs_overhead's "
        "noise_floor_pct); default: the profiles' recorded floor, else "
        f"{obs.profile.DEFAULT_NOISE_FLOOR_PCT:g}",
    )
    p.add_argument(
        "--min-change", type=float, dest="min_change",
        default=obs.profile.DEFAULT_MIN_CHANGE_PCT,
        help="changes below this %% are never significant (default "
        "%(default)s); the significance threshold is "
        "max(2 x noise floor, this)",
    )
    p.add_argument(
        "--fail-on-regression", type=float, default=None,
        dest="fail_on_regression", metavar="PCT",
        help="diff mode: exit 1 if any phase's verdict is 'regressed' "
        "with a change of at least PCT %% (the CI gate)",
    )
    p.set_defaults(func=_cmd_profile)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
