"""Cross-session catalog of OMQ groups proven semantically equivalent.

The result cache answers "have I seen *this question* before?"; the
catalog answers the stronger "have I proven *these OMQs interchangeable*
before?".  It records directed containment facts between canonical OMQ
hashes (:func:`repro.engine.canon.hash_omq`) — from EQUIVALENT verdict
pairs, and from any two CONTAINED edges whose reps close a cycle — and
condenses the strongly connected components of that fact graph into
equivalence groups with a union-find.  The payoff compounds across
sessions:

* a containment job whose two sides land in the same group is answered
  instantly (verdict CONTAINED, procedure ``"catalog-equivalence"``)
  without touching cache or pool — even if the original cache rows were
  evicted long ago;
* containment cache keys are built from group *representatives* rather
  than raw hashes (see ``ContainmentJob.catalog_key``), so a cached
  verdict for ``Q1 ⊆ Q2`` is served for every pair drawn from the same
  two groups.

Only *containment* consults the catalog: a containment verdict depends
on the OMQs' semantics alone, so substituting an equivalent query cannot
change it.  Rewriting and classification output depends on the *syntax*
of the rule set (two equivalent OMQs can have different rewritings), so
their keys never go through the catalog.

Soundness note: α-equivalent OMQs already share a canonical hash, so the
catalog's edges are between genuinely distinct spellings whose
equivalence was *proven* by the decision procedures.  A procedure may
answer UNKNOWN for one member of a group and CONTAINED for another;
serving the cached UNKNOWN to an equivalent query loses an answer we
might have found, but never reports a wrong verdict.

Persistence mirrors the result cache's robustness contract: sqlite with
WAL + busy timeout, version stamps in a ``meta`` table (schema + canon —
a canon bump invalidates every hash in the file), transient errors
degrade to memory-only operation, genuine corruption discards the file
and rebuilds.  Representatives are chosen deterministically (the
lexicographically least hash in the group), so concurrent sessions
converge on the same reps and their rep-based cache keys agree.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path
from threading import RLock
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .canon import CANON_VERSION

#: Bump when the catalog's sqlite layout changes.
CATALOG_SCHEMA_VERSION = "1"

#: How long a connection waits on a locked catalog before giving up.
_BUSY_TIMEOUT_MS = 5_000


class OMQCatalog:
    """Persistent union-find over proven-equivalent canonical OMQ hashes.

    ``path=None`` keeps the catalog in memory (still useful within one
    long-lived engine: groups survive cache eviction).  All operations
    are total — storage failures cost durability, never correctness.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._lock = RLock()
        #: hash -> parent hash (union-find forest, path-compressed).
        self._parent: Dict[str, str] = {}
        #: directed CONTAINED facts between *raw* hashes.
        self._edges: Set[Tuple[str, str]] = set()
        self.merges = 0
        self.recoveries = 0
        self.transient_errors = 0
        self._path = Path(path) if path is not None else None
        self._conn: Optional[sqlite3.Connection] = None
        if self._path is not None:
            self._open()
            self._condense()

    # -- persistence ------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        assert self._path is not None
        conn = sqlite3.connect(str(self._path), check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(f"PRAGMA busy_timeout={int(_BUSY_TIMEOUT_MS)}")
        return conn

    def _create_tables(self, conn: sqlite3.Connection) -> None:
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta "
            "(key TEXT PRIMARY KEY, value TEXT)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS members "
            "(hash TEXT PRIMARY KEY, rep TEXT)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS edges "
            "(src TEXT, dst TEXT, PRIMARY KEY (src, dst))"
        )

    def _expected_stamps(self) -> Dict[str, str]:
        return {
            "schema_version": CATALOG_SCHEMA_VERSION,
            "canon_version": CANON_VERSION,
        }

    def _open(self) -> None:
        """Open (or rebuild) the catalog file and load it; never raises."""
        assert self._path is not None
        try:
            if self._path.parent != Path(""):
                self._path.parent.mkdir(parents=True, exist_ok=True)
            conn = self._connect()
            self._create_tables(conn)
            stamps = dict(conn.execute("SELECT key, value FROM meta"))
            if stamps and stamps != self._expected_stamps():
                # A canon bump means every stored hash speaks a dead
                # dialect: discard, don't migrate.
                conn.close()
                self._discard_file()
                conn = self._connect()
                self._create_tables(conn)
                stamps = {}
            if not stamps:
                conn.executemany(
                    "INSERT OR REPLACE INTO meta VALUES (?, ?)",
                    sorted(self._expected_stamps().items()),
                )
                conn.commit()
            for h, rep in conn.execute("SELECT hash, rep FROM members"):
                self._parent[h] = rep
                self._parent.setdefault(rep, rep)
            for src, dst in conn.execute("SELECT src, dst FROM edges"):
                self._edges.add((src, dst))
            self._conn = conn
        except sqlite3.OperationalError:
            self.transient_errors += 1
            self._conn = None
        except (sqlite3.Error, OSError):
            self._recover()

    def _discard_file(self) -> None:
        assert self._path is not None
        self.recoveries += 1
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(str(self._path) + suffix)
            except OSError:
                pass

    def _degrade(self) -> None:
        self.transient_errors += 1
        if self._conn is not None:
            try:
                self._conn.rollback()
            except sqlite3.Error:
                pass

    def _recover(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        if self._path is None:
            return
        self._discard_file()
        try:
            conn = self._connect()
            self._create_tables(conn)
            conn.executemany(
                "INSERT OR REPLACE INTO meta VALUES (?, ?)",
                sorted(self._expected_stamps().items()),
            )
            conn.commit()
            self._conn = conn
        except (sqlite3.Error, OSError):
            self._conn = None  # memory-only from here on

    def _persist(self, sql: str, rows: Iterable[tuple]) -> None:
        """Best-effort write-through of one statement over *rows*."""
        if self._conn is None:
            return
        try:
            self._conn.executemany(sql, list(rows))
            self._conn.commit()
        except sqlite3.OperationalError:
            self._degrade()
        except sqlite3.Error:
            self._recover()

    # -- union-find -------------------------------------------------------

    def _find(self, h: str) -> str:
        root = h
        while self._parent.get(root, root) != root:
            root = self._parent[root]
        # Path compression keeps repeated rep() lookups O(1) amortized.
        while self._parent.get(h, h) != root:
            self._parent[h], h = root, self._parent[h]
        return root

    def _union(self, a: str, b: str) -> bool:
        """Merge *a*'s and *b*'s groups; returns True iff they differed.

        The surviving representative is the lexicographically least root
        so every session converges on the same rep for the same group.
        """
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return False
        keep, fold = (ra, rb) if ra < rb else (rb, ra)
        self._parent[fold] = keep
        self.merges += 1
        if self._conn is not None:
            # Rewrite every member of the folded group, then record both
            # hashes themselves.
            try:
                self._conn.execute(
                    "UPDATE members SET rep = ? WHERE rep = ?", (keep, fold)
                )
                self._conn.execute(
                    "INSERT OR REPLACE INTO members VALUES (?, ?)",
                    (fold, keep),
                )
                self._conn.commit()
            except sqlite3.OperationalError:
                self._degrade()
            except sqlite3.Error:
                self._recover()
        return True

    def _condense(self) -> None:
        """Merge every strongly connected component of the rep-level fact
        graph (Tarjan, iterative).  Pairwise ``A⊆B ∧ B⊆A`` cycles are the
        common case, but chains of CONTAINED facts can close longer
        cycles — e.g. ``A⊆B, B⊆C, C⊆A`` proves all three equivalent —
        which only SCC condensation catches."""
        adj: Dict[str, List[str]] = {}
        for src, dst in self._edges:
            rs, rd = self._find(src), self._find(dst)
            if rs != rd:
                adj.setdefault(rs, []).append(rd)
                adj.setdefault(rd, [])
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]

        def strongconnect(start: str) -> None:
            work = [(start, iter(adj.get(start, ())))]
            index[start] = low[start] = counter[0]
            counter[0] += 1
            stack.append(start)
            on_stack.add(start)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(adj.get(succ, ()))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    for other in component[1:]:
                        self._union(component[0], other)

        for node in list(adj):
            if node not in index:
                strongconnect(node)

    # -- public API -------------------------------------------------------

    @property
    def persistent(self) -> bool:
        return self._conn is not None

    def rep(self, h: str) -> str:
        """The canonical representative of *h*'s equivalence group
        (*h* itself while unmerged)."""
        with self._lock:
            return self._find(h)

    def equivalent(self, h1: str, h2: str) -> bool:
        """Whether *h1* and *h2* are in the same proven-equivalent group."""
        with self._lock:
            return h1 == h2 or self._find(h1) == self._find(h2)

    def note_contained(self, h1: str, h2: str) -> bool:
        """Record the proven fact ``hash h1 ⊆ hash h2``.

        Returns True iff the new edge closed a cycle and merged groups
        (directly, or through a longer chain of recorded facts).
        """
        with self._lock:
            if h1 == h2 or (h1, h2) in self._edges:
                return False
            self._edges.add((h1, h2))
            self._parent.setdefault(h1, h1)
            self._parent.setdefault(h2, h2)
            self._persist(
                "INSERT OR IGNORE INTO edges VALUES (?, ?)", [(h1, h2)]
            )
            self._persist(
                "INSERT OR IGNORE INTO members VALUES (?, ?)",
                [(h1, self._find(h1)), (h2, self._find(h2))],
            )
            before = self.merges
            self._condense()
            return self.merges > before

    def note_equivalent(self, h1: str, h2: str) -> bool:
        """Record a proven equivalence (both containment directions)."""
        merged = self.note_contained(h1, h2)
        return self.note_contained(h2, h1) or merged

    def groups(self) -> Dict[str, Tuple[str, ...]]:
        """rep -> sorted members, for every non-singleton group."""
        with self._lock:
            by_rep: Dict[str, List[str]] = {}
            for h in self._parent:
                by_rep.setdefault(self._find(h), []).append(h)
            return {
                rep: tuple(sorted(members))
                for rep, members in sorted(by_rep.items())
                if len(members) > 1
            }

    def stats(self) -> dict:
        with self._lock:
            groups = self.groups()
            return {
                "hashes": len(self._parent),
                "edges": len(self._edges),
                "groups": len(groups),
                "grouped_hashes": sum(len(m) for m in groups.values()),
                "merges": self.merges,
                "persistent": self.persistent,
                "recoveries": self.recoveries,
                "transient_errors": self.transient_errors,
            }

    def clear(self) -> None:
        """Forget every fact (memory and disk)."""
        with self._lock:
            self._parent.clear()
            self._edges.clear()
            if self._conn is not None:
                try:
                    self._conn.execute("DELETE FROM members")
                    self._conn.execute("DELETE FROM edges")
                    self._conn.commit()
                except sqlite3.OperationalError:
                    self._degrade()
                except sqlite3.Error:
                    self._recover()

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    def __enter__(self) -> "OMQCatalog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
