"""Lightweight counters and timers for the batch engine.

A :class:`MetricsRegistry` is a named bag of monotonically increasing
:class:`Counter`\\ s, up/down :class:`Gauge`\\ s (current in-flight depth of
the scheduler), and accumulating :class:`Timer`\\ s.  It is deliberately
minimal — enough to report cache hit rates and per-procedure latency from
``BatchEngine.stats()`` and the CLI without pulling in a metrics library —
and thread-safe, since the pool coordinator and callers may touch it
concurrently.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from threading import RLock
from typing import Dict, Iterator


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: RLock) -> None:
        self.name = name
        self._value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down, remembering its high-water mark."""

    __slots__ = ("name", "_value", "_max", "_lock")

    def __init__(self, name: str, lock: RLock) -> None:
        self.name = name
        self._value = 0
        self._max = 0
        self._lock = lock

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount
            self._max = max(self._max, self._value)

    def sub(self, amount: int = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    @property
    def high_water(self) -> int:
        with self._lock:
            return self._max


class Timer:
    """An accumulating timer: total seconds and number of observations."""

    __slots__ = ("name", "_total", "_count", "_max", "_lock")

    def __init__(self, name: str, lock: RLock) -> None:
        self.name = name
        self._total = 0.0
        self._count = 0
        self._max = 0.0
        self._lock = lock

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._total += seconds
            self._count += 1
            self._max = max(self._max, seconds)

    @contextmanager
    def time(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0


class MetricsRegistry:
    """A named collection of counters and timers."""

    def __init__(self) -> None:
        self._lock = RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name, self._lock)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, self._lock)
            return self._gauges[name]

    def timer(self, name: str) -> Timer:
        with self._lock:
            if name not in self._timers:
                self._timers[name] = Timer(name, self._lock)
            return self._timers[name]

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view of every metric (stable key order)."""
        with self._lock:
            out: Dict[str, object] = {}
            for name in sorted(self._counters):
                out[name] = self._counters[name].value
            for name in sorted(self._gauges):
                g = self._gauges[name]
                out[name] = {"value": g.value, "high_water": g.high_water}
            for name in sorted(self._timers):
                t = self._timers[name]
                out[name] = {
                    "total_s": t.total,
                    "count": t.count,
                    "mean_s": t.mean,
                }
            return out

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
